#!/usr/bin/env python3
"""Advisory perf gate: fail if throughput regressed vs the committed
``BENCH_interp.json``.

Runs the micro suite, distills the same metrics ``run_benchmarks.py``
records, and compares the throughput-critical ones against the latest
committed record.  Exits non-zero when any watched metric regressed by
more than ``--threshold`` (default 30%).  Nothing is written to
``BENCH_interp.json`` — this is a smoke check, not a measurement run.

Usage:  python benchmarks/check_regression.py [--threshold 0.30]
        (from the repo root)
"""

from __future__ import annotations

import sys

from bench_serve import serve_metrics
from run_benchmarks import (analysis_metrics, batch_metrics, distill,
                            read_records, run_suite, sanitize_metrics)

#: (metric, higher_is_better)
WATCHED = (
    ("predecode_instrs_per_sec", True),
    ("trap_roundtrip_ns", False),
    ("jit_roundtrip_ns", False),
    # tracing JIT: lorenz-inner-loop speedup over plain predecode —
    # metrics missing from older-schema baselines are skipped
    ("trace_jit_speedup", True),
    # analysis precision: installed correctness traps and the fraction
    # that never fire — a jump means the refinement lost ground
    ("patched_site_count", False),
    ("spurious_trap_rate", False),
    # SoA batched execution: 64-lane lorenz sweep vs 64 scalar runs
    # (schema 4) — a drop means lockstep dispatch lost its leverage;
    # the spill rate is informational (0 baseline is skipped)
    ("batch_speedup_n64", True),
    ("batch_divergence_spill_rate", False),
    # the serving tier under worker-kill chaos (schema 5): completed
    # jobs/sec and the p99 submit-to-answer latency of `repro serve`
    ("jobs_per_sec", True),
    ("serve_p99_ms", False),
    # NSan-mode sanitizer (schema 6): static-proof leverage and the
    # modeled-cycle cost of dual-path checking — a prove-rate drop
    # means the interval pass lost precision, an overhead jump means
    # the dual-path hot path got slower
    ("sanitize_prove_rate", True),
    ("sanitize_overhead_x", False),
    ("sanitize_exempt_overhead_x", False),
)


def check(baseline: dict, current: dict, threshold: float) -> list[str]:
    failures = []
    for metric, higher_is_better in WATCHED:
        base = baseline.get(metric)
        cur = current.get(metric)
        if not base or not cur or base <= 0 or cur <= 0:
            print(f"  {metric:30s} skipped (baseline={base}, current={cur})")
            continue
        change = (cur / base - 1.0) if higher_is_better else (base / cur - 1.0)
        status = "ok" if change >= -threshold else "REGRESSED"
        print(f"  {metric:30s} {base:14,.1f} -> {cur:14,.1f} "
              f"({change:+.1%}) {status}")
        if change < -threshold:
            failures.append(metric)
    return failures


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    threshold = 0.30
    if "--threshold" in argv:
        i = argv.index("--threshold") + 1
        if i >= len(argv):
            raise SystemExit("--threshold requires a number")
        threshold = float(argv[i])
    records = read_records()
    if not records:
        print("no committed BENCH_interp.json baseline; nothing to check")
        return 0
    baseline = records[-1]["metrics"]
    current = distill(run_suite())
    current.update(analysis_metrics())
    current.update(batch_metrics())
    current.update(sanitize_metrics())
    current.update(serve_metrics())
    print(f"perf check vs committed baseline (threshold {threshold:.0%}):")
    failures = check(baseline, current, threshold)
    if failures:
        print(f"regressed: {', '.join(failures)}")
        return 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
