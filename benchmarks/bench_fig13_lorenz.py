"""Fig. 13 — Lorenz system under IEEE, FPVM+Vanilla, and FPVM+MPFR.

Paper: "Simply adding the FPVM layer… does not change the answer…
using MPFR, with a higher precision, does indeed change the answer, as
expected.  Given a common starting point, the trajectories of IEEE and
MPFR soon diverge."
"""

import re

from repro.harness.figures import fig13_lorenz


def _xyz(line: str):
    m = re.search(r"x=(\S+) y=(\S+) z=(\S+)", line)
    return tuple(float(g) for g in m.groups())


def test_fig13_trajectories(benchmark, run_once):
    out = run_once(benchmark, fig13_lorenz, "bench")
    ieee_final = out["ieee"].strip().splitlines()[-1]
    mpfr_final = out["mpfr"].strip().splitlines()[-1]
    print("\n=== Fig. 13: Lorenz final states after 400 steps ===")
    print(f"IEEE   : {ieee_final}")
    print(f"Vanilla: identical = {out['vanilla_identical']}")
    print(f"MPFR   : {mpfr_final}")

    assert out["vanilla_identical"]
    assert out["mpfr_diverged"]

    # divergence grows along the trajectory (chaos), from ~0 at start
    ieee_lines = out["ieee"].strip().splitlines()
    mpfr_lines = out["mpfr"].strip().splitlines()
    gaps = []
    for li, lm in zip(ieee_lines, mpfr_lines):
        a, b = _xyz(li), _xyz(lm)
        gaps.append(sum((x - y) ** 2 for x, y in zip(a, b)) ** 0.5)
    early = max(gaps[: len(gaps) // 4])
    late = max(gaps[-len(gaps) // 4:])
    assert late >= early
    assert gaps[0] < 1e-6  # common starting point
