"""§5.2 — validation table: every code runs bit-identically under
FPVM + Vanilla, and the static analysis statistics per code."""

from repro.arith import VanillaArithmetic
from repro.workloads import WORKLOADS
from repro.session import Session


def _table():
    rows = {}
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        nat = Session(lambda: spec.build("test"), None).run()
        virt = Session(lambda: spec.build("test"), VanillaArithmetic()).run()
        rows[name] = {
            "identical": nat.stdout == virt.stdout,
            "fp_traps": virt.fp_traps,
            "correctness_traps": virt.correctness_traps,
            "demotions": virt.fpvm.stats.correctness_demotions,
            "patches": virt.analysis.patch_count,
            "sinks": len(virt.analysis.sinks),
        }
    return rows


def test_validation_table(benchmark, run_once):
    rows = run_once(benchmark, _table)
    print("\n=== §5.2 validation (FPVM+Vanilla vs native, test size) ===")
    print(f"{'benchmark':12s} {'identical':>9s} {'fp traps':>9s} "
          f"{'ctraps':>7s} {'demoted':>8s} {'patches':>8s}")
    for name, r in rows.items():
        print(f"{name:12s} {str(r['identical']):>9s} {r['fp_traps']:9d} "
              f"{r['correctness_traps']:7d} {r['demotions']:8d} "
              f"{r['patches']:8d}")
    assert all(r["identical"] for r in rows.values())
    assert all(r["fp_traps"] > 0 for r in rows.values())
