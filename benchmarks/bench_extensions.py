"""Benches for the implemented extensions: FPSpy event-rate survey
(which codes will virtualize heavily?) and adaptive precision."""

from repro.arith import (AdaptiveBigFloatArithmetic, BigFloatArithmetic,
                         IntervalArithmetic)
from repro.arith.interval import width
from repro.compiler import compile_source
from repro.fpvm.fpspy import spy_on
from repro.harness.experiment import slowdown
from repro.workloads import WORKLOADS
from repro.session import Session

SURVEY_CODES = ("nas_is", "lorenz", "fbench", "nas_cg", "three_body",
                "miniaero")


def test_fpspy_event_rate_survey(benchmark, run_once):
    """FPSpy predicts FPVM trap pressure without perturbing results —
    the analyst's first step before committing to virtualization."""

    def survey():
        return {name: spy_on(lambda n=name: WORKLOADS[n].build("test"))
                for name in SURVEY_CODES}

    reports = run_once(benchmark, survey)
    print("\n=== FPSpy survey: FP event rates (test size) ===")
    print(f"{'benchmark':12s} {'FP instrs':>10s} {'events':>8s} "
          f"{'rate':>7s}")
    for name, rep in reports.items():
        print(f"{name:12s} {rep.fp_instructions:10d} "
              f"{rep.total_events:8d} {100 * rep.event_rate:6.1f}%")
    # the ODE steppers round on nearly every FP instruction; IS's FP
    # is confined to key generation (rate per FP instruction — Fig. 12
    # slowdowns additionally depend on FP density per cycle)
    rates = {n: r.event_rate for n, r in reports.items()}
    assert rates["lorenz"] > 0.5 and rates["three_body"] > 0.5
    assert rates["nas_is"] == min(rates.values())
    assert all(0 < r <= 1 for r in rates.values())


def test_adaptive_precision_end_to_end(benchmark, run_once):
    """Adaptive precision on a cancellation-heavy kernel: starts cheap,
    escalates only when the numerics demand it."""
    src = """
    long main() {
        // one catastrophic cancellation up front, then a long benign
        // kernel: adaptive bumps precision once and stays cheap
        double probe = 1.0 / 3.0;
        double cancel = (probe - probe) + probe;
        double acc = cancel;
        for (long i = 1; i < 60; i = i + 1) {
            double x = (double)(1000000 + i);
            acc = acc + sqrt(x + 1.0) - sqrt(x);
        }
        printf("%.12g\\n", acc);
        return 0;
    }
    """

    def run():
        nat = Session(lambda: compile_source(src), None).run()
        fixed_hi = Session(lambda: compile_source(src), BigFloatArithmetic(2048)).run()
        adaptive = AdaptiveBigFloatArithmetic(64, 2048,
                                              cancel_threshold=40)
        adapt_run = Session(lambda: compile_source(src), adaptive).run()
        return nat, fixed_hi, adapt_run, adaptive

    nat, fixed_hi, adapt_run, adaptive = run_once(benchmark, run)
    print("\n=== adaptive precision (cancellation-heavy kernel) ===")
    print(f"  native:            {nat.stdout.strip()}")
    print(f"  fixed mpfr2048:    {fixed_hi.stdout.strip()} "
          f"({fixed_hi.cycles:.0f} cycles)")
    print(f"  adaptive:          {adapt_run.stdout.strip()} "
          f"({adapt_run.cycles:.0f} cycles, "
          f"{adaptive.escalations} escalations, "
          f"final {adaptive.precision} bits)")
    assert adaptive.escalations >= 1
    assert adaptive.precision > adaptive.initial_precision
    # adaptive pays less than always-2048-bit while reacting to the
    # same numerics
    assert adapt_run.cycles < fixed_hi.cycles


def test_interval_error_bar_growth(benchmark, run_once):
    """Interval arithmetic under FPVM: the enclosure width is a
    rigorous error bound computed by the unmodified binary — constant
    (ulps) for contractive maps, exponential for the Lorenz system."""
    from repro.compiler import compile_source

    lorenz = """
    double sigma = 10.0; double rho = 28.0; double beta = 2.6666666666666665;
    long main() {
        double x = 1.0; double y = 1.0; double z = 1.0;
        for (long i = 0; i < NSTEPS; i = i + 1) {
            double dx = sigma * (y - x);
            double dy = x * (rho - z) - y;
            double dz = x * y - beta * z;
            x = x + 0.005 * dx; y = y + 0.005 * dy; z = z + 0.005 * dz;
        }
        printf("%.17g\\n", x);
        return 0;
    }
    """

    def max_width(res):
        ws = [width(res.fpvm.store.get(h))
              for h in res.fpvm.store.handles()]
        ws = [w for w in ws if w == w]
        return max(ws) if ws else 0.0

    def run():
        out = {}
        for steps in (50, 150, 250):
            src = lorenz.replace("NSTEPS", str(steps))
            res = Session(lambda: compile_source(src), IntervalArithmetic()).run()
            out[steps] = max_width(res)
        return out

    widths = run_once(benchmark, run)
    print("\n=== interval enclosures on Lorenz (rigorous error bars) ===")
    for steps, w in widths.items():
        print(f"  {steps:4d} steps: max width {w:10.3e}")
    ks = sorted(widths)
    assert widths[ks[0]] < widths[ks[1]] < widths[ks[2]]
    assert widths[ks[2]] > 100 * widths[ks[0]]  # exponential growth
