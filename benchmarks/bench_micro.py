"""Microbenchmarks of the substrate: simulator throughput, NaN-box
codec, decode cache, soft-FPU ops, and the GC scan."""

import pytest

from repro.compiler import compile_source
from repro.ieee.bits import f64_to_bits
from repro.ieee.softfloat import SoftFPU
from repro.fpvm.nanbox import NaNBoxCodec
from repro.machine.loader import load_binary

FPU = SoftFPU()
A = f64_to_bits(0.1)
B = f64_to_bits(0.7)


@pytest.mark.parametrize("op", ["add64", "mul64", "div64"])
def test_softfpu_op(benchmark, op):
    benchmark(getattr(FPU, op), A, B)


def test_nanbox_encode_decode(benchmark):
    codec = NaNBoxCodec()

    def roundtrip():
        bits = codec.encode(123456)
        return codec.decode(bits) if codec.is_box(bits) else None

    assert benchmark(roundtrip) == 123456


_THROUGHPUT_SRC = """
long main() {
    long s = 0;
    for (long i = 0; i < 2000; i = i + 1) { s = s + i * 3; }
    return s & 255;
}
"""


def test_simulator_throughput(benchmark):
    """Instructions/second of the predecoded interpreter (integer loop)."""
    def run():
        m = load_binary(compile_source(_THROUGHPUT_SRC))
        m.run()
        return m.instr_count

    count = benchmark(run)
    benchmark.extra_info["instr_count"] = count
    assert count > 10_000


def test_simulator_throughput_legacy(benchmark):
    """Same loop under the legacy per-step dispatch (the seed path) —
    the predecode speedup is the ratio of these two benches."""
    def run():
        m = load_binary(compile_source(_THROUGHPUT_SRC), predecode=False)
        m.run()
        return m.instr_count

    count = benchmark(run)
    benchmark.extra_info["instr_count"] = count
    assert count > 10_000


#: FP loop shared by the whole-program benches: a fusible divsd+addsd
#: pair per iteration (1000 FP events per run)
_FP_LOOP_SRC = """
long main() {
    double s = 0.1;
    for (long i = 0; i < 500; i = i + 1) { s = s / 1.0000001 + 0.0000001; }
    printf("%.17g\\n", s);
    return 0;
}
"""


def _fp_loop_state(config=None, virtualize=True):
    """Fresh machine (+ optionally installed FPVM) per measured run;
    compile/load/install happen in the pedantic setup hook so the
    measured time is the run itself."""
    from repro.arith import VanillaArithmetic
    from repro.fpvm.runtime import FPVM

    state = {}

    def setup():
        m = load_binary(compile_source(_FP_LOOP_SRC))
        if virtualize:
            fpvm = FPVM(VanillaArithmetic(), config)
            fpvm.install(m)
            state["fpvm"] = fpvm
        state["m"] = m
        return (), {}

    def run():
        state["m"].run()

    return state, setup, run


def test_fp_loop_native(benchmark):
    """The FP loop with no FPVM installed (masked FP, no traps)."""
    state, setup, run = _fp_loop_state(virtualize=False)
    benchmark.pedantic(run, setup=setup, rounds=20)
    benchmark.extra_info["fp_instrs"] = state["m"].fp_instr_count
    assert state["m"].fp_trap_count == 0


def test_fp_loop_trap(benchmark):
    """Whole-program throughput with every FP event trap-serviced."""
    state, setup, run = _fp_loop_state()
    benchmark.pedantic(run, setup=setup, rounds=20)
    traps = state["m"].fp_trap_count
    benchmark.extra_info["fp_traps"] = traps
    assert traps >= 1000


def test_fp_loop_jit(benchmark):
    """Whole-program throughput with the trap-site JIT on: the hot
    pair fuses into one shadow kernel, intermediates stay unboxed."""
    from repro.fpvm.runtime import FPVMConfig

    state, setup, run = _fp_loop_state(FPVMConfig(jit_threshold=4))
    benchmark.pedantic(run, setup=setup, rounds=20)
    stats = state["fpvm"].stats
    benchmark.extra_info["jit_hits"] = stats.jit_hits
    benchmark.extra_info["patched_site_hit_rate"] = stats.patched_site_hit_rate
    assert stats.jit_hits >= 900
    assert stats.jit_fused_kernels >= 1
    assert stats.boxes_elided >= 400


def _service_step(config=None):
    """Steady-state servicing closure for the hot divsd+addsd pair.

    Runs the FP-loop program once (warming decode/bind caches,
    compiling the JIT sites when enabled), then returns whatever
    closure the dispatch loop would invoke at the head site — the
    predecoded interpreter step (whose FP event takes the full fault →
    decode → bind → emulate round-trip, one event per call) or the
    fused JIT kernel (both events per call, intermediate unboxed).
    Benchmarking that closure directly measures per-event servicing
    cost with no loop scaffolding mixed in.
    """
    from repro.arith import VanillaArithmetic
    from repro.fpvm.runtime import FPVM

    m = load_binary(compile_source(_FP_LOOP_SRC))
    fpvm = FPVM(VanillaArithmetic(), config)
    fpvm.install(m)
    m.run()
    head = next(i.addr for i in m.binary.text if i.mnemonic == "divsd")
    step = m._code[head]
    step()  # reach steady state: destination register holds a box
    return m, fpvm, step


def test_trap_roundtrip(benchmark):
    """One full trap round-trip (fault delivery → decode → bind →
    emulate → box), steady state, caches warm."""
    m, fpvm, step = _service_step()
    benchmark(step)
    benchmark.extra_info["events_per_call"] = 1
    assert fpvm.stats.fp_traps > 1000


def test_jit_roundtrip(benchmark):
    """Both FP events of the pair serviced by the fused shadow kernel —
    no fault delivery, no handler dispatch, one box instead of two."""
    from repro.fpvm.runtime import FPVMConfig

    m, fpvm, step = _service_step(FPVMConfig(jit_threshold=4))
    assert fpvm.stats.jit_fused_kernels >= 1
    benchmark(step)
    benchmark.extra_info["events_per_call"] = 2
    assert fpvm.stats.jit_hits > 1000
    assert fpvm.stats.boxes_elided > 400


#: lorenz-style inner loop, printf-free inside the loop: machine-only
#: execution with no FPVM handler, so the tracing JIT's optimizing
#: emitter applies (FP inlined in the float domain)
_TRACE_LOOP_SRC = """
long main() {
    double x = 1.0;
    double y = 1.0;
    double z = 1.0;
    double h = 0.01;
    double dx = 0.0;
    double dy = 0.0;
    double dz = 0.0;
    for (long i = 0; i < 2000; i = i + 1) {
        dx = 10.0 * (y - x);
        dy = x * (28.0 - z) - y;
        dz = x * y - 2.6666666666666665 * z;
        x = x + h * dx;
        y = y + h * dy;
        z = z + h * dz;
    }
    printf("%.17g %.17g %.17g\\n", x, y, z);
    return 0;
}
"""


def test_trace_predecode_lorenz(benchmark):
    """The lorenz inner loop on the plain predecode interpreter —
    the baseline of the trace-JIT speedup ratio."""
    state = {}

    def setup():
        state["m"] = load_binary(compile_source(_TRACE_LOOP_SRC))
        return (), {}

    benchmark.pedantic(lambda: state["m"].run(), setup=setup, rounds=5)
    benchmark.extra_info["instr_count"] = state["m"].instr_count
    assert state["m"].exit_code == 0


def test_trace_jit_lorenz(benchmark):
    """The same loop with the tracing JIT attached: the hot loop is
    trace-compiled to one Python function after 8 back edges."""
    from repro.fpvm.tracejit import TraceJIT

    state = {}

    def setup():
        m = load_binary(compile_source(_TRACE_LOOP_SRC))
        state["tj"] = TraceJIT(m, 8)
        state["tj"].attach()
        state["m"] = m
        return (), {}

    benchmark.pedantic(lambda: state["m"].run(), setup=setup, rounds=5)
    tj = state["tj"]
    benchmark.extra_info["trace_hits"] = tj.stats.trace_hits
    benchmark.extra_info["trace_deopts"] = tj.stats.trace_deopts
    benchmark.extra_info["trace_side_exits"] = tj.stats.trace_side_exits
    assert state["m"].exit_code == 0
    assert tj.stats.trace_loops_compiled >= 1
    assert any(info.mode == "opt" for info in tj.traces.values())
    assert tj.stats.trace_hits > 1900


def test_gc_scan_speed(benchmark):
    """Vectorized conservative scan over 1 MiB of writable memory."""
    from repro.fpvm.gc import ConservativeGC
    from repro.fpvm.shadow import ShadowStore

    src = "double big[131072]; long main() { big[7] = 0.5; return 0; }"
    m = load_binary(compile_source(src))
    m.run()
    store = ShadowStore()
    codec = NaNBoxCodec()
    h = store.alloc(1.0)
    m.memory.write(m.binary.symbols["big"] + 64, 8, codec.encode(h))
    gc = ConservativeGC(store, codec)

    def scan():
        store.clear_marks()
        stats = gc.collect(m)
        # re-alloc for next round (collect frees nothing: box is live)
        return stats.words_scanned

    words = benchmark(scan)
    benchmark.extra_info["words_scanned"] = words
    assert words > 100_000


def test_gc_incremental_scan(benchmark):
    """Steady-state incremental GC epoch over the same 1 MiB image:
    only the one mutated page (plus registers) is rescanned."""
    from repro.fpvm.gc import ConservativeGC
    from repro.fpvm.shadow import ShadowStore

    src = "double big[131072]; long main() { big[7] = 0.5; return 0; }"
    m = load_binary(compile_source(src))
    m.run()
    store = ShadowStore()
    codec = NaNBoxCodec()
    h = store.alloc(1.0)
    base = m.binary.symbols["big"]
    m.memory.write(base + 64, 8, codec.encode(h))
    gc = ConservativeGC(store, codec, incremental=True)
    gc.collect(m)  # cold epoch: full scan, clears the dirty bits

    def scan():
        # the workload's write set per epoch: one hot page
        m.memory.write(base + 64, 8, codec.encode(h))
        store.clear_marks()
        return gc.collect(m).words_scanned

    words = benchmark(scan)
    benchmark.extra_info["words_scanned"] = words
    assert words < 131072  # must not rescan the whole image


def test_decode_cache_hit(benchmark):
    from repro.fpvm.decoder import DecodeCache
    from repro.isa.instructions import Instruction
    from repro.isa.operands import Xmm

    cache = DecodeCache()
    ins = Instruction("addsd", (Xmm(0), Xmm(1)), addr=0x400000)
    cache.lookup(ins)
    benchmark(cache.lookup, ins)
    assert cache.hit_rate > 0.99
