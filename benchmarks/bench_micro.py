"""Microbenchmarks of the substrate: simulator throughput, NaN-box
codec, decode cache, soft-FPU ops, and the GC scan."""

import pytest

from repro.compiler import compile_source
from repro.ieee.bits import f64_to_bits
from repro.ieee.softfloat import SoftFPU
from repro.fpvm.nanbox import NaNBoxCodec
from repro.machine.loader import load_binary

FPU = SoftFPU()
A = f64_to_bits(0.1)
B = f64_to_bits(0.7)


@pytest.mark.parametrize("op", ["add64", "mul64", "div64"])
def test_softfpu_op(benchmark, op):
    benchmark(getattr(FPU, op), A, B)


def test_nanbox_encode_decode(benchmark):
    codec = NaNBoxCodec()

    def roundtrip():
        bits = codec.encode(123456)
        return codec.decode(bits) if codec.is_box(bits) else None

    assert benchmark(roundtrip) == 123456


_THROUGHPUT_SRC = """
long main() {
    long s = 0;
    for (long i = 0; i < 2000; i = i + 1) { s = s + i * 3; }
    return s & 255;
}
"""


def test_simulator_throughput(benchmark):
    """Instructions/second of the predecoded interpreter (integer loop)."""
    def run():
        m = load_binary(compile_source(_THROUGHPUT_SRC))
        m.run()
        return m.instr_count

    count = benchmark(run)
    benchmark.extra_info["instr_count"] = count
    assert count > 10_000


def test_simulator_throughput_legacy(benchmark):
    """Same loop under the legacy per-step dispatch (the seed path) —
    the predecode speedup is the ratio of these two benches."""
    def run():
        m = load_binary(compile_source(_THROUGHPUT_SRC), predecode=False)
        m.run()
        return m.instr_count

    count = benchmark(run)
    benchmark.extra_info["instr_count"] = count
    assert count > 10_000


def test_trap_roundtrip(benchmark):
    """Full FPVM trap round-trips (fault → decode → bind → emulate)
    per second, on an FP accumulation loop under Vanilla."""
    from repro.arith import VanillaArithmetic
    from repro.fpvm.runtime import FPVM

    src = """
    long main() {
        double s = 0.1;
        for (long i = 0; i < 500; i = i + 1) { s = s * 1.0000001; }
        printf("%.17g\\n", s);
        return 0;
    }
    """

    def run():
        m = load_binary(compile_source(src))
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        m.run()
        return m.fp_trap_count

    traps = benchmark(run)
    benchmark.extra_info["fp_traps"] = traps
    assert traps >= 500


def test_gc_scan_speed(benchmark):
    """Vectorized conservative scan over 1 MiB of writable memory."""
    from repro.fpvm.gc import ConservativeGC
    from repro.fpvm.shadow import ShadowStore

    src = "double big[131072]; long main() { big[7] = 0.5; return 0; }"
    m = load_binary(compile_source(src))
    m.run()
    store = ShadowStore()
    codec = NaNBoxCodec()
    h = store.alloc(1.0)
    m.memory.write(m.binary.symbols["big"] + 64, 8, codec.encode(h))
    gc = ConservativeGC(store, codec)

    def scan():
        store.clear_marks()
        stats = gc.collect(m)
        # re-alloc for next round (collect frees nothing: box is live)
        return stats.words_scanned

    words = benchmark(scan)
    benchmark.extra_info["words_scanned"] = words
    assert words > 100_000


def test_decode_cache_hit(benchmark):
    from repro.fpvm.decoder import DecodeCache
    from repro.isa.instructions import Instruction
    from repro.isa.operands import Xmm

    cache = DecodeCache()
    ins = Instruction("addsd", (Xmm(0), Xmm(1)), addr=0x400000)
    cache.lookup(ins)
    benchmark(cache.lookup, ins)
    assert cache.hit_rate > 0.99
