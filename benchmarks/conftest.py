"""Benchmark-suite configuration.

Each ``bench_fig*.py`` regenerates one table/figure of the paper's
evaluation.  Figure-scale runs execute once (``pedantic`` with a
single round — they are deterministic simulations, not noisy
microbenchmarks) and print the rendered table; microbenchmarks use
pytest-benchmark's normal statistics.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run a deterministic figure generator exactly once under timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once
