"""Ablation benches for the design choices DESIGN.md calls out:

* **boxing policy** — the paper boxes every emulated result ("every
  instruction allocates a new cell"); the demote-exact ablation stores
  exactly-representable results unboxed, trading re-promotion work for
  shadow pressure.
* **GC epoch length** — the paper uses 1 s; shorter epochs bound
  memory, longer ones amortize scans.
* **correctness traps vs direct calls** — §5.3: "the correctness
  overhead could be eliminated… by having the static analysis patch in
  a direct call instruction to the FPVM entry point instead of a trap".
"""

import pytest

from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.harness.experiment import slowdown
from repro.workloads import WORKLOADS
from repro.session import Session
from repro.fpvm.runtime import FPVMConfig


def test_ablation_boxing_policy(benchmark, run_once):
    spec = WORKLOADS["three_body"]

    def run():
        nat = Session(lambda: spec.build("test"), None).run()
        out = {}
        for boxed in (True, False):
            r = Session(lambda: spec.build("test"), VanillaArithmetic(), config=FPVMConfig(box_exact_results=boxed)).run()
            out[boxed] = {
                "identical": r.stdout == nat.stdout,
                "boxes": r.fpvm.emulator.boxes_created,
                "slowdown": slowdown(nat, r),
            }
        return out

    out = run_once(benchmark, run)
    print("\n=== ablation: always-box (paper) vs demote-exact ===")
    for boxed, r in out.items():
        label = "always-box" if boxed else "demote-exact"
        print(f"  {label:14s} boxes={r['boxes']:7d} "
              f"slowdown={r['slowdown']:6.0f}x identical={r['identical']}")
    assert out[True]["identical"] and out[False]["identical"]
    assert out[False]["boxes"] < out[True]["boxes"]


def test_ablation_gc_epoch(benchmark, run_once):
    spec = WORKLOADS["nas_cg"]

    def run():
        out = {}
        for epoch in (100_000, 1_000_000, 10_000_000):
            r = Session(lambda: spec.build("test"), BigFloatArithmetic(200), config=FPVMConfig(gc_epoch_cycles=epoch)).run()
            summary = r.fpvm.gc.summary()
            out[epoch] = {
                "passes": summary["passes"],
                "peak_alive": summary["alive"],
                "gc_cycles": r.machine.cost.buckets.get("gc", 0),
            }
        return out

    out = run_once(benchmark, run)
    print("\n=== ablation: GC epoch length (nas_cg, MPFR-200) ===")
    for epoch, r in out.items():
        print(f"  epoch={epoch:>10,d}  passes={r['passes']:4d} "
              f"peak alive={r['peak_alive']:7d} "
              f"gc cycles={r['gc_cycles']:10.0f}")
    epochs = sorted(out)
    # shorter epochs -> more passes, smaller peak live set
    assert out[epochs[0]]["passes"] >= out[epochs[-1]]["passes"]
    assert out[epochs[0]]["peak_alive"] <= out[epochs[-1]]["peak_alive"] \
        or out[epochs[-1]]["passes"] == 0


def test_ablation_mpfr_precision_cost(benchmark, run_once):
    """End-to-end slowdown as MPFR precision scales: below ~1k bits the
    virtualization dominates (slowdowns flat); at high precision the
    arithmetic takes over (§5.3's crossover discussion)."""
    spec = WORKLOADS["three_body"]

    def run():
        nat = Session(lambda: spec.build("test"), None).run()
        return {prec: slowdown(nat, Session(lambda: spec.build("test"), BigFloatArithmetic(prec)).run())
            for prec in (64, 200, 1024, 8192)}

    out = run_once(benchmark, run)
    print("\n=== ablation: slowdown vs MPFR precision (three_body) ===")
    for prec, s in out.items():
        print(f"  {prec:6d} bits: {s:8.0f}x")
    # flat-ish at low precision, dominated by arithmetic at high
    assert out[200] < 1.5 * out[64]
    assert out[8192] > 3 * out[64]
