"""Fig. 9 — average cost of virtualizing a floating point instruction,
broken into constituent parts (hardware, kernel, decode, bind, emulate,
GC, correctness), per benchmark, with MPFR at 200 bits.

Paper: totals range 12,000-24,000 cycles on the R815; decode is
amortized to ~nothing by the decode cache; correctness overhead is
"virtually zero except for Enzo".
"""

from repro.harness.figures import FIG9_CODES, fig9_trap_cost, render_fig9


def test_fig9_breakdown(benchmark, run_once):
    rows = run_once(benchmark, fig9_trap_cost, FIG9_CODES, "bench")
    print("\n=== Fig. 9: per-virtualized-instruction cost (cycles, R815,"
          " MPFR-200) ===")
    print(render_fig9(rows))

    for name, row in rows.items():
        assert 10_000 <= row["total"] <= 30_000, name
        assert row["decode"] < 200, name  # decode cache amortization
        assert row["decode_cache_hit_rate"] > 0.95, name
        assert row["kernel overhead"] > row["hardware overhead"], name
    # correctness overhead: substantial only for enzo
    assert rows["enzo"]["correctness overhead"] > 300
    assert rows["lorenz"]["correctness overhead"] < 50
