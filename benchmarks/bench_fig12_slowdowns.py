"""Fig. 12 — wall-clock slowdown of every benchmark on the three
machines (R815, 7220, R730xd) under FPVM + MPFR-200.

Paper rows range 204x (NAS IS) to 12,169x (NAS CG Class S).  Our
modeled slowdowns reproduce the *structure* — everything is orders of
magnitude, IS/Lorenz smallest, the dense linear-algebra kernels and
the correctness-trap-laden Enzo at the top — with magnitudes
compressed relative to the paper (see EXPERIMENTS.md for why).
"""

from repro.harness.figures import FIG12_CODES, fig12_slowdowns, render_fig12


def test_fig12_table(benchmark, run_once):
    rows = run_once(benchmark, fig12_slowdowns, FIG12_CODES, "bench", 200,
                    ("R815", "7220", "R730xd"))
    print("\n=== Fig. 12: modeled slowdowns (FPVM+MPFR-200 vs native) ===")
    print(render_fig12(rows))

    for name, row in rows.items():
        for plat in ("R815", "7220", "R730xd"):
            assert row[plat] > 20, (name, plat)  # orders of magnitude

    r815 = {n: row["R815"] for n, row in rows.items()}
    smallest_two = sorted(r815, key=r815.get)[:2]
    assert set(smallest_two) == {"nas_is", "lorenz"}
    # the FP-dense kernels sit well above the IO/int-heavy codes
    assert r815["nas_cg"] > 1.5 * r815["nas_is"]
    assert r815["nas_mg"] > 1.5 * r815["nas_is"]
    assert r815["enzo"] == max(r815.values())  # correctness-trap heavy
