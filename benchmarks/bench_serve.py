#!/usr/bin/env python3
"""Serving-tier load benchmark: throughput, tail latency, and shed
rate of the ``repro serve`` daemon under worker-kill chaos.

Boots a daemon on an ephemeral port, drives it with the closed-loop
load generator (N client threads submitting lorenz jobs back to back)
while a seeded chaos monkey SIGKILLs busy workers, and reports:

* ``jobs_per_sec``   — completed jobs per second under chaos
* ``serve_p50_ms`` / ``serve_p99_ms`` — submit-to-answer latency
* ``serve_shed_rate`` — fraction of completed jobs demoted to
  vanilla-precision by the admission valve
* ``serve_lost_jobs`` — accepted jobs that never got an answer
  (the robustness acceptance number: must be 0)

Importable (``serve_metrics()``) by ``run_benchmarks.py`` and runnable
standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py [seconds]
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

JOB = {"workload": "lorenz", "size": "test", "arith": "mpfr:64",
       "no_cache": True}


def serve_metrics(duration_s: float = 6.0, *, workers: int = 2,
                  concurrency: int = 4, kills: int = 2) -> dict:
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.serve import (ServeChaosPlan, ServeConfig, generate_load,
                             start_in_thread)

    handle = start_in_thread(ServeConfig(
        workers=workers, queue_limit=16, shed_watermark=8,
        job_timeout_s=60.0, retries=3, backoff_s=0.02))
    try:
        client = handle.client()
        # one warm-up job fills the per-worker analysis caches
        status, doc = client.submit(JOB)
        assert status == 200 and doc["ok"], "serve warm-up job failed"

        monkey = ServeChaosPlan(
            kills=kills, interval_s=duration_s / (kills + 1),
            initial_delay_s=0.3, seed=11).monkey(handle.daemon.pool)
        monkey.start()
        report = generate_load(client, JOB, duration_s=duration_s,
                               concurrency=concurrency)
        monkey.stop()

        health = client.health()
        assert health["lost"] == 0, f"daemon lost jobs: {health}"
        return {
            "jobs_per_sec": report["jobs_per_sec"],
            "serve_p50_ms": report["p50_ms"],
            "serve_p99_ms": report["p99_ms"],
            "serve_shed_rate": report["shed_rate"],
            "serve_lost_jobs": report["lost"] + health["lost"],
            "serve_worker_deaths": health["pool"]["worker_deaths"],
        }
    finally:
        handle.stop()


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    duration = float(argv[0]) if argv else 6.0
    metrics = serve_metrics(duration)
    for k, v in metrics.items():
        print(f"  {k:24s} {v:,.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
