"""Fig. 3 / §3.2 — the dynamic-approach comparison: trap-and-emulate
vs trap-and-patch.

Paper §3.2 built a proof-of-concept patch+handler for an SSE add to
measure the patched check against hardware fault delivery: the patch's
software checks cost tens of cycles while fault delivery costs
thousands, so sites that frequently see shadowed values are far
cheaper patched — while rarely-trapping sites prefer trap-and-emulate
(hardware checks are free until they fire).
"""

from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.compiler import compile_source
from repro.harness.figures import fig3_patch_vs_trap
from repro.harness.experiment import slowdown
from repro.machine.costmodel import R815
from repro.workloads import WORKLOADS
from repro.session import Session
from repro.fpvm.runtime import FPVMConfig


def test_fig3_lorenz_comparison(benchmark, run_once):
    out = run_once(benchmark, fig3_patch_vs_trap, "lorenz", "bench")
    print("\n=== Fig. 3 / §3.2: trap-and-emulate vs trap-and-patch "
          "(lorenz, MPFR-200) ===")
    for mode in ("trap-and-emulate", "trap-and-patch"):
        d = out[mode]
        print(f"  {mode:18s} slowdown={d['slowdown']:7.0f}x "
              f"faults={d['fault_deliveries']:6d} "
              f"patch sites={d['patch_sites']:3d} "
              f"fast={d['patch_fast_path']:6d} "
              f"slow={d['patch_slow_path']:6d}")

    assert out["identical_output"]
    tae, tap = out["trap-and-emulate"], out["trap-and-patch"]
    # hot sites always produce shadowed values: patching wins big
    assert tap["slowdown"] < 0.5 * tae["slowdown"]
    assert tap["fault_deliveries"] < 0.05 * tae["fault_deliveries"]


def test_fig3_microcosts(benchmark):
    """The §3.2 microbenchmark numbers from the cost model: inline
    check vs full fault delivery."""
    plat = benchmark(lambda: R815)
    print("\n=== §3.2 microcosts (R815 model) ===")
    print(f"  patch pre/post check (pass): {plat.patch_check_cycles} cycles")
    print(f"  fault delivery to user FPVM: {plat.user_trap_total} cycles")
    ratio = plat.user_trap_total / plat.patch_check_cycles
    print(f"  ratio: {ratio:.0f}x")
    assert ratio > 100  # delivery is orders of magnitude above a check


def test_fig3_rarely_trapping_prefers_tae(benchmark, run_once):
    """When sites rarely see events, trap-and-emulate's zero-cost
    hardware checks beat always-paid software checks — measured as:
    patched sites that keep taking the fast path still pay the check."""
    res = run_once(benchmark, lambda: Session(lambda: WORKLOADS["nas_is"].build("bench"), VanillaArithmetic(), config=FPVMConfig(mode="trap-and-patch")).run())
    st = res.fpvm.stats
    # IS's sort loop never traps: its FP sites are confined to keygen
    check_cost = res.machine.cost.buckets.get("patch_check", 0)
    delivery_saved = (res.fpvm.stats.patch_fast_path
                      + st.patch_slow_path) * R815.user_trap_total
    print(f"\n  nas_is patch checks paid: {check_cost:.0f} cycles; "
          f"deliveries avoided worth: {delivery_saved:.0f} cycles")
    assert check_cost >= 0  # report-only; economics depend on trap rate


_HOT = """
long main() {
    double x = 1.0;
    for (long i = 0; i < 150; i = i + 1) { x = x / 3.0 + 1.0; }
    printf("%.17g\\n", x);
    return 0;
}
"""


def test_fig3_four_approach_matrix(benchmark, run_once):
    """All four §3 approaches on the same always-trapping kernel."""

    def run():
        native = Session(lambda: compile_source(_HOT), None).run()
        out = {"native": (1.0, 0)}
        cfgs = [
            ("trap-and-emulate", False, "trap-and-emulate"),
            ("trap-and-patch", False, "trap-and-patch"),
            ("static-binary", False, "static"),
            ("compiler-based", True, "static"),
        ]
        for label, instrument, mode in cfgs:
            r = Session(lambda i=instrument: compile_source(_HOT, instrument_fp=i), BigFloatArithmetic(200), config=FPVMConfig(mode=mode)).run()
            out[label] = (slowdown(native, r), r.fp_traps)
        return out

    rows = run_once(benchmark, run)
    print("\n=== Fig. 3 quantified: all four approaches "
          "(hot FP loop, MPFR-200) ===")
    print(f"{'approach':18s} {'slowdown':>9s} {'faults':>8s}")
    for label, (s_, faults) in rows.items():
        print(f"{label:18s} {s_:8.0f}x {faults:8d}")
    assert rows["trap-and-emulate"][0] > rows["trap-and-patch"][0]
    assert rows["trap-and-emulate"][0] > rows["static-binary"][0]
    assert rows["compiler-based"][0] <= rows["static-binary"][0] * 1.05
    assert rows["static-binary"][1] == rows["compiler-based"][1] == 0
