#!/usr/bin/env python3
"""Run the interpreter micro benchmark suite and distill the numbers
future PRs track into ``BENCH_interp.json``.

Runs ``benchmarks/bench_micro.py`` under pytest-benchmark with
``--benchmark-json``, then reduces the raw statistics to the perf
trajectory this repo cares about:

* ``predecode_instrs_per_sec`` / ``legacy_instrs_per_sec`` — simulated
  instruction throughput under the compiled fast path vs. the in-tree
  per-step dispatch (their ratio is ``predecode_speedup``)
* ``seed_instrs_per_sec`` — the same loop measured on the seed commit
  (checked out in a git worktree); carried over from the previous
  BENCH_interp.json unless re-measured with ``--seed-baseline N``.
  ``speedup_vs_seed`` is the ISSUE 1 ≥3× acceptance number.
* ``trap_roundtrip_ns`` — one full FPVM fault → decode → bind →
  emulate round-trip
* ``gc_scan_words_per_sec`` — conservative GC scan rate

Usage:  python benchmarks/run_benchmarks.py [--seed-baseline N]
        (from the repo root)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RAW = ROOT / ".benchmark_raw.json"
OUT = ROOT / "BENCH_interp.json"


def run_suite() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    cmd = [
        sys.executable, "-m", "pytest", "benchmarks/bench_micro.py",
        "--benchmark-only", f"--benchmark-json={RAW}",
        "-q", "-p", "no:cacheprovider",
    ]
    subprocess.run(cmd, cwd=ROOT, env=env, check=True)
    try:
        return json.loads(RAW.read_text())
    finally:
        RAW.unlink(missing_ok=True)


def distill(data: dict) -> dict:
    by_name: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        by_name[bench["name"].split("[")[0]] = bench

    def rate(name: str, key: str) -> float | None:
        bench = by_name.get(name)
        if bench is None:
            return None
        n = bench.get("extra_info", {}).get(key)
        mean = bench["stats"]["mean"]
        if not n or not mean:
            return None
        return n / mean

    out: dict[str, float | None] = {
        "predecode_instrs_per_sec": rate("test_simulator_throughput",
                                         "instr_count"),
        "legacy_instrs_per_sec": rate("test_simulator_throughput_legacy",
                                      "instr_count"),
        "gc_scan_words_per_sec": rate("test_gc_scan_speed", "words_scanned"),
    }
    traps_per_sec = rate("test_trap_roundtrip", "fp_traps")
    out["trap_roundtrip_ns"] = 1e9 / traps_per_sec if traps_per_sec else None
    pre, leg = out["predecode_instrs_per_sec"], out["legacy_instrs_per_sec"]
    out["predecode_speedup"] = pre / leg if pre and leg else None
    return out


def seed_baseline(argv: list[str]) -> float | None:
    """--seed-baseline N, else the value recorded in the previous run."""
    if "--seed-baseline" in argv:
        i = argv.index("--seed-baseline") + 1
        if i >= len(argv):
            raise SystemExit("--seed-baseline requires a number")
        return float(argv[i])
    try:
        prev = json.loads(OUT.read_text())
        return prev["metrics"].get("seed_instrs_per_sec")
    except (OSError, ValueError, KeyError):
        return None


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    seed = seed_baseline(argv)
    data = run_suite()
    metrics = distill(data)
    metrics["seed_instrs_per_sec"] = seed
    pre = metrics["predecode_instrs_per_sec"]
    metrics["speedup_vs_seed"] = pre / seed if pre and seed else None
    doc = {
        "suite": "benchmarks/bench_micro.py",
        "machine": data.get("machine_info", {}).get("python_version"),
        "datetime": data.get("datetime"),
        "metrics": metrics,
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {OUT}")
    for k, v in metrics.items():
        print(f"  {k:28s} {v if v is None else f'{v:,.1f}'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
