#!/usr/bin/env python3
"""Run the interpreter micro benchmark suite and distill the numbers
future PRs track into ``BENCH_interp.json``.

Runs ``benchmarks/bench_micro.py`` under pytest-benchmark with
``--benchmark-json``, then reduces the raw statistics to the perf
trajectory this repo cares about:

* ``predecode_instrs_per_sec`` / ``legacy_instrs_per_sec`` — simulated
  instruction throughput under the compiled fast path vs. the in-tree
  per-step dispatch (their ratio is ``predecode_speedup``)
* ``seed_instrs_per_sec`` — the same loop measured on the seed commit
  (checked out in a git worktree); carried over from the previous
  BENCH_interp.json unless re-measured with ``--seed-baseline N``.
  ``speedup_vs_seed`` is the ISSUE 1 ≥3× acceptance number.
* ``trap_roundtrip_ns`` — one full FPVM fault → decode → bind →
  emulate round-trip, measured by calling the hot site's dispatch
  closure directly in steady state (no loop scaffolding in the mean)
* ``jit_roundtrip_ns`` — the same event serviced by the site's
  compiled (patched) closure instead
* ``patched_site_hit_rate`` — fraction of emulated FP events the
  patched sites absorb on the whole-program FP loop
* ``fp_loop_jit_speedup`` — whole-program FP-loop speedup with the
  JIT on vs. pure trap-servicing (fused kernels + boxing elision)
* ``trace_jit_speedup`` — lorenz-inner-loop speedup of the tracing
  JIT (hot loop exec-compiled to one Python function) over the plain
  predecode interpreter
* ``trace_deopt_rate`` — deopts per trace iteration on that bench
  (0 on the healthy path; deopt paths are covered by the property
  suite's chaos plans)
* ``gc_scan_words_per_sec`` — conservative GC scan rate
* ``gc_incremental_words_per_epoch`` — words rescanned per epoch by
  the incremental collector at steady state (dirty pages only)
* ``patched_site_count`` / ``spurious_trap_rate`` — static-analysis
  precision over the oracle workload set: how many correctness traps
  the analysis installs and what fraction never consume a box during
  an instrumented run (lower is better; the liveness refinement
  exists to push this down)

* ``batch_speedup_n64`` — wall-clock ratio of 64 sequential scalar
  runs of a parameterized lorenz sweep (per-lane ``rho``) over one
  64-lane SoA batched run (``Session.run_batch``); the ISSUE 7 ≥5×
  acceptance number
* ``batch_divergence_spill_rate`` — fraction of those lanes that left
  the batch for the scalar interpreter (0 on the healthy sweep;
  divergence correctness is covered by ``test_prop_batch.py``)

* ``jobs_per_sec`` / ``serve_p50_ms`` / ``serve_p99_ms`` /
  ``serve_shed_rate`` / ``serve_lost_jobs`` — the serving tier under
  worker-kill chaos (``benchmarks/bench_serve.py``): throughput and
  tail latency of the ``repro serve`` daemon while a seeded monkey
  SIGKILLs busy workers; ``serve_lost_jobs`` must stay 0

* ``sanitize_prove_rate`` / ``sanitize_overhead_x`` /
  ``sanitize_exempt_overhead_x`` — the NSan-mode sanitizer: fraction
  of checkable FP sites the interval-range pass proves
  divergence-free, and the modeled-cycle cost of dual-path checking
  without and with aggressive static exemption

The output file is schema-versioned (``"schema": 6``): it keeps a
``records`` list, one appended entry per invocation, so the perf
trajectory across PRs stays in the file.  Schema 3 added the
``trace_jit_speedup`` / ``trace_deopt_rate`` metrics, schema 4 the
batched-execution metrics, schema 5 the serving-tier metrics,
schema 6 the sanitizer metrics; records from older schemas are
carried over unchanged.

Usage:  python benchmarks/run_benchmarks.py [--seed-baseline N]
                                            [--batch-lanes N]
        (from the repo root)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RAW = ROOT / ".benchmark_raw.json"
OUT = ROOT / "BENCH_interp.json"


def run_suite() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    cmd = [
        sys.executable, "-m", "pytest", "benchmarks/bench_micro.py",
        "--benchmark-only", f"--benchmark-json={RAW}",
        "--benchmark-disable-gc",
        "-q", "-p", "no:cacheprovider",
    ]
    subprocess.run(cmd, cwd=ROOT, env=env, check=True)
    try:
        return json.loads(RAW.read_text())
    finally:
        RAW.unlink(missing_ok=True)


def distill(data: dict) -> dict:
    by_name: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        by_name[bench["name"].split("[")[0]] = bench

    def rate(name: str, key: str) -> float | None:
        bench = by_name.get(name)
        if bench is None:
            return None
        n = bench.get("extra_info", {}).get(key)
        mean = bench["stats"]["mean"]
        if not n or not mean:
            return None
        return n / mean

    def extra(name: str, key: str):
        return by_name.get(name, {}).get("extra_info", {}).get(key)

    out: dict[str, float | None] = {
        "predecode_instrs_per_sec": rate("test_simulator_throughput",
                                         "instr_count"),
        "legacy_instrs_per_sec": rate("test_simulator_throughput_legacy",
                                      "instr_count"),
        "gc_scan_words_per_sec": rate("test_gc_scan_speed", "words_scanned"),
        "gc_incremental_words_per_epoch": extra("test_gc_incremental_scan",
                                                "words_scanned"),
        "patched_site_hit_rate": extra("test_fp_loop_jit",
                                       "patched_site_hit_rate"),
    }

    def mean(name: str) -> float | None:
        return by_name.get(name, {}).get("stats", {}).get("mean")

    # the roundtrip benches call one servicing closure per round;
    # events_per_call normalizes the fused kernel (2 events per call)
    def roundtrip_ns(name: str) -> float | None:
        t = mean(name)
        n = extra(name, "events_per_call") or 1
        return 1e9 * t / n if t else None

    out["trap_roundtrip_ns"] = roundtrip_ns("test_trap_roundtrip")
    out["jit_roundtrip_ns"] = roundtrip_ns("test_jit_roundtrip")
    lt, lj = mean("test_fp_loop_trap"), mean("test_fp_loop_jit")
    out["fp_loop_jit_speedup"] = lt / lj if lt and lj else None
    pre, leg = out["predecode_instrs_per_sec"], out["legacy_instrs_per_sec"]
    out["predecode_speedup"] = pre / leg if pre and leg else None
    tp, tj = (mean("test_trace_predecode_lorenz"),
              mean("test_trace_jit_lorenz"))
    out["trace_jit_speedup"] = tp / tj if tp and tj else None
    hits = extra("test_trace_jit_lorenz", "trace_hits")
    deopts = extra("test_trace_jit_lorenz", "trace_deopts")
    out["trace_deopt_rate"] = (deopts / hits if hits and deopts is not None
                               else (0.0 if hits else None))
    return out


#: workloads the precision metrics are measured on — small enough for
#: CI, and between them they cover the spurious-trap spectrum (fbench
#: ~0%, nas_lu mid, enzo the paper's pathological over-patching case)
ANALYSIS_WORKLOADS = ("fbench", "nas_lu", "enzo")


def analysis_metrics(names=ANALYSIS_WORKLOADS) -> dict:
    """Static-analysis precision via the dynamic soundness oracle."""
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.analysis.oracle import validate

    patched = spurious = 0
    for name in names:
        res = validate(name, "mpfr:64", size="test")
        patched += res.patched_site_count
        spurious += len(res.spurious_sites)
    return {
        "patched_site_count": patched,
        "spurious_trap_rate": spurious / patched if patched else None,
    }


def batch_metrics(lanes: int = 64) -> dict:
    """64-lane SoA batched lorenz sweep vs the same sweep run scalar.

    The recorded key is always ``batch_speedup_n64``; ``lanes`` only
    exists so ``repro bench --batch N`` can do quicker local runs.
    """
    import time

    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.compiler import compile_source
    from repro.ieee.bits import f64_to_bits
    from repro.session import LaneSpec, Session
    from repro.workloads import lorenz

    # Monte-Carlo shape: integrate the whole trajectory, print only the
    # final state (sample == steps) — per-lane printf externs would
    # otherwise dominate and hide the lockstep dispatch win
    binary = compile_source(lorenz.SOURCE_TEMPLATE.format(
        steps=1000, dt=0.005, sample=1000))
    specs = [LaneSpec(params={"rho": 20.0 + 0.125 * i}, label=f"l{i}")
             for i in range(lanes)]

    t0 = time.perf_counter()
    batch = Session(binary, None).run_batch(specs)
    t_batch = time.perf_counter() - t0
    assert batch.ok, "batched lorenz sweep failed"

    t0 = time.perf_counter()
    for i, spec in enumerate(specs):
        s = Session(binary, None)
        s.machine.memory.write(s.binary.symbols["rho"], 8,
                               f64_to_bits(spec.params["rho"]))
        ref = s.run()
        lane = batch[i]
        assert lane.stdout == ref.stdout and lane.cycles == ref.cycles, (
            f"lane {spec.label} not bit-identical to its scalar run")
    t_scalar = time.perf_counter() - t0

    if lanes != 64:
        print(f"  (batch sweep ran with {lanes} lanes, not 64)")
    return {
        "batch_speedup_n64": t_scalar / t_batch,
        "batch_divergence_spill_rate": batch.spill_rate,
    }


#: sanitize metrics are measured on the seeded-bug workloads plus one
#: clean benchmark so the prove rate reflects both easy (integer /
#: conversion) and hard (loop-carried transcendental) sites
SANITIZE_WORKLOADS = ("numbugs_cancel", "numbugs_sum", "numbugs_var",
                      "fbench")


def sanitize_metrics(names=SANITIZE_WORKLOADS) -> dict:
    """NSan-mode sanitizer cost and static-proof leverage (schema 6).

    * ``sanitize_prove_rate`` — pooled fraction of checkable FP sites
      the interval-range pass proves divergence-free across the
      workload set
    * ``sanitize_overhead_x`` — modeled-cycle ratio of a full
      dual-path sanitize run (exemption off) over the native run on
      ``numbugs_var``
    * ``sanitize_exempt_overhead_x`` — the same ratio with aggressive
      static exemption on; the gap to ``sanitize_overhead_x`` is what
      the ranges pass buys at runtime
    """
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.analysis.ranges import analyze_ranges
    from repro.fpvm.runtime import FPVMConfig
    from repro.fpvm.sanitize import SanitizeConfig
    from repro.session import Session

    proven = checkable = 0
    for name in names:
        sess = Session(name, None, size="test")
        rr = analyze_ranges(sess.binary)
        proven += len(rr.proven)
        checkable += len(rr.checkable)

    def cycles(arith, scfg=None) -> int:
        cfg = FPVMConfig(sanitize=scfg) if scfg else None
        return Session("numbugs_var", arith, size="bench",
                       config=cfg).run().cycles

    native = cycles(None)
    full = cycles(("sanitize", 200),
                  SanitizeConfig(exempt=False))
    exempt = cycles(("sanitize", 200),
                    SanitizeConfig(aggressive=True))
    return {
        "sanitize_prove_rate": proven / checkable if checkable else None,
        "sanitize_overhead_x": full / native if native else None,
        "sanitize_exempt_overhead_x": exempt / native if native else None,
    }


def read_records(path: Path = OUT) -> list[dict]:
    """Past records from ``BENCH_interp.json``, any schema version.

    Schema 1 was a single ``{"metrics": ...}`` document; schemas 2+
    keep a ``records`` list with one appended entry per invocation
    (schema 3 added the tracing-JIT metrics to new records).
    """
    try:
        prev = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    if prev.get("schema", 1) >= 2:
        return list(prev.get("records", []))
    if "metrics" in prev:  # schema 1: wrap the single document
        return [{"machine": prev.get("machine"),
                 "datetime": prev.get("datetime"),
                 "metrics": prev["metrics"]}]
    return []


def seed_baseline(argv: list[str]) -> float | None:
    """--seed-baseline N, else the value recorded in the previous run."""
    if "--seed-baseline" in argv:
        i = argv.index("--seed-baseline") + 1
        if i >= len(argv):
            raise SystemExit("--seed-baseline requires a number")
        return float(argv[i])
    records = read_records()
    if records:
        return records[-1]["metrics"].get("seed_instrs_per_sec")
    return None


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    lanes = 64
    if "--batch-lanes" in argv:
        i = argv.index("--batch-lanes") + 1
        if i >= len(argv):
            raise SystemExit("--batch-lanes requires a number")
        lanes = int(argv[i])
    seed = seed_baseline(argv)
    data = run_suite()
    metrics = distill(data)
    metrics["seed_instrs_per_sec"] = seed
    pre = metrics["predecode_instrs_per_sec"]
    metrics["speedup_vs_seed"] = pre / seed if pre and seed else None
    metrics.update(analysis_metrics())
    metrics.update(batch_metrics(lanes))
    metrics.update(sanitize_metrics())
    from bench_serve import serve_metrics

    metrics.update(serve_metrics())
    records = read_records()
    records.append({
        "machine": data.get("machine_info", {}).get("python_version"),
        "datetime": data.get("datetime"),
        "metrics": metrics,
    })
    doc = {
        "schema": 6,
        "suite": "benchmarks/bench_micro.py",
        "records": records,
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {OUT} ({len(records)} records)")
    for k, v in metrics.items():
        print(f"  {k:30s} {v if v is None else f'{v:,.3f}'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
