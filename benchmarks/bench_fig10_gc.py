"""Fig. 10 — garbage collector statistics and performance.

Paper: every emulated instruction allocates a shadow cell, so garbage
accumulates quickly; >95% of shadow values are collected on each pass;
GC cost is 2nd/3rd order behind kernel delivery and emulation.
"""

from repro.harness.figures import FIG9_CODES, fig10_gc, render_fig10


def test_fig10_gc_stats(benchmark, run_once):
    rows = run_once(benchmark, fig10_gc, FIG9_CODES, "bench")
    print("\n=== Fig. 10: garbage collector statistics (MPFR-200) ===")
    print(render_fig10(rows))

    for name, r in rows.items():
        assert r["passes"] >= 1, name
        assert r["boxes_created"] > 0, name
    # the paper's headline: the overwhelming majority of shadow values
    # are garbage by the time a pass runs
    fractions = [r["collect_fraction"] for r in rows.values()]
    assert max(fractions) > 0.9
    assert sum(fractions) / len(fractions) > 0.6
