"""§5.5 — software engineering complexity inventory.

Paper: "roughly 6300 lines of C and C++ for the trap-and-emulate
component, and 1484 lines of Python for the static analyzer.
Individually, each alternative math binding was roughly 350 lines of
code."  This bench prints our equivalents and checks the paper's
qualitative claim: arithmetic bindings are *small* relative to the
engine, so adding a new arithmetic system is cheap.
"""

from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _loc(*parts) -> int:
    total = 0
    root = SRC.joinpath(*parts)
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    for f in files:
        total += sum(1 for line in f.read_text().splitlines()
                     if line.strip() and not line.strip().startswith("#"))
    return total


def test_se_complexity_inventory(benchmark):
    def build():
        return {
            "trap-and-emulate engine (fpvm/ + machine/)":
                _loc("fpvm") + _loc("machine"),
            "static analyzer (analysis/)": _loc("analysis"),
            "vanilla binding": _loc("arith", "vanilla.py"),
            "bigfloat library + binding": _loc("arith", "bigfloat"),
            "posit library + binding": _loc("arith", "posit"),
            "simulated ISA + assembler": _loc("isa") + _loc("asm"),
            "fpc compiler": _loc("compiler"),
            "ieee softfloat layer": _loc("ieee"),
            "workload ports": _loc("workloads"),
            "harness": _loc("harness"),
        }

    rows = benchmark(build)
    print("\n=== §5.5 software engineering inventory (non-blank, "
          "non-comment LoC) ===")
    for name, loc in rows.items():
        print(f"  {name:45s} {loc:6d}")
    print(f"  {'total':45s} {_loc():6d}")

    # the paper's point: bindings are small next to the engine
    engine = rows["trap-and-emulate engine (fpvm/ + machine/)"]
    assert rows["vanilla binding"] < 0.2 * engine
    # the analyzer is the same order as the paper's 1484-line analyzer
    assert 500 <= rows["static analyzer (analysis/)"] <= 3000
