"""Fig. 11 — performance of MPFR(-substitute) operations as a function
of precision.

Paper: add ≈ 93 and divide ≈ 2175 cycles at 200 bits (footnote 9);
div/mul grow polynomially with precision while add grows ~linearly, so
the precision at which arithmetic dominates FPVM's ~12k-cycle
virtualization overhead is operation-dependent — division crosses over
orders of magnitude before addition (2^13 vs 2^18 bits in the paper).
"""

import pytest

from repro.arith.bigfloat import BigFloatArithmetic, BigFloatContext
from repro.harness.figures import fig11_mpfr_precision, render_fig11

CROSSOVER = 12_000  # cycles: the virtualization overhead to dominate


def test_fig11_sweep(benchmark, run_once):
    rows = run_once(benchmark, fig11_mpfr_precision)
    print("\n=== Fig. 11: bigfloat op cost vs precision "
          "(host-measured cycles @2.1GHz + model) ===")
    print(render_fig11(rows))

    precs = sorted(rows)
    # division grows much faster than addition
    lo, hi = precs[0], precs[-1]
    add_growth = rows[hi]["add"] / rows[lo]["add"]
    div_growth = rows[hi]["div"] / rows[lo]["div"]
    assert div_growth > 2 * add_growth

    # model crossovers: div dominates the virtualization cost at a far
    # lower precision than add (paper: 2^13 vs 2^18 bits)
    def crossover(op):
        for p in precs:
            if rows[p][f"model_{op}"] >= CROSSOVER:
                return p
        return float("inf")

    assert crossover("div") * 4 <= crossover("add")


@pytest.mark.parametrize("op", ["add", "mul", "div", "sqrt"])
def test_micro_op_at_200_bits(benchmark, op):
    """pytest-benchmark statistics for individual 200-bit operations."""
    ctx = BigFloatContext(200)
    a = ctx.div(ctx.from_int(1), ctx.from_int(3))
    b = ctx.div(ctx.from_int(271828), ctx.from_int(100000))
    fn = getattr(ctx, op)
    if op == "sqrt":
        benchmark(fn, b)
    else:
        benchmark(fn, a, b)


def test_model_matches_paper_footnote9(benchmark):
    a = benchmark(BigFloatArithmetic, 200)
    assert a.op_cycles("add") == pytest.approx(93, abs=5)
    assert a.op_cycles("div") == pytest.approx(2175, rel=0.02)
