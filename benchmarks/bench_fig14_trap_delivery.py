"""Fig. 14 + §6 — user- vs kernel-level exception delivery overhead,
and the end-to-end effect of the proposed kernel/hardware changes.

Paper (quoting [24]): kernel-level delivery is 7-30x cheaper than
user-level delivery across the three platforms; §6 projects FPVM as a
kernel module (kernel delivery), in an HRT (no privilege crossing),
and with a hypothetical user→user "pipeline interrupt" (~10 cycles).
"""

from repro.harness.figures import (
    fig14_scenario_slowdowns,
    fig14_trap_delivery,
    render_fig14,
)


def test_fig14_delivery_table(benchmark, run_once):
    rows = run_once(benchmark, fig14_trap_delivery)
    print("\n=== Fig. 14: trap delivery cost by platform/scenario "
          "(cycles) ===")
    print(render_fig14(rows))
    for name, r in rows.items():
        assert 7 <= r["user_over_kernel"] <= 30, name
        assert r["user"] > r["kernel"] > r["hrt"] > r["pipeline"]


def test_fig14_end_to_end_scenarios(benchmark, run_once):
    out = run_once(benchmark, fig14_scenario_slowdowns, "lorenz", "bench")
    print("\n=== §6: lorenz slowdown under deployment scenarios ===")
    for scenario, s in out.items():
        print(f"  {scenario:10s} {s:8.0f}x")
    assert out["user"] > out["kernel"] > out["hrt"] > out["pipeline"] > 1
    # a kernel-module FPVM removes most of the delivery cost
    assert out["kernel"] < 0.7 * out["user"]
