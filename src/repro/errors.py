"""Common exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AssemblyError(ReproError):
    """Malformed assembly input (bad operand combination, unknown label)."""


class MachineError(ReproError):
    """Fault during simulated execution (bad memory, unknown instruction)."""


class MemoryFault(MachineError):
    """Access outside any mapped segment, or write to read-only memory."""

    def __init__(self, addr: int, size: int, kind: str = "access") -> None:
        super().__init__(f"memory fault: {kind} of {size} bytes at {addr:#x}")
        self.addr = addr
        self.size = size
        self.kind = kind


class UnknownSegment(MachineError, KeyError):
    """Lookup of a memory segment name that was never mapped.

    Subclasses :class:`KeyError` so legacy ``except KeyError`` callers
    keep working while new code catches the package hierarchy.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"no segment named {name!r}")
        self.name = name

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0]


class UnhandledTrap(MachineError):
    """An unmasked FP exception fired with no handler installed."""


class WatchdogExpired(MachineError):
    """The instruction/cycle watchdog tripped before the program halted.

    Raised instead of hanging: a runaway trap storm or an emulation
    livelock exhausts its budget and surfaces as a typed, catchable
    error with the limit that fired attached.
    """

    def __init__(self, kind: str, limit: float, detail: str = "") -> None:
        msg = f"watchdog expired: {kind} limit {limit:g} exceeded"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.kind = kind        # "instructions" | "cycles"
        self.limit = limit


class LaneDivergence(ReproError):
    """Control-flow signal of the batched SoA interpreter (not a fault).

    Raised by a batch closure *before* it commits any architectural
    state: ``lanes`` (a bool array over the currently active lanes)
    names the lanes that cannot continue in lockstep — they diverged at
    a branch, touched unmapped memory, hit an unvectorized instruction,
    or need FPVM trap servicing — and must be spilled to the scalar
    interpreter.  The batch driver re-executes the same instruction
    with the surviving lanes, so a spill is never observable in any
    lane's architectural results.
    """

    def __init__(self, lanes, reason: str) -> None:
        super().__init__(reason)
        self.lanes = lanes
        self.reason = reason


class CompileError(ReproError):
    """Error in the mini-language frontend or code generator."""


class AnalysisError(ReproError):
    """Static analysis failure (irrecoverable CFG, bad patch site)."""


class ArithmeticPortError(ReproError):
    """An alternative arithmetic system violated its interface contract."""


class ArithSpecError(ReproError):
    """Unparseable or unknown arithmetic-system spec (see
    :func:`repro.arith.from_spec`)."""


class NanBoxError(ReproError, ValueError):
    """NaN-box encode/decode contract violation.

    Covers out-of-range handles at encode time and dangling
    shadow-table handles at checked-fetch time.  Subclasses
    :class:`ValueError` so legacy callers keep working while new code
    catches the package hierarchy.
    """
