"""Common exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AssemblyError(ReproError):
    """Malformed assembly input (bad operand combination, unknown label)."""


class MachineError(ReproError):
    """Fault during simulated execution (bad memory, unknown instruction)."""


class MemoryFault(MachineError):
    """Access outside any mapped segment, or write to read-only memory."""

    def __init__(self, addr: int, size: int, kind: str = "access") -> None:
        super().__init__(f"memory fault: {kind} of {size} bytes at {addr:#x}")
        self.addr = addr
        self.size = size
        self.kind = kind


class UnhandledTrap(MachineError):
    """An unmasked FP exception fired with no handler installed."""


class CompileError(ReproError):
    """Error in the mini-language frontend or code generator."""


class AnalysisError(ReproError):
    """Static analysis failure (irrecoverable CFG, bad patch site)."""


class ArithmeticPortError(ReproError):
    """An alternative arithmetic system violated its interface contract."""


class ArithSpecError(ReproError):
    """Unparseable or unknown arithmetic-system spec (see
    :func:`repro.arith.from_spec`)."""
