"""repro — a full reproduction of *FPVM: Towards a Floating Point
Virtual Machine* (Dinda et al., HPDC '22) in Python.

The package implements the paper's system **and** the substrate it runs
on: a simulated x64-subset machine with an SSE-style FPU whose MXCSR
exceptions deliver precise faults (:mod:`repro.machine`), an assembler
and a small C-like compiler that emit realistic binaries
(:mod:`repro.asm`, :mod:`repro.compiler`), the FPVM trap-and-emulate
runtime with NaN-boxing and garbage collection (:mod:`repro.fpvm`),
alternative arithmetic systems — Vanilla IEEE, an MPFR-style
arbitrary-precision bigfloat, and posits (:mod:`repro.arith`) — and
the VSA-based static binary analysis + patching that closes x64's
virtualization holes (:mod:`repro.analysis`).

Quickstart::

    from repro import compile_source
    from repro.session import Session

    binary = compile_source('''
        double main() {
            double x = 1.0;
            for (long i = 0; i < 10; i = i + 1) { x = x / 3.0 + 1.0; }
            printf("%.17g\\n", x);
            return x;
        }
    ''')
    result = Session(binary, "mpfr:200").run()
    print(result.stdout)

Batched execution (one dispatch per instruction for N lanes)::

    from repro.session import LaneSpec, Session

    batch = Session("lorenz", None).run_batch(
        [LaneSpec(params={"rho": 20.0 + i}) for i in range(64)])
"""

from repro.errors import (
    AnalysisError,
    AssemblyError,
    CompileError,
    MachineError,
    MemoryFault,
    ReproError,
    UnhandledTrap,
)

__version__ = "0.1.0"

__all__ = [
    "AnalysisError",
    "AssemblyError",
    "CompileError",
    "MachineError",
    "MemoryFault",
    "ReproError",
    "UnhandledTrap",
    "compile_source",
    "__version__",
]


def compile_source(source: str, **kwargs):
    """Compile mini-C source to a simulated Binary (lazy import)."""
    from repro.compiler.driver import compile_source as _cs

    return _cs(source, **kwargs)
