"""Architectural register state: GPRs, XMM lanes, RFLAGS, RIP.

Two layouts share the x64 sub-register rules:

* :class:`RegFile` — one scalar instance (the classic interpreter).
* :class:`BatchRegFile` — struct-of-arrays: every architectural
  register is an ``(n,)`` uint64 *column* over n lockstep lanes, so
  one vectorized instruction dispatch updates all lanes at once
  (see :mod:`repro.machine.batch`).
"""

from __future__ import annotations

import numpy as np

from repro.isa.registers import GPR64, XMM_COUNT, canonical, subreg_size

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


class RegFile:
    """General-purpose + XMM register file with x64 sub-register rules.

    * 32-bit writes zero-extend into the full 64-bit register;
    * 16/8-bit writes merge into the low bits;
    * XMM registers are two u64 lanes (``lo``/``hi``).
    """

    __slots__ = ("gpr", "xmm", "rip", "zf", "sf", "cf", "of", "pf")

    def __init__(self) -> None:
        self.gpr: dict[str, int] = {r: 0 for r in GPR64}
        self.xmm: list[list[int]] = [[0, 0] for _ in range(XMM_COUNT)]
        self.rip = 0
        self.zf = 0
        self.sf = 0
        self.cf = 0
        self.of = 0
        self.pf = 0

    # ------------------------------------------------------------------ #
    def get_gpr(self, name: str) -> int:
        """Read a register through any width alias (unsigned)."""
        size = subreg_size(name)
        v = self.gpr[canonical(name)]
        if size == 8:
            return v
        return v & ((1 << (8 * size)) - 1)

    def set_gpr(self, name: str, value: int) -> None:
        """Write through any width alias with x64 merge/zero-extend rules."""
        size = subreg_size(name)
        canon = canonical(name)
        if size == 8:
            self.gpr[canon] = value & _MASK64
        elif size == 4:
            self.gpr[canon] = value & 0xFFFF_FFFF
        else:
            mask = (1 << (8 * size)) - 1
            self.gpr[canon] = (self.gpr[canon] & ~mask) | (value & mask)

    # ------------------------------------------------------------------ #
    def xmm_lo(self, idx: int) -> int:
        return self.xmm[idx][0]

    def xmm_hi(self, idx: int) -> int:
        return self.xmm[idx][1]

    def set_xmm_lo(self, idx: int, v: int) -> None:
        self.xmm[idx][0] = v & _MASK64

    def set_xmm_hi(self, idx: int, v: int) -> None:
        self.xmm[idx][1] = v & _MASK64

    def set_xmm(self, idx: int, lo: int, hi: int) -> None:
        self.xmm[idx][0] = lo & _MASK64
        self.xmm[idx][1] = hi & _MASK64

    # ------------------------------------------------------------------ #
    def set_compare_flags(self, zf: int, pf: int, cf: int) -> None:
        """Set the UCOMISD/COMISD result triple (OF/SF cleared)."""
        self.zf, self.pf, self.cf = zf, pf, cf
        self.of = 0
        self.sf = 0

    def snapshot(self) -> dict:
        """Copy of all state (used by tests and the validation harness)."""
        return {
            "gpr": dict(self.gpr),
            "xmm": [lane[:] for lane in self.xmm],
            "rip": self.rip,
            "flags": (self.zf, self.sf, self.cf, self.of, self.pf),
        }


class BatchRegFile:
    """Struct-of-arrays register file for n lockstep lanes.

    Every GPR and XMM lane is an ``(n,)`` uint64 column; RIP is a
    single shared scalar (lockstep execution by construction — lanes
    whose control flow diverges are spilled before RIP would differ).
    Flag columns hold 0/1 values but may carry any integer/bool dtype
    the producing vector op emitted; consumers only test truthiness.
    """

    __slots__ = ("n", "gpr", "xmm", "rip", "zf", "sf", "cf", "of", "pf")

    def __init__(self, n: int) -> None:
        self.n = n
        self.gpr: dict[str, np.ndarray] = {
            r: np.zeros(n, np.uint64) for r in GPR64}
        self.xmm: list[list[np.ndarray]] = [
            [np.zeros(n, np.uint64), np.zeros(n, np.uint64)]
            for _ in range(XMM_COUNT)]
        self.rip = 0
        self.zf = np.zeros(n, bool)
        self.sf = np.zeros(n, bool)
        self.cf = np.zeros(n, bool)
        self.of = np.zeros(n, bool)
        self.pf = np.zeros(n, bool)

    # ------------------------------------------------------------------ #
    def compact(self, keep: np.ndarray) -> None:
        """Drop lanes not in ``keep`` (an index array over active lanes)."""
        g = self.gpr
        for name in g:
            g[name] = g[name][keep]
        for lanes in self.xmm:
            lanes[0] = lanes[0][keep]
            lanes[1] = lanes[1][keep]
        self.zf = self.zf[keep]
        self.sf = self.sf[keep]
        self.cf = self.cf[keep]
        self.of = self.of[keep]
        self.pf = self.pf[keep]
        self.n = len(keep)

    # ------------------------------------------------------------------ #
    def lane_snapshot(self, i: int) -> dict:
        """Scalar-compatible snapshot of lane ``i`` (RegFile.snapshot shape)."""
        return {
            "gpr": {name: int(col[i]) for name, col in self.gpr.items()},
            "xmm": [[int(lanes[0][i]), int(lanes[1][i])]
                    for lanes in self.xmm],
            "rip": self.rip,
            "flags": (int(bool(self.zf[i])), int(bool(self.sf[i])),
                      int(bool(self.cf[i])), int(bool(self.of[i])),
                      int(bool(self.pf[i]))),
        }

    def write_lane_to(self, rf: RegFile, i: int) -> None:
        """Copy lane ``i`` into a scalar :class:`RegFile` (spill path)."""
        for name, col in self.gpr.items():
            rf.gpr[name] = int(col[i])
        for idx, lanes in enumerate(self.xmm):
            rf.xmm[idx][0] = int(lanes[0][i])
            rf.xmm[idx][1] = int(lanes[1][i])
        rf.rip = self.rip
        rf.zf = int(bool(self.zf[i]))
        rf.sf = int(bool(self.sf[i]))
        rf.cf = int(bool(self.cf[i]))
        rf.of = int(bool(self.of[i]))
        rf.pf = int(bool(self.pf[i]))
