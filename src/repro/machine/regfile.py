"""Architectural register state: GPRs, XMM lanes, RFLAGS, RIP."""

from __future__ import annotations

from repro.isa.registers import GPR64, XMM_COUNT, canonical, subreg_size

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


class RegFile:
    """General-purpose + XMM register file with x64 sub-register rules.

    * 32-bit writes zero-extend into the full 64-bit register;
    * 16/8-bit writes merge into the low bits;
    * XMM registers are two u64 lanes (``lo``/``hi``).
    """

    __slots__ = ("gpr", "xmm", "rip", "zf", "sf", "cf", "of", "pf")

    def __init__(self) -> None:
        self.gpr: dict[str, int] = {r: 0 for r in GPR64}
        self.xmm: list[list[int]] = [[0, 0] for _ in range(XMM_COUNT)]
        self.rip = 0
        self.zf = 0
        self.sf = 0
        self.cf = 0
        self.of = 0
        self.pf = 0

    # ------------------------------------------------------------------ #
    def get_gpr(self, name: str) -> int:
        """Read a register through any width alias (unsigned)."""
        size = subreg_size(name)
        v = self.gpr[canonical(name)]
        if size == 8:
            return v
        return v & ((1 << (8 * size)) - 1)

    def set_gpr(self, name: str, value: int) -> None:
        """Write through any width alias with x64 merge/zero-extend rules."""
        size = subreg_size(name)
        canon = canonical(name)
        if size == 8:
            self.gpr[canon] = value & _MASK64
        elif size == 4:
            self.gpr[canon] = value & 0xFFFF_FFFF
        else:
            mask = (1 << (8 * size)) - 1
            self.gpr[canon] = (self.gpr[canon] & ~mask) | (value & mask)

    # ------------------------------------------------------------------ #
    def xmm_lo(self, idx: int) -> int:
        return self.xmm[idx][0]

    def xmm_hi(self, idx: int) -> int:
        return self.xmm[idx][1]

    def set_xmm_lo(self, idx: int, v: int) -> None:
        self.xmm[idx][0] = v & _MASK64

    def set_xmm_hi(self, idx: int, v: int) -> None:
        self.xmm[idx][1] = v & _MASK64

    def set_xmm(self, idx: int, lo: int, hi: int) -> None:
        self.xmm[idx][0] = lo & _MASK64
        self.xmm[idx][1] = hi & _MASK64

    # ------------------------------------------------------------------ #
    def set_compare_flags(self, zf: int, pf: int, cf: int) -> None:
        """Set the UCOMISD/COMISD result triple (OF/SF cleared)."""
        self.zf, self.pf, self.cf = zf, pf, cf
        self.of = 0
        self.sf = 0

    def snapshot(self) -> dict:
        """Copy of all state (used by tests and the validation harness)."""
        return {
            "gpr": dict(self.gpr),
            "xmm": [lane[:] for lane in self.xmm],
            "rip": self.rip,
            "flags": (self.zf, self.sf, self.cf, self.of, self.pf),
        }
