"""Predecode: compile Instructions into specialized closures (threaded code).

The legacy interpreter re-derives everything per dynamic instruction:
``Machine.execute`` looks the handler up by mnemonic string, walks the
operand tuple with isinstance chains, and recomputes the memory-access
cost on every step.  This module amortizes all of that to load time —
the same lesson the paper draws for its decode cache (§4.1, "the
decode cache is critical to lowering latencies"), applied to the host
interpreter itself.

``compile_program`` maps every text-section instruction to a
zero-argument closure: operand accessors are resolved once (register
index vs. immediate vs. partially evaluated effective address), the
per-instruction cost (base + memory accesses) is folded into one
constant, and the semantic body is bound directly.  ``Machine.run``
then becomes a tight ``rip -> closure`` fetch loop with no string
dispatch or isinstance checks on the hot path.

Every closure must be observationally identical to the legacy
``Machine.execute`` path: same architectural effects, same
``instr_count``/``fp_instr_count`` increments, same cost-model charges
in the same order (floats accumulate identically), same trap-delivery
behavior.  ``tests/property/test_prop_predecode.py`` enforces this
differentially.

Binary patching (trap-and-patch §3.2, the static patcher §4.2) swaps
instructions at runtime; ``Binary.replace_instruction`` notifies the
machine, which recompiles the single affected address.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.isa.registers import canonical, subreg_size
from repro.trace.events import ExternCallEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.isa.instructions import Instruction
    from repro.machine.cpu import Machine

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF
_M32 = 0xFFFF_FFFF

Step = Callable[[], None]


# --------------------------------------------------------------------------- #
# operand accessor compilation                                                 #
# --------------------------------------------------------------------------- #

def _gpr_view(m: "Machine", name: str) -> Callable[[], int]:
    """Read closure with the register alias' own width semantics."""
    gpr = m.regs.gpr
    canon = canonical(name)
    size = subreg_size(name)
    if size == 8:
        return lambda: gpr[canon]
    mask = (1 << (8 * size)) - 1
    return lambda: gpr[canon] & mask


def _ea_closure(m: "Machine", mem: Mem) -> Callable[[], int]:
    """Partially evaluated effective-address computation."""
    disp = mem.disp
    if mem.base is None and mem.index is None:
        addr = disp & _MASK64
        return lambda: addr
    if mem.index is None:
        if subreg_size(mem.base) == 8:
            gpr = m.regs.gpr
            bc = canonical(mem.base)
            return lambda: (gpr[bc] + disp) & _MASK64
        base = _gpr_view(m, mem.base)
        return lambda: (base() + disp) & _MASK64
    scale = mem.scale
    if mem.base is None:
        index = _gpr_view(m, mem.index)
        return lambda: (index() * scale + disp) & _MASK64
    base = _gpr_view(m, mem.base)
    index = _gpr_view(m, mem.index)
    return lambda: (base() + index() * scale + disp) & _MASK64


def _int_reader(m: "Machine", op, size: int) -> Callable[[], int]:
    """Closure equivalent of ``Machine.read_int(op, size)``."""
    if isinstance(op, Reg):
        gpr = m.regs.gpr
        canon = canonical(op.name)
        eff = min(subreg_size(op.name), size)
        if eff == 8:
            return lambda: gpr[canon]
        mask = (1 << (8 * eff)) - 1
        return lambda: gpr[canon] & mask
    if isinstance(op, Imm):
        v = op.value & ((1 << (8 * size)) - 1)
        return lambda: v
    if isinstance(op, Mem):
        ea = _ea_closure(m, op)
        read = m.memory.read
        return lambda: read(ea(), size)
    raise TypeError(f"bad integer operand {op!r}")


def _int_writer(m: "Machine", op, size: int) -> Callable[[int], None]:
    """Closure equivalent of ``Machine.write_int(op, value, size)``."""
    if isinstance(op, Reg):
        gpr = m.regs.gpr
        canon = canonical(op.name)
        alias = subreg_size(op.name)
        eff = min(alias, size)
        emask = (1 << (8 * eff)) - 1
        if alias >= 4:
            # 8-byte stores mask to 64 bits; 4-byte stores zero-extend —
            # both collapse to a plain masked store of the low bits
            def wr(v, gpr=gpr, canon=canon, emask=emask):
                gpr[canon] = v & emask
            return wr
        amask = (1 << (8 * alias)) - 1

        def wr_merge(v, gpr=gpr, canon=canon, emask=emask, amask=amask):
            gpr[canon] = (gpr[canon] & ~amask) | (v & emask)
        return wr_merge
    if isinstance(op, Mem):
        ea = _ea_closure(m, op)
        write = m.memory.write

        def wr_mem(v, ea=ea, write=write, size=size):
            write(ea(), size, v)
        return wr_mem
    raise TypeError(f"bad integer destination {op!r}")


def _f64_reader(m: "Machine", op) -> Callable[[], int]:
    if isinstance(op, Xmm):
        lanes = m.regs.xmm[op.index]
        return lambda: lanes[0]
    if isinstance(op, Mem):
        ea = _ea_closure(m, op)
        read = m.memory.read
        return lambda: read(ea(), 8)
    raise TypeError(f"bad FP operand {op!r}")


def _f32_reader(m: "Machine", op) -> Callable[[], int]:
    if isinstance(op, Xmm):
        lanes = m.regs.xmm[op.index]
        return lambda: lanes[0] & _M32
    if isinstance(op, Mem):
        ea = _ea_closure(m, op)
        read = m.memory.read
        return lambda: read(ea(), 4)
    raise TypeError(f"bad FP operand {op!r}")


def _xmm128_reader(m: "Machine", op) -> Callable[[], tuple[int, int]]:
    if isinstance(op, Xmm):
        lanes = m.regs.xmm[op.index]
        return lambda: (lanes[0], lanes[1])
    if isinstance(op, Mem):
        ea = _ea_closure(m, op)
        read = m.memory.read

        def rd():
            a = ea()
            return read(a, 8), read(a + 8, 8)
        return rd
    raise TypeError(f"bad 128-bit operand {op!r}")


# --------------------------------------------------------------------------- #
# compilation entry points                                                     #
# --------------------------------------------------------------------------- #

def _base_cost(m: "Machine", ins: "Instruction") -> float:
    """Fold the per-step cost computation into one constant.

    Must accumulate in the same order as the legacy ``execute`` so the
    float result is bit-identical.
    """
    cost = m._cost_table[ins.mnemonic]
    mem_cycles = m.cost.platform.mem_access_cycles
    for op in ins.operands:
        if isinstance(op, Mem):
            cost = cost + mem_cycles
    return cost


def compile_program(m: "Machine") -> dict[int, Step]:
    """Compile every text-section instruction to its closure."""
    return {ins.addr: compile_instruction(m, ins) for ins in m.binary.text}


# mnemonics whose compiled closure is guaranteed to fall through to
# next_addr — never branches, halts, traps, or early-returns — so a
# straight-line run of them can be fused into one superblock closure.
# FP-arith/cmp/cvt are excluded (fault delivery may abort the step),
# as is anything handled by the generic maker.
_BLOCK_SAFE = frozenset(
    ["mov", "movabs", "movzx", "movsx", "lea", "xchg", "push", "pop",
     "add", "sub", "and", "or", "xor", "cmp", "test",
     "shl", "shr", "sar", "inc", "dec", "imul", "nop",
     "movsd", "movq", "movapd", "movupd",
     "xorpd", "andpd", "orpd", "andnpd"]
    + ["set" + cc for cc in ("e", "ne", "l", "le", "g", "ge", "b", "be",
                             "a", "ae", "p", "np")]
    + ["cmov" + cc for cc in ("e", "ne", "l", "g")]
)


def _block_at(m: "Machine", steps: dict[int, Step], addr: int) -> Step:
    """Fuse the straight-line run starting at ``addr`` into one closure.

    The chain covers every fall-through-only instruction from ``addr``
    up to and including the first "breaker" (branch, call/ret, FP op,
    generic fallback) — the breaker handles its own RIP/trap/halt, and
    control returns to the fetch loop right after it.
    """
    text_map = m.binary.text_map
    chain = []
    a = addr
    while True:
        ins = text_map.get(a)
        chain.append(steps[a])
        if ins.mnemonic not in _BLOCK_SAFE:
            break
        a = ins.next_addr
        if a not in steps:
            break
    if len(chain) == 1:
        return chain[0]
    # Hoist the accounting for the fall-through prefix into locals and
    # apply it up front: ``((cycles + C1) + C2) + ...`` is the same
    # left-associated float chain the per-step path computes (storing
    # the intermediate back to the attribute does not change rounding),
    # and no block-safe body observes the counters, so the batched
    # result is bit-identical at every point the fetch loop, a breaker,
    # or a trap handler can see.
    prefix = chain[:-1]
    bodies = tuple(s._body for s in prefix)
    costs = tuple(s._C for s in prefix)
    k = len(prefix)
    last = chain[-1]
    cost = m.cost
    buckets = cost.buckets

    def block():
        m.instr_count += k
        c = cost.cycles
        b = buckets["base"]
        for C in costs:
            c += C
            b += C
        cost.cycles = c
        buckets["base"] = b
        for body in bodies:
            body()
        last()
    return block


def compile_blocks(m: "Machine", steps: dict[int, Step]) -> dict[int, Step]:
    """Superblock table: every address gets its run-to-breaker closure."""
    return {addr: _block_at(m, steps, addr) for addr in steps}


def rebuild_blocks_around(m: "Machine", addr: int) -> None:
    """Recompile every superblock whose chain contains ``addr``.

    Called after ``Binary.replace_instruction``: blocks containing the
    patched address start at it or at any fall-through predecessor, so
    walk the contiguous block-safe run backwards and rebuild forward
    from each address in it.
    """
    text = m.binary.text
    text_map = m.binary.text_map
    i = text.index(text_map[addr])
    start = i
    while start > 0:
        prev = text[start - 1]
        if (prev.next_addr != text[start].addr
                or prev.mnemonic not in _BLOCK_SAFE):
            break
        start -= 1
    for j in range(start, i + 1):
        a = text[j].addr
        m._blocks[a] = _block_at(m, m._code, a)


def compile_instruction(m: "Machine", ins: "Instruction") -> Step:
    """Compile one instruction: semantic body + accounting wrapper.

    Makers return a zero-arg *body* — architectural semantics plus the
    RIP update, no accounting.  The wrapper added here charges the
    per-step cost exactly as the legacy ``execute`` does.  The body and
    its folded cost stay reachable (``step._body`` / ``step._C``) so
    ``_block_at`` can hoist the accounting for a whole fall-through run
    and call the bodies directly.
    """
    maker = _MAKERS.get(ins.mnemonic)
    body = _make_generic(m, ins) if maker is None else maker(m, ins)
    if m.oracle is not None:
        probe = m.oracle.compile_probe(m, ins)
        if probe is not None:
            inner = body

            def body():
                probe()
                inner()
    C = _base_cost(m, ins)
    cost = m.cost
    buckets = cost.buckets

    def step():
        m.instr_count += 1
        cost.cycles += C
        buckets["base"] += C
        body()
    step._body = body
    step._C = C
    return step


def _make_generic(m: "Machine", ins: "Instruction") -> Step:
    """Pre-bound fallback: legacy handler, but no dispatch/cost rework."""
    handler = m._dispatch[ins.mnemonic]
    regs = m.regs
    nxt = ins.next_addr

    def body():
        if not handler(ins):
            regs.rip = nxt
    return body


def _fallthrough(m: "Machine", ins: "Instruction",
                 sem: Callable[[], None]) -> Step:
    """Wrap a semantic body that always falls through to next_addr."""
    regs = m.regs
    nxt = ins.next_addr

    def body():
        sem()
        regs.rip = nxt
    return body


# --------------------------------------------------------------------------- #
# integer data movement                                                        #
# --------------------------------------------------------------------------- #

def _make_mov(m, ins):
    size = m._op_size(ins)
    dst, src = ins.operands
    w = _int_writer(m, dst, size)
    r = _int_reader(m, src, size)
    regs = m.regs
    nxt = ins.next_addr

    # the hottest shapes get fully inlined bodies: 64-bit register
    # destinations collapse to direct dict traffic, memory operands to
    # a pre-resolved effective-address + bound memory method
    if isinstance(dst, Reg) and subreg_size(dst.name) == 8 and size == 8:
        gpr = m.regs.gpr
        dc = canonical(dst.name)
        if isinstance(src, Imm):
            v = src.value & _MASK64

            def body():
                gpr[dc] = v
                regs.rip = nxt
            return body
        if isinstance(src, Reg) and subreg_size(src.name) == 8:
            sc = canonical(src.name)

            def body():
                gpr[dc] = gpr[sc]
                regs.rip = nxt
            return body
        if isinstance(src, Mem):
            read = m.memory.read
            if src.index is None and src.base is not None \
                    and subreg_size(src.base) == 8:
                # [base+disp]: fold the EA computation into the step
                bc = canonical(src.base)
                disp = src.disp

                def body():
                    gpr[dc] = read((gpr[bc] + disp) & _MASK64, 8)
                    regs.rip = nxt
                return body
            ea = _ea_closure(m, src)

            def body():
                gpr[dc] = read(ea(), 8)
                regs.rip = nxt
            return body
    if isinstance(dst, Mem) and size == 8:
        write = m.memory.write
        simple = (dst.index is None and dst.base is not None
                  and subreg_size(dst.base) == 8)
        if simple:
            bc = canonical(dst.base)
            disp = dst.disp
        ea = None if simple else _ea_closure(m, dst)
        if isinstance(src, Imm):
            v = src.value & _MASK64
            if simple:
                gpr = m.regs.gpr

                def body():
                    write((gpr[bc] + disp) & _MASK64, 8, v)
                    regs.rip = nxt
                return body

            def body():
                write(ea(), 8, v)
                regs.rip = nxt
            return body
        if isinstance(src, Reg) and subreg_size(src.name) == 8:
            gpr = m.regs.gpr
            sc = canonical(src.name)
            if simple:
                def body():
                    write((gpr[bc] + disp) & _MASK64, 8, gpr[sc])
                    regs.rip = nxt
                return body

            def body():
                write(ea(), 8, gpr[sc])
                regs.rip = nxt
            return body

    def body():
        w(r())
        regs.rip = nxt
    return body


def _make_movzx(m, ins):
    dst, src = ins.operands
    ssize = src.size if isinstance(src, (Reg, Mem)) else 4
    r = _int_reader(m, src, ssize)
    w = _int_writer(m, dst, dst.size)
    regs = m.regs
    nxt = ins.next_addr

    def body():
        w(r())
        regs.rip = nxt
    return body


def _make_movsx(m, ins):
    dst, src = ins.operands
    ssize = src.size if isinstance(src, (Reg, Mem)) else 4
    r = _int_reader(m, src, ssize)
    w = _int_writer(m, dst, dst.size)
    bits = 8 * ssize
    top = 1 << (bits - 1)
    wrap = 1 << bits

    def body():
        v = r()
        if v & top:
            v -= wrap
        w(v & _MASK64)
    return _fallthrough(m, ins, body)


def _make_lea(m, ins):
    dst, src = ins.operands
    ea = _ea_closure(m, src)
    w = _int_writer(m, dst, dst.size)
    return _fallthrough(m, ins, lambda: w(ea()))


def _make_xchg(m, ins):
    a, b = ins.operands
    size = m._op_size(ins)
    ra, wa = _int_reader(m, a, size), _int_writer(m, a, size)
    rb, wb = _int_reader(m, b, size), _int_writer(m, b, size)

    def body():
        va, vb = ra(), rb()
        wa(vb)
        wb(va)
    return _fallthrough(m, ins, body)


def _make_push(m, ins):
    r = _int_reader(m, ins.operands[0], 8)
    gpr = m.regs.gpr
    write = m.memory.write

    def body():
        v = r()  # before the rsp update, so `push rsp` pushes the old value
        rsp = (gpr["rsp"] - 8) & _MASK64
        gpr["rsp"] = rsp
        write(rsp, 8, v)
    return _fallthrough(m, ins, body)


def _make_pop(m, ins):
    w = _int_writer(m, ins.operands[0], 8)
    gpr = m.regs.gpr
    read = m.memory.read

    def body():
        rsp = gpr["rsp"]
        v = read(rsp, 8)
        gpr["rsp"] = (rsp + 8) & _MASK64
        w(v)
    return _fallthrough(m, ins, body)


# --------------------------------------------------------------------------- #
# integer ALU                                                                  #
# --------------------------------------------------------------------------- #

def _alu_parts(m, ins):
    dst, src = ins.operands
    size = m._op_size(ins)
    bits = 8 * size
    mask = (1 << bits) - 1
    rd = _int_reader(m, dst, size)
    rs = _int_reader(m, src, size)
    wd = (_int_writer(m, dst, size)
          if ins.mnemonic not in ("cmp", "test") else None)
    return rd, rs, wd, bits, mask


def _make_addsub(m, ins):
    from repro.machine.cpu import _PARITY
    rd, rs, wd, bits, mask = _alu_parts(m, ins)
    regs = m.regs
    nxt = ins.next_addr
    shift = bits - 1
    if ins.mnemonic == "add":
        def body():
            a = rd()
            b = rs()
            r = (a + b) & mask
            regs.cf = 1 if r < a else 0
            sa, sr = a >> shift, r >> shift
            regs.of = 1 if (sa == b >> shift and sr != sa) else 0
            regs.zf = 1 if r == 0 else 0
            regs.sf = sr
            regs.pf = _PARITY[r & 0xFF]
            wd(r)
            regs.rip = nxt
    else:
        def body():
            a = rd()
            b = rs()
            r = (a - b) & mask
            regs.cf = 1 if a < b else 0
            sb, sr = b >> shift, r >> shift
            regs.of = 1 if (a >> shift != sb and sr == sb) else 0
            regs.zf = 1 if r == 0 else 0
            regs.sf = sr
            regs.pf = _PARITY[r & 0xFF]
            wd(r)
            regs.rip = nxt
    return body


def _make_cmp(m, ins):
    from repro.machine.cpu import _PARITY
    rd, rs, _, bits, mask = _alu_parts(m, ins)
    regs = m.regs
    nxt = ins.next_addr
    shift = bits - 1

    def body():
        a = rd()
        b = rs()
        r = (a - b) & mask
        regs.cf = 1 if a < b else 0
        sb, sr = b >> shift, r >> shift
        regs.of = 1 if (a >> shift != sb and sr == sb) else 0
        regs.zf = 1 if r == 0 else 0
        regs.sf = sr
        regs.pf = _PARITY[r & 0xFF]
        regs.rip = nxt
    return body


def _make_logic(m, ins):
    from repro.machine.cpu import _PARITY
    rd, rs, wd, bits, mask = _alu_parts(m, ins)
    regs = m.regs
    nxt = ins.next_addr
    shift = bits - 1
    mn = ins.mnemonic
    op = {"and": lambda a, b: a & b, "test": lambda a, b: a & b,
          "or": lambda a, b: a | b, "xor": lambda a, b: a ^ b}[mn]

    def body():
        r = op(rd(), rs())
        regs.cf = 0
        regs.of = 0
        regs.zf = 1 if r == 0 else 0
        regs.sf = r >> shift
        regs.pf = _PARITY[r & 0xFF]
        if wd is not None:
            wd(r)
        regs.rip = nxt
    return body


def _make_shift(m, ins):
    from repro.machine.cpu import _PARITY
    dst, src = ins.operands
    size = dst.size if isinstance(dst, Reg) else m._op_size(ins)
    bits = 8 * size
    full = (1 << bits) - 1
    cmask = 63 if bits == 64 else 31
    rd = _int_reader(m, dst, size)
    rc = _int_reader(m, src, 1)
    wd = _int_writer(m, dst, size)
    regs = m.regs
    shift = bits - 1
    mn = ins.mnemonic
    top = 1 << shift

    def body():
        count = rc() & cmask
        if count == 0:
            return
        a = rd()
        if mn == "shl":
            r = (a << count) & full
            regs.cf = (a >> (bits - count)) & 1 if count <= bits else 0
        elif mn == "shr":
            r = a >> count
            regs.cf = (a >> (count - 1)) & 1
        else:  # sar
            s = a - (1 << bits) if a & top else a
            r = (s >> count) & full
            regs.cf = (a >> (count - 1)) & 1
        regs.of = 0
        regs.zf = 1 if r == 0 else 0
        regs.sf = r >> shift
        regs.pf = _PARITY[r & 0xFF]
        wd(r)
    return _fallthrough(m, ins, body)


def _make_incdec(m, ins):
    from repro.machine.cpu import _PARITY
    size = m._op_size(ins)
    bits = 8 * size
    mask = (1 << bits) - 1
    rd = _int_reader(m, ins.operands[0], size)
    wd = _int_writer(m, ins.operands[0], size)
    regs = m.regs
    shift = bits - 1
    delta = 1 if ins.mnemonic == "inc" else -1

    def body():
        v = rd()
        r = (v + delta) & mask
        regs.zf = 1 if r == 0 else 0
        regs.sf = r >> shift
        regs.pf = _PARITY[r & 0xFF]
        sa, sr = v >> shift, r >> shift
        regs.of = 1 if sa != sr and (
            (delta > 0 and sa == 0) or (delta < 0 and sa == 1)) else 0
        wd(r)
    return _fallthrough(m, ins, body)


def _make_imul(m, ins):
    from repro.machine.cpu import _PARITY
    dst, src = ins.operands
    size = m._op_size(ins)
    bits = 8 * size
    mask = (1 << bits) - 1
    top = 1 << (bits - 1)
    wrap = 1 << bits
    rd = _int_reader(m, dst, size)
    rs = _int_reader(m, src, size)
    wd = _int_writer(m, dst, size)
    regs = m.regs
    nxt = ins.next_addr
    shift = bits - 1

    def body():
        a = rd()
        if a & top:
            a -= wrap
        b = rs()
        if b & top:
            b -= wrap
        full = a * b
        r = full & mask
        trunc = r - wrap if r & top else r
        regs.cf = regs.of = 0 if trunc == full else 1
        regs.zf = 1 if r == 0 else 0
        regs.sf = r >> shift
        regs.pf = _PARITY[r & 0xFF]
        wd(r)
        regs.rip = nxt
    return body


# --------------------------------------------------------------------------- #
# control flow                                                                 #
# --------------------------------------------------------------------------- #

def _branch_reader(m, op):
    """Closure for Machine._branch_target(op)."""
    if isinstance(op, Imm):
        t = op.value
        return lambda: t
    return _int_reader(m, op, 8)


def _make_jmp(m, ins):
    regs = m.regs
    op = ins.operands[0]
    if isinstance(op, Imm) and op.value <= ins.addr:
        # backward direct jump: a loop back edge — report it to the
        # tracing JIT's hot-loop counter (m._loop_hook, usually None)
        tgt = op.value

        def body():
            regs.rip = tgt
            hook = m._loop_hook
            if hook is not None:
                hook(tgt)
        return body
    rtgt = _branch_reader(m, op)

    def body():
        regs.rip = rtgt()
    return body


def _make_jcc(m, ins):
    from repro.machine.cpu import Machine
    regs = m.regs
    cond = Machine._COND[ins.mnemonic[1:]]
    nxt = ins.next_addr
    op = ins.operands[0]
    if isinstance(op, Imm):
        tgt = op.value
        if tgt <= ins.addr:
            # backward conditional branch: the canonical loop back edge
            def body():
                if cond(regs):
                    regs.rip = tgt
                    hook = m._loop_hook
                    if hook is not None:
                        hook(tgt)
                else:
                    regs.rip = nxt
            return body

        def body():
            regs.rip = tgt if cond(regs) else nxt
        return body
    rtgt = _branch_reader(m, op)

    def body():
        regs.rip = rtgt() if cond(regs) else nxt
    return body


def _make_setcc(m, ins):
    from repro.machine.cpu import Machine
    cond = Machine._COND[ins.mnemonic[3:]]
    w = _int_writer(m, ins.operands[0], 1)
    regs = m.regs
    nxt = ins.next_addr

    def body():
        w(1 if cond(regs) else 0)
        regs.rip = nxt
    return body


def _make_cmovcc(m, ins):
    from repro.machine.cpu import Machine
    cond = Machine._COND[ins.mnemonic[4:]]
    size = m._op_size(ins)
    r = _int_reader(m, ins.operands[1], size)
    w = _int_writer(m, ins.operands[0], size)
    regs = m.regs

    def body():
        if cond(regs):
            w(r())
    return _fallthrough(m, ins, body)


def _make_call(m, ins):
    regs = m.regs
    gpr = m.regs.gpr
    write = m.memory.write
    read = m.memory.read
    externs = m.externs
    names = m._extern_names
    tgt = _branch_reader(m, ins.operands[0])
    nxt = ins.next_addr
    site = ins.addr

    def body():
        target = tgt()
        rsp = (gpr["rsp"] - 8) & _MASK64
        gpr["rsp"] = rsp
        write(rsp, 8, nxt)
        ext = externs.get(target)
        if ext is not None:
            # m.trace is read at call time: Session may attach a sink
            # after the program was predecoded
            if m.trace is None:
                ext(m)
            else:
                before = m.cost.cycles
                ext(m)
                m.trace.emit(ExternCallEvent(
                    cycles=m.cost.cycles,
                    addr=site,
                    name=names.get(target, hex(target)),
                    cycles_spent=m.cost.cycles - before,
                ))
            rsp = gpr["rsp"]
            regs.rip = read(rsp, 8)
            gpr["rsp"] = (rsp + 8) & _MASK64
        else:
            regs.rip = target
    return body


def _make_ret(m, ins):
    from repro.machine.cpu import EXIT_ADDR
    regs = m.regs
    gpr = m.regs.gpr
    read = m.memory.read

    def body():
        rsp = gpr["rsp"]
        addr = read(rsp, 8)
        gpr["rsp"] = (rsp + 8) & _MASK64
        if addr == EXIT_ADDR:
            m.halted = True
            v = gpr["rax"] & _M32
            m.exit_code = v - (1 << 32) if v >> 31 else v
        else:
            regs.rip = addr
    return body


def _make_nop(m, ins):
    def body():
        pass
    return _fallthrough(m, ins, body)


# --------------------------------------------------------------------------- #
# SSE — trap-capable ops keep the exact _fp_event contract                     #
# --------------------------------------------------------------------------- #

def _make_f_scalar(m, ins):
    from repro.machine.cpu import Machine
    regs = m.regs
    nxt = ins.next_addr
    fn = getattr(m.fpu, Machine._SCALAR_OPS[ins.mnemonic])
    lanes = m.regs.xmm[ins.operands[0].index]
    rs = _f64_reader(m, ins.operands[1])
    fp_event = m._fp_event

    def body():
        r, fl = fn(lanes[0], rs())
        if fp_event(ins, fl):
            return
        lanes[0] = r & _MASK64
        regs.rip = nxt
    return body


def _make_f_scalar32(m, ins):
    from repro.machine.cpu import Machine
    regs = m.regs
    nxt = ins.next_addr
    fn = getattr(m.fpu, Machine._SCALAR32_OPS[ins.mnemonic])
    lanes = m.regs.xmm[ins.operands[0].index]
    rs = _f32_reader(m, ins.operands[1])
    fp_event = m._fp_event

    def body():
        r, fl = fn(lanes[0] & _M32, rs())
        if fp_event(ins, fl):
            return
        lanes[0] = ((lanes[0] & ~_M32) | r) & _MASK64
        regs.rip = nxt
    return body


def _make_f_packed(m, ins):
    from repro.machine.cpu import Machine
    regs = m.regs
    nxt = ins.next_addr
    fn = getattr(m.fpu, Machine._PACKED_OPS[ins.mnemonic])
    lanes = m.regs.xmm[ins.operands[0].index]
    rs = _xmm128_reader(m, ins.operands[1])
    fp_event = m._fp_event

    def body():
        blo, bhi = rs()
        rlo, flo = fn(lanes[0], blo)
        rhi, fhi = fn(lanes[1], bhi)
        if fp_event(ins, flo | fhi):
            return
        lanes[0] = rlo & _MASK64
        lanes[1] = rhi & _MASK64
        regs.rip = nxt
    return body


def _make_sqrtsd(m, ins):
    regs = m.regs
    nxt = ins.next_addr
    fn = m.fpu.sqrt64
    lanes = m.regs.xmm[ins.operands[0].index]
    rs = _f64_reader(m, ins.operands[1])
    fp_event = m._fp_event

    def body():
        r, fl = fn(rs())
        if fp_event(ins, fl):
            return
        lanes[0] = r & _MASK64
        regs.rip = nxt
    return body


def _make_ucomi(m, ins):
    regs = m.regs
    nxt = ins.next_addr
    fn = m.fpu.ucomi64 if ins.mnemonic == "ucomisd" else m.fpu.comi64
    lanes = m.regs.xmm[ins.operands[0].index]
    rs = _f64_reader(m, ins.operands[1])
    fp_event = m._fp_event

    def body():
        (zf, pf, cf), fl = fn(lanes[0], rs())
        if fp_event(ins, fl):
            return
        regs.zf, regs.pf, regs.cf = zf, pf, cf
        regs.of = 0
        regs.sf = 0
        regs.rip = nxt
    return body


# --------------------------------------------------------------------------- #
# SSE data movement (never faults)                                             #
# --------------------------------------------------------------------------- #

def _make_movsd(m, ins):
    dst, src = ins.operands
    xmm = m.regs.xmm
    if isinstance(dst, Xmm) and isinstance(src, Xmm):
        d, s = xmm[dst.index], xmm[src.index]

        def body():
            d[0] = s[0]
    elif isinstance(dst, Xmm):
        d = xmm[dst.index]
        ea = _ea_closure(m, src)
        read = m.memory.read

        def body():
            d[0] = read(ea(), 8)
            d[1] = 0
    else:
        s = xmm[src.index]
        ea = _ea_closure(m, dst)
        write = m.memory.write

        def body():
            write(ea(), 8, s[0])
    return _fallthrough(m, ins, body)


def _make_movq(m, ins):
    dst, src = ins.operands
    xmm = m.regs.xmm
    if isinstance(dst, Xmm):
        d = xmm[dst.index]
        if isinstance(src, Reg):
            rv = _gpr_view(m, src.name)

            def body():
                d[0] = rv()
                d[1] = 0
        elif isinstance(src, Xmm):
            s = xmm[src.index]

            def body():
                d[0] = s[0]
                d[1] = 0
        else:
            ea = _ea_closure(m, src)
            read = m.memory.read

            def body():
                d[0] = read(ea(), 8)
                d[1] = 0
    else:
        s = xmm[src.index]
        if isinstance(dst, Reg):
            w = _int_writer(m, dst, 8)

            def body():
                w(s[0])
        else:
            ea = _ea_closure(m, dst)
            write = m.memory.write

            def body():
                write(ea(), 8, s[0])
    return _fallthrough(m, ins, body)


def _make_movapd(m, ins):
    dst, src = ins.operands
    xmm = m.regs.xmm
    if isinstance(dst, Xmm):
        d = xmm[dst.index]
        rs = _xmm128_reader(m, src)

        def body():
            d[0], d[1] = rs()
    else:
        s = xmm[src.index]
        ea = _ea_closure(m, dst)
        write = m.memory.write

        def body():
            a = ea()
            write(a, 8, s[0])
            write(a + 8, 8, s[1])
    return _fallthrough(m, ins, body)


def _make_f_bitwise(m, ins):
    mn = ins.mnemonic
    lanes = m.regs.xmm[ins.operands[0].index]
    rs = _xmm128_reader(m, ins.operands[1])

    if mn == "xorpd":
        def body():
            blo, bhi = rs()
            lanes[0] ^= blo
            lanes[1] ^= bhi
    elif mn == "andpd":
        def body():
            blo, bhi = rs()
            lanes[0] &= blo
            lanes[1] &= bhi
    elif mn == "orpd":
        def body():
            blo, bhi = rs()
            lanes[0] |= blo
            lanes[1] |= bhi
    else:  # andnpd: (~dst) & src
        def body():
            blo, bhi = rs()
            lanes[0] = (~lanes[0]) & blo & _MASK64
            lanes[1] = (~lanes[1]) & bhi & _MASK64
    return _fallthrough(m, ins, body)


_MAKERS: dict[str, Callable[["Machine", "Instruction"], Step]] = {
    "mov": _make_mov, "movabs": _make_mov,
    "movzx": _make_movzx, "movsx": _make_movsx,
    "lea": _make_lea, "xchg": _make_xchg,
    "push": _make_push, "pop": _make_pop,
    "add": _make_addsub, "sub": _make_addsub, "cmp": _make_cmp,
    "and": _make_logic, "or": _make_logic, "xor": _make_logic,
    "test": _make_logic,
    "shl": _make_shift, "shr": _make_shift, "sar": _make_shift,
    "inc": _make_incdec, "dec": _make_incdec,
    "imul": _make_imul,
    "jmp": _make_jmp, "call": _make_call, "ret": _make_ret,
    "nop": _make_nop,
    "movsd": _make_movsd, "movq": _make_movq,
    "movapd": _make_movapd, "movupd": _make_movapd,
    "sqrtsd": _make_sqrtsd,
    "ucomisd": _make_ucomi, "comisd": _make_ucomi,
    "xorpd": _make_f_bitwise, "andpd": _make_f_bitwise,
    "orpd": _make_f_bitwise, "andnpd": _make_f_bitwise,
}
for _cc in ("e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae",
            "s", "ns", "p", "np"):
    _MAKERS["j" + _cc] = _make_jcc
for _cc in ("e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "p", "np"):
    _MAKERS["set" + _cc] = _make_setcc
for _cc in ("e", "ne", "l", "g"):
    _MAKERS["cmov" + _cc] = _make_cmovcc
for _mn in ("addsd", "subsd", "mulsd", "divsd", "minsd", "maxsd"):
    _MAKERS[_mn] = _make_f_scalar
for _mn in ("addpd", "subpd", "mulpd", "divpd", "minpd", "maxpd"):
    _MAKERS[_mn] = _make_f_packed
for _mn in ("addss", "subss", "mulss", "divss"):
    _MAKERS[_mn] = _make_f_scalar32
# everything else (idiv/cqo/cvt*/cmpsd/roundsd/fmaddsd/movss/movhpd/
# sqrtpd/hlt/int3/ud2/fpvm_trap/fpvm_patch/...) uses the pre-bound
# generic fallback via compile_instruction
