"""Built-in external functions: the simulated libc + libm.

Imports in a :class:`~repro.asm.program.Binary` resolve to synthetic
PLT addresses; the loader binds each to one of these native callables.
This layer is the simulated analogue of the dynamically linked libc and
libm — and therefore the exact surface FPVM interposes on with its
LD_PRELOAD shim (math wrapper + output wrapper, paper Figs. 4, 5, 8):
:mod:`repro.fpvm.runtime` *replaces* these bindings with wrappers that
promote/demote NaN-boxed values.

Calling convention (SysV AMD64 subset): integer args in rdi, rsi, rdx,
rcx, r8, r9; FP args in xmm0..xmm7; integer return in rax, FP return
in xmm0.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Callable

from repro.errors import MachineError
from repro.ieee.bits import F64_DEFAULT_QNAN, bits_to_f64, f64_to_bits

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import Machine

INT_ARGS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

_ALIGN = 16


# --------------------------------------------------------------------------- #
# heap allocator (malloc/free/calloc)                                          #
# --------------------------------------------------------------------------- #

def _heap_state(m: "Machine") -> dict:
    st = getattr(m, "_libc_heap", None)
    if st is None:
        st = {"sizes": {}, "free": {}}
        m._libc_heap = st  # type: ignore[attr-defined]
    return st


def _malloc(m: "Machine", size: int) -> int:
    st = _heap_state(m)
    size = max((size + _ALIGN - 1) & ~(_ALIGN - 1), _ALIGN)
    bucket = st["free"].get(size)
    if bucket:
        addr = bucket.pop()
    else:
        heap = m.memory.segment_named("heap")
        addr = m.heap_brk
        if addr + size > heap.end:
            raise MachineError(f"out of heap memory (brk={addr:#x})")
        m.heap_brk = addr + size
    st["sizes"][addr] = size
    return addr


def libc_malloc(m: "Machine") -> None:
    size = m.regs.get_gpr("rdi")
    m.cost.charge(120, "base")
    m.regs.set_gpr("rax", _malloc(m, size))


def libc_calloc(m: "Machine") -> None:
    n = m.regs.get_gpr("rdi")
    sz = m.regs.get_gpr("rsi")
    total = n * sz
    m.cost.charge(150 + total // 16, "base")
    addr = _malloc(m, total)
    m.memory.write_bytes(addr, b"\x00" * total)
    m.regs.set_gpr("rax", addr)


def libc_free(m: "Machine") -> None:
    addr = m.regs.get_gpr("rdi")
    m.cost.charge(90, "base")
    if addr == 0:
        return
    st = _heap_state(m)
    size = st["sizes"].pop(addr, None)
    if size is None:
        raise MachineError(f"free of non-allocated pointer {addr:#x}")
    st["free"].setdefault(size, []).append(addr)


# --------------------------------------------------------------------------- #
# memory / string                                                              #
# --------------------------------------------------------------------------- #

def libc_memcpy(m: "Machine") -> None:
    dst = m.regs.get_gpr("rdi")
    src = m.regs.get_gpr("rsi")
    n = m.regs.get_gpr("rdx")
    m.cost.charge(30 + n // 8, "base")
    m.memory.write_bytes(dst, m.memory.read_bytes(src, n))
    m.regs.set_gpr("rax", dst)


def libc_memset(m: "Machine") -> None:
    dst = m.regs.get_gpr("rdi")
    c = m.regs.get_gpr("rsi") & 0xFF
    n = m.regs.get_gpr("rdx")
    m.cost.charge(30 + n // 8, "base")
    m.memory.write_bytes(dst, bytes([c]) * n)
    m.regs.set_gpr("rax", dst)


def libc_strlen(m: "Machine") -> None:
    s = m.memory.read_cstr(m.regs.get_gpr("rdi"))
    m.cost.charge(10 + len(s), "base")
    m.regs.set_gpr("rax", len(s))


# --------------------------------------------------------------------------- #
# output (printf family) — the paper's "printing problem" surface              #
# --------------------------------------------------------------------------- #

_FMT_RE = re.compile(
    r"%(?P<flags>[-+ 0#]*)(?P<width>\d+)?(?:\.(?P<prec>\d+))?"
    r"(?P<len>hh|h|ll|l|L|z)?(?P<conv>[diouxXeEfFgGcsp%])"
)


def format_printf(fmt: str, int_args: list[int], fp_args: list[float]) -> str:
    """C-printf formatting against pre-fetched argument lists.

    ``int_args`` are consumed by integer/string/pointer conversions (a
    string conversion interprets the value as a guest address — the
    caller pre-resolves it to a host str and passes it in the list),
    ``fp_args`` by e/f/g conversions, matching how the SysV calling
    convention splits them across GPR and XMM registers.
    """
    out: list[str] = []
    pos = 0
    ii = fi = 0
    for mobj in _FMT_RE.finditer(fmt):
        out.append(fmt[pos : mobj.start()])
        pos = mobj.end()
        conv = mobj.group("conv")
        flags = mobj.group("flags") or ""
        width = mobj.group("width") or ""
        prec = mobj.group("prec")
        if conv == "%":
            out.append("%")
            continue
        pyflags = flags.replace("#", "")
        if conv in "diu":
            v = int_args[ii]
            ii += 1
            if conv in "di" and v >= 1 << 63:
                v -= 1 << 64
            spec = f"%{pyflags}{width}{'.' + prec if prec else ''}d"
            out.append(spec % v)
        elif conv in "xXo":
            v = int_args[ii]
            ii += 1
            spec = f"%{pyflags}{width}{conv if conv != 'o' else 'o'}"
            out.append(spec % v)
        elif conv == "p":
            v = int_args[ii]
            ii += 1
            out.append(f"{v:#x}")
        elif conv == "c":
            v = int_args[ii] & 0xFF
            ii += 1
            out.append(chr(v))
        elif conv == "s":
            s = int_args[ii]
            ii += 1
            out.append(s if isinstance(s, str) else str(s))
        else:  # e E f F g G
            v = fp_args[fi]
            fi += 1
            if isinstance(v, str):
                # pre-rendered (FPVM's full-precision shadow printing)
                out.append(v.rjust(int(width)) if width else v)
                continue
            p = prec if prec is not None else "6"
            spec = f"%{pyflags}{width}.{p}{conv}"
            out.append(spec % v)
    out.append(fmt[pos:])
    return "".join(out)


def _printf_impl(m: "Machine", fp_decode: Callable[[int], float]) -> None:
    """Shared printf body; ``fp_decode`` maps xmm bits -> float value.

    The plain libc binding decodes bits as IEEE doubles — handing it a
    NaN-boxed value prints a NaN, which is exactly the "printing
    problem" (paper §2).  FPVM installs a wrapper whose ``fp_decode``
    demotes boxes first.
    """
    fmt = m.memory.read_cstr(m.regs.get_gpr("rdi"))
    m.cost.charge(1500 + 4 * len(fmt), "base")
    int_args: list = []
    fp_args: list[float] = []
    ii = 1  # rdi holds fmt
    fi = 0
    for mobj in _FMT_RE.finditer(fmt):
        conv = mobj.group("conv")
        if conv == "%":
            continue
        if conv in "eEfFgG":
            fp_args.append(fp_decode(m.regs.xmm_lo(fi)))
            fi += 1
        elif conv == "s":
            int_args.append(m.memory.read_cstr(m.regs.get_gpr(INT_ARGS[ii])))
            ii += 1
        else:
            int_args.append(m.regs.get_gpr(INT_ARGS[ii]))
            ii += 1
    text = format_printf(fmt, int_args, fp_args)
    m.stdout.append(text)
    m.regs.set_gpr("rax", len(text))


def libc_printf(m: "Machine") -> None:
    _printf_impl(m, lambda bits: bits_to_f64(bits))


def libc_puts(m: "Machine") -> None:
    s = m.memory.read_cstr(m.regs.get_gpr("rdi"))
    m.cost.charge(500 + len(s), "base")
    m.stdout.append(s + "\n")
    m.regs.set_gpr("rax", len(s) + 1)


def libc_putchar(m: "Machine") -> None:
    c = m.regs.get_gpr("rdi") & 0xFF
    m.cost.charge(200, "base")
    m.stdout.append(chr(c))
    m.regs.set_gpr("rax", c)


def libc_getchar(m: "Machine") -> None:
    """Next byte of the machine's stdin stream, or EOF (-1)."""
    m.cost.charge(150, "base")
    data = getattr(m, "stdin", b"")
    pos = getattr(m, "_stdin_pos", 0)
    if pos < len(data):
        m._stdin_pos = pos + 1  # type: ignore[attr-defined]
        m.regs.set_gpr("rax", data[pos])
    else:
        m.regs.set_gpr("rax", 0xFFFF_FFFF_FFFF_FFFF)  # (long)-1


def libc_fwrite(m: "Machine") -> None:
    """fwrite(ptr, size, nmemb, stream): raw serialization to stdout.

    Writes the raw bytes — under FPVM, NaN-boxed values serialize as
    their box bit patterns, demonstrating the "serialization problem"
    (paper §2) unless the static patcher demoted at the call site.
    """
    ptr = m.regs.get_gpr("rdi")
    size = m.regs.get_gpr("rsi")
    nmemb = m.regs.get_gpr("rdx")
    n = size * nmemb
    m.cost.charge(800 + n // 4, "base")
    data = m.memory.read_bytes(ptr, n)
    m.stdout.append(data.decode("latin-1"))
    m.regs.set_gpr("rax", nmemb)


# --------------------------------------------------------------------------- #
# process / misc                                                               #
# --------------------------------------------------------------------------- #

def libc_exit(m: "Machine") -> None:
    m.exit_code = m.regs.get_gpr("rdi") & 0xFFFF_FFFF
    m.halted = True


def libc_abort(m: "Machine") -> None:
    raise MachineError("abort() called")


def libc_rand(m: "Machine") -> None:
    """Deterministic LCG (PCG-lite) so simulations are reproducible."""
    state = getattr(m, "_rand_state", 0x853C49E6748FEA9B)
    state = (state * 6364136223846793005 + 1442695040888963407) & (
        (1 << 64) - 1
    )
    m._rand_state = state  # type: ignore[attr-defined]
    m.cost.charge(25, "base")
    m.regs.set_gpr("rax", (state >> 33) & 0x7FFF_FFFF)


def libc_srand(m: "Machine") -> None:
    m._rand_state = m.regs.get_gpr("rdi") or 1  # type: ignore[attr-defined]
    m.regs.set_gpr("rax", 0)


def libc_clock(m: "Machine") -> None:
    """rdtsc analogue: returns the cost model's cycle counter."""
    m.regs.set_gpr("rax", int(m.cost.cycles))


# --------------------------------------------------------------------------- #
# libm                                                                         #
# --------------------------------------------------------------------------- #

def _safe(f: Callable[..., float], *args: float) -> float:
    try:
        return f(*args)
    except (ValueError, OverflowError, ZeroDivisionError):
        if isinstance(f, type(math.exp)) and f in (math.exp, math.cosh, math.sinh):
            return math.inf
        return math.nan


def _libm1(fn: Callable[[float], float], cycles: int):
    def impl(m: "Machine") -> None:
        x = bits_to_f64(m.regs.xmm_lo(0))
        m.cost.charge(cycles, "base")
        try:
            r = fn(x)
        except (ValueError, ZeroDivisionError):
            m.regs.set_xmm(0, F64_DEFAULT_QNAN, 0)
            return
        except OverflowError:
            r = math.inf if x > 0 else (math.inf if fn is math.cosh else -math.inf)
        m.regs.set_xmm(0, f64_to_bits(r), 0)

    return impl


def _libm2(fn: Callable[[float, float], float], cycles: int):
    def impl(m: "Machine") -> None:
        x = bits_to_f64(m.regs.xmm_lo(0))
        y = bits_to_f64(m.regs.xmm_lo(1))
        m.cost.charge(cycles, "base")
        try:
            r = fn(x, y)
        except (ValueError, ZeroDivisionError):
            m.regs.set_xmm(0, F64_DEFAULT_QNAN, 0)
            return
        except OverflowError:
            r = math.inf
        m.regs.set_xmm(0, f64_to_bits(r), 0)

    return impl


def _pow(x: float, y: float) -> float:
    if x == 0.0 and y == 0.0:
        return 1.0
    return math.pow(x, y)


#: name -> native implementation; the loader binds these to import addrs
BINDINGS: dict[str, Callable[["Machine"], None]] = {
    "malloc": libc_malloc,
    "calloc": libc_calloc,
    "free": libc_free,
    "memcpy": libc_memcpy,
    "memset": libc_memset,
    "strlen": libc_strlen,
    "printf": libc_printf,
    "puts": libc_puts,
    "putchar": libc_putchar,
    "getchar": libc_getchar,
    "fwrite": libc_fwrite,
    "exit": libc_exit,
    "abort": libc_abort,
    "rand": libc_rand,
    "srand": libc_srand,
    "clock": libc_clock,
    # libm — cycle costs are ballpark Agner-Fog-style latencies
    "sin": _libm1(math.sin, 60),
    "cos": _libm1(math.cos, 60),
    "tan": _libm1(math.tan, 90),
    "asin": _libm1(math.asin, 80),
    "acos": _libm1(math.acos, 80),
    "atan": _libm1(math.atan, 70),
    "sinh": _libm1(math.sinh, 90),
    "cosh": _libm1(math.cosh, 90),
    "tanh": _libm1(math.tanh, 90),
    "exp": _libm1(math.exp, 60),
    "log": _libm1(math.log, 60),
    "log2": _libm1(math.log2, 60),
    "log10": _libm1(math.log10, 60),
    "fabs": _libm1(math.fabs, 4),
    "floor": _libm1(math.floor, 8),
    "ceil": _libm1(math.ceil, 8),
    "sqrt": _libm1(math.sqrt, 30),
    "atan2": _libm2(math.atan2, 110),
    "pow": _libm2(_pow, 120),
    "fmod": _libm2(math.fmod, 40),
    "fmin": _libm2(min, 6),
    "fmax": _libm2(max, 6),
}

#: the subset of BINDINGS that are math functions FPVM must interpose.
#: sinh/cosh/tanh are deliberately left *uninterposed*: they exercise the
#: "externals" limitation (§2) — correctness relies on the static
#: patcher's call-site demotion rather than the math wrapper.
LIBM_FUNCTIONS = frozenset(
    n for n in BINDINGS
    if n in {
        "sin", "cos", "tan", "asin", "acos", "atan",
        "exp", "log", "log2", "log10", "fabs", "floor", "ceil", "sqrt",
        "atan2", "pow", "fmod", "fmin", "fmax",
    }
)

#: output functions FPVM must interpose (printing/serialization problems)
OUTPUT_FUNCTIONS = frozenset({"printf", "fwrite"})
