"""Trap kinds and trap frames.

Two trap sources reach FPVM (paper Fig. 8):

* ``FP_EXCEPTION`` — the hardware detected an unmasked MXCSR event on
  an FP instruction (the SIGFPE path).  Delivered *before* the
  instruction commits; the handler must emulate it and advance RIP.
* ``CORRECTNESS`` — an intentional trap installed by the static
  analyzer at a sink instruction or external call site; the handler
  demotes NaN-boxed values then re-executes the original instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.isa.instructions import Instruction


class TrapKind(Enum):
    FP_EXCEPTION = auto()
    CORRECTNESS = auto()
    BREAKPOINT = auto()


@dataclass(slots=True)
class TrapFrame:
    """What the kernel hands the signal handler (ucontext analogue)."""

    kind: TrapKind
    rip: int                 # address of the faulting instruction
    instruction: "Instruction"
    fp_flags: int = 0        # MXCSR event bits that fired (FP_EXCEPTION)
    detail: object = None    # patch metadata for CORRECTNESS traps
