"""The MXCSR control/status register model.

Bits 0-5 are the sticky exception *flags* (IE DE ZE OE UE PE); bits
7-12 are the corresponding *mask* bits.  A set mask bit suppresses the
fault for that exception (the hardware default); FPVM clears the masks
so every rounding/NaN event faults (paper §4.1 "Trapping").
"""

from __future__ import annotations

from repro.ieee.softfloat import Flags

_MASK_SHIFT = 7


class MXCSR:
    """Sticky FP condition flags plus per-exception mask bits."""

    __slots__ = ("flags", "masks")

    def __init__(self) -> None:
        self.flags = 0
        self.masks = Flags.ALL  # power-on default: everything masked

    # ------------------------------------------------------------------ #
    def record(self, flags: int) -> int:
        """Accumulate sticky flags; return the unmasked (faulting) subset."""
        self.flags |= flags
        return flags & ~self.masks

    def clear_flags(self) -> None:
        """FPVM clears the sticky flags before resuming (paper §4.1)."""
        self.flags = 0

    def unmask_all(self) -> None:
        self.masks = 0

    def mask_all(self) -> None:
        self.masks = Flags.ALL

    def set_masks(self, masks: int) -> None:
        self.masks = masks & Flags.ALL

    # ------------------------------------------------------------------ #
    @property
    def value(self) -> int:
        """The packed register value as x64 lays it out."""
        return self.flags | (self.masks << _MASK_SHIFT)

    @value.setter
    def value(self, v: int) -> None:
        self.flags = v & Flags.ALL
        self.masks = (v >> _MASK_SHIFT) & Flags.ALL

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MXCSR(flags={Flags.describe(self.flags)}, "
                f"masks={Flags.describe(self.masks)})")
