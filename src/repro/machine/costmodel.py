"""Cycle cost model and platform presets.

The paper's performance results (Figs. 9, 12, 14) are cycle-accounting
results: the cost of a virtualized FP instruction is the sum of
hardware fault delivery, kernel processing + signal dispatch to user
space, FPVM's decode/bind/emulate stages, GC amortization, and (where
static patches exist) correctness-trap overhead.  We model each
component explicitly so the benches can print the same breakdown.

Constants are calibrated to the paper's published components:

* Fig. 9: total virtualization cost 12k-24k cycles on the R815.
* Fig. 14 (quoting [24]): kernel-level trap delivery is 7-30x cheaper
  than user-level delivery.
* §6.2: a hypothetical user->user "pipeline interrupt" could reach
  ~10-100 cycles (measured TSX RTM abort ~100 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Platform:
    """Trap-delivery and FPVM-stage costs for one machine (cycles)."""

    name: str
    ghz: float
    #: microarchitectural exception cost (pipeline flush, IDT walk)
    hw_trap_cycles: int
    #: kernel exception processing up to the point a kernel handler runs
    kernel_trap_cycles: int
    #: extra cost to deliver SIGFPE to a user handler + sigreturn
    user_dispatch_cycles: int
    #: memory-operand penalty per access (pipelined L1 hit)
    mem_access_cycles: float = 0.5
    #: reciprocal throughput scaling for non-FP instructions: the real
    #: workloads are -O2 binaries on 3-4-wide superscalar cores, so the
    #: integer/control scaffolding around each FP op retires several
    #: per cycle.  Without this, our -O0-shaped codegen would dilute
    #: the FP-trap density and compress every Fig. 12 slowdown.
    int_issue_scale: float = 0.2
    #: decode-cache hit / miss costs (paper: hit rate ~100%, cost tiny)
    decode_hit_cycles: int = 40
    decode_miss_cycles: int = 4000
    #: operand binding (resolve pointers, normalize op)
    bind_cycles: int = 300
    #: bind-cache hit: refresh memory effective addresses only (same
    #: order as a decode-cache hit — both stages amortize to a lookup)
    bind_hit_cycles: int = 40
    #: emulator machinery per emulated instruction, excluding the
    #: arithmetic system itself (§5.3: stripping delivery+correctness
    #: leaves ~4,000 cycles dominated by emulation and GC)
    emulate_base_cycles: int = 2500
    #: software pre/post condition check of an inlined patch (§3.2)
    patch_check_cycles: int = 25
    #: the same check emitted by the compiler and folded into the
    #: surrounding code by the optimizer (§3.4: "run-time overhead …
    #: low (<binary approaches)")
    compiler_check_cycles: int = 12
    #: correctness-trap demotion handler body
    correctness_handler_cycles: int = 450
    #: correctness trap answered by the static analysis fast path: the
    #: liveness refinement proved the site box-free, so the handler is
    #: a site-set membership test and an immediate return
    analysis_fast_path_cycles: int = 30
    #: GC: per scanned word / per swept object
    gc_scan_word_cycles: int = 2
    gc_sweep_obj_cycles: int = 12
    #: guard executed on every run of a JIT-patched trap site — the
    #: e9patch-style rewritten call site's operand-shape check (§4.2)
    jit_check_cycles: int = 30
    #: compiled trap-site closure body: inlined decode+bind+box with no
    #: fault delivery, no handler dispatch, no cache probes
    jit_emulate_cycles: int = 350

    @property
    def user_trap_total(self) -> int:
        """Full cost of delivering one FP fault to the user-level FPVM."""
        return (self.hw_trap_cycles + self.kernel_trap_cycles
                + self.user_dispatch_cycles)

    @property
    def kernel_trap_total(self) -> int:
        """Delivery cost if FPVM ran as a kernel service (§6.1)."""
        return self.hw_trap_cycles + self.kernel_trap_cycles

    def scenario_delivery(self, scenario: str) -> int:
        """Trap delivery cost under a §6 deployment scenario."""
        if scenario == "user":
            return self.user_trap_total
        if scenario == "kernel":
            return self.kernel_trap_total
        if scenario == "hrt":
            # pure-kernel execution model: no privilege transition at all
            return self.hw_trap_cycles
        if scenario == "pipeline":
            # hypothetical user->user fast delivery (§6.2), ~10 cycles
            return 10
        raise ValueError(f"unknown delivery scenario {scenario!r}")


#: Dell R815: 4x 16-core AMD Opteron 6272, 2.1 GHz (paper's main testbed).
#: Kernel-level delivery is ~8x cheaper than the full user SIGFPE path
#: (Fig. 14 quotes 7-30x across platforms).
R815 = Platform(
    name="R815", ghz=2.1,
    hw_trap_cycles=600, kernel_trap_cycles=550, user_dispatch_cycles=8150,
)

#: Dell 7220 (7720): Intel Xeon E3-1505M v6, 3.0 GHz (~14x)
P7220 = Platform(
    name="7220", ghz=3.0,
    hw_trap_cycles=240, kernel_trap_cycles=200, user_dispatch_cycles=5760,
)

#: Dell R730xd: 2x Xeon E5-2695 v3, 2.3 GHz (~13x)
R730XD = Platform(
    name="R730xd", ghz=2.3,
    hw_trap_cycles=280, kernel_trap_cycles=250, user_dispatch_cycles=6470,
)

PLATFORMS: dict[str, Platform] = {p.name: p for p in (R815, P7220, R730XD)}


@dataclass
class CostModel:
    """Mutable cycle accumulator attached to a running machine."""

    platform: Platform = R815
    cycles: float = 0.0
    #: per-category accounting for the Fig. 9 breakdown
    buckets: dict[str, float] = field(default_factory=dict)

    def charge(self, cycles: float, bucket: str = "base") -> None:
        self.cycles += cycles
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + cycles

    def reset(self) -> None:
        self.cycles = 0.0
        self.buckets.clear()
