"""The CPU interpreter for the simulated x64 subset.

One :class:`Machine` owns all architectural state (registers, memory,
MXCSR), executes instructions with x64-faithful semantics, charges the
cost model, and delivers precise FP faults to a registered handler —
the role the hardware + Linux kernel + SIGFPE path plays for the real
FPVM.

FP fault precision: an FP instruction first computes its result and
MXCSR event flags via the soft FPU; if any unmasked event fired, the
fault is delivered *without committing the destination* and with RIP
still pointing at the faulting instruction — exactly the contract
trap-and-emulate needs (paper §4.1).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import MachineError, UnhandledTrap, WatchdogExpired
from repro.ieee.softfloat import Flags, SoftFPU
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.asm.program import Binary
from repro.machine.costmodel import CostModel, Platform, R815
from repro.machine.memory import Memory
from repro.machine.mxcsr import MXCSR
from repro.machine.regfile import RegFile
from repro.machine.traps import TrapFrame, TrapKind
from repro.trace.events import ExternCallEvent

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF

#: sentinel return address: `ret` to this halts the machine
EXIT_ADDR = 0x000F_FFF0

#: default process layout
HEAP_BASE = 0x0100_0000
STACK_TOP = 0x0800_0000

_PARITY = tuple(1 - (bin(i).count("1") & 1) for i in range(256))


def _signed(v: int, size: int) -> int:
    bits = 8 * size
    v &= (1 << bits) - 1
    return v - (1 << bits) if v >> (bits - 1) else v


class Machine:
    """A loaded simulated process plus the CPU that runs it."""

    def __init__(
        self,
        binary: Binary,
        *,
        platform: Platform = R815,
        heap_size: int = 8 << 20,
        stack_size: int = 1 << 20,
        predecode: bool = True,
    ) -> None:
        self.binary = binary
        self.regs = RegFile()
        self.mxcsr = MXCSR()
        self.fpu = SoftFPU()
        self.cost = CostModel(platform)
        # seed the per-step bucket so compiled closures can use a plain
        # "+=" instead of a dict.get with default on every instruction
        self.cost.buckets["base"] = 0.0
        self.memory = Memory()

        data_size = max(len(binary.data), 8)
        self.memory.map("data", binary.data_base, data_size,
                        data=bytes(binary.data))
        self.memory.map("heap", HEAP_BASE, heap_size)
        self.memory.map("stack", STACK_TOP - stack_size, stack_size)
        self.heap_brk = HEAP_BASE  # bump pointer, managed by libc malloc

        #: import address -> native callable(machine)
        self.externs: dict[int, Callable[["Machine"], None]] = {}
        #: import address -> name (for trace events)
        self._extern_names = {addr: name
                              for name, addr in binary.imports.items()}
        #: trace sink (None = tracing off; set by Session / FPVM.install)
        self.trace = None
        #: dynamic soundness oracle (repro.analysis.oracle); host-side
        #: instrument, attached via set_oracle()
        self.oracle = None
        #: FPVM's SIGFPE handler; set by fpvm.runtime when installed
        self.fp_trap_handler: Callable[["Machine", TrapFrame], None] | None = None
        #: FPVM's correctness-trap (patched sink) handler
        self.correctness_handler: Callable[["Machine", TrapFrame], None] | None = None
        #: FPVM's trap-and-patch site handler (§3.2)
        self.patch_handler: Callable[["Machine", Instruction], bool] | None = None
        #: trap-delivery deployment scenario (§6): user/kernel/hrt/pipeline
        self.delivery_scenario = "user"
        #: modeled-cycle watchdog: run() raises WatchdogExpired past this
        #: (None = off; set by Session.run / the chaos harness)
        self.cycle_watchdog: float | None = None
        #: tracing-JIT loop hook: called with the branch target after a
        #: backward direct branch is taken (None = no tracing JIT)
        self._loop_hook: Callable[[int], None] | None = None
        #: True only inside the uninstrumented block loop — the only
        #: loop whose dispatch the tracing JIT may bypass
        self._in_fast_loop = False

        # effective per-mnemonic cost: FP classes at architectural
        # latency, everything else scaled by superscalar issue width
        from repro.isa.opcodes import OPCODES, OpClass

        # only the trap-capable FP classes carry architectural latency;
        # FP moves/bitwise are pipelined exactly like integer traffic
        fp_classes = (OpClass.FP_ARITH, OpClass.FP_CMP, OpClass.FP_CVT)
        self._cost_table = {
            mn: (float(info.cycles) if info.opclass in fp_classes
                 else max(info.cycles * platform.int_issue_scale, 0.2))
            for mn, info in OPCODES.items()
        }
        self.halted = False
        self.exit_code = 0
        self.instr_count = 0
        self.fp_instr_count = 0      # dynamic MXCSR-consulting instructions
        self.fp_trap_count = 0       # delivered FP faults
        self.correctness_trap_count = 0
        self.stdout: list[str] = []
        #: byte stream consumed by the ``getchar`` extern (see libc)
        self.stdin: bytes = b""
        self._stdin_pos = 0

        # entry setup: push the exit sentinel, point rip at entry
        self.regs.set_gpr("rsp", STACK_TOP - 16)
        self.push(EXIT_ADDR)
        self.regs.rip = binary.entry

        self._dispatch = self._build_dispatch()

        # predecode: compile every text instruction into a specialized
        # closure so run() needs no string dispatch on the hot path.
        # Patching (trap-and-patch, static patcher) swaps instructions
        # after load, so recompile the affected address on notify.
        self._code: dict[int, Callable[[], None]] | None = None
        self._blocks: dict[int, Callable[[], None]] | None = None
        if predecode:
            from repro.machine.predecode import (
                compile_blocks, compile_instruction, compile_program,
                rebuild_blocks_around)
            self._code = compile_program(self)
            self._blocks = compile_blocks(self, self._code)

            def _on_patch(ins):
                self._code[ins.addr] = compile_instruction(self, ins)
                rebuild_blocks_around(self, ins.addr)
            binary.add_patch_listener(_on_patch)

    def set_oracle(self, oracle) -> None:
        """Attach (or detach, with None) a dynamic soundness oracle.

        Predecoded closures bake the hook decision in at compile time,
        so attaching after construction recompiles the program with
        oracle probes threaded into each relevant instruction.
        """
        self.oracle = oracle
        if self._code is not None:
            from repro.machine.predecode import (compile_blocks,
                                                 compile_program)
            self._code = compile_program(self)
            self._blocks = compile_blocks(self, self._code)

    # ------------------------------------------------------------------ #
    # stack & operand plumbing                                            #
    # ------------------------------------------------------------------ #

    def push(self, value: int) -> None:
        rsp = (self.regs.get_gpr("rsp") - 8) & _MASK64
        self.regs.set_gpr("rsp", rsp)
        self.memory.write(rsp, 8, value)

    def pop(self) -> int:
        rsp = self.regs.get_gpr("rsp")
        v = self.memory.read(rsp, 8)
        self.regs.set_gpr("rsp", (rsp + 8) & _MASK64)
        return v

    def ea(self, m: Mem) -> int:
        a = m.disp
        if m.base is not None:
            a += self.regs.get_gpr(m.base)
        if m.index is not None:
            a += self.regs.get_gpr(m.index) * m.scale
        return a & _MASK64

    def _op_size(self, ins: Instruction, default: int = 8) -> int:
        for op in ins.operands:
            if isinstance(op, Reg):
                return op.size
        for op in ins.operands:
            if isinstance(op, Mem):
                return op.size
        return default

    def read_int(self, op, size: int) -> int:
        if isinstance(op, Reg):
            return self.regs.get_gpr(op.name) & ((1 << (8 * size)) - 1)
        if isinstance(op, Imm):
            return op.value & ((1 << (8 * size)) - 1)
        if isinstance(op, Mem):
            return self.memory.read(self.ea(op), size)
        raise MachineError(f"bad integer operand {op!r}")

    def write_int(self, op, value: int, size: int) -> None:
        if isinstance(op, Reg):
            self.regs.set_gpr(op.name, value & ((1 << (8 * size)) - 1))
        elif isinstance(op, Mem):
            self.memory.write(self.ea(op), size, value)
        else:
            raise MachineError(f"bad integer destination {op!r}")

    def read_f64(self, op) -> int:
        """Read a 64-bit FP operand's *bit pattern* (xmm lo lane or m64)."""
        if isinstance(op, Xmm):
            return self.regs.xmm_lo(op.index)
        if isinstance(op, Mem):
            return self.memory.read(self.ea(op), 8)
        raise MachineError(f"bad FP operand {op!r}")

    def read_f32(self, op) -> int:
        if isinstance(op, Xmm):
            return self.regs.xmm_lo(op.index) & 0xFFFF_FFFF
        if isinstance(op, Mem):
            return self.memory.read(self.ea(op), 4)
        raise MachineError(f"bad FP operand {op!r}")

    def read_xmm128(self, op) -> tuple[int, int]:
        if isinstance(op, Xmm):
            return self.regs.xmm_lo(op.index), self.regs.xmm_hi(op.index)
        if isinstance(op, Mem):
            a = self.ea(op)
            return self.memory.read(a, 8), self.memory.read(a + 8, 8)
        raise MachineError(f"bad 128-bit operand {op!r}")

    # ------------------------------------------------------------------ #
    # run loop                                                            #
    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int | None = None) -> int:
        """Run until halt; returns the exit code.

        The instruction budget and the modeled-cycle watchdog
        (``cycle_watchdog``) both raise a typed
        :class:`~repro.errors.WatchdogExpired` instead of hanging —
        the safety valve a trap storm or emulation livelock needs.
        """
        budget = max_instructions if max_instructions is not None else -1
        cycle_cap = self.cycle_watchdog
        # fall back to the legacy fetch loop when predecode is off, or
        # when a test has hooked execute() on the instance — the
        # predecoded closures would bypass the hook
        if self._code is None or "execute" in self.__dict__:
            while not self.halted:
                ins = self.binary.text_map.get(self.regs.rip)
                if ins is None:
                    raise MachineError(
                        f"rip={self.regs.rip:#x}: no instruction")
                self.execute(ins)
                if budget > 0 and self.instr_count >= budget:
                    raise WatchdogExpired(
                        "instructions", budget,
                        f"instruction budget exhausted ({budget})"
                    )
                if cycle_cap is not None and self.cost.cycles > cycle_cap:
                    raise WatchdogExpired("cycles", cycle_cap)
            return self.exit_code
        code_get = self._code.get
        regs = self.regs
        if budget > 0 or cycle_cap is not None:
            # stepping loop: one watchdog check per instruction
            while not self.halted:
                step = code_get(regs.rip)
                if step is None:
                    raise MachineError(
                        f"rip={regs.rip:#x}: no instruction")
                step()
                if budget > 0 and self.instr_count >= budget:
                    raise WatchdogExpired(
                        "instructions", budget,
                        f"instruction budget exhausted ({budget})"
                    )
                if cycle_cap is not None and self.cost.cycles > cycle_cap:
                    raise WatchdogExpired("cycles", cycle_cap)
            return self.exit_code
        block_get = self._blocks.get
        self._in_fast_loop = True
        try:
            while not self.halted:
                block = block_get(regs.rip)
                if block is None:
                    raise MachineError(f"rip={regs.rip:#x}: no instruction")
                block()
        finally:
            self._in_fast_loop = False
        return self.exit_code

    def execute(self, ins: Instruction) -> None:
        """Execute one instruction, including fault delivery."""
        if self.oracle is not None:
            self.oracle.observe(self, ins)
        self.instr_count += 1
        cost = self._cost_table[ins.mnemonic]
        for op in ins.operands:
            if isinstance(op, Mem):
                cost += self.cost.platform.mem_access_cycles
        self.cost.charge(cost, "base")
        handler = self._dispatch[ins.mnemonic]
        if not handler(ins):
            self.regs.rip = ins.next_addr

    # ------------------------------------------------------------------ #
    # FP event plumbing                                                   #
    # ------------------------------------------------------------------ #

    def _fp_event(self, ins: Instruction, flags: int) -> bool:
        """Record sticky flags; deliver a fault if unmasked.

        Returns True if a fault was delivered (instruction must NOT
        commit; the handler owns RIP).
        """
        self.fp_instr_count += 1
        pending = self.mxcsr.record(flags)
        if not pending:
            return False
        self.fp_trap_count += 1
        self._charge_delivery()
        if self.fp_trap_handler is None:
            raise UnhandledTrap(
                f"unmasked FP exception {Flags.describe(pending)} at "
                f"{ins.addr:#x}: {ins}"
            )
        frame = TrapFrame(TrapKind.FP_EXCEPTION, ins.addr, ins, flags)
        self.fp_trap_handler(self, frame)
        return True

    def _charge_delivery(self, hw_bucket: str = "hw_delivery",
                         kernel_bucket: str = "kernel_delivery") -> None:
        plat = self.cost.platform
        total = plat.scenario_delivery(self.delivery_scenario)
        hw = min(total, plat.hw_trap_cycles)
        self.cost.charge(hw, hw_bucket)
        self.cost.charge(total - hw, kernel_bucket)

    # ------------------------------------------------------------------ #
    # dispatch table                                                      #
    # ------------------------------------------------------------------ #

    def _build_dispatch(self) -> dict[str, Callable[[Instruction], bool]]:
        d: dict[str, Callable[[Instruction], bool]] = {
            "mov": self._i_mov, "movabs": self._i_mov,
            "movzx": self._i_movzx, "movsx": self._i_movsx,
            "lea": self._i_lea, "xchg": self._i_xchg,
            "push": self._i_push, "pop": self._i_pop,
            "not": self._i_not, "neg": self._i_neg,
            "inc": self._i_incdec, "dec": self._i_incdec,
            "imul": self._i_imul, "idiv": self._i_idiv, "cqo": self._i_cqo,
            "jmp": self._i_jmp, "call": self._i_call, "ret": self._i_ret,
            "nop": self._i_nop, "hlt": self._i_hlt,
            "int3": self._i_int3, "ud2": self._i_ud2,
            "fpvm_trap": self._i_fpvm_trap,
            "fpvm_patch": self._i_fpvm_patch,
            "ucomisd": self._f_ucomi, "comisd": self._f_comi,
            "cmpsd": self._f_cmpsd, "roundsd": self._f_roundsd,
            "sqrtsd": self._f_sqrtsd, "sqrtpd": self._f_sqrtpd,
            "fmaddsd": self._f_fmaddsd,
            "cvtsi2sd": self._f_cvtsi2sd, "cvttsd2si": self._f_cvttsd2si,
            "cvtsd2si": self._f_cvtsd2si, "cvtsd2ss": self._f_cvtsd2ss,
            "cvtss2sd": self._f_cvtss2sd,
            "movsd": self._f_movsd, "movss": self._f_movss,
            "movq": self._f_movq, "movapd": self._f_movapd,
            "movupd": self._f_movapd, "movhpd": self._f_movhpd,
        }
        for m in ("add", "sub", "and", "or", "xor", "cmp", "test"):
            d[m] = self._i_alu
        for m in ("shl", "shr", "sar"):
            d[m] = self._i_shift
        for cc in ("e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae",
                   "s", "ns", "p", "np"):
            d["j" + cc] = self._i_jcc
        for cc in ("e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae",
                   "p", "np"):
            d["set" + cc] = self._i_setcc
        for cc in ("e", "ne", "l", "g"):
            d["cmov" + cc] = self._i_cmovcc
        for m in ("addsd", "subsd", "mulsd", "divsd", "minsd", "maxsd"):
            d[m] = self._f_scalar
        for m in ("addpd", "subpd", "mulpd", "divpd", "minpd", "maxpd"):
            d[m] = self._f_packed
        for m in ("addss", "subss", "mulss", "divss"):
            d[m] = self._f_scalar32
        for m in ("xorpd", "andpd", "orpd", "andnpd"):
            d[m] = self._f_bitwise
        return d

    # ------------------------------------------------------------------ #
    # integer instructions                                                #
    # ------------------------------------------------------------------ #

    def _set_zsp(self, r: int, size: int) -> None:
        self.regs.zf = 1 if r == 0 else 0
        self.regs.sf = (r >> (8 * size - 1)) & 1
        self.regs.pf = _PARITY[r & 0xFF]

    def _i_mov(self, ins: Instruction) -> bool:
        size = self._op_size(ins)
        self.write_int(ins.operands[0], self.read_int(ins.operands[1], size),
                       size)
        return False

    def _i_movzx(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        ssize = src.size if isinstance(src, (Reg, Mem)) else 4
        self.write_int(dst, self.read_int(src, ssize), dst.size)
        return False

    def _i_movsx(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        ssize = src.size if isinstance(src, (Reg, Mem)) else 4
        v = _signed(self.read_int(src, ssize), ssize)
        self.write_int(dst, v & _MASK64, dst.size)
        return False

    def _i_lea(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        self.write_int(dst, self.ea(src), dst.size)
        return False

    def _i_xchg(self, ins: Instruction) -> bool:
        a, b = ins.operands
        size = self._op_size(ins)
        va, vb = self.read_int(a, size), self.read_int(b, size)
        self.write_int(a, vb, size)
        self.write_int(b, va, size)
        return False

    def _i_push(self, ins: Instruction) -> bool:
        self.push(self.read_int(ins.operands[0], 8))
        return False

    def _i_pop(self, ins: Instruction) -> bool:
        self.write_int(ins.operands[0], self.pop(), 8)
        return False

    def _i_alu(self, ins: Instruction) -> bool:
        mn = ins.mnemonic
        dst, src = ins.operands
        size = self._op_size(ins)
        bits = 8 * size
        mask = (1 << bits) - 1
        a = self.read_int(dst, size)
        b = self.read_int(src, size)
        if mn in ("add",):
            r = (a + b) & mask
            self.regs.cf = 1 if r < a else 0
            sa, sb, sr = a >> (bits - 1), b >> (bits - 1), r >> (bits - 1)
            self.regs.of = 1 if (sa == sb and sr != sa) else 0
        elif mn in ("sub", "cmp"):
            r = (a - b) & mask
            self.regs.cf = 1 if a < b else 0
            sa, sb, sr = a >> (bits - 1), b >> (bits - 1), r >> (bits - 1)
            self.regs.of = 1 if (sa != sb and sr == sb) else 0
        elif mn == "and" or mn == "test":
            r = a & b
            self.regs.cf = self.regs.of = 0
        elif mn == "or":
            r = a | b
            self.regs.cf = self.regs.of = 0
        else:  # xor
            r = a ^ b
            self.regs.cf = self.regs.of = 0
        self._set_zsp(r, size)
        if mn not in ("cmp", "test"):
            self.write_int(dst, r, size)
        return False

    def _i_shift(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        size = dst.size if isinstance(dst, Reg) else self._op_size(ins)
        bits = 8 * size
        count = self.read_int(src, 1) & (63 if bits == 64 else 31)
        a = self.read_int(dst, size)
        if count == 0:
            return False
        if ins.mnemonic == "shl":
            r = (a << count) & ((1 << bits) - 1)
            self.regs.cf = (a >> (bits - count)) & 1 if count <= bits else 0
        elif ins.mnemonic == "shr":
            r = a >> count
            self.regs.cf = (a >> (count - 1)) & 1
        else:  # sar
            s = _signed(a, size)
            r = (s >> count) & ((1 << bits) - 1)
            self.regs.cf = (a >> (count - 1)) & 1
        self.regs.of = 0
        self._set_zsp(r, size)
        self.write_int(dst, r, size)
        return False

    def _i_not(self, ins: Instruction) -> bool:
        size = self._op_size(ins)
        v = self.read_int(ins.operands[0], size)
        self.write_int(ins.operands[0], ~v, size)
        return False

    def _i_neg(self, ins: Instruction) -> bool:
        size = self._op_size(ins)
        bits = 8 * size
        v = self.read_int(ins.operands[0], size)
        r = (-v) & ((1 << bits) - 1)
        self.regs.cf = 0 if v == 0 else 1
        self.regs.of = 1 if v == (1 << (bits - 1)) else 0
        self._set_zsp(r, size)
        self.write_int(ins.operands[0], r, size)
        return False

    def _i_incdec(self, ins: Instruction) -> bool:
        size = self._op_size(ins)
        bits = 8 * size
        v = self.read_int(ins.operands[0], size)
        delta = 1 if ins.mnemonic == "inc" else -1
        r = (v + delta) & ((1 << bits) - 1)
        self._set_zsp(r, size)  # CF preserved, per x64
        sa, sr = v >> (bits - 1), r >> (bits - 1)
        self.regs.of = 1 if sa != sr and (
            (delta > 0 and sa == 0) or (delta < 0 and sa == 1)) else 0
        self.write_int(ins.operands[0], r, size)
        return False

    def _i_imul(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        size = self._op_size(ins)
        bits = 8 * size
        a = _signed(self.read_int(dst, size), size)
        b = _signed(self.read_int(src, size), size)
        full = a * b
        r = full & ((1 << bits) - 1)
        trunc = _signed(r, size)
        self.regs.cf = self.regs.of = 0 if trunc == full else 1
        self._set_zsp(r, size)
        self.write_int(dst, r, size)
        return False

    def _i_idiv(self, ins: Instruction) -> bool:
        size = self._op_size(ins)
        if size != 8:
            raise MachineError("idiv modeled for 64-bit operands only")
        dv = _signed(self.read_int(ins.operands[0], 8), 8)
        if dv == 0:
            raise MachineError(f"integer divide by zero at {ins.addr:#x}")
        hi = self.regs.get_gpr("rdx")
        lo = self.regs.get_gpr("rax")
        d128 = (hi << 64) | lo
        if d128 >> 127:
            d128 -= 1 << 128
        q = int(d128 / dv)  # truncation toward zero
        r = d128 - q * dv
        if not (-(1 << 63) <= q < (1 << 63)):
            raise MachineError(f"idiv overflow at {ins.addr:#x}")
        self.regs.set_gpr("rax", q & _MASK64)
        self.regs.set_gpr("rdx", r & _MASK64)
        return False

    def _i_cqo(self, ins: Instruction) -> bool:
        rax = self.regs.get_gpr("rax")
        self.regs.set_gpr("rdx", _MASK64 if rax >> 63 else 0)
        return False

    # ------------------------------------------------------------------ #
    # control flow                                                        #
    # ------------------------------------------------------------------ #

    _COND = {
        "e": lambda r: r.zf == 1,
        "ne": lambda r: r.zf == 0,
        "l": lambda r: r.sf != r.of,
        "le": lambda r: r.zf == 1 or r.sf != r.of,
        "g": lambda r: r.zf == 0 and r.sf == r.of,
        "ge": lambda r: r.sf == r.of,
        "b": lambda r: r.cf == 1,
        "be": lambda r: r.cf == 1 or r.zf == 1,
        "a": lambda r: r.cf == 0 and r.zf == 0,
        "ae": lambda r: r.cf == 0,
        "s": lambda r: r.sf == 1,
        "ns": lambda r: r.sf == 0,
        "p": lambda r: r.pf == 1,
        "np": lambda r: r.pf == 0,
    }

    def _branch_target(self, op) -> int:
        if isinstance(op, Imm):
            return op.value
        return self.read_int(op, 8)

    def _i_jmp(self, ins: Instruction) -> bool:
        self.regs.rip = self._branch_target(ins.operands[0])
        return True

    def _i_jcc(self, ins: Instruction) -> bool:
        cond = self._COND[ins.mnemonic[1:]]
        if cond(self.regs):
            self.regs.rip = self._branch_target(ins.operands[0])
        else:
            self.regs.rip = ins.next_addr
        return True

    def _i_setcc(self, ins: Instruction) -> bool:
        cond = self._COND[ins.mnemonic[3:]]
        self.write_int(ins.operands[0], 1 if cond(self.regs) else 0, 1)
        return False

    def _i_cmovcc(self, ins: Instruction) -> bool:
        cond = self._COND[ins.mnemonic[4:]]
        if cond(self.regs):
            size = self._op_size(ins)
            self.write_int(ins.operands[0],
                           self.read_int(ins.operands[1], size), size)
        return False

    def _i_call(self, ins: Instruction) -> bool:
        target = self._branch_target(ins.operands[0])
        self.push(ins.next_addr)
        ext = self.externs.get(target)
        if ext is not None:
            if self.trace is None:
                ext(self)
            else:
                before = self.cost.cycles
                ext(self)
                self.trace.emit(ExternCallEvent(
                    cycles=self.cost.cycles,
                    addr=ins.addr,
                    name=self._extern_names.get(target, hex(target)),
                    cycles_spent=self.cost.cycles - before,
                ))
            self.regs.rip = self.pop()
        else:
            self.regs.rip = target
        return True

    def _i_ret(self, ins: Instruction) -> bool:
        addr = self.pop()
        if addr == EXIT_ADDR:
            self.halted = True
            self.exit_code = _signed(self.regs.get_gpr("rax"), 4)
            return True
        self.regs.rip = addr
        return True

    def _i_nop(self, ins: Instruction) -> bool:
        return False

    def _i_hlt(self, ins: Instruction) -> bool:
        self.halted = True
        self.exit_code = _signed(self.regs.get_gpr("rax"), 4)
        return True

    def _i_int3(self, ins: Instruction) -> bool:
        raise MachineError(f"breakpoint at {ins.addr:#x}")

    def _i_ud2(self, ins: Instruction) -> bool:
        raise MachineError(f"undefined instruction executed at {ins.addr:#x}")

    def _i_fpvm_trap(self, ins: Instruction) -> bool:
        """A statically patched site (paper §4.2): demote, then re-execute.

        ``payload`` is ``{"kind": "sink"|"call_demote", "original": ins}``.
        Without an installed handler the patch is a transparent no-op
        (nothing can be NaN-boxed), so patched binaries stay runnable
        outside FPVM.
        """
        original: Instruction = ins.payload["original"]
        self.correctness_trap_count += 1
        if self.correctness_handler is not None:
            self._charge_delivery("correctness", "correctness")
            frame = TrapFrame(TrapKind.CORRECTNESS, ins.addr, original,
                              detail=ins.payload)
            self.correctness_handler(self, frame)
        # a patched site retires as ONE architectural instruction: the
        # trap is delivery plumbing, not a second retirement (keeps
        # instr_count identical between pruned and conservative runs)
        self.instr_count -= 1
        self.execute(original)
        return True

    def _i_fpvm_patch(self, ins: Instruction) -> bool:
        """A trap-and-patch site (§3.2): inline check instead of a fault."""
        if self.patch_handler is None:
            self.execute(ins.payload["original"])
            return True
        return self.patch_handler(self, ins)

    # ------------------------------------------------------------------ #
    # SSE scalar double arithmetic                                        #
    # ------------------------------------------------------------------ #

    _SCALAR_OPS = {"addsd": "add64", "subsd": "sub64", "mulsd": "mul64",
                   "divsd": "div64", "minsd": "min64", "maxsd": "max64"}

    def _f_scalar(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        a = self.regs.xmm_lo(dst.index)
        b = self.read_f64(ins.operands[1])
        r, fl = getattr(self.fpu, self._SCALAR_OPS[ins.mnemonic])(a, b)
        if self._fp_event(ins, fl):
            return True
        self.regs.set_xmm_lo(dst.index, r)
        return False

    def _f_sqrtsd(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        a = self.read_f64(ins.operands[1])
        r, fl = self.fpu.sqrt64(a)
        if self._fp_event(ins, fl):
            return True
        self.regs.set_xmm_lo(dst.index, r)
        return False

    def _f_fmaddsd(self, ins: Instruction) -> bool:
        """fmaddsd dst, s1, s2  =>  dst.lo = s1*s2 + dst.lo (vfmadd231sd)."""
        dst = ins.operands[0]
        a = self.read_f64(ins.operands[1])
        b = self.read_f64(ins.operands[2])
        c = self.regs.xmm_lo(dst.index)
        r, fl = self.fpu.fma64(a, b, c)
        if self._fp_event(ins, fl):
            return True
        self.regs.set_xmm_lo(dst.index, r)
        return False

    # ------------------------------------------------------------------ #
    # SSE packed double                                                   #
    # ------------------------------------------------------------------ #

    _PACKED_OPS = {"addpd": "add64", "subpd": "sub64", "mulpd": "mul64",
                   "divpd": "div64", "minpd": "min64", "maxpd": "max64"}

    def _f_packed(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        alo, ahi = self.regs.xmm_lo(dst.index), self.regs.xmm_hi(dst.index)
        blo, bhi = self.read_xmm128(ins.operands[1])
        fn = getattr(self.fpu, self._PACKED_OPS[ins.mnemonic])
        rlo, flo = fn(alo, blo)
        rhi, fhi = fn(ahi, bhi)
        if self._fp_event(ins, flo | fhi):
            return True
        self.regs.set_xmm(dst.index, rlo, rhi)
        return False

    def _f_sqrtpd(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        blo, bhi = self.read_xmm128(ins.operands[1])
        rlo, flo = self.fpu.sqrt64(blo)
        rhi, fhi = self.fpu.sqrt64(bhi)
        if self._fp_event(ins, flo | fhi):
            return True
        self.regs.set_xmm(dst.index, rlo, rhi)
        return False

    # ------------------------------------------------------------------ #
    # SSE scalar single (enough for the "float problem")                  #
    # ------------------------------------------------------------------ #

    _SCALAR32_OPS = {"addss": "add32", "subss": "sub32", "mulss": "mul32",
                     "divss": "div32"}

    def _f_scalar32(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        a = self.regs.xmm_lo(dst.index) & 0xFFFF_FFFF
        b = self.read_f32(ins.operands[1])
        r, fl = getattr(self.fpu, self._SCALAR32_OPS[ins.mnemonic])(a, b)
        if self._fp_event(ins, fl):
            return True
        lo = (self.regs.xmm_lo(dst.index) & ~0xFFFF_FFFF) | r
        self.regs.set_xmm_lo(dst.index, lo)
        return False

    # ------------------------------------------------------------------ #
    # comparisons                                                         #
    # ------------------------------------------------------------------ #

    def _f_ucomi(self, ins: Instruction) -> bool:
        a = self.regs.xmm_lo(ins.operands[0].index)
        b = self.read_f64(ins.operands[1])
        (zf, pf, cf), fl = self.fpu.ucomi64(a, b)
        if self._fp_event(ins, fl):
            return True
        self.regs.set_compare_flags(zf, pf, cf)
        return False

    def _f_comi(self, ins: Instruction) -> bool:
        a = self.regs.xmm_lo(ins.operands[0].index)
        b = self.read_f64(ins.operands[1])
        (zf, pf, cf), fl = self.fpu.comi64(a, b)
        if self._fp_event(ins, fl):
            return True
        self.regs.set_compare_flags(zf, pf, cf)
        return False

    def _f_cmpsd(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        a = self.regs.xmm_lo(dst.index)
        b = self.read_f64(ins.operands[1])
        pred = ins.operands[2].value
        r, fl = self.fpu.cmp64(a, b, pred)
        if self._fp_event(ins, fl):
            return True
        self.regs.set_xmm_lo(dst.index, r)
        return False

    # ------------------------------------------------------------------ #
    # conversions                                                         #
    # ------------------------------------------------------------------ #

    def _f_cvtsi2sd(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        if isinstance(src, Reg):
            size = src.size
        else:
            size = src.size
        v = self.read_int(src, size)
        if size == 4:
            r, fl = self.fpu.cvt_i32_to_f64(v)
        else:
            r, fl = self.fpu.cvt_i64_to_f64(v)
        if self._fp_event(ins, fl):
            return True
        self.regs.set_xmm_lo(dst.index, r)
        return False

    def _cvt_f64_to_int(self, ins: Instruction, truncate: bool) -> bool:
        dst, src = ins.operands
        a = self.read_f64(src)
        if dst.size == 4:
            r, fl = self.fpu.cvt_f64_to_i32(a, truncate)
        else:
            r, fl = self.fpu.cvt_f64_to_i64(a, truncate)
        if self._fp_event(ins, fl):
            return True
        self.write_int(dst, r, dst.size)
        return False

    def _f_cvttsd2si(self, ins: Instruction) -> bool:
        return self._cvt_f64_to_int(ins, truncate=True)

    def _f_cvtsd2si(self, ins: Instruction) -> bool:
        return self._cvt_f64_to_int(ins, truncate=False)

    def _f_cvtsd2ss(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        a = self.read_f64(ins.operands[1])
        r32, fl = self.fpu.cvt_f64_to_f32(a)
        if self._fp_event(ins, fl):
            return True
        lo = (self.regs.xmm_lo(dst.index) & ~0xFFFF_FFFF) | r32
        self.regs.set_xmm_lo(dst.index, lo)
        return False

    def _f_cvtss2sd(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        a32 = self.read_f32(ins.operands[1])
        r, fl = self.fpu.cvt_f32_to_f64(a32)
        if self._fp_event(ins, fl):
            return True
        self.regs.set_xmm_lo(dst.index, r)
        return False

    def _f_roundsd(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        a = self.read_f64(ins.operands[1])
        mode = ins.operands[2].value & 3
        r, fl = self.fpu.round64(a, mode)
        if self._fp_event(ins, fl):
            return True
        self.regs.set_xmm_lo(dst.index, r)
        return False

    # ------------------------------------------------------------------ #
    # FP moves & bitwise — the non-faulting "correctness hole" ops        #
    # ------------------------------------------------------------------ #

    def _f_movsd(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        if isinstance(dst, Xmm) and isinstance(src, Xmm):
            self.regs.set_xmm_lo(dst.index, self.regs.xmm_lo(src.index))
        elif isinstance(dst, Xmm):
            self.regs.set_xmm(dst.index, self.memory.read(self.ea(src), 8), 0)
        else:
            self.memory.write(self.ea(dst), 8, self.regs.xmm_lo(src.index))
        return False

    def _f_movss(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        if isinstance(dst, Xmm) and isinstance(src, Xmm):
            lo = (self.regs.xmm_lo(dst.index) & ~0xFFFF_FFFF) | (
                self.regs.xmm_lo(src.index) & 0xFFFF_FFFF)
            self.regs.set_xmm_lo(dst.index, lo)
        elif isinstance(dst, Xmm):
            self.regs.set_xmm(dst.index, self.memory.read(self.ea(src), 4), 0)
        else:
            self.memory.write(self.ea(dst), 4,
                              self.regs.xmm_lo(src.index) & 0xFFFF_FFFF)
        return False

    def _f_movq(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        if isinstance(dst, Xmm):
            if isinstance(src, Reg):
                v = self.regs.get_gpr(src.name)
            elif isinstance(src, Xmm):
                v = self.regs.xmm_lo(src.index)
            else:
                v = self.memory.read(self.ea(src), 8)
            self.regs.set_xmm(dst.index, v, 0)
        else:
            v = self.regs.xmm_lo(src.index)
            if isinstance(dst, Reg):
                self.regs.set_gpr(dst.name, v)
            else:
                self.memory.write(self.ea(dst), 8, v)
        return False

    def _f_movapd(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        lo, hi = self.read_xmm128(src)
        if isinstance(dst, Xmm):
            self.regs.set_xmm(dst.index, lo, hi)
        else:
            a = self.ea(dst)
            self.memory.write(a, 8, lo)
            self.memory.write(a + 8, 8, hi)
        return False

    def _f_movhpd(self, ins: Instruction) -> bool:
        dst, src = ins.operands
        if isinstance(dst, Xmm):
            self.regs.set_xmm_hi(dst.index, self.memory.read(self.ea(src), 8))
        else:
            self.memory.write(self.ea(dst), 8, self.regs.xmm_hi(src.index))
        return False

    def _f_bitwise(self, ins: Instruction) -> bool:
        dst = ins.operands[0]
        alo, ahi = self.regs.xmm_lo(dst.index), self.regs.xmm_hi(dst.index)
        blo, bhi = self.read_xmm128(ins.operands[1])
        mn = ins.mnemonic
        if mn == "xorpd":
            rlo, rhi = alo ^ blo, ahi ^ bhi
        elif mn == "andpd":
            rlo, rhi = alo & blo, ahi & bhi
        elif mn == "orpd":
            rlo, rhi = alo | blo, ahi | bhi
        else:  # andnpd: (~dst) & src
            rlo, rhi = (~alo) & blo, (~ahi) & bhi
        self.regs.set_xmm(dst.index, rlo, rhi)
        return False
