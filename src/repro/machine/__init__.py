"""The simulated x64-subset machine.

This package is the stand-in for the hardware + OS layer the paper
runs on: a CPU interpreter with an SSE-style FPU whose MXCSR condition
flags are sticky and maskable, precise FP faults delivered to a
registered user handler (the SIGFPE path), a flat segmented memory, a
simulated libc/libm binding layer (the LD_PRELOAD interposition
point), and a per-platform cycle cost model (R815 / 7220 / R730xd).
"""

from repro.machine.memory import Memory, Segment
from repro.machine.regfile import RegFile
from repro.machine.mxcsr import MXCSR
from repro.machine.traps import TrapFrame, TrapKind
from repro.machine.costmodel import CostModel, Platform
from repro.machine.cpu import Machine
from repro.machine.loader import load_binary

__all__ = [
    "Memory",
    "Segment",
    "RegFile",
    "MXCSR",
    "TrapFrame",
    "TrapKind",
    "CostModel",
    "Platform",
    "Machine",
    "load_binary",
]
