"""Batched struct-of-arrays execution: N lanes of one binary in lockstep.

One :class:`BatchMachine` runs N instances of the *same* binary whose
architectural state lives in numpy columns (:class:`BatchRegFile`,
:class:`BatchMemory`): one Python dispatch retires one instruction for
every lane at once, amortizing the interpreter's per-instruction cost
over the whole batch — the PyPy-micronumpy lesson (DESIGN.md §8c/§8d)
applied to the FPVM-as-a-service fleet tier.

Lockstep and divergence
-----------------------
All in-batch lanes share one RIP.  A vectorized closure follows a
strict three-phase protocol:

1. **validate** — perform all reads and address checks; lanes that
   cannot continue in lockstep (a branch that splits the batch, an
   out-of-segment access, an unvectorized instruction) raise
   :class:`~repro.errors.LaneDivergence` *before anything commits*;
2. **retire** — accounting (``instr_count``, per-lane cycle columns)
   exactly mirroring the scalar predecode wrapper;
3. **commit** — architectural writes plus the shared RIP update.

The driver catches ``LaneDivergence``, *spills* the flagged lanes to
the existing scalar interpreter (bit-identical by construction — the
spilled lane re-executes the same instruction from the same state) and
retries the instruction with the survivors.  Spilled lanes complete
scalar; they do not rejoin (ISSUE 7 explicitly permits this).

Bit-identity
------------
Every vectorized body reproduces the scalar closure's arithmetic
exactly: integer ops are uint64 column ops with the same masking, FP
value paths use the host's binary64 hardware exactly like
:class:`~repro.ieee.softfloat.SoftFPU`, and any lane whose operands
leave the provably-identical envelope (non-finite operands, narrowing
NaNs, out-of-range conversions) falls back to the scalar SoftFPU for
that lane only.  ``tests/property/test_prop_batch.py`` enforces this
differentially against N scalar Sessions.

Under FPVM (``arith`` is not ``None``) the batch runs the shared
*integer* prologue natively and spills every lane before the first
FP-trapping instruction, patched trap site, or extern call — the
points where trap-and-emulate semantics first diverge from native.
Up to that point zero NaN-boxes exist, so native lockstep execution is
bit-identical to scalar execution under an installed FPVM.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import LaneDivergence, MachineError
from repro.ieee.bits import f64_to_bits
from repro.ieee.softfloat import SoftFPU
from repro.isa.opcodes import OPCODES, OpClass, is_fp_trapping
from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.isa.registers import canonical, subreg_size
from repro.machine.cpu import EXIT_ADDR, HEAP_BASE, STACK_TOP, _PARITY
from repro.machine.costmodel import Platform, R815
from repro.machine.libc import BINDINGS
from repro.machine.memory import BatchMemory
from repro.machine.regfile import BatchRegFile

_M64 = 0xFFFF_FFFF_FFFF_FFFF
_M32 = 0xFFFF_FFFF
_U = np.uint64
_PARB = np.array(_PARITY, dtype=bool)

#: FP classes that carry architectural latency (mirrors Machine.__init__)
_FP_CLASSES = (OpClass.FP_ARITH, OpClass.FP_CMP, OpClass.FP_CVT)


@dataclass(frozen=True)
class LaneSpec:
    """Per-lane inputs of one :meth:`Session.run_batch` lane.

    ``params`` pokes named 8-byte data symbols before execution
    (floats are stored as IEEE binary64 bits, ints raw); ``stdin``
    feeds the ``getchar`` extern.  The watchdog fields mirror the
    scalar ``Session.run(max_instructions=..., max_cycles=...)``
    arguments lane-by-lane.
    """

    params: Mapping[str, float] | None = None
    stdin: str = ""
    max_instructions: int | None = None
    max_cycles: float | None = None
    label: str = ""


class _PostCommitSpill(Exception):
    """Batch-internal: an already-committed step left lanes with
    different RIPs (pathological post-extern return divergence); every
    active lane spills *without* re-executing the instruction."""

    def __init__(self, rips: np.ndarray) -> None:
        super().__init__("post-commit rip divergence")
        self.rips = rips


def _signed32(v: int) -> int:
    v &= _M32
    return v - (1 << 32) if v >> 31 else v


# --------------------------------------------------------------------------- #
# per-lane Machine adapter (externs + spill transplant)                        #
# --------------------------------------------------------------------------- #

class _LaneRegs:
    """RegFile-shaped view of one lane's columns.

    Setters copy-on-write: vector closures may alias register columns
    (``mov rax, rcx`` shares the array), so a per-lane poke must never
    mutate a column in place.
    """

    __slots__ = ("lv",)

    def __init__(self, lv: "LaneView") -> None:
        self.lv = lv

    def get_gpr(self, name: str) -> int:
        lv = self.lv
        v = int(lv.bm.regs.gpr[canonical(name)][lv.pos])
        size = subreg_size(name)
        return v if size == 8 else v & ((1 << (8 * size)) - 1)

    def set_gpr(self, name: str, value: int) -> None:
        lv = self.lv
        gpr = lv.bm.regs.gpr
        canon = canonical(name)
        size = subreg_size(name)
        col = gpr[canon].copy()
        if size == 8:
            col[lv.pos] = value & _M64
        elif size == 4:
            col[lv.pos] = value & _M32
        else:
            mask = (1 << (8 * size)) - 1
            col[lv.pos] = (int(col[lv.pos]) & ~mask & _M64) | (value & mask)
        gpr[canon] = col

    def xmm_lo(self, idx: int) -> int:
        lv = self.lv
        return int(lv.bm.regs.xmm[idx][0][lv.pos])

    def xmm_hi(self, idx: int) -> int:
        lv = self.lv
        return int(lv.bm.regs.xmm[idx][1][lv.pos])

    def set_xmm_lo(self, idx: int, v: int) -> None:
        lv = self.lv
        pair = lv.bm.regs.xmm[idx]
        lo = pair[0].copy()
        lo[lv.pos] = v & _M64
        pair[0] = lo

    def set_xmm(self, idx: int, lo: int, hi: int) -> None:
        lv = self.lv
        pair = lv.bm.regs.xmm[idx]
        nlo = pair[0].copy()
        nlo[lv.pos] = lo & _M64
        pair[0] = nlo
        nhi = pair[1].copy()
        nhi[lv.pos] = hi & _M64
        pair[1] = nhi


class _LaneMemory:
    """Memory-shaped view of one lane's columns."""

    __slots__ = ("lv",)

    def __init__(self, lv: "LaneView") -> None:
        self.lv = lv

    def read(self, addr: int, size: int) -> int:
        lv = self.lv
        return lv.bm.mem.lane_read(lv.col, addr, size)

    def write(self, addr: int, size: int, value: int) -> None:
        lv = self.lv
        lv.bm.mem.lane_write(lv.col, addr, size, value)

    def read_bytes(self, addr: int, size: int) -> bytes:
        lv = self.lv
        return lv.bm.mem.lane_read_bytes(lv.col, addr, size)

    def write_bytes(self, addr: int, data: bytes) -> None:
        lv = self.lv
        lv.bm.mem.lane_write_bytes(lv.col, addr, data)

    def read_cstr(self, addr: int, maxlen: int = 1 << 16) -> str:
        lv = self.lv
        return lv.bm.mem.lane_read_cstr(lv.col, addr, maxlen)

    def segment_named(self, name: str):
        return self.lv.bm.mem.segment_named(name)


class _LaneCost:
    """CostModel-shaped view: charges land in the lane's cycle column."""

    __slots__ = ("lv",)

    def __init__(self, lv: "LaneView") -> None:
        self.lv = lv

    def charge(self, cycles: float, bucket: str = "base") -> None:
        lv = self.lv
        bm = lv.bm
        col = bm.buckets.get(bucket)
        if col is None:
            col = np.zeros(bm.regs.n)
            bm.buckets[bucket] = col
        col[lv.pos] += cycles
        bm.cycles[lv.pos] += cycles

    @property
    def cycles(self) -> float:
        lv = self.lv
        return float(lv.bm.cycles[lv.pos])


class LaneView:
    """One lane seen through the scalar :class:`Machine` interface.

    The libc/libm extern bindings take a Machine; during a batched
    extern call each lane is presented through this adapter, so the
    bindings run unmodified per lane (the amortization win is the
    vectorized instruction stream, not the externs).  The view also
    carries the lane's scalar-only state (stdout, heap allocator
    bookkeeping, PRNG, stdin cursor) that has no column representation.
    """

    def __init__(self, bm: "BatchMachine", orig: int, spec: LaneSpec) -> None:
        self.bm = bm
        self.orig = orig
        self.col = orig      # physical memory column (never reindexed)
        self.pos = orig      # position among *active* lanes
        self.spec = spec
        self.regs = _LaneRegs(self)
        self.memory = _LaneMemory(self)
        self.cost = _LaneCost(self)
        self.halted = False
        self.exit_code = 0
        self.stdout: list[str] = []
        self.heap_brk = HEAP_BASE
        raw = spec.stdin or b""
        self.stdin = raw.encode("latin-1") if isinstance(raw, str) else raw
        self._stdin_pos = 0
        # _libc_heap / _rand_state intentionally unset: the bindings
        # use the same getattr-with-default protocol as on Machine


# --------------------------------------------------------------------------- #
# vectorized condition codes                                                   #
# --------------------------------------------------------------------------- #

_VCOND: dict[str, Callable[[BatchRegFile], np.ndarray]] = {
    "e": lambda r: r.zf,
    "ne": lambda r: ~r.zf,
    "l": lambda r: r.sf ^ r.of,
    "le": lambda r: r.zf | (r.sf ^ r.of),
    "g": lambda r: ~(r.zf | (r.sf ^ r.of)),
    "ge": lambda r: ~(r.sf ^ r.of),
    "b": lambda r: r.cf,
    "be": lambda r: r.cf | r.zf,
    "a": lambda r: ~(r.cf | r.zf),
    "ae": lambda r: ~r.cf,
    "s": lambda r: r.sf,
    "ns": lambda r: ~r.sf,
    "p": lambda r: r.pf,
    "np": lambda r: ~r.pf,
}


# --------------------------------------------------------------------------- #
# columnar operand accessors                                                   #
# --------------------------------------------------------------------------- #

def _v_ea(bm: "BatchMachine", mem: Mem):
    """Effective-address closure: python int (absolute) or (n,) uint64."""
    gpr = bm.regs.gpr
    disp = _U(mem.disp & _M64)
    if mem.base is None and mem.index is None:
        addr = mem.disp & _M64
        return lambda: addr
    if mem.index is None:
        bc = canonical(mem.base)
        if subreg_size(mem.base) == 8:
            return lambda: gpr[bc] + disp
        bmask = _U((1 << (8 * subreg_size(mem.base))) - 1)
        return lambda: (gpr[bc] & bmask) + disp
    scale = mem.scale
    ic = canonical(mem.index)
    imask = (None if subreg_size(mem.index) == 8
             else _U((1 << (8 * subreg_size(mem.index))) - 1))
    if mem.base is None:
        if imask is None:
            return lambda: gpr[ic] * _U(scale) + disp
        return lambda: (gpr[ic] & imask) * _U(scale) + disp
    bc = canonical(mem.base)
    bmask = (None if subreg_size(mem.base) == 8
             else _U((1 << (8 * subreg_size(mem.base))) - 1))

    def ea():
        b = gpr[bc] if bmask is None else gpr[bc] & bmask
        i = gpr[ic] if imask is None else gpr[ic] & imask
        return b + i * _U(scale) + disp
    return ea


def _v_int_reader(bm: "BatchMachine", op, size: int):
    """Column equivalent of ``Machine.read_int``; Imm yields a scalar."""
    if isinstance(op, Reg):
        gpr = bm.regs.gpr
        canon = canonical(op.name)
        eff = min(subreg_size(op.name), size)
        if eff == 8:
            return lambda: gpr[canon]
        mask = _U((1 << (8 * eff)) - 1)
        return lambda: gpr[canon] & mask
    if isinstance(op, Imm):
        v = _U(op.value & ((1 << (8 * size)) - 1))
        return lambda: v
    if isinstance(op, Mem):
        ea = _v_ea(bm, op)
        read = bm.mem.read
        return lambda: read(ea(), size)
    raise MachineError(f"bad integer operand {op!r}")


def _v_int_writer(bm: "BatchMachine", op, size: int):
    """Destination as ``(ea_closure_or_None, commit(addr, value))``.

    For memory destinations the maker must pre-validate the cached
    address with ``mem.check_write`` before retiring; ``commit`` then
    cannot raise.  Register commits ignore ``addr``.
    """
    if isinstance(op, Reg):
        gpr = bm.regs.gpr
        regs = bm.regs
        canon = canonical(op.name)
        alias = subreg_size(op.name)
        eff = min(alias, size)
        emask = _U((1 << (8 * eff)) - 1)
        if alias >= 4:
            def commit(_a, v, gpr=gpr, canon=canon, emask=emask):
                out = v & emask
                if not isinstance(out, np.ndarray):
                    out = np.full(regs.n, out, _U)
                gpr[canon] = out
            return None, commit
        inv = _U(~((1 << (8 * alias)) - 1) & _M64)

        def commit_merge(_a, v, gpr=gpr, canon=canon, emask=emask, inv=inv):
            gpr[canon] = (gpr[canon] & inv) | (v & emask)
        return None, commit_merge
    if isinstance(op, Mem):
        ea = _v_ea(bm, op)
        write = bm.mem.write

        def commit_mem(a, v, write=write, size=size):
            write(a, size, v)
        return ea, commit_mem
    raise MachineError(f"bad integer destination {op!r}")


def _v_f64_reader(bm: "BatchMachine", op):
    if isinstance(op, Xmm):
        pair = bm.regs.xmm[op.index]
        return lambda: pair[0]
    if isinstance(op, Mem):
        ea = _v_ea(bm, op)
        read = bm.mem.read
        return lambda: read(ea(), 8)
    raise MachineError(f"bad FP operand {op!r}")


def _v_f32_reader(bm: "BatchMachine", op):
    if isinstance(op, Xmm):
        pair = bm.regs.xmm[op.index]
        m32 = _U(_M32)
        return lambda: pair[0] & m32
    if isinstance(op, Mem):
        ea = _v_ea(bm, op)
        read = bm.mem.read
        return lambda: read(ea(), 4)
    raise MachineError(f"bad FP operand {op!r}")


def _v_xmm128_reader(bm: "BatchMachine", op):
    if isinstance(op, Xmm):
        pair = bm.regs.xmm[op.index]
        return lambda: (pair[0], pair[1])
    if isinstance(op, Mem):
        ea = _v_ea(bm, op)
        read = bm.mem.read

        def rd():
            a = ea()
            return read(a, 8), read(a + 8, 8)
        return rd
    raise MachineError(f"bad 128-bit operand {op!r}")


def _zsp(regs: BatchRegFile, r, shift: int) -> None:
    """Commit ZF/SF/PF from a masked result column (CF/OF set by caller)."""
    regs.zf = r == 0
    regs.sf = (r >> _U(shift)) != 0
    regs.pf = _PARB[(r & _U(0xFF)).astype(np.intp)]


# --------------------------------------------------------------------------- #
# vectorized FP value paths (flags are never observable in a batch run:       #
# native batches run fully masked and FPVM batches spill before FP ops)       #
# --------------------------------------------------------------------------- #

def _vfp2(fpu: SoftFPU, kind: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Two-operand binary64 op on bit columns, SoftFPU-bit-identical.

    The host-hardware value path is exactly what SoftFPU computes for
    finite operands; lanes with any non-finite operand (NaN
    propagation rules, inf-inf default QNaNs) — and divide lanes with
    a zero divisor (SoftFPU returns an explicit signed infinity) —
    fall back to the scalar SoftFPU per lane.
    """
    fa = a.view(np.float64)
    fb = b.view(np.float64)
    if kind == "min64":
        return np.where(fa < fb, a, b)   # equal/NaN forward src2, like x64
    if kind == "max64":
        return np.where(fa > fb, a, b)
    bad = ~(np.isfinite(fa) & np.isfinite(fb))
    if kind == "add64":
        r = fa + fb
    elif kind == "sub64":
        r = fa - fb
    elif kind == "mul64":
        r = fa * fb
    else:  # div64
        bad = bad | (fb == 0.0)
        r = fa / fb
    rb = r.view(_U)
    if bad.any():
        fn = getattr(fpu, kind)
        for i in np.nonzero(bad)[0]:
            rb[i] = fn(int(a[i]), int(b[i]))[0]
    return rb


def _vfp_sqrt(fpu: SoftFPU, a: np.ndarray) -> np.ndarray:
    f = a.view(np.float64)
    rb = np.sqrt(f).view(_U)
    bad = ~(f >= 0.0)   # NaN and negative non-zero; -0.0 passes (sqrt -0 = -0)
    if bad.any():
        for i in np.nonzero(bad)[0]:
            rb[i] = fpu.sqrt64(int(a[i]))[0]
    return rb


# --------------------------------------------------------------------------- #
# vectorized instruction makers — every maker returns a zero-arg step that     #
# follows the validate / retire / commit protocol (module docstring)           #
# --------------------------------------------------------------------------- #

def _op_size(ins, default: int = 8) -> int:
    for op in ins.operands:
        if isinstance(op, Reg):
            return op.size
    for op in ins.operands:
        if isinstance(op, Mem):
            return op.size
    return default


def _mk_spill_all(bm, ins, reason: str):
    def step():
        raise LaneDivergence(np.ones(bm.regs.n, bool), reason)
    return step


def _mk_mov(bm, ins, C):
    size = _op_size(ins)
    dst, src = ins.operands
    r = _v_int_reader(bm, src, size)
    ea, commit = _v_int_writer(bm, dst, size)
    retire = bm._retire
    nxt = ins.next_addr
    check = bm.mem.check_write
    if ea is None:
        def step():
            v = r()
            retire(C)
            commit(None, v)
            bm.rip = nxt
        return step

    def step():
        v = r()
        a = ea()
        check(a, size)
        retire(C)
        commit(a, v)
        bm.rip = nxt
    return step


def _mk_movzx(bm, ins, C):
    dst, src = ins.operands
    ssize = src.size if isinstance(src, (Reg, Mem)) else 4
    r = _v_int_reader(bm, src, ssize)
    ea, commit = _v_int_writer(bm, dst, dst.size)
    if ea is not None:
        return _mk_spill_all(bm, ins, "movzx to memory")
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        v = r()
        retire(C)
        commit(None, v)
        bm.rip = nxt
    return step


def _mk_movsx(bm, ins, C):
    dst, src = ins.operands
    ssize = src.size if isinstance(src, (Reg, Mem)) else 4
    r = _v_int_reader(bm, src, ssize)
    ea, commit = _v_int_writer(bm, dst, dst.size)
    if ea is not None:
        return _mk_spill_all(bm, ins, "movsx to memory")
    bits = 8 * ssize
    top = _U(1 << (bits - 1))
    ext = _U(~((1 << bits) - 1) & _M64)
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        v = r()
        s = np.where(v & top != 0, v | ext, v)
        retire(C)
        commit(None, s)
        bm.rip = nxt
    return step


def _mk_lea(bm, ins, C):
    dst, src = ins.operands
    ea = _v_ea(bm, src)
    wea, commit = _v_int_writer(bm, dst, dst.size)
    if wea is not None:
        return _mk_spill_all(bm, ins, "lea to memory")
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        v = ea()
        retire(C)
        commit(None, v)
        bm.rip = nxt
    return step


def _mk_xchg(bm, ins, C):
    a_op, b_op = ins.operands
    size = _op_size(ins)
    ra = _v_int_reader(bm, a_op, size)
    rb = _v_int_reader(bm, b_op, size)
    ea_a, wa = _v_int_writer(bm, a_op, size)
    ea_b, wb = _v_int_writer(bm, b_op, size)
    retire = bm._retire
    check = bm.mem.check_write
    nxt = ins.next_addr

    def step():
        va = ra()
        vb = rb()
        aa = ea_a() if ea_a is not None else None
        ab = ea_b() if ea_b is not None else None
        if aa is not None:
            check(aa, size)
        if ab is not None:
            check(ab, size)
        retire(C)
        wa(aa, vb)
        wb(ab, va)
        bm.rip = nxt
    return step


def _mk_push(bm, ins, C):
    r = _v_int_reader(bm, ins.operands[0], 8)
    gpr = bm.regs.gpr
    mem = bm.mem
    retire = bm._retire
    nxt = ins.next_addr
    eight = _U(8)

    def step():
        v = r()  # before the rsp update, so `push rsp` pushes the old value
        rsp = gpr["rsp"] - eight
        mem.check_write(rsp, 8)
        retire(C)
        gpr["rsp"] = rsp
        mem.write(rsp, 8, v)
        bm.rip = nxt
    return step


def _mk_pop(bm, ins, C):
    ea, commit = _v_int_writer(bm, ins.operands[0], 8)
    if ea is not None:
        # `pop [mem]` computes its EA after the rsp update — rare enough
        # that the scalar interpreter keeps exclusive custody of it
        return _mk_spill_all(bm, ins, "pop to memory")
    gpr = bm.regs.gpr
    mem = bm.mem
    retire = bm._retire
    nxt = ins.next_addr
    eight = _U(8)

    def step():
        rsp = gpr["rsp"]
        v = mem.read(rsp, 8)
        retire(C)
        gpr["rsp"] = rsp + eight
        commit(None, v)
        bm.rip = nxt
    return step


def _alu_flags_zsp(regs, r, shU):
    regs.zf = r == 0
    regs.sf = (r >> shU) != 0
    regs.pf = _PARB[(r & _U(0xFF)).astype(np.intp)]


def _mk_alu(bm, ins, C):
    mn = ins.mnemonic
    dst, src = ins.operands
    size = _op_size(ins)
    bits = 8 * size
    shU = _U(bits - 1)
    maskU = _U((1 << bits) - 1) if bits < 64 else None
    rd = _v_int_reader(bm, dst, size)
    rs = _v_int_reader(bm, src, size)
    writeback = mn not in ("cmp", "test")
    ea, commit = _v_int_writer(bm, dst, size) if writeback else (None, None)
    regs = bm.regs
    retire = bm._retire
    check = bm.mem.check_write
    nxt = ins.next_addr

    if mn == "add":
        def sem(a, b):
            r = a + b if maskU is None else (a + b) & maskU
            cf = r < a
            sa = a >> shU
            of = (sa == b >> shU) & ((r >> shU) != sa)
            return r, cf, of
    elif mn in ("sub", "cmp"):
        def sem(a, b):
            r = a - b if maskU is None else (a - b) & maskU
            cf = a < b
            sb = b >> shU
            of = ((a >> shU) != sb) & ((r >> shU) == sb)
            return r, cf, of
    else:  # and / or / xor / test
        bop = {"and": np.bitwise_and, "test": np.bitwise_and,
               "or": np.bitwise_or, "xor": np.bitwise_xor}[mn]

        def sem(a, b):
            r = bop(a, b)
            z = np.zeros(regs.n, bool)
            return r, z, z

    def step():
        a = rd()
        b = rs()
        r, cf, of = sem(a, b)
        if ea is not None:
            addr = ea()
            check(addr, size)
        else:
            addr = None
        retire(C)
        cfa = cf if isinstance(cf, np.ndarray) else np.full(regs.n, cf, bool)
        ofa = of if isinstance(of, np.ndarray) else np.full(regs.n, of, bool)
        regs.cf = cfa
        regs.of = ofa
        _alu_flags_zsp(regs, r, shU)
        if commit is not None:
            commit(addr, r)
        bm.rip = nxt
    return step


def _mk_shift(bm, ins, C):
    mn = ins.mnemonic
    dst, src = ins.operands
    size = dst.size if isinstance(dst, Reg) else _op_size(ins)
    bits = 8 * size
    cmask = 63 if bits == 64 else 31
    maskU = _U((1 << bits) - 1) if bits < 64 else None
    shU = _U(bits - 1)
    topU = _U(1 << (bits - 1))
    extU = _U(~((1 << bits) - 1) & _M64)
    rd = _v_int_reader(bm, dst, size)
    rc = _v_int_reader(bm, src, 1)
    ea, commit = _v_int_writer(bm, dst, size)
    regs = bm.regs
    retire = bm._retire
    check = bm.mem.check_write
    nxt = ins.next_addr
    const_count = (int(src.value) & cmask) if isinstance(src, Imm) else None

    def shift_math(a, cnt):
        """cnt: uint64 array or python int, every element >= 1."""
        if mn == "shl":
            r = a << cnt if maskU is None else (a << cnt) & maskU
            cf = ((a >> (_U(bits) - cnt)) & _U(1)) != 0
        elif mn == "shr":
            r = a >> cnt
            cf = ((a >> (cnt - _U(1))) & _U(1)) != 0
        else:  # sar
            if bits == 64:
                s = a.view(np.int64)
            else:
                s = np.where(a & topU != 0, a | extU, a).view(np.int64)
            ci = (cnt if isinstance(cnt, np.ndarray) else
                  np.full(1, cnt, _U)).astype(np.int64)
            r = (s >> ci).view(_U)
            if maskU is not None:
                r = r & maskU
            cf = ((a >> (cnt - _U(1))) & _U(1)) != 0
        return r, cf

    if const_count is not None:
        if const_count == 0:
            def step():
                retire(C)
                bm.rip = nxt
            return step
        cntU = _U(const_count)

        def step():
            a = rd()
            r, cf = shift_math(a, cntU)
            if ea is not None:
                addr = ea()
                check(addr, size)
            else:
                addr = None
            retire(C)
            regs.cf = cf if isinstance(cf, np.ndarray) else np.full(
                regs.n, cf, bool)
            regs.of = np.zeros(regs.n, bool)
            _alu_flags_zsp(regs, r, shU)
            commit(addr, r)
            bm.rip = nxt
        return step

    def step():
        cnt = rc() & _U(cmask)
        z = cnt == 0
        if z.any():
            if z.all():
                # count 0 in every lane: flags and destination untouched
                retire(C)
                bm.rip = nxt
                return
            raise LaneDivergence(z, "shift count divergence")
        a = rd()
        r, cf = shift_math(a, cnt)
        if ea is not None:
            addr = ea()
            check(addr, size)
        else:
            addr = None
        retire(C)
        regs.cf = cf
        regs.of = np.zeros(regs.n, bool)
        _alu_flags_zsp(regs, r, shU)
        commit(addr, r)
        bm.rip = nxt
    return step


def _mk_incdec(bm, ins, C):
    size = _op_size(ins)
    bits = 8 * size
    shU = _U(bits - 1)
    maskU = _U((1 << bits) - 1) if bits < 64 else None
    rd = _v_int_reader(bm, ins.operands[0], size)
    ea, commit = _v_int_writer(bm, ins.operands[0], size)
    regs = bm.regs
    retire = bm._retire
    check = bm.mem.check_write
    nxt = ins.next_addr
    inc = ins.mnemonic == "inc"
    one = _U(1)

    def step():
        v = rd()
        r = v + one if inc else v - one
        if maskU is not None:
            r = r & maskU
        sa = v >> shU
        sr = r >> shU
        # CF is architecturally preserved by inc/dec
        of = (sa != sr) & ((sa == 0) if inc else (sa != 0))
        if ea is not None:
            addr = ea()
            check(addr, size)
        else:
            addr = None
        retire(C)
        regs.of = of
        _alu_flags_zsp(regs, r, shU)
        commit(addr, r)
        bm.rip = nxt
    return step


def _mk_imul(bm, ins, C):
    dst, src = ins.operands
    size = _op_size(ins)
    bits = 8 * size
    shU = _U(bits - 1)
    rd = _v_int_reader(bm, dst, size)
    rs = _v_int_reader(bm, src, size)
    ea, commit = _v_int_writer(bm, dst, size)
    regs = bm.regs
    retire = bm._retire
    check = bm.mem.check_write
    nxt = ins.next_addr
    m32 = _U(0xFFFF_FFFF)

    if bits < 64:
        topU = _U(1 << (bits - 1))
        extU = _U(~((1 << bits) - 1) & _M64)
        maskU = _U((1 << bits) - 1)

        def sem(a, b):
            # <= 32-bit operands: the exact signed product fits int64
            a_s = np.where(a & topU != 0, a | extU, a).view(np.int64)
            b_arr = b if isinstance(b, np.ndarray) else np.full(
                regs.n, b, _U)
            b_s = np.where(b_arr & topU != 0, b_arr | extU,
                           b_arr).view(np.int64)
            full = a_s * b_s
            r = full.view(_U) & maskU
            trunc = np.where(r & topU != 0, r | extU, r).view(np.int64)
            cfof = trunc != full
            return r, cfof
    else:
        def sem(a, b):
            # 64x64 signed multiply via 32-bit-half decomposition:
            # unsigned high word, then the signed correction
            b_arr = b if isinstance(b, np.ndarray) else np.full(
                regs.n, b, _U)
            a0 = a & m32
            a1 = a >> _U(32)
            b0 = b_arr & m32
            b1 = b_arr >> _U(32)
            lo_lo = a0 * b0
            mid1 = a1 * b0 + (lo_lo >> _U(32))
            mid2 = a0 * b1 + (mid1 & m32)
            uh = a1 * b1 + (mid1 >> _U(32)) + (mid2 >> _U(32))
            low = a * b_arr
            sh = (uh
                  - np.where(a >> _U(63) != 0, b_arr, _U(0))
                  - np.where(b_arr >> _U(63) != 0, a, _U(0)))
            sext_low = np.where(low >> _U(63) != 0, _U(_M64), _U(0))
            cfof = sh != sext_low
            return low, cfof

    def step():
        a = rd()
        b = rs()
        r, cfof = sem(a, b)
        if ea is not None:
            addr = ea()
            check(addr, size)
        else:
            addr = None
        retire(C)
        regs.cf = cfof
        regs.of = cfof
        _alu_flags_zsp(regs, r, shU)
        commit(addr, r)
        bm.rip = nxt
    return step


def _mk_idiv(bm, ins, C):
    if _op_size(ins) != 8:
        return _mk_spill_all(bm, ins, "idiv non-64-bit")
    rd = _v_int_reader(bm, ins.operands[0], 8)
    gpr = bm.regs.gpr
    retire = bm._retire
    nxt = ins.next_addr
    lim = 1 << 53

    def step():
        b = rd()
        rax = gpr["rax"]
        rdx = gpr["rdx"]
        b_arr = b if isinstance(b, np.ndarray) else np.full(
            bm.regs.n, b, _U)
        bs = b_arr.view(np.int64)
        as_ = rax.view(np.int64)
        sext = np.where(as_ < 0, _U(_M64), _U(0))
        # vector envelope: rdx:rax is a sign-extended 64-bit value and
        # both operands are exactly representable in float64, where
        # IEEE division + trunc reproduces Python's int(d / dv) — the
        # scalar interpreter's exact semantics.  Everything else
        # (including divide-by-zero) spills and faults scalar.
        ok = ((bs != 0) & (rdx == sext)
              & (as_ < lim) & (as_ > -lim)
              & (bs < lim) & (bs > -lim))
        if not ok.all():
            raise LaneDivergence(~ok, "idiv outside vector envelope")
        q = np.trunc(as_.astype(np.float64)
                     / bs.astype(np.float64)).astype(np.int64)
        r = as_ - q * bs
        retire(C)
        gpr["rax"] = q.view(_U)
        gpr["rdx"] = r.view(_U)
        bm.rip = nxt
    return step


def _mk_cqo(bm, ins, C):
    gpr = bm.regs.gpr
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        rax = gpr["rax"]
        retire(C)
        gpr["rdx"] = np.where(rax >> _U(63) != 0, _U(_M64), _U(0))
        bm.rip = nxt
    return step


def _mk_setcc(bm, ins, C):
    cond = _VCOND[ins.mnemonic[3:]]
    ea, commit = _v_int_writer(bm, ins.operands[0], 1)
    regs = bm.regs
    retire = bm._retire
    check = bm.mem.check_write
    nxt = ins.next_addr

    def step():
        v = cond(regs).astype(_U)
        if ea is not None:
            addr = ea()
            check(addr, 1)
        else:
            addr = None
        retire(C)
        commit(addr, v)
        bm.rip = nxt
    return step


def _mk_cmovcc(bm, ins, C):
    dst = ins.operands[0]
    if not isinstance(dst, Reg) or subreg_size(dst.name) < 4:
        return _mk_spill_all(bm, ins, "cmov to sub-32-bit destination")
    size = _op_size(ins)
    cond = _VCOND[ins.mnemonic[4:]]
    r = _v_int_reader(bm, ins.operands[1], size)
    gpr = bm.regs.gpr
    canon = canonical(dst.name)
    emask = _U((1 << (8 * min(subreg_size(dst.name), size))) - 1)
    regs = bm.regs
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        # note: the source is read for every lane even where the
        # condition is false; a faulting read spills those lanes, which
        # then re-execute scalar (where the read never happens) —
        # conservative but bit-identical
        c = cond(regs)
        v = r()
        retire(C)
        gpr[canon] = np.where(c, v & emask, gpr[canon])
        bm.rip = nxt
    return step


def _mk_jmp(bm, ins, C):
    retire = bm._retire
    op = ins.operands[0]
    if isinstance(op, Imm):
        tgt = op.value

        def step():
            retire(C)
            bm.rip = tgt
        return step
    r = _v_int_reader(bm, op, 8)

    def step():
        tv = r()
        t0 = int(tv[0])
        same = tv == _U(t0)
        if not same.all():
            raise LaneDivergence(~same, "indirect branch divergence")
        retire(C)
        bm.rip = t0
    return step


def _mk_jcc(bm, ins, C):
    op = ins.operands[0]
    if not isinstance(op, Imm):
        return _mk_spill_all(bm, ins, "indirect conditional branch")
    cond = _VCOND[ins.mnemonic[1:]]
    tgt = op.value
    nxt = ins.next_addr
    regs = bm.regs
    retire = bm._retire

    def step():
        t = cond(regs)
        k = int(t.sum())
        if k == regs.n:
            retire(C)
            bm.rip = tgt
        elif k == 0:
            retire(C)
            bm.rip = nxt
        else:
            # spill the minority; the survivors retry unanimously
            mask = t if 2 * k <= regs.n else ~t
            raise LaneDivergence(mask, "branch divergence")
    return step


def _halt_all(bm) -> None:
    rax = bm.regs.gpr["rax"]
    for pos, lv in enumerate(bm.lanes):
        v = int(rax[pos]) & _M32
        lv.exit_code = v - (1 << 32) if v >> 31 else v
        lv.halted = True
    bm._maybe_halted = True


def _mk_ret(bm, ins, C):
    gpr = bm.regs.gpr
    mem = bm.mem
    retire = bm._retire
    eight = _U(8)

    def step():
        rsp = gpr["rsp"]
        addrs = mem.read(rsp, 8)
        a0 = int(addrs[0])
        same = addrs == _U(a0)
        if not bool(same.all()):
            raise LaneDivergence(~same, "return divergence")
        retire(C)
        gpr["rsp"] = rsp + eight
        if a0 == EXIT_ADDR:
            _halt_all(bm)   # rip stays at the ret site, like scalar
        else:
            bm.rip = a0
    return step


def _mk_hlt(bm, ins, C):
    retire = bm._retire

    def step():
        retire(C)
        _halt_all(bm)
    return step


def _extern_call_body(bm, ext, nxt):
    """Shared tail of a call that resolves to an extern binding."""
    gpr = bm.regs.gpr
    mem = bm.mem
    eight = _U(8)

    def run_extern():
        rsp = gpr["rsp"] - eight
        mem.check_write(rsp, 8)
        bm._retire_pending(rsp)
        mem.write(rsp, 8, nxt)
        for lv in bm.lanes:
            try:
                ext(lv)
            except MachineError as exc:
                bm._pending_errors[lv.orig] = exc
        bm._maybe_halted = True
        # the scalar extern-call epilogue pops the return address even
        # when the binding halted the machine
        rsp2 = gpr["rsp"]
        addrs = mem.read(rsp2, 8)
        gpr["rsp"] = rsp2 + eight
        a0 = int(addrs[0])
        if bool((addrs == _U(a0)).all()):
            bm.rip = a0
        else:
            raise _PostCommitSpill(addrs)
    return run_extern


def _mk_call(bm, ins, C):
    op = ins.operands[0]
    gpr = bm.regs.gpr
    mem = bm.mem
    retire = bm._retire
    nxt = ins.next_addr
    eight = _U(8)

    if isinstance(op, Imm):
        tgt = op.value
        ext = bm.externs.get(tgt)
        if ext is None:
            def step():
                rsp = gpr["rsp"] - eight
                mem.check_write(rsp, 8)
                retire(C)
                gpr["rsp"] = rsp
                mem.write(rsp, 8, nxt)
                bm.rip = tgt
            return step
        if bm.fpvm_mode:
            # FPVM interposes externs (libm, printf, ...): every lane
            # leaves the batch before the first call so trap semantics
            # stay exactly scalar
            return _mk_spill_all(bm, ins, "extern call under fpvm")
        body = _extern_call_body(bm, ext, nxt)

        def step():
            # _retire_pending inside the body retires after check_write
            bm._pending_C = C
            body()
        return step

    r = _v_int_reader(bm, op, 8)

    def step():
        tv = r()
        t0 = int(tv[0])
        same = tv == _U(t0)
        if not bool(same.all()):
            raise LaneDivergence(~same, "indirect call divergence")
        ext = bm.externs.get(t0)
        if ext is not None:
            if bm.fpvm_mode:
                raise LaneDivergence(np.ones(bm.regs.n, bool),
                                     "extern call under fpvm")
            bm._pending_C = C
            _extern_call_body(bm, ext, nxt)()
            return
        rsp = gpr["rsp"] - eight
        mem.check_write(rsp, 8)
        retire(C)
        gpr["rsp"] = rsp
        mem.write(rsp, 8, nxt)
        bm.rip = t0
    return step


def _mk_nop(bm, ins, C):
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        retire(C)
        bm.rip = nxt
    return step


# ----------------------------- SSE makers ---------------------------------- #

def _mk_f_scalar(bm, ins, C):
    kind = {"addsd": "add64", "subsd": "sub64", "mulsd": "mul64",
            "divsd": "div64", "minsd": "min64", "maxsd": "max64"}[
                ins.mnemonic]
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_f64_reader(bm, ins.operands[1])
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        b = rs()
        r = _vfp2(fpu, kind, pair[0], b)
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = r
        bm.rip = nxt
    return step


def _mk_f_packed(bm, ins, C):
    kind = {"addpd": "add64", "subpd": "sub64", "mulpd": "mul64",
            "divpd": "div64", "minpd": "min64", "maxpd": "max64"}[
                ins.mnemonic]
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_xmm128_reader(bm, ins.operands[1])
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        blo, bhi = rs()
        rlo = _vfp2(fpu, kind, pair[0], blo)
        rhi = _vfp2(fpu, kind, pair[1], bhi)
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = rlo
        pair[1] = rhi
        bm.rip = nxt
    return step


def _mk_sqrtsd(bm, ins, C):
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_f64_reader(bm, ins.operands[1])
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        a = rs()
        r = _vfp_sqrt(fpu, a)
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = r
        bm.rip = nxt
    return step


def _mk_sqrtpd(bm, ins, C):
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_xmm128_reader(bm, ins.operands[1])
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        blo, bhi = rs()
        rlo = _vfp_sqrt(fpu, blo)
        rhi = _vfp_sqrt(fpu, bhi)
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = rlo
        pair[1] = rhi
        bm.rip = nxt
    return step


def _mk_ucomi(bm, ins, C):
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_f64_reader(bm, ins.operands[1])
    regs = bm.regs
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        b = rs()
        fa = pair[0].view(np.float64)
        fb = b.view(np.float64)
        unord = np.isnan(fa) | np.isnan(fb)
        retire(C)
        bm.fp_instr_count += 1
        regs.zf = unord | (fa == fb)
        regs.pf = unord
        regs.cf = unord | (fa < fb)
        z = np.zeros(regs.n, bool)
        regs.of = z
        regs.sf = z
        bm.rip = nxt
    return step


def _mk_f_scalar32(bm, ins, C):
    kind = {"addss": "add32", "subss": "sub32", "mulss": "mul32",
            "divss": "div32"}[ins.mnemonic]
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_f32_reader(bm, ins.operands[1])
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        b = rs()
        a = pair[0]
        fn = getattr(fpu, kind)
        out = a.copy()
        for i in range(len(out)):
            r32, _fl = fn(int(a[i]) & _M32, int(b[i]))
            out[i] = (int(a[i]) & ~_M32 & _M64) | r32
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = out
        bm.rip = nxt
    return step


def _mk_fmaddsd(bm, ins, C):
    pair = bm.regs.xmm[ins.operands[0].index]
    r1 = _v_f64_reader(bm, ins.operands[1])
    r2 = _v_f64_reader(bm, ins.operands[2])
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        a = r1()
        b = r2()
        c = pair[0]
        out = c.copy()
        for i in range(len(out)):
            out[i] = fpu.fma64(int(a[i]), int(b[i]), int(c[i]))[0]
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = out
        bm.rip = nxt
    return step


def _mk_cmpsd(bm, ins, C):
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_f64_reader(bm, ins.operands[1])
    pred = ins.operands[2].value
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        b = rs()
        a = pair[0]
        out = a.copy()
        for i in range(len(out)):
            out[i] = fpu.cmp64(int(a[i]), int(b[i]), pred)[0]
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = out
        bm.rip = nxt
    return step


def _mk_roundsd(bm, ins, C):
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_f64_reader(bm, ins.operands[1])
    mode = ins.operands[2].value & 3
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        a = rs()
        out = a.copy()
        for i in range(len(out)):
            out[i] = fpu.round64(int(a[i]), mode)[0]
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = out
        bm.rip = nxt
    return step


def _mk_cvtsi2sd(bm, ins, C):
    dst, src = ins.operands
    size = src.size
    r = _v_int_reader(bm, src, size)
    pair = bm.regs.xmm[dst.index]
    retire = bm._retire
    nxt = ins.next_addr
    top32 = _U(0x8000_0000)
    ext32 = _U(0xFFFF_FFFF_0000_0000)

    def step():
        v = r()
        if size == 4:
            xi = np.where(v & top32 != 0, v | ext32, v).view(np.int64)
        else:
            xi = v.view(np.int64)
        f = xi.astype(np.float64)   # exact for i32; RNE for i64, like SoftFPU
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = f.view(_U)
        bm.rip = nxt
    return step


def _mk_cvtsd2si(bm, ins, C):
    dst, src = ins.operands
    truncate = ins.mnemonic == "cvttsd2si"
    rs = _v_f64_reader(bm, src)
    ea, commit = _v_int_writer(bm, dst, dst.size)
    if ea is not None:
        return _mk_spill_all(bm, ins, "cvt to memory")
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr
    size = dst.size
    env = 9.0e18 if size == 8 else 2.0e9
    fn_name = "cvt_f64_to_i64" if size == 8 else "cvt_f64_to_i32"

    def step():
        a = rs()
        f = a.view(np.float64)
        safe = np.isfinite(f) & (np.abs(f) < env)
        q = np.trunc(f) if truncate else np.rint(f)   # rint: half-even
        out = np.where(safe, q, 0.0).astype(np.int64).view(_U)
        bad = ~safe
        if bad.any():
            fn = getattr(fpu, fn_name)
            for i in np.nonzero(bad)[0]:
                out[i] = fn(int(a[i]), truncate)[0]
        retire(C)
        bm.fp_instr_count += 1
        commit(None, out)
        bm.rip = nxt
    return step


def _mk_cvtsd2ss(bm, ins, C):
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_f64_reader(bm, ins.operands[1])
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        a = rs()
        d = pair[0]
        out = d.copy()
        for i in range(len(out)):
            r32, _fl = fpu.cvt_f64_to_f32(int(a[i]))
            out[i] = (int(d[i]) & ~_M32 & _M64) | r32
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = out
        bm.rip = nxt
    return step


def _mk_cvtss2sd(bm, ins, C):
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_f32_reader(bm, ins.operands[1])
    fpu = bm.fpu
    retire = bm._retire
    nxt = ins.next_addr

    def step():
        a32 = rs()
        out = np.empty_like(a32)
        for i in range(len(out)):
            out[i] = fpu.cvt_f32_to_f64(int(a32[i]))[0]
        retire(C)
        bm.fp_instr_count += 1
        pair[0] = out
        bm.rip = nxt
    return step


def _mk_movsd(bm, ins, C):
    dst, src = ins.operands
    xmm = bm.regs.xmm
    retire = bm._retire
    nxt = ins.next_addr
    regs = bm.regs
    if isinstance(dst, Xmm) and isinstance(src, Xmm):
        d, s = xmm[dst.index], xmm[src.index]

        def step():
            retire(C)
            d[0] = s[0]
            bm.rip = nxt
        return step
    if isinstance(dst, Xmm):
        d = xmm[dst.index]
        ea = _v_ea(bm, src)
        read = bm.mem.read

        def step():
            v = read(ea(), 8)
            retire(C)
            d[0] = v
            d[1] = np.zeros(regs.n, _U)
            bm.rip = nxt
        return step
    s = xmm[src.index]
    ea = _v_ea(bm, dst)
    mem = bm.mem

    def step():
        a = ea()
        mem.check_write(a, 8)
        retire(C)
        mem.write(a, 8, s[0])
        bm.rip = nxt
    return step


def _mk_movss(bm, ins, C):
    dst, src = ins.operands
    xmm = bm.regs.xmm
    retire = bm._retire
    nxt = ins.next_addr
    regs = bm.regs
    m32 = _U(_M32)
    inv32 = _U(~_M32 & _M64)
    if isinstance(dst, Xmm) and isinstance(src, Xmm):
        d, s = xmm[dst.index], xmm[src.index]

        def step():
            retire(C)
            d[0] = (d[0] & inv32) | (s[0] & m32)
            bm.rip = nxt
        return step
    if isinstance(dst, Xmm):
        d = xmm[dst.index]
        ea = _v_ea(bm, src)
        read = bm.mem.read

        def step():
            v = read(ea(), 4)
            retire(C)
            d[0] = v if isinstance(v, np.ndarray) else np.full(
                regs.n, v, _U)
            d[1] = np.zeros(regs.n, _U)
            bm.rip = nxt
        return step
    s = xmm[src.index]
    ea = _v_ea(bm, dst)
    mem = bm.mem

    def step():
        a = ea()
        mem.check_write(a, 4)
        retire(C)
        mem.write(a, 4, s[0] & m32)
        bm.rip = nxt
    return step


def _mk_movq(bm, ins, C):
    dst, src = ins.operands
    xmm = bm.regs.xmm
    retire = bm._retire
    nxt = ins.next_addr
    regs = bm.regs
    if isinstance(dst, Xmm):
        d = xmm[dst.index]
        if isinstance(src, Reg):
            r = _v_int_reader(bm, src, 8)

            def step():
                v = r()
                retire(C)
                d[0] = v if isinstance(v, np.ndarray) else np.full(
                    regs.n, v, _U)
                d[1] = np.zeros(regs.n, _U)
                bm.rip = nxt
            return step
        if isinstance(src, Xmm):
            s = xmm[src.index]

            def step():
                retire(C)
                d[0] = s[0]
                d[1] = np.zeros(regs.n, _U)
                bm.rip = nxt
            return step
        ea = _v_ea(bm, src)
        read = bm.mem.read

        def step():
            v = read(ea(), 8)
            retire(C)
            d[0] = v
            d[1] = np.zeros(regs.n, _U)
            bm.rip = nxt
        return step
    s = xmm[src.index]
    if isinstance(dst, Reg):
        _, commit = _v_int_writer(bm, dst, 8)

        def step():
            retire(C)
            commit(None, s[0])
            bm.rip = nxt
        return step
    ea = _v_ea(bm, dst)
    mem = bm.mem

    def step():
        a = ea()
        mem.check_write(a, 8)
        retire(C)
        mem.write(a, 8, s[0])
        bm.rip = nxt
    return step


def _mk_movapd(bm, ins, C):
    dst, src = ins.operands
    xmm = bm.regs.xmm
    retire = bm._retire
    nxt = ins.next_addr
    if isinstance(dst, Xmm):
        d = xmm[dst.index]
        rs = _v_xmm128_reader(bm, src)

        def step():
            lo, hi = rs()
            retire(C)
            d[0] = lo
            d[1] = hi
            bm.rip = nxt
        return step
    s = xmm[src.index]
    ea = _v_ea(bm, dst)
    mem = bm.mem
    eight = _U(8)

    def step():
        a = ea()
        a2 = a + eight if isinstance(a, np.ndarray) else a + 8
        mem.check_write(a, 8)
        mem.check_write(a2, 8)
        retire(C)
        mem.write(a, 8, s[0])
        mem.write(a2, 8, s[1])
        bm.rip = nxt
    return step


def _mk_movhpd(bm, ins, C):
    dst, src = ins.operands
    xmm = bm.regs.xmm
    retire = bm._retire
    nxt = ins.next_addr
    if isinstance(dst, Xmm):
        d = xmm[dst.index]
        ea = _v_ea(bm, src)
        read = bm.mem.read

        def step():
            v = read(ea(), 8)
            retire(C)
            d[1] = v
            bm.rip = nxt
        return step
    s = xmm[src.index]
    ea = _v_ea(bm, dst)
    mem = bm.mem

    def step():
        a = ea()
        mem.check_write(a, 8)
        retire(C)
        mem.write(a, 8, s[1])
        bm.rip = nxt
    return step


def _mk_f_bitwise(bm, ins, C):
    mn = ins.mnemonic
    pair = bm.regs.xmm[ins.operands[0].index]
    rs = _v_xmm128_reader(bm, ins.operands[1])
    retire = bm._retire
    nxt = ins.next_addr
    m64 = _U(_M64)

    def step():
        blo, bhi = rs()
        a0, a1 = pair[0], pair[1]
        if mn == "xorpd":
            r0, r1 = a0 ^ blo, a1 ^ bhi
        elif mn == "andpd":
            r0, r1 = a0 & blo, a1 & bhi
        elif mn == "orpd":
            r0, r1 = a0 | blo, a1 | bhi
        else:  # andnpd
            r0, r1 = (~a0) & blo & m64, (~a1) & bhi & m64
        retire(C)
        pair[0] = r0
        pair[1] = r1
        bm.rip = nxt
    return step


_BMAKERS: dict[str, Callable] = {
    "mov": _mk_mov, "movabs": _mk_mov,
    "movzx": _mk_movzx, "movsx": _mk_movsx,
    "lea": _mk_lea, "xchg": _mk_xchg,
    "push": _mk_push, "pop": _mk_pop,
    "add": _mk_alu, "sub": _mk_alu, "cmp": _mk_alu,
    "and": _mk_alu, "or": _mk_alu, "xor": _mk_alu, "test": _mk_alu,
    "shl": _mk_shift, "shr": _mk_shift, "sar": _mk_shift,
    "inc": _mk_incdec, "dec": _mk_incdec,
    "imul": _mk_imul, "idiv": _mk_idiv, "cqo": _mk_cqo,
    "jmp": _mk_jmp, "call": _mk_call, "ret": _mk_ret,
    "nop": _mk_nop, "hlt": _mk_hlt,
    "movsd": _mk_movsd, "movss": _mk_movss, "movq": _mk_movq,
    "movapd": _mk_movapd, "movupd": _mk_movapd, "movhpd": _mk_movhpd,
    "sqrtsd": _mk_sqrtsd, "sqrtpd": _mk_sqrtpd,
    "ucomisd": _mk_ucomi, "comisd": _mk_ucomi,
    "xorpd": _mk_f_bitwise, "andpd": _mk_f_bitwise,
    "orpd": _mk_f_bitwise, "andnpd": _mk_f_bitwise,
    "fmaddsd": _mk_fmaddsd, "cmpsd": _mk_cmpsd, "roundsd": _mk_roundsd,
    "cvtsi2sd": _mk_cvtsi2sd,
    "cvttsd2si": _mk_cvtsd2si, "cvtsd2si": _mk_cvtsd2si,
    "cvtsd2ss": _mk_cvtsd2ss, "cvtss2sd": _mk_cvtss2sd,
}
for _cc in _VCOND:
    _BMAKERS["j" + _cc] = _mk_jcc
for _cc in ("e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "p", "np"):
    _BMAKERS["set" + _cc] = _mk_setcc
for _cc in ("e", "ne", "l", "g"):
    _BMAKERS["cmov" + _cc] = _mk_cmovcc
for _mn in ("addsd", "subsd", "mulsd", "divsd", "minsd", "maxsd"):
    _BMAKERS[_mn] = _mk_f_scalar
for _mn in ("addpd", "subpd", "mulpd", "divpd", "minpd", "maxpd"):
    _BMAKERS[_mn] = _mk_f_packed
for _mn in ("addss", "subss", "mulss", "divss"):
    _BMAKERS[_mn] = _mk_f_scalar32


# --------------------------------------------------------------------------- #
# the batch machine                                                            #
# --------------------------------------------------------------------------- #

class BatchMachine:
    """N lanes of one binary executing in SoA lockstep.

    Construct with a loaded :class:`~repro.asm.program.Binary` and one
    :class:`LaneSpec` per lane, then :meth:`run`; the result is a list
    of per-lane ``RunResult`` objects (in spec order) that is
    bit-identical to running each lane through a scalar ``Session``.
    """

    # the shared lockstep RIP lives on the regfile so lane snapshots
    # and spill transplants see it; this alias keeps closures short
    @property
    def rip(self) -> int:
        return self.regs.rip

    @rip.setter
    def rip(self, v: int) -> None:
        self.regs.rip = v

    def __init__(
        self,
        binary,
        specs: Sequence[LaneSpec],
        *,
        platform: Platform = R815,
        heap_size: int = 8 << 20,
        stack_size: int = 1 << 20,
        arith=None,
        config=None,
        analysis=None,
        predecode: bool = True,
        delivery_scenario: str = "user",
        final_gc: bool = True,
    ) -> None:
        specs = [s if isinstance(s, LaneSpec) else LaneSpec(**s)
                 for s in specs]
        if not specs:
            raise MachineError("empty batch")
        n = len(specs)
        self.binary = binary
        self.specs = specs
        self.n0 = n
        self.platform = platform
        self.heap_size = heap_size
        self.stack_size = stack_size
        self.arith = arith
        self.config = config
        self.analysis = analysis
        self.predecode = predecode
        self.delivery_scenario = delivery_scenario
        self.fpvm_mode = arith is not None
        self.final_gc = final_gc
        self.fpu = SoftFPU()

        self.regs = BatchRegFile(n)
        self.mem = BatchMemory(n)
        data_size = max(len(binary.data), 8)
        self.mem.map("data", binary.data_base, data_size,
                     data=bytes(binary.data))
        self.mem.map("heap", HEAP_BASE, heap_size)
        self.mem.map("stack", STACK_TOP - stack_size, stack_size)

        self.externs: dict[int, Callable] = {}
        for name, addr in binary.imports.items():
            impl = BINDINGS.get(name)
            if impl is None:
                raise MachineError(f"unresolved import {name!r}")
            self.externs[addr] = impl

        self._cost_table = {
            mn: (float(info.cycles) if info.opclass in _FP_CLASSES
                 else max(info.cycles * platform.int_issue_scale, 0.2))
            for mn, info in OPCODES.items()
        }

        # uniform in-batch accounting + per-lane columns
        self.instr_count = 0
        self.fp_instr_count = 0
        self.cycles = np.zeros(n)
        self.buckets: dict[str, np.ndarray] = {"base": np.zeros(n)}
        self.budgets = np.array(
            [s.max_instructions if s.max_instructions is not None else -1
             for s in specs], np.int64)
        self.caps = np.array(
            [s.max_cycles if s.max_cycles is not None else np.inf
             for s in specs], float)
        self._watch = bool((self.budgets > 0).any()
                           or np.isfinite(self.caps).any())

        # entry: rsp = STACK_TOP-16, push the exit sentinel
        self.regs.gpr["rsp"] = np.full(n, STACK_TOP - 16, _U)
        rsp = self.regs.gpr["rsp"] - _U(8)
        self.regs.gpr["rsp"] = rsp
        self.mem.write(rsp, 8, EXIT_ADDR)
        self.rip = binary.entry

        self.lanes = [LaneView(self, i, spec)
                      for i, spec in enumerate(specs)]
        for lv in self.lanes:
            if lv.spec.params:
                for pname, val in lv.spec.params.items():
                    addr = binary.symbols.get(pname)
                    if addr is None:
                        raise MachineError(f"unknown data symbol {pname!r}")
                    if isinstance(val, float):
                        bits = f64_to_bits(val)
                    else:
                        bits = int(val) & _M64
                    self.mem.lane_write(lv.col, addr, 8, bits)

        self._outcomes: dict[int, object] = {}
        self._pending_errors: dict[int, MachineError] = {}
        self._maybe_halted = False
        self._pending_C = 0.0

        # batch-level statistics (surfaced through BatchResult)
        self.dispatches = 0
        self.spill_events = 0
        self.spilled_lanes = 0

        with np.errstate(all="ignore"):
            self._code = {ins.addr: self._compile(ins)
                          for ins in binary.text}

    # ------------------------------------------------------------------ #
    def _retire(self, C: float) -> None:
        self.instr_count += 1
        self.cycles += C
        self.buckets["base"] += C

    def _retire_pending(self, new_rsp: np.ndarray) -> None:
        """Extern-call retire: accounting + the push commit in one place
        (the closure validated the push slot before calling us)."""
        self._retire(self._pending_C)
        self.regs.gpr["rsp"] = new_rsp

    # ------------------------------------------------------------------ #
    def _compile(self, ins):
        mn = ins.mnemonic
        if mn not in self._cost_table:
            return _mk_spill_all(self, ins, f"unknown mnemonic {mn}")
        if mn in ("fpvm_trap", "fpvm_patch", "int3", "ud2"):
            return _mk_spill_all(self, ins, f"scalar-only {mn}")
        if self.fpvm_mode and is_fp_trapping(mn):
            # under FPVM every trap-capable FP instruction is (or may
            # become) a trap site: the lane leaves the batch before the
            # first one, while zero NaN-boxes exist
            return _mk_spill_all(self, ins, "fpvm trap surface")
        C = self._cost_table[mn]
        mem_cycles = self.platform.mem_access_cycles
        for op in ins.operands:
            if isinstance(op, Mem):
                C = C + mem_cycles
        maker = _BMAKERS.get(mn)
        if maker is None:
            return _mk_spill_all(self, ins, f"unvectorized {mn}")
        try:
            return maker(self, ins, C)
        except Exception:
            return _mk_spill_all(self, ins, f"uncompilable {mn}")

    # ------------------------------------------------------------------ #
    def run(self) -> list:
        """Drive all lanes to completion; per-lane results in spec order."""
        with np.errstate(all="ignore"):
            while self.lanes:
                step = self._code.get(self.rip)
                if step is None:
                    self._error_all(MachineError(
                        f"rip={self.rip:#x}: no instruction"))
                    break
                try:
                    step()
                except LaneDivergence as d:
                    self._spill(np.asarray(d.lanes, bool), d.reason)
                    continue
                except _PostCommitSpill as p:
                    self._spill_post(p.rips)
                    continue
                self.dispatches += 1
                if self._pending_errors:
                    self._drain_errors()
                if self._watch and self.lanes:
                    self._check_watchdogs()
                if self._maybe_halted and self.lanes:
                    self._finalize_halted()
        return [self._outcomes[i] for i in range(self.n0)]

    # ------------------------------------------------------------------ #
    # lane retirement paths                                               #
    # ------------------------------------------------------------------ #

    def _completed_result(self, lv: LaneView):
        from repro.harness.experiment import RunResult
        pos = lv.pos
        return RunResult(
            stdout="".join(lv.stdout),
            exit_code=lv.exit_code,
            instr_count=self.instr_count,
            fp_instr_count=self.fp_instr_count,
            fp_traps=0,
            correctness_traps=0,
            cycles=float(self.cycles[pos]),
            buckets={k: float(col[pos]) for k, col in self.buckets.items()},
            final_regs=self.regs.lane_snapshot(pos),
        )

    def _error_result(self, lv: LaneView, exc: MachineError):
        from repro.harness.experiment import RunResult
        pos = lv.pos
        return RunResult(
            stdout="".join(lv.stdout),
            exit_code=-1,
            instr_count=self.instr_count,
            fp_instr_count=self.fp_instr_count,
            fp_traps=0,
            correctness_traps=0,
            cycles=float(self.cycles[pos]),
            buckets={k: float(col[pos]) for k, col in self.buckets.items()},
            error=str(exc),
            error_type=type(exc).__name__,
        )

    def _compact(self, keep) -> None:
        keep = np.asarray(keep, np.intp)
        self.regs.compact(keep)
        self.mem.compact(keep)
        self.cycles = self.cycles[keep]
        for k in list(self.buckets):
            self.buckets[k] = self.buckets[k][keep]
        self.budgets = self.budgets[keep]
        self.caps = self.caps[keep]
        self.lanes = [self.lanes[int(i)] for i in keep]
        for p, lv in enumerate(self.lanes):
            lv.pos = p
        self._watch = bool(self.lanes) and bool(
            (self.budgets > 0).any() or np.isfinite(self.caps).any())

    def _drain_errors(self) -> None:
        bad = []
        for pos, lv in enumerate(self.lanes):
            exc = self._pending_errors.get(lv.orig)
            if exc is not None:
                self._outcomes[lv.orig] = self._error_result(lv, exc)
                bad.append(pos)
        self._pending_errors.clear()
        if bad:
            keep = [p for p in range(len(self.lanes)) if p not in set(bad)]
            self._compact(keep)

    def _check_watchdogs(self) -> None:
        exp_i = (self.budgets > 0) & (self.instr_count >= self.budgets)
        exp_c = np.isfinite(self.caps) & (self.cycles > self.caps) & ~exp_i
        bad = exp_i | exp_c
        if not bad.any():
            return
        from repro.errors import WatchdogExpired
        dead = []
        for pos in np.nonzero(bad)[0]:
            lv = self.lanes[pos]
            spec = lv.spec
            if exp_i[pos]:
                b = spec.max_instructions
                exc = WatchdogExpired("instructions", b,
                                      f"instruction budget exhausted ({b})")
            else:
                exc = WatchdogExpired("cycles", spec.max_cycles)
            self._outcomes[lv.orig] = self._error_result(lv, exc)
            dead.append(int(pos))
        keep = [p for p in range(len(self.lanes)) if p not in set(dead)]
        self._compact(keep)

    def _finalize_halted(self) -> None:
        done = [pos for pos, lv in enumerate(self.lanes) if lv.halted]
        if done:
            for pos in done:
                lv = self.lanes[pos]
                self._outcomes[lv.orig] = self._completed_result(lv)
            keep = [p for p in range(len(self.lanes)) if p not in set(done)]
            self._compact(keep)
        self._maybe_halted = False

    def _error_all(self, exc: MachineError) -> None:
        for lv in self.lanes:
            if lv.halted:
                self._outcomes[lv.orig] = self._completed_result(lv)
            else:
                self._outcomes[lv.orig] = self._error_result(lv, exc)
        self.lanes = []

    # ------------------------------------------------------------------ #
    # spilling                                                            #
    # ------------------------------------------------------------------ #

    def _spill(self, mask: np.ndarray, reason: str) -> None:
        if not mask.any():
            return
        self.spill_events += 1
        positions = np.nonzero(mask)[0]
        self.spilled_lanes += len(positions)
        for pos in positions:
            lv = self.lanes[pos]
            self._outcomes[lv.orig] = self._run_scalar(lv, self.rip)
        self._compact(np.nonzero(~mask)[0])

    def _spill_post(self, rips: np.ndarray) -> None:
        """Post-commit spill: the step retired and committed, so every
        lane continues scalar at its own popped return address."""
        self.spill_events += 1
        self.spilled_lanes += len(self.lanes)
        for pos, lv in enumerate(self.lanes):
            exc = self._pending_errors.pop(lv.orig, None)
            if exc is not None:
                self._outcomes[lv.orig] = self._error_result(lv, exc)
            elif lv.halted:
                self._outcomes[lv.orig] = self._completed_result(lv)
            else:
                self._outcomes[lv.orig] = self._run_scalar(
                    lv, int(rips[pos]))
        self._pending_errors.clear()
        self.lanes = []

    def _run_scalar(self, lv: LaneView, rip: int):
        """Materialize one lane as a scalar Machine and run it out.

        The transplant reproduces exactly the state a scalar run would
        have at this point, so the continuation is bit-identical.
        """
        from repro.harness.experiment import RunResult
        from repro.machine.loader import load_binary

        binary = self.binary
        if self.fpvm_mode:
            # trap-and-patch mutates the binary in place; each spilled
            # FPVM lane patches its own private copy
            binary = copy.deepcopy(self.binary)
            binary._patch_listeners = []
        m = load_binary(binary, platform=self.platform,
                        heap_size=self.heap_size,
                        stack_size=self.stack_size,
                        predecode=self.predecode)
        m.delivery_scenario = self.delivery_scenario
        self.regs.write_lane_to(m.regs, lv.pos)
        m.regs.rip = rip
        for bseg in self.mem.segments:
            sseg = m.memory.segment_named(bseg.name)
            sseg.data[:] = self.mem.lane_segment_bytes(lv.col, bseg)
        m.heap_brk = lv.heap_brk
        heap_state = getattr(lv, "_libc_heap", None)
        if heap_state is not None:
            m._libc_heap = heap_state
        rand_state = getattr(lv, "_rand_state", None)
        if rand_state is not None:
            m._rand_state = rand_state
        m.stdout = lv.stdout
        m.stdin = lv.stdin
        m._stdin_pos = lv._stdin_pos
        m.instr_count = self.instr_count
        m.fp_instr_count = self.fp_instr_count
        m.cost.cycles = float(self.cycles[lv.pos])
        for k, col in self.buckets.items():
            m.cost.buckets[k] = float(col[lv.pos])
        spec = lv.spec
        m.cycle_watchdog = spec.max_cycles
        fpvm = None
        if self.fpvm_mode:
            from repro.fpvm.runtime import FPVM
            fpvm = FPVM(self.arith, self.config)
            fpvm.install(m)
            if self.analysis is not None:
                fpvm.apply_analysis(self.analysis)
        t0 = time.perf_counter()
        try:
            m.run(spec.max_instructions)
        except MachineError as exc:
            return RunResult(
                stdout="".join(m.stdout),
                exit_code=-1,
                instr_count=m.instr_count,
                fp_instr_count=m.fp_instr_count,
                fp_traps=m.fp_trap_count,
                correctness_traps=m.correctness_trap_count,
                cycles=m.cost.cycles,
                buckets=dict(m.cost.buckets),
                wall_s=time.perf_counter() - t0,
                fpvm=fpvm,
                machine=m,
                error=str(exc),
                error_type=type(exc).__name__,
            )
        if fpvm is not None and self.final_gc:
            fpvm.gc.collect(m)
        return RunResult(
            stdout="".join(m.stdout),
            exit_code=m.exit_code,
            instr_count=m.instr_count,
            fp_instr_count=m.fp_instr_count,
            fp_traps=m.fp_trap_count,
            correctness_traps=m.correctness_trap_count,
            cycles=m.cost.cycles,
            buckets=dict(m.cost.buckets),
            wall_s=time.perf_counter() - t0,
            fpvm=fpvm,
            machine=m,
            final_regs=m.regs.snapshot(),
        )

    # ------------------------------------------------------------------ #
    @property
    def spill_rate(self) -> float:
        """Fraction of lanes that left the batch before completing."""
        return self.spilled_lanes / self.n0 if self.n0 else 0.0
