"""Flat segmented byte-addressable memory.

Segments are non-overlapping ``(base, bytes)`` ranges; all addresses
fit comfortably below 2^32, which keeps every pointer inside the
51-bit payload a NaN-box can carry (paper §2, footnote 4).

The garbage collector's conservative scan (paper §4.1) walks
:meth:`Memory.writable_words` — every 8-byte-aligned word of every
writable segment — looking for bit patterns that decode as NaN-boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import LaneDivergence, MemoryFault, UnknownSegment

#: write-barrier granularity: one dirty bit per 4 KiB page
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


@dataclass
class Segment:
    """One mapped memory range."""

    name: str
    base: int
    data: bytearray
    writable: bool = True
    #: one byte per page, set by the write barrier, cleared by the
    #: incremental GC after scanning that page.  Pages start dirty so
    #: the first incremental epoch performs a full scan.
    dirty: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.dirty:
            npages = (len(self.data) + PAGE_SIZE - 1) >> PAGE_SHIFT
            self.dirty = bytearray(b"\x01" * max(npages, 1))

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end


class Memory:
    """Segmented memory with bounds- and permission-checked access."""

    def __init__(self) -> None:
        self.segments: list[Segment] = []
        self._last: Segment | None = None  # 1-entry segment cache

    # ------------------------------------------------------------------ #
    def map(self, name: str, base: int, size: int, *,
            writable: bool = True, data: bytes | None = None) -> Segment:
        """Map a new segment; ``data`` (if given) initializes its start."""
        if size <= 0:
            raise MemoryFault(base, size, "map with non-positive size")
        for seg in self.segments:
            if base < seg.end and seg.base < base + size:
                raise MemoryFault(base, size, f"overlap with {seg.name}")
        buf = bytearray(size)
        if data:
            buf[: len(data)] = data
        seg = Segment(name, base, buf, writable)
        self.segments.append(seg)
        self.segments.sort(key=lambda s: s.base)
        return seg

    def segment_for(self, addr: int, size: int = 1) -> Segment:
        seg = self._last
        if seg is not None and seg.contains(addr, size):
            return seg
        for seg in self.segments:
            if seg.contains(addr, size):
                self._last = seg
                return seg
        raise MemoryFault(addr, size)

    def segment_named(self, name: str) -> Segment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise UnknownSegment(name)

    # ------------------------------------------------------------------ #
    # scalar access (unsigned)                                            #
    # ------------------------------------------------------------------ #

    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes little-endian as an unsigned integer."""
        # fast path: inline the 1-entry segment-cache hit
        seg = self._last
        if seg is None or addr < seg.base or addr + size - seg.base > len(seg.data):
            seg = self.segment_for(addr, size)
        off = addr - seg.base
        return int.from_bytes(seg.data[off : off + size], "little")

    def write(self, addr: int, size: int, value: int) -> None:
        """Write ``size`` low bytes of ``value`` little-endian."""
        seg = self._last
        if seg is None or addr < seg.base or addr + size - seg.base > len(seg.data):
            seg = self.segment_for(addr, size)
        if not seg.writable:
            raise MemoryFault(addr, size, "write to read-only segment")
        off = addr - seg.base
        try:
            # values are almost always already in range — skip the mask
            seg.data[off : off + size] = value.to_bytes(size, "little")
        except OverflowError:
            seg.data[off : off + size] = (
                value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        # write barrier: mark the touched page(s) dirty (size <= 8, so a
        # write spans at most two pages)
        d = seg.dirty
        d[off >> PAGE_SHIFT] = 1
        d[(off + size - 1) >> PAGE_SHIFT] = 1

    def read_bytes(self, addr: int, size: int) -> bytes:
        seg = self.segment_for(addr, size)
        off = addr - seg.base
        return bytes(seg.data[off : off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        seg = self.segment_for(addr, len(data))
        if not seg.writable:
            raise MemoryFault(addr, len(data), "write to read-only segment")
        off = addr - seg.base
        seg.data[off : off + len(data)] = data
        if data:
            d = seg.dirty
            for page in range(off >> PAGE_SHIFT,
                              ((off + len(data) - 1) >> PAGE_SHIFT) + 1):
                d[page] = 1

    def read_cstr(self, addr: int, maxlen: int = 1 << 16) -> str:
        """Read a NUL-terminated string (for printf/puts builtins)."""
        seg = self.segment_for(addr)
        off = addr - seg.base
        end = seg.data.find(b"\x00", off, off + maxlen)
        if end < 0:
            raise MemoryFault(addr, maxlen, "unterminated string")
        return seg.data[off:end].decode("latin-1")

    # ------------------------------------------------------------------ #
    # GC support                                                          #
    # ------------------------------------------------------------------ #

    def writable_words(self) -> Iterator[tuple[int, int]]:
        """Yield ``(addr, u64)`` for every aligned word of writable memory.

        This is the conservative-scan surface: any of these words might
        be a NaN-boxed shadowed value.
        """
        for seg in self.segments:
            if not seg.writable:
                continue
            base = seg.base
            data = seg.data
            n = len(data) & ~7
            for off in range(0, n, 8):
                yield base + off, int.from_bytes(data[off : off + 8], "little")

    def writable_ranges(self) -> list[tuple[int, int]]:
        """(base, end) of each writable segment (GC statistics)."""
        return [(s.base, s.end) for s in self.segments if s.writable]


# --------------------------------------------------------------------------- #
# struct-of-arrays batch memory                                                #
# --------------------------------------------------------------------------- #

_U64 = np.uint64
_M64 = 0xFFFF_FFFF_FFFF_FFFF


class BatchSegment:
    """One mapped range, laid out as ``(nwords, ncols)`` uint64 columns.

    Row-major (C) order keeps each aligned word's lane column
    contiguous, so a uniform-address access touches one cache-friendly
    row; the OS's lazy zero-page commit means a mostly-untouched 8 MiB
    heap times 64 lanes costs almost nothing in resident memory.
    ``nbytes`` is the byte-accurate mapped size (bounds checks use it,
    not the word-rounded backing array).
    """

    __slots__ = ("name", "base", "nbytes", "nwords", "words", "writable")

    def __init__(self, name: str, base: int, size: int, ncols: int, *,
                 data: bytes | None = None, writable: bool = True) -> None:
        self.name = name
        self.base = base
        self.nbytes = size
        self.nwords = (size + 7) >> 3
        self.words = np.zeros((self.nwords, ncols), _U64)
        self.writable = writable
        if data:
            pad = (-len(data)) % 8
            col = np.frombuffer(bytes(data) + b"\x00" * pad, "<u8")
            self.words[: len(col)] = col[:, None]

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end


class BatchMemory:
    """Segmented SoA memory for n lockstep lanes.

    Physical columns are never reallocated: when lanes spill out of the
    batch, :attr:`cols` (active lane position -> physical column) is
    compacted instead, so an 8 MiB-per-lane heap is not copied on every
    divergence event.  Batch accessors raise
    :class:`~repro.errors.LaneDivergence` for lanes that fault or leave
    the vectorizable envelope; the per-lane ``lane_*`` accessors (used
    by the extern bindings and the spill transplant) raise the same
    :class:`MemoryFault` the scalar machine would.
    """

    def __init__(self, ncols: int) -> None:
        self.ncols = ncols
        self.segments: list[BatchSegment] = []
        self.cols = np.arange(ncols, dtype=np.intp)

    @property
    def n(self) -> int:
        return len(self.cols)

    def compact(self, keep: np.ndarray) -> None:
        self.cols = self.cols[keep]

    # ------------------------------------------------------------------ #
    def map(self, name: str, base: int, size: int, *,
            writable: bool = True, data: bytes | None = None) -> BatchSegment:
        if size <= 0:
            raise MemoryFault(base, size, "map with non-positive size")
        for seg in self.segments:
            if base < seg.end and seg.base < base + size:
                raise MemoryFault(base, size, f"overlap with {seg.name}")
        seg = BatchSegment(name, base, size, self.ncols,
                           data=data, writable=writable)
        self.segments.append(seg)
        self.segments.sort(key=lambda s: s.base)
        return seg

    def segment_named(self, name: str) -> BatchSegment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise UnknownSegment(name)

    def _seg_scalar(self, addr: int, size: int) -> BatchSegment:
        """Segment for a uniform address; all lanes fault together."""
        for seg in self.segments:
            if seg.contains(addr, size):
                return seg
        raise LaneDivergence(np.ones(self.n, bool),
                             f"memory fault: {size} bytes at {addr:#x}")

    def _seg_array(self, addr: np.ndarray,
                   size: int) -> tuple[BatchSegment, np.ndarray]:
        """Majority segment for per-lane addresses.

        Returns ``(segment, offsets)``; lanes outside the majority
        segment (unmapped, or validly inside *another* segment — both
        are rare) are spilled via :class:`LaneDivergence` and complete
        on the scalar interpreter, which resolves each lane exactly.
        """
        best, best_in, best_count = None, None, -1
        for seg in self.segments:
            inside = (addr >= _U64(seg.base)) & (
                addr + _U64(size) <= _U64(seg.end))
            count = int(inside.sum())
            if count > best_count:
                best, best_in, best_count = seg, inside, count
        if best is None or best_count == 0:
            raise LaneDivergence(np.ones(self.n, bool),
                                 "memory fault: unmapped batch access")
        if best_count < len(addr):
            raise LaneDivergence(~best_in, "cross-segment/unmapped lanes")
        return best, addr - _U64(best.base)

    # ------------------------------------------------------------------ #
    # batch access — addr is a python int (uniform) or an (n,) uint64     #
    # ------------------------------------------------------------------ #

    def read(self, addr, size: int) -> np.ndarray:
        """Read ``size`` bytes per lane as an (n,) uint64 column."""
        cols = self.cols
        if isinstance(addr, np.ndarray):
            a0 = int(addr[0])
            if (addr == _U64(a0)).all():
                addr = a0
            else:
                return self._read_varying(addr, size)
        seg = self._seg_scalar(addr, size)
        off = addr - seg.base
        w, sh = off >> 3, (off & 7) * 8
        row = seg.words[w]
        if sh == 0 and size == 8:
            return row[cols]
        nbits = 8 * size
        mask = _U64((1 << nbits) - 1)
        if sh + nbits <= 64:
            return (row[cols] >> _U64(sh)) & mask
        lo = row[cols] >> _U64(sh)
        hi = seg.words[w + 1][cols] << _U64(64 - sh)
        return (lo | hi) & mask

    def _read_varying(self, addr: np.ndarray, size: int) -> np.ndarray:
        seg, off = self._seg_array(addr, size)
        cols = self.cols
        w = (off >> _U64(3)).astype(np.intp)
        sub = (off & _U64(7)).astype(np.int64)
        if size == 8 and not sub.any():
            return seg.words[w, cols]
        nbits = 8 * size
        mask = _U64((1 << nbits) - 1)
        straddle = (sub * 8 + nbits) > 64
        vals = (seg.words[w, cols] >> (sub * 8).astype(_U64)) & mask
        if straddle.any():
            for i in np.nonzero(straddle)[0]:
                vals[i] = self.lane_read(int(cols[i]), int(addr[i]), size)
        return vals

    def check_write(self, addr, size: int) -> None:
        """Validate a write without committing it.

        Raises exactly the :class:`LaneDivergence` that :meth:`write`
        would, so batch closures can validate every store *before* they
        retire accounting — a closure must never raise after a partial
        commit (the driver retries the instruction with survivors).
        """
        if isinstance(addr, np.ndarray):
            a0 = int(addr[0])
            if (addr == _U64(a0)).all():
                addr = a0
            else:
                seg, _ = self._seg_array(addr, size)
                if not seg.writable:
                    raise LaneDivergence(np.ones(self.n, bool),
                                         "write to read-only segment")
                return
        seg = self._seg_scalar(addr, size)
        if not seg.writable:
            raise LaneDivergence(
                np.ones(self.n, bool),
                f"write to read-only segment at {addr:#x}")

    def write(self, addr, size: int, value) -> None:
        """Write ``size`` low bytes per lane (scalar broadcast or column)."""
        cols = self.cols
        if isinstance(addr, np.ndarray):
            a0 = int(addr[0])
            if (addr == _U64(a0)).all():
                addr = a0
            else:
                self._write_varying(addr, size, value)
                return
        seg = self._seg_scalar(addr, size)
        if not seg.writable:
            raise LaneDivergence(
                np.ones(self.n, bool),
                f"write to read-only segment at {addr:#x}")
        off = addr - seg.base
        w, sh = off >> 3, (off & 7) * 8
        if not isinstance(value, np.ndarray):
            value = _U64(int(value) & _M64)
        if sh == 0 and size == 8:
            seg.words[w][cols] = value
            return
        nbits = 8 * size
        mask = _U64((1 << nbits) - 1)
        v = value & mask
        if sh + nbits <= 64:
            hole = _U64(_M64 ^ (int(mask) << sh))
            row = seg.words[w]
            row[cols] = (row[cols] & hole) | (v << _U64(sh))
            return
        lo_bits = 64 - sh
        row = seg.words[w]
        row[cols] = (row[cols] & _U64((1 << sh) - 1)) | (v << _U64(sh))
        row2 = seg.words[w + 1]
        hole2 = _U64(_M64 ^ ((1 << (nbits - lo_bits)) - 1))
        row2[cols] = (row2[cols] & hole2) | (v >> _U64(lo_bits))

    def _write_varying(self, addr: np.ndarray, size: int, value) -> None:
        seg, off = self._seg_array(addr, size)
        if not seg.writable:
            raise LaneDivergence(np.ones(self.n, bool),
                                 "write to read-only segment")
        cols = self.cols
        w = (off >> _U64(3)).astype(np.intp)
        sub = (off & _U64(7)).astype(np.int64)
        if not isinstance(value, np.ndarray):
            value = np.full(self.n, int(value) & _M64, _U64)
        if size == 8 and not sub.any():
            seg.words[w, cols] = value
            return
        nbits = 8 * size
        mask = _U64((1 << nbits) - 1)
        straddle = (sub * 8 + nbits) > 64
        plain = ~straddle
        if plain.any():
            wi, ci = w[plain], cols[plain]
            sh = (sub[plain] * 8).astype(_U64)
            cur = seg.words[wi, ci]
            hole = ~(mask << sh)
            seg.words[wi, ci] = (cur & hole) | ((value[plain] & mask) << sh)
        if straddle.any():
            for i in np.nonzero(straddle)[0]:
                self.lane_write(int(cols[i]), int(addr[i]), size,
                                int(value[i]))

    # ------------------------------------------------------------------ #
    # per-lane access (extern bindings, parameter pokes, spill transplant)#
    # ------------------------------------------------------------------ #

    def _lane_seg(self, addr: int, size: int) -> BatchSegment:
        for seg in self.segments:
            if seg.contains(addr, size):
                return seg
        raise MemoryFault(addr, size)

    def lane_read(self, col: int, addr: int, size: int) -> int:
        seg = self._lane_seg(addr, size)
        off = addr - seg.base
        w0, w1 = off >> 3, (off + size - 1) >> 3
        chunk = seg.words[w0: w1 + 1, col].tobytes()
        lo = off - (w0 << 3)
        return int.from_bytes(chunk[lo: lo + size], "little")

    def lane_write(self, col: int, addr: int, size: int, value: int) -> None:
        seg = self._lane_seg(addr, size)
        if not seg.writable:
            raise MemoryFault(addr, size, "write to read-only segment")
        off = addr - seg.base
        w0, w1 = off >> 3, (off + size - 1) >> 3
        buf = bytearray(seg.words[w0: w1 + 1, col].tobytes())
        lo = off - (w0 << 3)
        buf[lo: lo + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little")
        seg.words[w0: w1 + 1, col] = np.frombuffer(bytes(buf), "<u8")

    def lane_read_bytes(self, col: int, addr: int, size: int) -> bytes:
        if size == 0:
            return b""
        seg = self._lane_seg(addr, size)
        off = addr - seg.base
        w0, w1 = off >> 3, (off + size - 1) >> 3
        chunk = seg.words[w0: w1 + 1, col].tobytes()
        lo = off - (w0 << 3)
        return chunk[lo: lo + size]

    def lane_write_bytes(self, col: int, addr: int, data: bytes) -> None:
        if not data:
            return
        seg = self._lane_seg(addr, len(data))
        if not seg.writable:
            raise MemoryFault(addr, len(data), "write to read-only segment")
        off = addr - seg.base
        w0, w1 = off >> 3, (off + len(data) - 1) >> 3
        buf = bytearray(seg.words[w0: w1 + 1, col].tobytes())
        lo = off - (w0 << 3)
        buf[lo: lo + len(data)] = data
        seg.words[w0: w1 + 1, col] = np.frombuffer(bytes(buf), "<u8")

    def lane_read_cstr(self, col: int, addr: int, maxlen: int = 1 << 16) -> str:
        seg = self._lane_seg(addr, 1)
        off = addr - seg.base
        limit = min(maxlen, seg.nbytes - off)
        chunk = self.lane_read_bytes(col, addr, limit)
        end = chunk.find(b"\x00")
        if end < 0:
            raise MemoryFault(addr, maxlen, "unterminated string")
        return chunk[:end].decode("latin-1")

    def lane_segment_bytes(self, col: int, seg: BatchSegment) -> bytes:
        """Whole-segment byte image of one lane (spill transplant)."""
        return seg.words[:, col].tobytes()[: seg.nbytes]
