"""Flat segmented byte-addressable memory.

Segments are non-overlapping ``(base, bytes)`` ranges; all addresses
fit comfortably below 2^32, which keeps every pointer inside the
51-bit payload a NaN-box can carry (paper §2, footnote 4).

The garbage collector's conservative scan (paper §4.1) walks
:meth:`Memory.writable_words` — every 8-byte-aligned word of every
writable segment — looking for bit patterns that decode as NaN-boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import MemoryFault, UnknownSegment

#: write-barrier granularity: one dirty bit per 4 KiB page
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


@dataclass
class Segment:
    """One mapped memory range."""

    name: str
    base: int
    data: bytearray
    writable: bool = True
    #: one byte per page, set by the write barrier, cleared by the
    #: incremental GC after scanning that page.  Pages start dirty so
    #: the first incremental epoch performs a full scan.
    dirty: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.dirty:
            npages = (len(self.data) + PAGE_SIZE - 1) >> PAGE_SHIFT
            self.dirty = bytearray(b"\x01" * max(npages, 1))

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end


class Memory:
    """Segmented memory with bounds- and permission-checked access."""

    def __init__(self) -> None:
        self.segments: list[Segment] = []
        self._last: Segment | None = None  # 1-entry segment cache

    # ------------------------------------------------------------------ #
    def map(self, name: str, base: int, size: int, *,
            writable: bool = True, data: bytes | None = None) -> Segment:
        """Map a new segment; ``data`` (if given) initializes its start."""
        if size <= 0:
            raise MemoryFault(base, size, "map with non-positive size")
        for seg in self.segments:
            if base < seg.end and seg.base < base + size:
                raise MemoryFault(base, size, f"overlap with {seg.name}")
        buf = bytearray(size)
        if data:
            buf[: len(data)] = data
        seg = Segment(name, base, buf, writable)
        self.segments.append(seg)
        self.segments.sort(key=lambda s: s.base)
        return seg

    def segment_for(self, addr: int, size: int = 1) -> Segment:
        seg = self._last
        if seg is not None and seg.contains(addr, size):
            return seg
        for seg in self.segments:
            if seg.contains(addr, size):
                self._last = seg
                return seg
        raise MemoryFault(addr, size)

    def segment_named(self, name: str) -> Segment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise UnknownSegment(name)

    # ------------------------------------------------------------------ #
    # scalar access (unsigned)                                            #
    # ------------------------------------------------------------------ #

    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes little-endian as an unsigned integer."""
        # fast path: inline the 1-entry segment-cache hit
        seg = self._last
        if seg is None or addr < seg.base or addr + size - seg.base > len(seg.data):
            seg = self.segment_for(addr, size)
        off = addr - seg.base
        return int.from_bytes(seg.data[off : off + size], "little")

    def write(self, addr: int, size: int, value: int) -> None:
        """Write ``size`` low bytes of ``value`` little-endian."""
        seg = self._last
        if seg is None or addr < seg.base or addr + size - seg.base > len(seg.data):
            seg = self.segment_for(addr, size)
        if not seg.writable:
            raise MemoryFault(addr, size, "write to read-only segment")
        off = addr - seg.base
        try:
            # values are almost always already in range — skip the mask
            seg.data[off : off + size] = value.to_bytes(size, "little")
        except OverflowError:
            seg.data[off : off + size] = (
                value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        # write barrier: mark the touched page(s) dirty (size <= 8, so a
        # write spans at most two pages)
        d = seg.dirty
        d[off >> PAGE_SHIFT] = 1
        d[(off + size - 1) >> PAGE_SHIFT] = 1

    def read_bytes(self, addr: int, size: int) -> bytes:
        seg = self.segment_for(addr, size)
        off = addr - seg.base
        return bytes(seg.data[off : off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        seg = self.segment_for(addr, len(data))
        if not seg.writable:
            raise MemoryFault(addr, len(data), "write to read-only segment")
        off = addr - seg.base
        seg.data[off : off + len(data)] = data
        if data:
            d = seg.dirty
            for page in range(off >> PAGE_SHIFT,
                              ((off + len(data) - 1) >> PAGE_SHIFT) + 1):
                d[page] = 1

    def read_cstr(self, addr: int, maxlen: int = 1 << 16) -> str:
        """Read a NUL-terminated string (for printf/puts builtins)."""
        seg = self.segment_for(addr)
        off = addr - seg.base
        end = seg.data.find(b"\x00", off, off + maxlen)
        if end < 0:
            raise MemoryFault(addr, maxlen, "unterminated string")
        return seg.data[off:end].decode("latin-1")

    # ------------------------------------------------------------------ #
    # GC support                                                          #
    # ------------------------------------------------------------------ #

    def writable_words(self) -> Iterator[tuple[int, int]]:
        """Yield ``(addr, u64)`` for every aligned word of writable memory.

        This is the conservative-scan surface: any of these words might
        be a NaN-boxed shadowed value.
        """
        for seg in self.segments:
            if not seg.writable:
                continue
            base = seg.base
            data = seg.data
            n = len(data) & ~7
            for off in range(0, n, 8):
                yield base + off, int.from_bytes(data[off : off + 8], "little")

    def writable_ranges(self) -> list[tuple[int, int]]:
        """(base, end) of each writable segment (GC statistics)."""
        return [(s.base, s.end) for s in self.segments if s.writable]
