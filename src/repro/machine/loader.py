"""Loader: map a Binary into a Machine and bind its imports to libc."""

from __future__ import annotations

from repro.errors import MachineError
from repro.asm.program import Binary
from repro.machine.costmodel import Platform, R815
from repro.machine.cpu import Machine
from repro.machine.libc import BINDINGS


def load_binary(
    binary: Binary,
    *,
    platform: Platform = R815,
    heap_size: int = 8 << 20,
    stack_size: int = 1 << 20,
    predecode: bool = True,
) -> Machine:
    """Create a ready-to-run Machine for ``binary``.

    Every import must resolve to a built-in libc/libm implementation —
    the simulated dynamic linker refuses to lazy-bind.  ``predecode``
    selects the compiled fast-path interpreter (default) vs. the legacy
    per-step dispatch loop (kept for differential testing).
    """
    m = Machine(binary, platform=platform, heap_size=heap_size,
                stack_size=stack_size, predecode=predecode)
    for name, addr in binary.imports.items():
        impl = BINDINGS.get(name)
        if impl is None:
            raise MachineError(f"unresolved import {name!r}")
        m.externs[addr] = impl
    return m
