"""Phase 2: intersect FP-write sources with integer-load candidates.

    "In FPVM, a *source* is any instruction that stores a floating
    point value to memory, and a *sink* is any instruction that later
    loads from any memory location that was previously been written to
    by a source."

The intersection is over a-loc sets; conservative escapes (TOP
pointers, over-wide ranges) intersect everything, so the corresponding
loads are patched "just in case" — those are exactly the dynamic
checks that usually succeed at run time (the paper's Enzo discussion).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.domain import AccessSet
from repro.analysis.report import AnalysisReport
from repro.analysis.vsa import INTERPOSED_EXTERNS, NO_FP_EXTERNS

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.vsa import ValueSetAnalysis


def _ranges_overlap_aloc(ranges, aloc) -> bool:
    for r in ranges:
        if r[0] == "gr" and aloc[0] == "g" and r[1] <= aloc[1] <= r[2]:
            return True
        if (r[0] == "sr" and aloc[0] == "s" and aloc[1] == r[1]
                and r[2] <= aloc[2] <= r[3]):
            return True
    return False


def _range_pairs_overlap(ra, rb) -> bool:
    if ra[0] == "gr" and rb[0] == "gr":
        return ra[1] <= rb[2] and rb[1] <= ra[2]
    if ra[0] == "sr" and rb[0] == "sr":
        return ra[1] == rb[1] and ra[2] <= rb[3] and rb[2] <= ra[3]
    return False


def accesses_intersect(a: AccessSet, b: AccessSet) -> bool:
    """Could the two access sets touch a common memory word?"""
    if a.top or b.top:
        return not (a.is_empty() or b.is_empty())
    if a.alocs & b.alocs:
        return True
    for aloc in a.alocs:
        if _ranges_overlap_aloc(b.ranges, aloc):
            return True
    for aloc in b.alocs:
        if _ranges_overlap_aloc(a.ranges, aloc):
            return True
    for ra in a.ranges:
        for rb in b.ranges:
            if _range_pairs_overlap(ra, rb):
                return True
    return False


def _symbol_clamper(vsa: "ValueSetAnalysis"):
    """Clamp widened global ranges to the extent of the data symbol
    they start in — the classic VSA use of the symbol table to derive
    a-loc boundaries [5].  A loop whose index widened to ±2^32 still
    only aliases the array it indexes, not every global after it."""
    binary = vsa.binary
    data_end = binary.data_base + len(binary.data)
    bounds = sorted(a for a in binary.symbols.values()
                    if binary.data_base <= a < data_end)

    def clamp(acc: AccessSet) -> AccessSet:
        if not acc.ranges:
            return acc
        new_ranges = []
        for r in acc.ranges:
            if r[0] == "gr":
                lo, hi = r[1], r[2]
                if binary.data_base <= lo < data_end:
                    nxt = next((b for b in bounds if b > lo), data_end)
                    hi = min(hi, nxt - 1)
                new_ranges.append(("gr", lo, hi))
            else:
                new_ranges.append(r)
        return AccessSet(acc.alocs, tuple(new_ranges), acc.top)

    return clamp


def classify(vsa: "ValueSetAnalysis") -> AnalysisReport:
    """Build the final report from the fixpoint's accumulated events."""
    report = AnalysisReport()
    report.instructions = len(vsa.binary.text)
    report.functions = len(vsa.cfg.functions)
    report.contexts = len(vsa.contexts)
    report.vsa_iterations = vsa.iterations
    report.fp_store_sites = len(vsa.writes_fp)
    report.int_load_sites = len(vsa.reads_int)

    clamp = _symbol_clamper(vsa)

    # the union of everything FP stores may have written
    fp_union_alocs: set = set()
    fp_ranges: list = []
    fp_top = False
    for acc in vsa.writes_fp.values():
        acc = clamp(acc)
        fp_union_alocs |= acc.alocs
        fp_ranges.extend(acc.ranges)
        fp_top = fp_top or acc.top
    fp_set = AccessSet(frozenset(fp_union_alocs), tuple(fp_ranges), fp_top)
    report.fp_alocs = len(fp_union_alocs)
    any_fp = bool(fp_union_alocs or fp_ranges or fp_top)

    for addr, ev in sorted(vsa.reads_int.items()):
        if not any_fp:
            break
        access = clamp(ev.access)
        conservative = access.top or bool(access.ranges)
        if accesses_intersect(access, fp_set):
            report.sinks.append(addr)
            if conservative:
                report.conservative_reads += 1

    report.bitwise_sites = sorted(vsa.bitwise_sites)
    report.movq_sites = sorted(vsa.movq_sinks)

    for addr, name in sorted(vsa.cfg.extern_calls.items()):
        if name in INTERPOSED_EXTERNS or name in NO_FP_EXTERNS:
            continue
        report.extern_demote_sites.append((addr, name))
    return report
