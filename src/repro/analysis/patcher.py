"""The e9patch stand-in: install correctness traps in a Binary (§4.2).

    "Once sink instructions are identified, they are patched to
    explicitly trap into FPVM to demote the NaN-boxed value if it is
    discovered at run-time to truly be NaN-boxed, and then re-execute
    the instruction… For calls into external libraries… we demote
    NaN-boxed floating point registers at the call site."

Patches replace an instruction *in place, preserving its encoded
length* (e9patch's defining trick — no control-flow recovery needed),
with a ``fpvm_trap`` pseudo-instruction carrying the original.  The
machine delivers it to FPVM's correctness handler and then re-executes
the original, exactly the single-step-after-demote flow of the paper.
Patched binaries remain runnable without FPVM (the trap is then a
transparent no-op).
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.asm.program import Binary
from repro.analysis.report import AnalysisReport
from repro.analysis.signatures import fp_arg_count


def _patch(binary: Binary, addr: int, kind: str, **extra) -> None:
    original = binary.instruction_at(addr)
    if original.mnemonic in ("fpvm_trap", "fpvm_patch"):
        return  # idempotent / compiler-instrumented site
    payload = {"kind": kind, "original": original, **extra}
    trap = Instruction("fpvm_trap", (), addr, original.length,
                       payload=payload)
    binary.replace_instruction(addr, trap)


def apply_patches(binary: Binary, report: AnalysisReport,
                  conservative: bool = False) -> int:
    """Install every patch from ``report``; returns the patch count.

    ``conservative=True`` also patches the sinks the box-liveness
    refinement pruned (the v1 behavior) — used by the differential
    tests that prove pruned and conservative runs identical.  Extern
    call demotions take the callee's FP-argument count from the
    signature table instead of blanket-demoting all eight XMM argument
    registers.
    """
    n = 0
    sinks = (list(report.sinks) + list(report.pruned_sinks)
             if conservative else report.sinks)
    for addr in sinks:
        _patch(binary, addr, "sink")
        n += 1
    for addr in report.bitwise_sites:
        _patch(binary, addr, "sink", demote_xmm=True)
        n += 1
    for addr in report.movq_sites:
        _patch(binary, addr, "sink", demote_xmm=True)
        n += 1
    for addr, name in report.extern_demote_sites:
        _patch(binary, addr, "call_demote", callee=name,
               nfp=fp_arg_count(name))
        n += 1
    return n
