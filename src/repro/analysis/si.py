"""Strided intervals — the numeric half of the VSA domain [5].

A strided interval ``stride[lo, hi]`` represents
``{lo, lo+stride, …, hi}``.  ``TOP`` is the full 64-bit range.  The
operations implemented are exactly those address computations need:
addition, multiplication/shift by constants, and join-with-widening.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK64 = (1 << 64) - 1
_WIDEN_LIMIT = 1 << 40  # ranges beyond this collapse to TOP


@dataclass(frozen=True, slots=True)
class SI:
    """stride[lo, hi]; ``top`` subsumes everything."""

    lo: int = 0
    hi: int = 0
    stride: int = 0  # 0 <=> singleton (lo == hi)
    top: bool = False

    # ------------------------------------------------------------------ #
    @staticmethod
    def const(v: int) -> "SI":
        v &= _MASK64
        if v >= 1 << 63:
            v -= 1 << 64
        return SI(v, v, 0)

    @staticmethod
    def range(lo: int, hi: int, stride: int) -> "SI":
        if lo == hi:
            return SI(lo, lo, 0)
        if hi - lo > _WIDEN_LIMIT:
            return SI_TOP
        return SI(lo, hi, max(stride, 1))

    @property
    def is_const(self) -> bool:
        return not self.top and self.lo == self.hi

    @property
    def count(self) -> int:
        """Number of represented values (huge number if TOP)."""
        if self.top:
            return 1 << 64
        if self.stride == 0:
            return 1
        return (self.hi - self.lo) // self.stride + 1

    def values(self, limit: int = 4096):
        """Enumerate concrete values (caller checks count first)."""
        if self.top or self.count > limit:
            raise ValueError("strided interval too large to enumerate")
        return range(self.lo, self.hi + 1, self.stride or 1)

    # ------------------------------------------------------------------ #
    def add(self, other: "SI") -> "SI":
        if self.top or other.top:
            return SI_TOP
        lo = self.lo + other.lo
        hi = self.hi + other.hi
        if self.stride and other.stride:
            import math

            stride = math.gcd(self.stride, other.stride)
        else:
            stride = self.stride or other.stride
        return SI.range(lo, hi, stride)

    def add_const(self, c: int) -> "SI":
        if self.top:
            return SI_TOP
        return SI.range(self.lo + c, self.hi + c, self.stride)

    def mul_const(self, c: int) -> "SI":
        if self.top:
            return SI_TOP
        if c == 0:
            return SI.const(0)
        lo, hi = sorted((self.lo * c, self.hi * c))
        return SI.range(lo, hi, abs(self.stride * c) or 0)

    def mul(self, other: "SI") -> "SI":
        """General product (bounds from corner products, stride 1)."""
        if self.top or other.top:
            return SI_TOP
        if other.is_const:
            return self.mul_const(other.lo)
        if self.is_const:
            return other.mul_const(self.lo)
        corners = [a * b for a in (self.lo, self.hi)
                   for b in (other.lo, other.hi)]
        return SI.range(min(corners), max(corners), 1)

    def div_const(self, c: int) -> "SI":
        """Conservative truncating-division quotient range (c != 0)."""
        if self.top or c == 0:
            return SI_TOP
        corners = [self.lo // c, self.hi // c]
        return SI.range(min(corners) - 1, max(corners) + 1, 1)

    def shl_const(self, c: int) -> "SI":
        return self.mul_const(1 << c)

    def neg(self) -> "SI":
        if self.top:
            return SI_TOP
        return SI.range(-self.hi, -self.lo, self.stride)

    # ------------------------------------------------------------------ #
    def join(self, other: "SI") -> "SI":
        if self == other:
            return self
        if self.top or other.top:
            return SI_TOP
        import math

        lo = min(self.lo, other.lo)
        hi = max(self.hi, other.hi)
        strides = [s for s in (self.stride, other.stride) if s]
        diff = abs(self.lo - other.lo)
        if diff:
            strides.append(diff)
        stride = strides[0] if len(strides) == 1 else (
            math.gcd(*strides[:2]) if strides else 0
        )
        for s in strides[2:]:
            stride = math.gcd(stride, s)
        return SI.range(lo, hi, stride)

    def widen(self, other: "SI") -> "SI":
        """Accelerated join: unstable bounds jump to TOP-ish extents."""
        if self.top or other.top:
            return SI_TOP
        j = self.join(other)
        if j.top:
            return j
        lo = j.lo if other.lo >= self.lo else -(1 << 32)
        hi = j.hi if other.hi <= self.hi else (1 << 32)
        if other.lo >= self.lo and other.hi <= self.hi:
            return j
        return SI.range(lo, hi, j.stride or 8)

    def overlaps(self, lo: int, hi: int) -> bool:
        """Could any represented value fall within [lo, hi]?"""
        if self.top:
            return True
        return self.lo <= hi and lo <= self.hi

    def __str__(self) -> str:  # pragma: no cover - debug aid
        if self.top:
            return "TOP"
        if self.is_const:
            return f"{self.lo:#x}"
        return f"{self.stride}[{self.lo:#x},{self.hi:#x}]"


SI_TOP = SI(top=True)
