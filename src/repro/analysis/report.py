"""Analysis artifacts: read events, the final report, pretty printing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.domain import AccessSet


@dataclass(frozen=True, slots=True)
class ReadEvent:
    """One integer load site and where it may read from."""

    addr: int
    access: AccessSet
    width: int


@dataclass
class AnalysisReport:
    """Everything the patcher (and the curious user) needs.

    ``sinks`` are the VSA-confirmed integer loads of possibly-FP
    memory; ``bitwise_sites`` / ``movq_sites`` are the unconditionally
    patched bit-manipulation holes; ``extern_demote_sites`` are calls
    into un-interposed external code whose FP argument registers must
    be demoted (§4.2: "we demote NaN-boxed floating point registers at
    the call site").

    Analysis v2 adds the refinement record: ``pruned_sinks`` are
    candidate sinks the box-liveness pass proved dead (every FP word
    they may load is strongly overwritten by integer stores on all
    paths), ``provenance`` maps each candidate sink to the FP-store
    sites whose write sets intersect its load, and ``prune_reasons``
    states per site why it was kept or pruned.
    """

    sinks: list[int] = field(default_factory=list)
    bitwise_sites: list[int] = field(default_factory=list)
    movq_sites: list[int] = field(default_factory=list)
    extern_demote_sites: list[tuple[int, str]] = field(default_factory=list)

    #: refinement record (box-liveness pass)
    pruned_sinks: list[int] = field(default_factory=list)
    provenance: dict[int, list[int]] = field(default_factory=dict)
    prune_reasons: dict[int, str] = field(default_factory=dict)

    #: statistics
    instructions: int = 0
    fp_store_sites: int = 0
    int_load_sites: int = 0
    fp_alocs: int = 0
    vsa_iterations: int = 0
    functions: int = 0
    contexts: int = 0
    conservative_reads: int = 0  # loads classified sink due to TOP/ranges

    #: provenance of the report itself (analysis cache + pass timings)
    binary_hash: str = ""
    cache_hit: bool = False
    vsa_ms: float = 0.0
    refine_ms: float = 0.0

    @property
    def patch_count(self) -> int:
        return (len(self.sinks) + len(self.bitwise_sites)
                + len(self.movq_sites) + len(self.extern_demote_sites))

    @property
    def conservative_patch_count(self) -> int:
        """Patches a refinement-free (v1) analysis would install."""
        return self.patch_count + len(self.pruned_sinks)

    @property
    def prune_rate(self) -> float:
        """Fraction of candidate sink patches the refinement removed."""
        total = len(self.sinks) + len(self.pruned_sinks)
        return len(self.pruned_sinks) / total if total else 0.0

    def summary(self) -> str:
        return (
            f"VSA: {self.instructions} instrs, {self.functions} functions "
            f"({self.contexts} contexts), "
            f"{self.vsa_iterations} iterations; "
            f"{self.fp_store_sites} FP-store sources, "
            f"{self.int_load_sites} int-load candidates -> "
            f"{len(self.sinks)} sinks "
            f"({self.conservative_reads} conservative, "
            f"{len(self.pruned_sinks)} pruned), "
            f"{len(self.bitwise_sites)} bitwise, "
            f"{len(self.movq_sites)} movq, "
            f"{len(self.extern_demote_sites)} extern call demotions; "
            f"{self.patch_count} patches total"
        )

    def to_dict(self) -> dict:
        """JSON-ready document (``repro analyze --json``)."""
        return {
            "sinks": list(self.sinks),
            "pruned_sinks": list(self.pruned_sinks),
            "bitwise_sites": list(self.bitwise_sites),
            "movq_sites": list(self.movq_sites),
            "extern_demote_sites": [[a, n]
                                    for a, n in self.extern_demote_sites],
            "provenance": {str(a): list(ws)
                           for a, ws in sorted(self.provenance.items())},
            "prune_reasons": {str(a): r
                              for a, r in sorted(self.prune_reasons.items())},
            "stats": {
                "instructions": self.instructions,
                "functions": self.functions,
                "contexts": self.contexts,
                "vsa_iterations": self.vsa_iterations,
                "fp_store_sites": self.fp_store_sites,
                "int_load_sites": self.int_load_sites,
                "fp_alocs": self.fp_alocs,
                "conservative_reads": self.conservative_reads,
                "patch_count": self.patch_count,
                "conservative_patch_count": self.conservative_patch_count,
                "prune_rate": self.prune_rate,
            },
            "cache": {
                "binary_hash": self.binary_hash,
                "cache_hit": self.cache_hit,
            },
            "timings_ms": {"vsa": self.vsa_ms, "refine": self.refine_ms},
        }
