"""Analysis artifacts: read events, the final report, pretty printing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.domain import AccessSet


@dataclass(frozen=True, slots=True)
class ReadEvent:
    """One integer load site and where it may read from."""

    addr: int
    access: AccessSet
    width: int


@dataclass
class AnalysisReport:
    """Everything the patcher (and the curious user) needs.

    ``sinks`` are the VSA-confirmed integer loads of possibly-FP
    memory; ``bitwise_sites`` / ``movq_sites`` are the unconditionally
    patched bit-manipulation holes; ``extern_demote_sites`` are calls
    into un-interposed external code whose FP argument registers must
    be demoted (§4.2: "we demote NaN-boxed floating point registers at
    the call site").
    """

    sinks: list[int] = field(default_factory=list)
    bitwise_sites: list[int] = field(default_factory=list)
    movq_sites: list[int] = field(default_factory=list)
    extern_demote_sites: list[tuple[int, str]] = field(default_factory=list)

    #: statistics
    instructions: int = 0
    fp_store_sites: int = 0
    int_load_sites: int = 0
    fp_alocs: int = 0
    vsa_iterations: int = 0
    functions: int = 0
    conservative_reads: int = 0  # loads classified sink due to TOP/ranges

    @property
    def patch_count(self) -> int:
        return (len(self.sinks) + len(self.bitwise_sites)
                + len(self.movq_sites) + len(self.extern_demote_sites))

    def summary(self) -> str:
        return (
            f"VSA: {self.instructions} instrs, {self.functions} functions, "
            f"{self.vsa_iterations} iterations; "
            f"{self.fp_store_sites} FP-store sources, "
            f"{self.int_load_sites} int-load candidates -> "
            f"{len(self.sinks)} sinks "
            f"({self.conservative_reads} conservative), "
            f"{len(self.bitwise_sites)} bitwise, "
            f"{len(self.movq_sites)} movq, "
            f"{len(self.extern_demote_sites)} extern call demotions; "
            f"{self.patch_count} patches total"
        )
