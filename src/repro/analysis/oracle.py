"""Dynamic soundness oracle for the static analysis (analysis v2).

The static pass claims: every instruction that can consume a live
NaN-box without faulting is patched.  The refinement sharpens the
claim: some candidate loads are *proven* box-free and left unpatched.
Neither claim is testable by construction alone, so this module checks
them differentially, FlowFPX-style:

* an **instrumented, unpatched** run observes every place a live box
  is consumed by an integer load, a ``movq r64, xmm``, a bitwise FP
  op, or an un-interposed external call;
* :func:`validate` cross-checks the observations against the static
  report — every observed site must be statically patched
  (**soundness**, zero tolerance), and the fraction of patched sites
  that never consumed a box measures over-patching (**precision**,
  the spurious-trap rate of the paper's Enzo discussion).

The probes are host-side instruments: they charge no modeled cycles
and exist only while a :class:`SoundnessOracle` is attached via
``Machine.set_oracle``.  They make exactly one kind of state change:
**demote-on-observe**.  When a probe sees a live box about to be
consumed it writes the concrete IEEE bits back in place — precisely
what the patched run's correctness handler would have done at that
site — so the instrumented run's downstream state tracks the patched
run's.  Without this, the first consumed box leaks through integer
moves and contaminates later loads with sites the static analysis
rightly never classifies (in the patched run the box dies at its
first consumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.analysis.vsa import (INTERPOSED_EXTERNS, NO_FP_EXTERNS,
                                _INT_READERS)

if TYPE_CHECKING:  # pragma: no cover
    from repro.isa.instructions import Instruction
    from repro.machine.cpu import Machine


@dataclass
class Observation:
    """One site observed consuming a live NaN-box."""

    addr: int
    kind: str        # "sink" | "movq" | "bitwise" | "extern_arg"
    mnemonic: str
    count: int = 0
    #: for extern_arg: callee name and the highest boxed xmm index seen
    detail: dict = field(default_factory=dict)


class SoundnessOracle:
    """Records every consumption of a live box by non-FP machinery."""

    def __init__(self, fpvm) -> None:
        self.fpvm = fpvm
        self.observations: dict[tuple[str, int], Observation] = {}

    # ------------------------------------------------------------------ #
    def _note(self, addr: int, kind: str, mnemonic: str, **detail) -> None:
        obs = self.observations.get((kind, addr))
        if obs is None:
            obs = self.observations[(kind, addr)] = Observation(
                addr, kind, mnemonic)
        obs.count += 1
        for k, v in detail.items():
            if k == "max_xmm":
                obs.detail[k] = max(obs.detail.get(k, -1), v)
            else:
                obs.detail[k] = v

    def _boxed(self, bits: int) -> bool:
        return self.fpvm.emulator.is_live_box(bits)

    def _boxed_word(self, m: "Machine", ea: int, size: int) -> bool:
        """Is any aligned 8-byte word the access touches a live box?"""
        first = ea & ~7
        last = (ea + size - 1) & ~7
        for wa in range(first, last + 8, 8):
            try:
                if self._boxed(m.memory.read(wa, 8)):
                    return True
            except Exception:
                return False
        return False

    def _demote_word(self, m: "Machine", ea: int, size: int) -> None:
        """Demote-on-observe: replace every live box the access touches
        with its concrete IEEE bits, mirroring the patched run's
        correctness handler so downstream state stays comparable."""
        demote = self.fpvm.emulator.demote_bits
        first = ea & ~7
        last = (ea + size - 1) & ~7
        for wa in range(first, last + 8, 8):
            try:
                bits = m.memory.read(wa, 8)
                if self._boxed(bits):
                    m.memory.write(wa, 8, demote(bits))
            except Exception:
                return

    # ------------------------------------------------------------------ #
    # per-instruction inspection                                          #
    # ------------------------------------------------------------------ #

    def _read_mems(self, ins: "Instruction") -> list[Mem]:
        """The Mem operands an integer instruction *reads* — mirrors the
        VSA transfer function's read model exactly (the oracle validates
        the analysis, so both must agree on what a read is)."""
        mn = ins.mnemonic
        ops = ins.operands
        if mn in ("mov", "movabs", "movzx", "movsx"):
            return [op for op in ops[1:] if isinstance(op, Mem)]
        return [op for op in ops if isinstance(op, Mem)]

    def observe(self, m: "Machine", ins: "Instruction") -> None:
        """Pre-execution hook (legacy path); also the probe body."""
        mn = ins.mnemonic
        if mn == "movq":
            dst, src = ins.operands
            if isinstance(dst, Reg) and isinstance(src, Xmm):
                bits = m.regs.xmm_lo(src.index)
                if self._boxed(bits):
                    self._note(ins.addr, "movq", mn)
                    # the patched run demotes before the copy; mirror it
                    m.regs.set_xmm_lo(src.index,
                                      self.fpvm.emulator.demote_bits(bits))
            return
        if mn in ("xorpd", "andpd", "orpd", "andnpd"):
            hit = False
            for op in ins.operands:
                if isinstance(op, Xmm):
                    hit = (self._boxed(m.regs.xmm_lo(op.index))
                           or self._boxed(m.regs.xmm_hi(op.index)))
                elif isinstance(op, Mem):
                    hit = self._boxed_word(m, m.ea(op), 16)
                if hit:
                    self._note(ins.addr, "bitwise", mn)
                    return
            return
        if mn == "call":
            target = ins.operands[0]
            if not isinstance(target, Imm):
                return
            name = m._extern_names.get(target.value)
            if (name is None or name in INTERPOSED_EXTERNS
                    or name in NO_FP_EXTERNS):
                return
            boxed = [i for i in range(8)
                     if self._boxed(m.regs.xmm_lo(i))]
            if boxed:
                self._note(ins.addr, "extern_arg", mn, callee=name,
                           max_xmm=max(boxed))
                demote = self.fpvm.emulator.demote_bits
                for i in boxed:  # mirror the call-site demotion patch
                    m.regs.set_xmm_lo(i, demote(m.regs.xmm_lo(i)))
            return
        if mn in _INT_READERS:
            for op in self._read_mems(ins):
                ea = m.ea(op)
                if self._boxed_word(m, ea, op.size):
                    self._note(ins.addr, "sink", mn)
                    self._demote_word(m, ea, op.size)
                    return

    def compile_probe(self, m: "Machine",
                      ins: "Instruction") -> Callable[[], None] | None:
        """Predecode hook: a zero-arg probe, or None when the
        instruction can never consume a box."""
        mn = ins.mnemonic
        relevant = (
            mn in ("xorpd", "andpd", "orpd", "andnpd")
            or mn == "call"
            or (mn == "movq" and isinstance(ins.operands[0], Reg)
                and isinstance(ins.operands[1], Xmm))
            or (mn in _INT_READERS and bool(self._read_mems(ins)))
        )
        if not relevant:
            return None
        return lambda: self.observe(m, ins)


# --------------------------------------------------------------------------- #
# validation: static report vs. dynamic observations                           #
# --------------------------------------------------------------------------- #

@dataclass
class ValidationResult:
    """Cross-check of one workload's static report against an
    instrumented run."""

    label: str
    arith: str
    report: object = None
    observations: list[Observation] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    #: patched sink-kind sites (sink/bitwise/movq) that never fired
    spurious_sites: list[int] = field(default_factory=list)
    patched_site_count: int = 0
    observed_site_count: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def spurious_trap_rate(self) -> float:
        """Fraction of patched sink-kind sites that never consumed a
        box during the run — the paper's wasted dynamic checks."""
        return (len(self.spurious_sites) / self.patched_site_count
                if self.patched_site_count else 0.0)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (f"{self.label} [{self.arith}]: {status}; "
                f"{self.observed_site_count} dynamic box-consuming sites, "
                f"{self.patched_site_count} patched sites, "
                f"spurious rate {self.spurious_trap_rate:.0%}")

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "arith": self.arith,
            "ok": self.ok,
            "violations": list(self.violations),
            "observed_sites": self.observed_site_count,
            "patched_sites": self.patched_site_count,
            "spurious_sites": list(self.spurious_sites),
            "spurious_trap_rate": self.spurious_trap_rate,
            "observations": [
                {"addr": o.addr, "kind": o.kind, "mnemonic": o.mnemonic,
                 "count": o.count, **o.detail}
                for o in self.observations
            ],
        }


def validate(target, arith="mpfr:64", *, size: str = "test",
             config=None) -> ValidationResult:
    """Run the oracle cross-check for one target.

    Builds the target twice: once unpatched with the oracle attached
    (dynamic ground truth), once through the normal analyze-and-patch
    pipeline (static claim).  Every dynamically observed box-consuming
    site must be in the static patch set.

    The default arith is a boxing one (``mpfr:64``) — vanilla rarely
    NaN-boxes, so it exercises almost nothing.  An *unpatched* boxing
    run may crash once a box is consumed as a raw pointer/integer;
    observations gathered up to that point are still ground truth, so
    the crash is swallowed.
    """
    from repro.analysis import analyze
    from repro.analysis.signatures import fp_arg_count
    from repro.session import Session

    sess = Session(target, arith, size=size, patch=False, config=config,
                   label="oracle")
    oracle = SoundnessOracle(sess.fpvm)
    sess.machine.set_oracle(oracle)
    try:
        sess.run()
    except Exception:
        pass  # unpatched boxing runs may die; observations still count

    report = analyze(sess.machine.binary)
    res = ValidationResult(
        label=(target if isinstance(target, str) else "<builder>"),
        arith=arith if isinstance(arith, str) else str(arith),
        report=report,
    )
    res.observations = sorted(oracle.observations.values(),
                              key=lambda o: (o.kind, o.addr))
    res.observed_site_count = len(res.observations)

    sinks = set(report.sinks)
    pruned = set(report.pruned_sinks)
    bitwise = set(report.bitwise_sites)
    movq = set(report.movq_sites)
    externs = dict(report.extern_demote_sites)
    res.patched_site_count = len(sinks) + len(bitwise) + len(movq)

    fired: set[int] = set()
    for obs in res.observations:
        where = f"{obs.addr:#x} ({obs.mnemonic}, x{obs.count})"
        if obs.kind == "sink":
            fired.add(obs.addr)
            if obs.addr in pruned:
                res.violations.append(
                    f"sink {where}: consumed a live box but was PRUNED "
                    f"by the liveness refinement")
            elif obs.addr not in sinks:
                res.violations.append(
                    f"sink {where}: consumed a live box but was never "
                    f"classified a sink")
        elif obs.kind == "movq":
            fired.add(obs.addr)
            if obs.addr not in movq:
                res.violations.append(f"movq {where}: not patched")
        elif obs.kind == "bitwise":
            fired.add(obs.addr)
            if obs.addr not in bitwise:
                res.violations.append(f"bitwise {where}: not patched")
        elif obs.kind == "extern_arg":
            name = obs.detail.get("callee", "?")
            hi = obs.detail.get("max_xmm", 0)
            if obs.addr not in externs:
                res.violations.append(
                    f"extern call {where} to {name}: boxed xmm{hi} "
                    f"but no call-site demotion patch")
            elif hi >= fp_arg_count(name):
                res.violations.append(
                    f"extern call {where} to {name}: boxed xmm{hi} but "
                    f"signature table demotes only {fp_arg_count(name)}")
    res.spurious_sites = sorted((sinks | bitwise | movq) - fired)
    return res


def validate_registry(arith="mpfr:64", *, size: str = "test",
                      names=None) -> list[ValidationResult]:
    """Run :func:`validate` over the workload registry."""
    from repro.workloads import WORKLOADS

    return [validate(name, arith, size=size)
            for name in (names or sorted(WORKLOADS))]
