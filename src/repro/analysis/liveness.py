"""Box-liveness refinement (analysis v2, phase 3).

The source/sink intersection of :mod:`repro.analysis.sources_sinks` is
flow-insensitive: a load intersecting *any* FP store's write set is
patched, even when every path from those stores to the load overwrites
the shared words with integer data first.  This pass runs a forward
may-box dataflow over the CFG and prunes exactly those sinks:

* **gen** — an FP store marks its (symbol-clamped) write set as
  possibly box-holding;
* **kill** — an integer store whose access set is a *single exact
  global word* written with the full 8 bytes on every flow strongly
  clears that word.  Stack and heap a-locs are summary locations (one
  a-loc stands for many concrete frames/allocations), so they are
  never strongly killed — the textbook rule that keeps the pass sound
  under recursion and frame reuse;
* **call** — an internal call unions the transitive FP-write summary
  of the callee into the return-site state (the callee may re-box
  words the caller killed); the callee entry receives the caller's
  state so loads inside callees stay covered.  Interposed externs
  (libm, printf) never store FP data into program memory, so extern
  calls are no-ops here, mirroring the VSA's phase-2 treatment.

A sink is pruned iff its load access is exact (no TOP, no ranges) and
does not intersect the may-box set flowing into the load.  Integer
stores cannot re-introduce boxes because GPRs never hold live boxes
(the package-level soundness invariant), so a strongly cleared word
stays clear until the next FP store — which the dataflow re-gens.

The dynamic soundness oracle (:mod:`repro.analysis.oracle`) cross
checks every prune decision against instrumented runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.domain import AccessSet
from repro.analysis.sources_sinks import _symbol_clamper, accesses_intersect

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.report import AnalysisReport
    from repro.analysis.vsa import ValueSetAnalysis

_EMPTY = AccessSet(frozenset(), (), False)


def _union(a: AccessSet, b: AccessSet) -> AccessSet:
    """Join for the may-box lattice (ranges kept sorted so equality
    works as the fixpoint test)."""
    return AccessSet(a.alocs | b.alocs,
                     tuple(sorted(set(a.ranges) | set(b.ranges))),
                     a.top or b.top)


class BoxLiveness:
    """Forward may-box dataflow over one analyzed binary."""

    def __init__(self, vsa: "ValueSetAnalysis") -> None:
        self.vsa = vsa
        self.clamp = _symbol_clamper(vsa)
        #: may-box set flowing *into* each instruction
        self.in_states: dict[int, AccessSet] = {}
        self.iterations = 0
        self._callee_fp = self._function_fp_summaries()

    # ------------------------------------------------------------------ #
    def _function_fp_summaries(self) -> dict[int, AccessSet]:
        """Transitive clamped FP-write set per function entry."""
        cfg = self.vsa.cfg
        summary: dict[int, AccessSet] = {}
        for entry, addrs in cfg.functions.items():
            acc = _EMPTY
            for a in addrs:
                w = self.vsa.writes_fp.get(a)
                if w is not None:
                    acc = _union(acc, self.clamp(w))
            summary[entry] = acc
        callees: dict[int, set[int]] = {e: set() for e in cfg.functions}
        for site, callee in cfg.calls.items():
            owner = cfg.owner.get(site)
            if owner in callees:
                callees[owner].add(callee)
        changed = True
        while changed:
            changed = False
            for entry, outs in callees.items():
                acc = summary[entry]
                for c in outs:
                    acc = _union(acc, summary.get(c, _EMPTY))
                if acc != summary[entry]:
                    summary[entry] = acc
                    changed = True
        return summary

    # ------------------------------------------------------------------ #
    def _transfer(self, addr: int, st: AccessSet) -> AccessSet:
        vsa = self.vsa
        w = vsa.writes_int.get(addr)
        if w is not None and vsa.write_widths.get(addr, 0) >= 8:
            acc = self.clamp(w)
            if (not acc.top and not acc.ranges and len(acc.alocs) == 1):
                (aloc,) = acc.alocs
                if aloc[0] == "g" and aloc in st.alocs:
                    st = AccessSet(st.alocs - {aloc}, st.ranges, st.top)
        fp = vsa.writes_fp.get(addr)
        if fp is not None:
            st = _union(st, self.clamp(fp))
        return st

    def _merge(self, addr: int, state: AccessSet, work: list[int]) -> None:
        old = self.in_states.get(addr)
        if old is None:
            self.in_states[addr] = state
            work.append(addr)
            return
        new = _union(old, state)
        if new != old:
            self.in_states[addr] = new
            work.append(addr)

    def run(self) -> None:
        vsa = self.vsa
        cfg = vsa.cfg
        text_map = vsa.binary.text_map
        work: list[int] = []
        self._merge(vsa.binary.entry, _EMPTY, work)
        while work:
            addr = work.pop()
            st = self.in_states.get(addr)
            if st is None or addr not in text_map:
                continue
            self.iterations += 1
            out = self._transfer(addr, st)
            callee = cfg.calls.get(addr)
            if callee is not None:
                self._merge(callee, out, work)
                out = _union(out, self._callee_fp.get(callee, _EMPTY))
            for succ in cfg.succ.get(addr, ()):
                self._merge(succ, out, work)


def refine(vsa: "ValueSetAnalysis", report: "AnalysisReport") -> None:
    """Run the liveness pass and prune dead sinks from ``report``.

    Pruned addresses move from ``report.sinks`` to
    ``report.pruned_sinks``; every candidate gets a provenance list
    (the FP-store sites whose write sets intersect its load) and a
    human-readable keep/prune reason.
    """
    live = BoxLiveness(vsa)
    live.run()
    clamp = live.clamp
    fp_writes = [(a, clamp(acc)) for a, acc in sorted(vsa.writes_fp.items())]

    kept: list[int] = []
    for addr in report.sinks:
        access = clamp(vsa.reads_int[addr].access)
        report.provenance[addr] = [w for w, acc in fp_writes
                                   if accesses_intersect(acc, access)]
        if access.top or access.ranges:
            report.prune_reasons[addr] = \
                "kept: conservative access (TOP/range escapes the prune)"
            kept.append(addr)
            continue
        st = live.in_states.get(addr)
        if st is None:
            report.prune_reasons[addr] = \
                "kept: not reached by the liveness walk"
            kept.append(addr)
            continue
        if accesses_intersect(access, st):
            report.prune_reasons[addr] = \
                "kept: an FP-stored word may still be boxed at the load"
            kept.append(addr)
        else:
            report.prune_reasons[addr] = \
                "pruned: every intersecting word is strongly overwritten " \
                "by integer stores on all paths to the load"
            report.pruned_sinks.append(addr)
    report.sinks = kept
