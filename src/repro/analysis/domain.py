"""The VSA abstract domain: values, regions, a-locs, register states.

An abstract value is one of

* ``BOTTOM`` — uninitialized (identity of join)
* ``Num(si)`` — a plain number; absolute addresses into the data
  section are just numbers, so ``Num`` doubles as a *global* pointer
* ``StackAddr(fn, si)`` — an address within function ``fn``'s frame,
  offsets relative to the entry rsp
* ``HeapAddr(site, si)`` — an address into the heap object allocated
  at call site ``site`` (one summarized region per site)
* ``TOP`` — anything

A-locs (abstract memory cells, 8-byte granularity):

* ``("g", addr)`` — a global data word
* ``("s", fn, off)`` — a stack frame word
* ``("h", site)`` — an entire heap object (field-insensitive summary)

A memory access abstracts to an :class:`AccessSet`: a finite set of
a-locs, optional per-region *ranges* (for strided addresses too wide
to enumerate), or TOP (unknown pointer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.si import SI, SI_TOP


# --------------------------------------------------------------------------- #
# abstract values                                                              #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class Num:
    si: SI


@dataclass(frozen=True, slots=True)
class StackAddr:
    fn: int  # function entry address (region identity)
    si: SI   # offset(s) relative to entry rsp


@dataclass(frozen=True, slots=True)
class HeapAddr:
    site: int  # allocating call-site address
    si: SI


class _Top:
    __slots__ = ()

    def __repr__(self) -> str:
        return "TOP"


class _Bottom:
    __slots__ = ()

    def __repr__(self) -> str:
        return "BOTTOM"


TOP = _Top()
BOTTOM = _Bottom()

AbsVal = object  # Num | StackAddr | HeapAddr | TOP | BOTTOM


def join_vals(a: AbsVal, b: AbsVal) -> AbsVal:
    if a is BOTTOM or a == b:
        return b
    if b is BOTTOM:
        return a
    if a is TOP or b is TOP:
        return TOP
    if isinstance(a, Num) and isinstance(b, Num):
        return Num(a.si.join(b.si))
    if isinstance(a, StackAddr) and isinstance(b, StackAddr) and a.fn == b.fn:
        return StackAddr(a.fn, a.si.join(b.si))
    if isinstance(a, HeapAddr) and isinstance(b, HeapAddr) and a.site == b.site:
        return HeapAddr(a.site, a.si.join(b.si))
    return TOP


def widen_vals(a: AbsVal, b: AbsVal) -> AbsVal:
    if a is BOTTOM:
        return b
    if b is BOTTOM:
        return a
    if a is TOP or b is TOP:
        return TOP
    if isinstance(a, Num) and isinstance(b, Num):
        return Num(a.si.widen(b.si))
    if isinstance(a, StackAddr) and isinstance(b, StackAddr) and a.fn == b.fn:
        return StackAddr(a.fn, a.si.widen(b.si))
    if isinstance(a, HeapAddr) and isinstance(b, HeapAddr) and a.site == b.site:
        return HeapAddr(a.site, a.si.widen(b.si))
    return TOP


def add_val(a: AbsVal, b: AbsVal) -> AbsVal:
    """Abstract addition (address arithmetic)."""
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    if a is TOP or b is TOP:
        return TOP
    if isinstance(a, Num) and isinstance(b, Num):
        return Num(a.si.add(b.si))
    for addr, num in ((a, b), (b, a)):
        if isinstance(addr, StackAddr) and isinstance(num, Num):
            return StackAddr(addr.fn, addr.si.add(num.si))
        if isinstance(addr, HeapAddr) and isinstance(num, Num):
            return HeapAddr(addr.site, addr.si.add(num.si))
    return TOP


def sub_val(a: AbsVal, b: AbsVal) -> AbsVal:
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    if a is TOP or b is TOP:
        return TOP
    if isinstance(b, Num):
        neg = Num(b.si.neg())
        return add_val(a, neg)
    return TOP


# --------------------------------------------------------------------------- #
# access sets (resolved memory operands)                                       #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class AccessSet:
    """Where a memory operand may point.

    ``alocs`` is a frozenset of exact a-locs; ``ranges`` summarizes
    wide strided accesses as (("gr", lo, hi) | ("sr", fn, lo, hi));
    ``top`` means "anywhere".
    """

    alocs: frozenset = frozenset()
    ranges: tuple = ()
    top: bool = False

    @staticmethod
    def anywhere() -> "AccessSet":
        return AccessSet(top=True)

    def is_empty(self) -> bool:
        return not self.top and not self.alocs and not self.ranges


_ENUM_LIMIT = 512


def resolve_access(val: AbsVal, size: int = 8) -> AccessSet:
    """Abstract address value → set of 8-byte a-locs it may touch.

    BOTTOM (a not-yet-computed pointer on a not-yet-stable worklist
    path) resolves to the *empty* access set: the instruction will be
    re-analyzed once real values propagate to it.
    """
    if val is BOTTOM:
        return AccessSet()
    if val is TOP:
        return AccessSet.anywhere()
    if isinstance(val, Num):
        si = val.si
        if si.top:
            return AccessSet.anywhere()
        if si.count <= _ENUM_LIMIT:
            alocs = frozenset(
                ("g", w)
                for a in si.values()
                for w in range(a & ~7, ((a + size - 1) & ~7) + 1, 8)
            )
            return AccessSet(alocs)
        return AccessSet(ranges=(("gr", si.lo, si.hi + size - 1),))
    if isinstance(val, StackAddr):
        si = val.si
        if si.top:
            # unknown offset within one frame: summarize as a range
            return AccessSet(ranges=(("sr", val.fn, -(1 << 32), 1 << 32),))
        if si.count <= _ENUM_LIMIT:
            alocs = frozenset(
                ("s", val.fn, w)
                for o in si.values()
                for w in range(o - (o % 8),
                               (o + size - 1) - ((o + size - 1) % 8) + 1, 8)
            )
            return AccessSet(alocs)
        return AccessSet(ranges=(("sr", val.fn, si.lo, si.hi + size - 1),))
    if isinstance(val, HeapAddr):
        return AccessSet(frozenset({("h", val.site)}))
    return AccessSet.anywhere()  # pragma: no cover


# --------------------------------------------------------------------------- #
# register state                                                               #
# --------------------------------------------------------------------------- #

_TRACKED = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
            "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")

#: caller-saved GPRs havocked across calls (SysV)
CALLER_SAVED = ("rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11")


@dataclass(frozen=True, slots=True)
class RegState:
    """Immutable map register → abstract value (hash-consed by dict)."""

    regs: tuple  # tuple of AbsVal aligned with _TRACKED

    @staticmethod
    def bottom() -> "RegState":
        return RegState(tuple(BOTTOM for _ in _TRACKED))

    @staticmethod
    def entry(fn: int, base: "RegState | None" = None) -> "RegState":
        """State at a function entry: rsp = StackAddr(fn, 0)."""
        st = base if base is not None else RegState.top_state()
        return st.set("rsp", StackAddr(fn, SI.const(0)))

    @staticmethod
    def top_state() -> "RegState":
        return RegState(tuple(TOP for _ in _TRACKED))

    def get(self, name: str) -> AbsVal:
        return self.regs[_IDX[name]]

    def set(self, name: str, val: AbsVal) -> "RegState":
        i = _IDX[name]
        regs = list(self.regs)
        regs[i] = val
        return RegState(tuple(regs))

    def havoc(self, names) -> "RegState":
        regs = list(self.regs)
        for n in names:
            regs[_IDX[n]] = TOP
        return RegState(tuple(regs))

    def join(self, other: "RegState") -> "RegState":
        return RegState(tuple(
            join_vals(a, b) for a, b in zip(self.regs, other.regs)
        ))

    def widen(self, other: "RegState") -> "RegState":
        return RegState(tuple(
            widen_vals(a, b) for a, b in zip(self.regs, other.regs)
        ))


_IDX = {name: i for i, name in enumerate(_TRACKED)}
