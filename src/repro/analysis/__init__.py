"""Static binary analysis and transformation (paper §4.2).

x64 FP is not fully virtualizable: integer loads (``mov r,[m]``),
``movq r,xmm``, and the bitwise FP ops (``xorpd``/``andpd``/…) consume
NaN-boxed values without faulting.  This package finds those sites in
an *unmodified* binary and patches them with **correctness traps**
that demote boxes back to IEEE doubles before re-executing:

* :mod:`repro.analysis.si`      — strided-interval abstract values
* :mod:`repro.analysis.domain`  — registers/a-locs value-set domain
* :mod:`repro.analysis.cfg`     — control-flow recovery over a Binary
* :mod:`repro.analysis.vsa`     — worklist value-set analysis (each
  instruction is its own basic block, as in the paper) accumulating
  memory *source* (FP store) and candidate *sink* (int load) events
* :mod:`repro.analysis.sources_sinks` — classification of sinks
* :mod:`repro.analysis.patcher` — e9patch stand-in: installs the traps
* :mod:`repro.analysis.report`  — the analysis artifact

Soundness argument (tested in ``tests/integration/test_analysis.py``):
boxes live only in XMM registers and FP-stored 8-byte memory words.
They can enter a GPR only via (a) an integer load from FP-marked
memory — found by VSA; (b) ``movq r64, xmm`` — patched
unconditionally; both are demoted before execution.  Hence GPRs never
hold live boxes and integer stores never propagate them.  Bitwise FP
ops and un-interposed external calls are likewise patched.
"""

from repro.analysis.vsa import ValueSetAnalysis
from repro.analysis.patcher import apply_patches
from repro.analysis.report import AnalysisReport


def analyze(binary) -> AnalysisReport:
    """Run the static analysis; returns the report (no mutation)."""
    return ValueSetAnalysis(binary).run()


def analyze_and_patch(binary) -> AnalysisReport:
    """Run the analysis and install the correctness traps in place."""
    report = analyze(binary)
    apply_patches(binary, report)
    return report


__all__ = ["ValueSetAnalysis", "AnalysisReport", "analyze",
           "analyze_and_patch", "apply_patches"]
