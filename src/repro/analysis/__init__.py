"""Static binary analysis and transformation (paper §4.2).

x64 FP is not fully virtualizable: integer loads (``mov r,[m]``),
``movq r,xmm``, and the bitwise FP ops (``xorpd``/``andpd``/…) consume
NaN-boxed values without faulting.  This package finds those sites in
an *unmodified* binary and patches them with **correctness traps**
that demote boxes back to IEEE doubles before re-executing:

* :mod:`repro.analysis.si`      — strided-interval abstract values
* :mod:`repro.analysis.domain`  — registers/a-locs value-set domain
* :mod:`repro.analysis.cfg`     — control-flow recovery over a Binary
* :mod:`repro.analysis.vsa`     — worklist value-set analysis (each
  instruction is its own basic block, as in the paper) with k=1
  call-string contexts, accumulating memory *source* (FP store) and
  candidate *sink* (int load) events
* :mod:`repro.analysis.sources_sinks` — classification of sinks
* :mod:`repro.analysis.liveness` — box-liveness refinement: prunes
  sinks whose loaded words are strongly overwritten by integer stores
  on every path from the FP stores that marked them
* :mod:`repro.analysis.signatures` — per-callee FP-argument counts
  for call-site demotion
* :mod:`repro.analysis.oracle`  — dynamic soundness oracle: an
  instrumented unpatched run cross-checks every box consumption
  against the static patch set (``repro analyze --validate``)
* :mod:`repro.analysis.patcher` — e9patch stand-in: installs the traps
* :mod:`repro.analysis.report`  — the analysis artifact

Soundness argument (tested in ``tests/integration/test_analysis.py``):
boxes live only in XMM registers and FP-stored 8-byte memory words.
They can enter a GPR only via (a) an integer load from FP-marked
memory — found by VSA; (b) ``movq r64, xmm`` — patched
unconditionally; both are demoted before execution.  Hence GPRs never
hold live boxes and integer stores never propagate them.  Bitwise FP
ops and un-interposed external calls are likewise patched.  The
liveness refinement preserves the invariant: it only unpatches a load
when the words it reads were strongly overwritten by integer stores —
which, by the same GPR invariant, cannot have stored a box — since
the last FP store on every path (see :mod:`repro.analysis.liveness`).

Reports are cached by :meth:`repro.asm.program.Binary.content_hash`,
so an experiment matrix that rebuilds the same workload per cell pays
for one analysis; cached reports are shared objects and must not be
mutated by callers.
"""

from time import perf_counter

from repro.analysis.vsa import ValueSetAnalysis
from repro.analysis.liveness import refine
from repro.analysis.patcher import apply_patches
from repro.analysis.report import AnalysisReport

#: content-hash -> report; process-wide (matrix runs skip re-analysis)
_REPORT_CACHE: dict[str, AnalysisReport] = {}
#: cumulative hit/miss counters for the cache (trace + bench surface)
CACHE_STATS = {"hits": 0, "misses": 0}


def analyze(binary, *, cache: bool = True) -> AnalysisReport:
    """Run the static analysis; returns the report (no mutation).

    The report always carries the box-liveness refinement record
    (``pruned_sinks`` / ``provenance``); whether the pruned sites stay
    unpatched is the patcher's choice (``apply_patches(conservative=)``).
    """
    key = binary.content_hash()
    if cache:
        hit = _REPORT_CACHE.get(key)
        if hit is not None:
            CACHE_STATS["hits"] += 1
            hit.cache_hit = True
            return hit
        CACHE_STATS["misses"] += 1
    t0 = perf_counter()
    vsa = ValueSetAnalysis(binary)
    report = vsa.run()
    report.vsa_ms = (perf_counter() - t0) * 1e3
    t1 = perf_counter()
    refine(vsa, report)
    report.refine_ms = (perf_counter() - t1) * 1e3
    report.binary_hash = key
    report.cache_hit = False
    if cache:
        _REPORT_CACHE[key] = report
    return report


def clear_cache() -> None:
    """Drop all cached reports (tests / fresh measurement runs)."""
    _REPORT_CACHE.clear()
    CACHE_STATS["hits"] = CACHE_STATS["misses"] = 0


def analyze_and_patch(binary, *, conservative: bool = False,
                      cache: bool = True) -> AnalysisReport:
    """Run the analysis and install the correctness traps in place.

    ``conservative=True`` also patches the refinement-pruned sinks —
    the v1 behavior, kept for differential testing (pruned and
    conservative runs must be observationally identical).
    """
    report = analyze(binary, cache=cache)
    apply_patches(binary, report, conservative=conservative)
    return report


__all__ = ["ValueSetAnalysis", "AnalysisReport", "analyze",
           "analyze_and_patch", "apply_patches", "clear_cache",
           "CACHE_STATS"]
