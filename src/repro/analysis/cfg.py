"""Control-flow recovery over a Binary (the "preliminary CFG", §4.2).

Each instruction is its own node (the paper: "our VSA treats each
instruction as a basic block").  Direct branch targets come from
immediates; ``call`` produces both a fall-through edge (with a
havoc-summary transfer) and an entry edge into the callee.  Indirect
jumps are conservatively treated as analysis-terminating for the path
(none of our compiler's output uses them; the assembler can).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.operands import Imm
from repro.asm.program import Binary

_JCC = frozenset("j" + cc for cc in (
    "e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns",
    "p", "np"))


@dataclass
class CFG:
    """Per-instruction successor map plus call structure."""

    binary: Binary
    succ: dict[int, list[int]] = field(default_factory=dict)
    #: call-site addr -> callee entry (internal calls only)
    calls: dict[int, int] = field(default_factory=dict)
    #: call-site addr -> import name (external calls)
    extern_calls: dict[int, str] = field(default_factory=dict)
    #: function entry addr -> set of instruction addrs (ownership)
    functions: dict[int, set[int]] = field(default_factory=dict)
    #: instruction addr -> owning function entry
    owner: dict[int, int] = field(default_factory=dict)
    #: addresses of `ret` instructions per function
    rets: dict[int, list[int]] = field(default_factory=dict)

    @staticmethod
    def build(binary: Binary) -> "CFG":
        cfg = CFG(binary)
        imports_rev = {a: n for n, a in binary.imports.items()}
        text = binary.text_map
        for ins in binary.text:
            cfg.succ[ins.addr] = cfg._successors(ins, text, imports_rev, cfg)
        cfg._assign_owners()
        return cfg

    # ------------------------------------------------------------------ #
    def _successors(self, ins: Instruction, text, imports_rev, cfg):
        mn = ins.mnemonic
        if mn == "ret" or mn == "hlt" or mn == "ud2":
            return []
        if mn == "jmp":
            t = ins.operands[0]
            if isinstance(t, Imm) and t.value in text:
                return [t.value]
            return []  # indirect jump: path ends conservatively
        if mn in _JCC:
            t = ins.operands[0]
            out = [ins.next_addr]
            if isinstance(t, Imm) and t.value in text:
                out.append(t.value)
            return out
        if mn == "call":
            t = ins.operands[0]
            if isinstance(t, Imm):
                if t.value in imports_rev:
                    cfg.extern_calls[ins.addr] = imports_rev[t.value]
                elif t.value in text:
                    cfg.calls[ins.addr] = t.value
            return [ins.next_addr]
        if mn in ("fpvm_trap", "fpvm_patch") and ins.payload:
            # analyzing an already-patched binary: look through the trap
            return self._successors(ins.payload["original"], text,
                                    imports_rev, cfg)
        return [ins.next_addr]

    # ------------------------------------------------------------------ #
    def _assign_owners(self) -> None:
        """Partition instructions into functions by reachability from
        function symbols (entry + call targets)."""
        entries = set(self.calls.values())
        entries.add(self.binary.entry)
        for name, addr in self.binary.function_symbols().items():
            # any named text symbol that is call-reachable or the entry
            if addr in entries or name == "main":
                entries.add(addr)
        for entry in sorted(entries):
            seen: set[int] = set()
            stack = [entry]
            while stack:
                a = stack.pop()
                if a in seen or a in self.owner:
                    continue
                seen.add(a)
                self.owner[a] = entry
                ins = self.binary.text_map.get(a)
                if ins is None:
                    continue
                if ins.mnemonic == "ret":
                    self.rets.setdefault(entry, []).append(a)
                stack.extend(self.succ.get(a, ()))
            self.functions[entry] = seen
