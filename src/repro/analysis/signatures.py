"""Per-callee FP-argument signatures for call-site demotion.

The paper demotes "NaN-boxed floating point registers at the call
site" of external functions.  The System V x86-64 ABI passes FP
arguments in ``xmm0..xmm7``, but almost no libm entry point takes
eight: ``sin`` takes one, ``pow`` two, ``fma`` three.  Demoting all
eight registers at every external call is pure overhead — unboxing
values the callee never reads.

This table records how many XMM argument registers can actually carry
payloads into each known external.  Unknown callees fall back to the
full ABI window (``DEFAULT_FP_ARGS``), which is the sound direction:
demoting too many registers is wasted work, demoting too few would
leak a box into uninstrumented code.

The dynamic oracle (:mod:`repro.analysis.oracle`) checks the table at
run time: a live box observed in ``xmmN`` at a call with ``nfp <= N``
is reported as a soundness violation.
"""

from __future__ import annotations

#: ABI fallback: all XMM argument registers
DEFAULT_FP_ARGS = 8

#: name -> number of leading xmm registers that may carry FP payloads
FP_ARG_COUNTS: dict[str, int] = {
    # unary libm
    "sin": 1, "cos": 1, "tan": 1, "asin": 1, "acos": 1, "atan": 1,
    "sinh": 1, "cosh": 1, "tanh": 1,
    "exp": 1, "exp2": 1, "expm1": 1,
    "log": 1, "log2": 1, "log10": 1, "log1p": 1,
    "sqrt": 1, "cbrt": 1, "fabs": 1,
    "floor": 1, "ceil": 1, "trunc": 1, "round": 1, "rint": 1,
    "nearbyint": 1, "ldexp": 1,  # ldexp(double, int): one FP argument
    # binary libm
    "atan2": 2, "pow": 2, "fmod": 2, "remainder": 2,
    "fmin": 2, "fmax": 2, "fdim": 2, "hypot": 2, "copysign": 2,
    # ternary
    "fma": 3,
    # integer-only / pointer-only libc entry points
    "malloc": 0, "calloc": 0, "free": 0, "memset": 0, "strlen": 0,
    "exit": 0, "abort": 0, "rand": 0, "srand": 0, "clock": 0,
    "putchar": 0, "puts": 0,
}


def fp_arg_count(name: str) -> int:
    """XMM registers to demote before calling extern ``name``."""
    return FP_ARG_COUNTS.get(name, DEFAULT_FP_ARGS)
