"""Interval-range abstract interpretation for the NSan-mode sanitizer.

The sanitizer (:mod:`repro.fpvm.sanitize`) runs every value-producing
FP site dual-path — the IEEE result the program sees plus an MPFR-style
high-precision shadow — and flags sites whose relative divergence
exceeds a threshold.  Most sites can never diverge meaningfully: a
loop index converted with ``cvtsi2sd`` and scaled by a constant is
exact to a rounding, whatever the loop bounds.  This pass proves that
*statically*, so the runtime can skip dual-path instrumentation at
proven sites entirely (the PR-5 box-free fast-path pattern applied to
sanitizing).

It is a second worklist fixpoint over the same ``(ctx, addr)`` keys as
the value-set analysis (:mod:`repro.analysis.vsa`), reusing the
converged VSA states for every addressing question (which stack slot,
which global word, what integer range feeds a conversion) and
:class:`repro.arith.interval.IntervalArithmetic` as the transfer-
function library for the value question.  The abstract value for one
FP location is

    ``Rng(lo, hi, err)``

where ``[lo, hi]`` is an outward-rounded interval containing every
IEEE value the location can hold, and ``err`` bounds the *relative
divergence* the sanitizer could measure between that IEEE value and
its high-precision shadow::

    |ieee - shadow| / max(|ieee|, |shadow|, 1e-300)  <=  err

— exactly the metric :func:`repro.fpvm.sanitize.relative_error`
checks, so ``err <= threshold/8`` at a site is a proof (with an 8x
safety margin over the first-order propagation slop) that the site
can never flag.  A site is exempt only if additionally its interval is
finite: an overflow to IEEE infinity against a finite shadow is an
instant divergence no error bound survives.

Error transfer is first-order with explicit guards for the regimes
where first-order breaks down (operands whose interval reaches below
the 1e-300 check floor, divergent sqrt arguments straddling zero,
round-to-integer discontinuities); anything outside the trusted regime
degrades to ``err = inf``, i.e. "never exempt".  Catastrophic
cancellation is caught by construction: ``add``/``sub`` divide the
absolute divergence bound by the smallest magnitude the *result*
interval allows, which goes to the 1e-300 floor exactly when the
subtraction can cancel.

Soundness is cross-checked dynamically by
:func:`validate_sanitize_exemptions` (oracle style): a full dual-path
run — exemption disabled — must flag no statically proven site.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from time import perf_counter

from repro.analysis.domain import Num, add_val
from repro.analysis.si import SI
from repro.analysis.vsa import (INTERPOSED_EXTERNS, NO_FP_EXTERNS,
                                ValueSetAnalysis, _WIDEN_AFTER)
from repro.arith.interval import IntervalArithmetic, _is_nai
from repro.isa.operands import Mem, Reg, Xmm
from repro.isa.registers import canonical

_IV = IntervalArithmetic()
_INF = math.inf
#: unit roundoff of binary64
_U = 2.0 ** -53
#: the sanitizer's relative-error denominator floor (keep in sync with
#: repro.fpvm.sanitize.relative_error)
_TINY = 1e-300
#: first-order error propagation is only trusted while incoming
#: relative divergence is far below 1; beyond the cap, degrade to inf
_ERR_CAP = 1e-4
#: multiplicative slack absorbing the dropped second-order terms
_SLOP = 1.01
#: integers of magnitude <= 2^53 convert to binary64 exactly
_EXACT_INT = float(1 << 53)

#: externals that neither write program-visible memory nor need FP
#: state preserved across them (libm and output are interposed; the
#: allocator family takes no FP and touches no caller data we track)
_SAFE_EXTERNS = (NO_FP_EXTERNS | INTERPOSED_EXTERNS) - {"memset"}

#: mnemonics the dual-path sanitizer checks dynamically (value-producing
#: FP ops whose destination is re-boxed; see sanitize.CHECKED_OPS)
CHECKED_SITE_MNEMONICS = frozenset({
    "addsd", "subsd", "mulsd", "divsd", "minsd", "maxsd", "sqrtsd",
    "fmaddsd", "cvtsi2sd", "cvtss2sd", "roundsd",
    "addpd", "subpd", "mulpd", "divpd", "minpd", "maxpd", "sqrtpd",
})

_FP_BINOPS = frozenset({"addsd", "subsd", "mulsd", "divsd",
                        "minsd", "maxsd"})
_FP_PACKED = frozenset({"addpd", "subpd", "mulpd", "divpd",
                        "minpd", "maxpd", "sqrtpd"})
_FP_F32 = frozenset({"addss", "subss", "mulss", "divss"})

_SIGN_MASK = 0x8000000000000000
_ABS_MASK = 0x7FFFFFFFFFFFFFFF


# --------------------------------------------------------------------------- #
# the abstract FP value                                                        #
# --------------------------------------------------------------------------- #

class _FpTop:
    __slots__ = ()

    def __repr__(self) -> str:
        return "FPTOP"


class _FpBot:
    __slots__ = ()

    def __repr__(self) -> str:
        return "FPBOT"


FTOP = _FpTop()   # unknown value / unknown divergence
FBOT = _FpBot()   # no value yet (identity of join)


@dataclass(frozen=True, slots=True)
class Rng:
    """Interval of possible IEEE values + relative-divergence bound.

    ``err == 0.0`` is a *bit-exactness* claim, not merely a tight
    bound: every path producing this value committed no rounding, so
    the high-precision shadow equals the IEEE value exactly.  Only
    err-0 sites are safe to exempt from dual-path instrumentation by
    default — dropping a bit-identical shadow cannot change any
    downstream check's verdict, whereas dropping a shadow that differs
    by even one rounding (err ~ u) erases exactly the information a
    downstream cancellation would have amplified into a flag (the
    ``(big+1)-big`` pattern: the addition's u-sized rounding IS the
    bug the subtraction reveals).

    ``integral`` claims every concrete value is a mathematical integer
    — the exactness engine: integer add/sub/mul with results within
    2^53 are closed under IEEE binary64 and round nowhere.
    """

    lo: float
    hi: float
    err: float
    integral: bool = False


def _mk_rng(iv, err: float, integral: bool = False):
    """Build an Rng, normalizing the untrustworthy regimes to FTOP/inf."""
    if _is_nai(iv) or math.isnan(err):
        return FTOP
    if err > _ERR_CAP:
        err = _INF
    return Rng(iv[0], iv[1], err, integral)


def _join_fp(a, b, widen: bool = False):
    if a is FBOT:
        return b
    if b is FBOT:
        return a
    if a is FTOP or b is FTOP:
        return FTOP
    lo = min(a.lo, b.lo)
    hi = max(a.hi, b.hi)
    err = max(a.err, b.err)
    if widen:
        if b.lo < a.lo:
            lo = -_INF
        if b.hi > a.hi:
            hi = _INF
        if b.err > a.err:
            err = _INF
    return Rng(lo, hi, err, a.integral and b.integral)


def _min_abs(lo: float, hi: float) -> float:
    if lo <= 0.0 <= hi:
        return 0.0
    return min(abs(lo), abs(hi))


def _max_abs(lo: float, hi: float) -> float:
    return max(abs(lo), abs(hi))


def _abs_div(v: Rng) -> float:
    """Bound on |shadow - ieee| for a value with divergence ``v.err``."""
    if v.err == 0.0:
        return 0.0
    if v.err > _ERR_CAP:
        return _INF
    return v.err * (_max_abs(v.lo, v.hi) * _SLOP + _TINY)


# --------------------------------------------------------------------------- #
# the abstract state: xmm lane-0 values + FP stack slots of the frame          #
# --------------------------------------------------------------------------- #

_XMM_TOP = tuple(FTOP for _ in range(16))


@dataclass(frozen=True, slots=True)
class FPState:
    """Per-(ctx, addr) flow state.

    Stack slots absent from ``stack`` are *unknown* (FTOP), not
    "unwritten": unlike the VSA — which may be optimistic because
    compiled code never reads uninitialized slots — a proof pass must
    assume a callee may have written any slot it cannot see.
    """

    xmm: tuple
    stack: tuple  # sorted tuple of (aloc, Rng)

    def xmm_get(self, i: int):
        return self.xmm[i]

    def xmm_set(self, i: int, val) -> "FPState":
        regs = list(self.xmm)
        regs[i] = val
        return FPState(tuple(regs), self.stack)

    def stack_get(self, key):
        for k, v in self.stack:
            if k == key:
                return v
        return FTOP

    def stack_set(self, key, val) -> "FPState":
        items = [(k, v) for k, v in self.stack if k != key]
        if val is not FTOP:  # storing FTOP == erasing (absent means FTOP)
            items.append((key, val))
        items.sort(key=lambda kv: repr(kv[0]))
        return FPState(self.xmm, tuple(items))

    def clobber_stack(self) -> "FPState":
        return FPState(self.xmm, ())

    def join(self, other: "FPState", widen: bool = False) -> "FPState":
        xmm = tuple(_join_fp(a, b, widen)
                    for a, b in zip(self.xmm, other.xmm))
        keys = {k for k, _ in self.stack} & {k for k, _ in other.stack}
        items = []
        for k in keys:
            v = _join_fp(self.stack_get(k), other.stack_get(k), widen)
            if v is not FTOP:
                items.append((k, v))
        items.sort(key=lambda kv: repr(kv[0]))
        return FPState(xmm, tuple(items))


# --------------------------------------------------------------------------- #
# the analysis                                                                 #
# --------------------------------------------------------------------------- #

class RangeAnalysis:
    """Worst-case rounding-divergence bounds per checked FP site."""

    def __init__(self, binary, threshold: float = 1e-6) -> None:
        self.binary = binary
        self.threshold = threshold
        self.vsa = ValueSetAnalysis(binary)
        self.vsa.run()
        self.cfg = self.vsa.cfg
        self.states: dict[tuple[int, int], FPState] = {}
        self.join_counts: dict[tuple[int, int], int] = {}
        self.iterations = 0
        self._ctx = 0
        # flow-insensitive FP view of global data words, seeded from the
        # static data image, weak-updated with reader re-queueing
        self.g_vals: dict[tuple, object] = {}
        self.g_readers: dict[tuple, set[tuple[int, int]]] = {}
        self._poisoned = False
        self._recording = False
        #: site addr -> Rng | FTOP, joined over contexts at the fixpoint
        self.site_bounds: dict[int, object] = {}

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        entry = self.binary.entry
        init = FPState(_XMM_TOP, ())
        work: list[tuple[int, int]] = []
        self._merge_in((0, entry), init, work)
        while work:
            key = work.pop()
            ctx, addr = key
            state = self.states.get(key)
            ins = self.binary.text_map.get(addr)
            if state is None or ins is None:
                continue
            self.iterations += 1
            self._ctx = ctx
            for succ_key, succ_state in self._transfer(ins, state, work):
                self._merge_in(succ_key, succ_state, work)
        # record site bounds from the converged states only (transient
        # pre-widening enumerations would otherwise pollute the proofs;
        # same rationale as ValueSetAnalysis._record_at_fixpoint)
        self._recording = True
        sink: list = []
        for (ctx, addr), st in sorted(self.states.items()):
            ins = self.binary.text_map.get(addr)
            if ins is None:
                continue
            self._ctx = ctx
            self._transfer(ins, st, sink)

    def _merge_in(self, key, state: FPState, work) -> None:
        old = self.states.get(key)
        if old is None:
            self.states[key] = state
            work.append(key)
            return
        count = self.join_counts.get(key, 0) + 1
        self.join_counts[key] = count
        new = old.join(state, widen=count > _WIDEN_AFTER)
        if new != old:
            self.states[key] = new
            work.append(key)

    # ------------------------------------------------------------------ #
    # memory model (addressing questions answered by the converged VSA)   #
    # ------------------------------------------------------------------ #

    def _vsa_state(self, addr: int):
        return self.vsa.states.get((self._ctx, addr))

    def _mem_cell(self, ins, mem: Mem):
        """Resolve a Mem operand to ("s", aloc) | ("g", [gkeys]) | None.

        ``None`` means the address is unknown — loads are FTOP, stores
        poison everything.
        """
        vst = self._vsa_state(ins.addr)
        if vst is None:
            return None
        ea = self.vsa._eval_ea(mem, vst)
        key = ValueSetAnalysis._stack_aloc(ea)
        if key is not None:
            return ("s", key)
        if isinstance(ea, Num) and ea.si.is_const:
            a = ea.si.lo
            if a % 8:
                return None  # misaligned double: give up on the cell
            return ("g", [("g", a)])
        if isinstance(ea, Num) and not ea.si.top:
            keys = self.vsa._clamped_range_alocs(ea.si.lo,
                                                 ea.si.hi + mem.size - 1)
            if keys is not None:
                return ("g", keys)
        return None

    def _static_fp(self, gkey):
        """FP seed of a data word: its initial bytes read as binary64."""
        addr = gkey[1]
        data = self.binary.data
        off = addr - self.binary.data_base
        if 0 <= off and off + 8 <= len(data):
            bits = int.from_bytes(data[off:off + 8], "little")
            v = struct.unpack("<d", struct.pack("<Q", bits))[0]
            if math.isfinite(v):
                return Rng(v, v, 0.0, v.is_integer() and abs(v) <= _EXACT_INT)
        return FTOP

    def _g_read(self, ins, keys, st: FPState):
        val = FBOT
        for gkey in keys:
            self.g_readers.setdefault(gkey, set()).add(
                (self._ctx, ins.addr))
            if self._poisoned:
                return FTOP
            cur = self.g_vals.get(gkey)
            if cur is None:
                cur = self._static_fp(gkey)
            val = _join_fp(val, cur)
        return val if val is not FBOT else FTOP

    def _g_update(self, gkey, val, work) -> None:
        """Monotone weak update; re-queues affected readers."""
        old = self.g_vals.get(gkey)
        seeded = old if old is not None else self._static_fp(gkey)
        new = _join_fp(seeded, val)
        if new != seeded or gkey not in self.g_vals:
            self.g_vals[gkey] = new
            for reader in self.g_readers.get(gkey, ()):
                work.append(reader)

    def _poison_all(self, work) -> None:
        """A write through an unknown pointer: every FP global is
        suspect, forever (flow-insensitive map)."""
        if self._poisoned:
            return
        self._poisoned = True
        for readers in self.g_readers.values():
            work.extend(readers)

    def _load(self, ins, mem: Mem, st: FPState):
        cell = self._mem_cell(ins, mem)
        if cell is None:
            return FTOP
        kind, keys = cell
        if kind == "s":
            return st.stack_get(keys)
        return self._g_read(ins, keys, st)

    def _store(self, ins, mem: Mem, st: FPState, val, work) -> FPState:
        cell = self._mem_cell(ins, mem)
        if cell is None:
            self._poison_all(work)
            return st.clobber_stack()
        kind, keys = cell
        wide = mem.size > 8
        if kind == "s":
            out = st.stack_set(keys, val)
            if wide:
                out = out.stack_set((keys[0], keys[1], keys[2] + 8), FTOP)
            return out
        weak = len(keys) > 1
        for gkey in keys:
            self._g_update(gkey, FTOP if weak else val, work)
        if wide and len(keys) == 1:
            self._g_update(("g", keys[0][1] + 8), FTOP, work)
        return st

    def _clobber_mem(self, ins, mem: Mem, st: FPState, work) -> FPState:
        """An integer store: whatever FP view the cell had is gone."""
        return self._store(ins, mem, st, FTOP, work)

    # ------------------------------------------------------------------ #
    # error transfer                                                      #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _exact_integer(a, b, iv) -> bool:
        """Integer +-* with the result provably within 2^53 commits no
        rounding: the result is bit-exact (err 0) and integral."""
        return (a.err == 0.0 and b.err == 0.0
                and a.integral and b.integral
                and _max_abs(*iv) <= _EXACT_INT)

    def _binop(self, mn: str, a, b):
        if a is FTOP or b is FTOP:
            return FTOP
        ia, ib = (a.lo, a.hi), (b.lo, b.hi)
        ea, eb = a.err, b.err
        if mn == "addsd" or mn == "subsd":
            iv = _IV.add(ia, ib) if mn == "addsd" else _IV.sub(ia, ib)
            if _is_nai(iv):
                return FTOP
            if self._exact_integer(a, b, iv):
                return _mk_rng(iv, 0.0, True)
            if ea == 0.0 and eb == 0.0:
                return _mk_rng(iv, _U * _SLOP)
            absr = _abs_div(a) + _abs_div(b)
            err = _U * _SLOP + absr / max(_min_abs(*iv), _TINY)
            return _mk_rng(iv, err)
        if mn == "mulsd":
            iv = _IV.mul(ia, ib)
            if _is_nai(iv):
                return FTOP
            if self._exact_integer(a, b, iv):
                return _mk_rng(iv, 0.0, True)
            if ea == 0.0 and eb == 0.0:
                return _mk_rng(iv, _U * _SLOP)
            if ea > _ERR_CAP or eb > _ERR_CAP:
                return _mk_rng(iv, _INF)
            err = (ea + eb + ea * eb + _U) * _SLOP
            # the pointwise (multiplicative) bound needs the operand's
            # IEEE magnitude to stay above the check's 1e-300 floor;
            # below it, bound the absolute divergence against the floor
            if eb and _min_abs(*ib) < _TINY:
                err += eb * _max_abs(*ia) * _SLOP
            if ea and _min_abs(*ia) < _TINY:
                err += ea * _max_abs(*ib) * _SLOP
            return _mk_rng(iv, err)
        if mn == "divsd":
            iv = _IV.div(ia, ib)
            if _is_nai(iv):
                return FTOP
            if ea == 0.0 and eb == 0.0:
                return _mk_rng(iv, _U * _SLOP)
            if ea > _ERR_CAP or eb > _ERR_CAP:
                return _mk_rng(iv, _INF)
            if eb and _min_abs(*ib) < _TINY:
                return _mk_rng(iv, _INF)  # divergent near-floor divisor
            err = ((ea + eb) / (1.0 - eb) + _U) * _SLOP
            if ea and _min_abs(*ia) < _TINY:
                err += ea / (_min_abs(*ib) * (1.0 - eb)) * _SLOP
            return _mk_rng(iv, err)
        # minsd/maxsd: x64 semantics pick one operand; the sanitizer's
        # dual value carries the picked operand's own shadow, so the
        # result's divergence is the picked operand's
        # minsd/maxsd copy one operand bit-for-bit, so err 0 operands
        # stay exact and integer-ness survives
        iv = _IV.min(ia, ib) if mn == "minsd" else _IV.max(ia, ib)
        if _is_nai(iv):
            return FTOP
        return _mk_rng(iv, max(ea, eb), a.integral and b.integral)

    def _sqrt(self, a):
        if a is FTOP:
            return FTOP
        iv = _IV.sqrt((a.lo, a.hi))
        if _is_nai(iv):
            return FTOP
        if a.err == 0.0:
            return _mk_rng(iv, _U * _SLOP)
        # a divergent argument straddling zero can push the shadow
        # negative: high-precision sqrt returns NaN against a finite
        # IEEE result — unbounded divergence
        if a.lo <= _TINY or _abs_div(a) >= a.lo:
            return _mk_rng(iv, _INF)
        return _mk_rng(iv, (a.err + _U) * _SLOP)

    def _fma(self, d, s1, s2):
        """fmaddsd dst, s1, s2: dst = s1*s2 + dst, one rounding."""
        if d is FTOP or s1 is FTOP or s2 is FTOP:
            return FTOP
        # all-integer fma within 2^53 commits no rounding at all
        ip = _IV.mul((s1.lo, s1.hi), (s2.lo, s2.hi))
        if not _is_nai(ip):
            iv = _IV.add(ip, (d.lo, d.hi))
            if (not _is_nai(iv) and d.err == 0.0 and d.integral
                    and self._exact_integer(s1, s2, iv)):
                return _mk_rng(iv, 0.0, True)
        # exact product (no intermediate rounding), then the add model
        p = self._binop("mulsd", Rng(s1.lo, s1.hi, s1.err),
                        Rng(s2.lo, s2.hi, s2.err))
        if p is FTOP:
            return FTOP
        # remove the product's rounding u (fused) but keep its
        # divergence terms; one final rounding comes from the add
        perr = max(p.err - _U * _SLOP, 0.0) if math.isfinite(p.err) \
            else _INF
        return self._binop("addsd", Rng(p.lo, p.hi, perr), d)

    def _cvtsi2sd(self, ins, src):
        lo, hi = -(1 << 63), (1 << 63) - 1
        if isinstance(src, Reg):
            vst = self._vsa_state(ins.addr)
            if vst is not None:
                v = vst.regs.get(canonical(src.name))
                if isinstance(v, Num) and not v.si.top:
                    lo, hi = v.si.lo, v.si.hi
        flo = float(lo)
        if flo > lo:
            flo = math.nextafter(flo, -_INF)
        fhi = float(hi)
        if fhi < hi:
            fhi = math.nextafter(fhi, _INF)
        err = 0.0 if max(abs(lo), abs(hi)) <= _EXACT_INT else _U * _SLOP
        return Rng(flo, fhi, err, True)

    def _roundsd(self, a):
        if a is FTOP:
            return FTOP
        lo = math.floor(a.lo) if math.isfinite(a.lo) else a.lo
        hi = math.ceil(a.hi) if math.isfinite(a.hi) else a.hi
        # rounding is a discontinuity: any incoming divergence can land
        # the two paths on different integers; identical inputs give
        # identical (always-representable) integer results
        err = 0.0 if a.err == 0.0 else _INF
        return Rng(float(lo), float(hi), err, True)

    # ------------------------------------------------------------------ #
    # site recording                                                      #
    # ------------------------------------------------------------------ #

    def _site(self, addr: int, res) -> None:
        if not self._recording:
            return
        cur = self.site_bounds.get(addr, FBOT)
        self.site_bounds[addr] = _join_fp(cur, res)

    # ------------------------------------------------------------------ #
    # the transfer function                                               #
    # ------------------------------------------------------------------ #

    def _transfer(self, ins, st: FPState, work):
        mn = ins.mnemonic
        if mn in ("fpvm_trap", "fpvm_patch") and ins.payload:
            ins = ins.payload["original"]
            mn = ins.mnemonic
        ops = ins.operands
        succs = self.cfg.succ.get(ins.addr, [])
        out = st

        if mn == "call":
            return self._transfer_call(ins, st, work)

        elif mn in _FP_BINOPS:
            dst, src = ops
            a = st.xmm_get(dst.index)
            b = (st.xmm_get(src.index) if isinstance(src, Xmm)
                 else self._load(ins, src, st))
            res = self._binop(mn, a, b)
            self._site(ins.addr, res)
            out = st.xmm_set(dst.index, res)

        elif mn == "sqrtsd":
            dst, src = ops
            a = (st.xmm_get(src.index) if isinstance(src, Xmm)
                 else self._load(ins, src, st))
            res = self._sqrt(a)
            self._site(ins.addr, res)
            out = st.xmm_set(dst.index, res)

        elif mn == "fmaddsd":
            dst, s1, s2 = ops
            res = self._fma(st.xmm_get(dst.index),
                            st.xmm_get(s1.index) if isinstance(s1, Xmm)
                            else self._load(ins, s1, st),
                            st.xmm_get(s2.index) if isinstance(s2, Xmm)
                            else self._load(ins, s2, st))
            self._site(ins.addr, res)
            out = st.xmm_set(dst.index, res)

        elif mn == "cvtsi2sd":
            dst, src = ops
            res = self._cvtsi2sd(ins, src)
            self._site(ins.addr, res)
            out = st.xmm_set(dst.index, res)

        elif mn == "roundsd":
            dst, src = ops[0], ops[1]
            a = (st.xmm_get(src.index) if isinstance(src, Xmm)
                 else self._load(ins, src, st))
            res = self._roundsd(a)
            self._site(ins.addr, res)
            out = st.xmm_set(dst.index, res)

        elif mn in _FP_PACKED or mn == "cvtss2sd":
            # checked dynamically but not modeled: lane 1 (packed) and
            # binary32 inputs are outside the lane-0 binary64 domain
            self._site(ins.addr, FTOP)
            if isinstance(ops[0], Xmm):
                out = st.xmm_set(ops[0].index, FTOP)

        elif mn in _FP_F32 or mn == "cvtsd2ss" or mn == "cmpsd":
            if isinstance(ops[0], Xmm):
                out = st.xmm_set(ops[0].index, FTOP)

        elif mn in ("cvttsd2si", "cvtsd2si", "ucomisd", "comisd"):
            pass  # GPR/flags results: no FP state change

        elif mn in ("movsd", "movapd", "movupd", "movq"):
            dst, src = ops
            if isinstance(dst, Xmm) and isinstance(src, Xmm):
                out = st.xmm_set(dst.index, st.xmm_get(src.index))
            elif isinstance(dst, Xmm) and isinstance(src, Mem):
                out = st.xmm_set(dst.index, self._load(ins, src, st))
            elif isinstance(dst, Mem) and isinstance(src, Xmm):
                out = self._store(ins, dst, st, st.xmm_get(src.index),
                                  work)
            elif isinstance(dst, Xmm):  # movq xmm, r64: raw bits
                out = st.xmm_set(dst.index, FTOP)
            # movq r64, xmm: GPRs are not FP state

        elif mn == "movss":
            dst = ops[0]
            if isinstance(dst, Xmm):
                out = st.xmm_set(dst.index, FTOP)
            elif isinstance(dst, Mem):
                out = self._clobber_mem(ins, dst, st, work)

        elif mn == "movhpd":
            dst = ops[0]
            if isinstance(dst, Mem):  # stores the (untracked) high lane
                out = self._clobber_mem(ins, dst, st, work)
            # xmm dst: lane 0 untouched

        elif mn in ("xorpd", "andpd", "orpd", "andnpd"):
            out = self._bitwise(ins, mn, ops, st)

        elif mn == "push":
            vst = self._vsa_state(ins.addr)
            if vst is not None:
                rsp = add_val(vst.regs.get("rsp"), Num(SI.const(-8)))
                key = ValueSetAnalysis._stack_aloc(rsp)
                if key is not None:
                    out = st.stack_set(key, FTOP)

        elif ops and isinstance(ops[0], Mem) and mn not in ("cmp", "test"):
            # any other instruction writing memory (mov/add/inc/... to
            # mem): the destination word's FP view dies
            out = self._clobber_mem(ins, ops[0], st, work)

        return [((self._ctx, s), out) for s in succs]

    def _bitwise(self, ins, mn, ops, st: FPState) -> FPState:
        dst, src = ops
        if not isinstance(dst, Xmm):
            return st
        if mn == "xorpd" and isinstance(src, Xmm) and \
                src.index == dst.index:
            return st.xmm_set(dst.index, Rng(0.0, 0.0, 0.0, True))
        mask = self._static_mask(ins, src)
        a = st.xmm_get(dst.index)
        if a is not FTOP and mask == _SIGN_MASK and mn == "xorpd":
            return st.xmm_set(dst.index,
                              Rng(-a.hi, -a.lo, a.err, a.integral))
        if a is not FTOP and mask == _ABS_MASK and mn == "andpd":
            lo = _min_abs(a.lo, a.hi)
            return st.xmm_set(dst.index,
                              Rng(lo, _max_abs(a.lo, a.hi), a.err,
                                  a.integral))
        return st.xmm_set(dst.index, FTOP)

    def _static_mask(self, ins, src):
        """The constant bit pattern a bitwise op applies, if provable."""
        if not isinstance(src, Mem):
            return None
        vst = self._vsa_state(ins.addr)
        if vst is None:
            return None
        ea = self.vsa._eval_ea(src, vst)
        if not (isinstance(ea, Num) and ea.si.is_const):
            return None
        addr = ea.si.lo
        if self._poisoned or ("g", addr & ~7) in self.g_vals:
            return None  # the mask word may have been overwritten
        off = addr - self.binary.data_base
        data = self.binary.data
        if 0 <= off and off + 8 <= len(data):
            return int.from_bytes(data[off:off + 8], "little")
        return None

    def _transfer_call(self, ins, st: FPState, work):
        out = []
        ret_site = ins.next_addr
        callee = self.cfg.calls.get(ins.addr)
        extern = self.cfg.extern_calls.get(ins.addr)
        if extern is not None and extern in _SAFE_EXTERNS:
            # xmm state dies (xmm0 return / caller-saved), frame survives
            ret_state = FPState(_XMM_TOP, st.stack)
        else:
            if callee is None:
                self._poison_all(work)  # unknown extern may write FP data
            ret_state = FPState(_XMM_TOP, ())
        if ret_site in self.binary.text_map:
            out.append(((self._ctx, ret_site), ret_state))
        if callee is not None:
            # FP arguments flow into the callee in xmm registers; the
            # callee starts its own frame (k=1 context, as in the VSA)
            ctx = ins.addr if self.vsa.k >= 1 else 0
            out.append(((ctx, callee), FPState(st.xmm, ())))
        return out


# --------------------------------------------------------------------------- #
# the report                                                                   #
# --------------------------------------------------------------------------- #

@dataclass
class RangeReport:
    """Artifact of one interval-range pass (cached; do not mutate)."""

    binary_hash: str = ""
    cache_hit: bool = False
    threshold: float = 1e-6
    iterations: int = 0
    vsa_iterations: int = 0
    ranges_ms: float = 0.0
    #: sorted addrs of every statically checkable (dual-path) FP site
    checkable: tuple = ()
    #: addr -> mnemonic for the checkable sites
    mnemonics: dict = field(default_factory=dict)
    #: site addr -> (lo, hi, err) worst-case bound, or None (unbounded)
    bounds: dict = field(default_factory=dict)
    #: sites proven divergence-free (err <= threshold/8, finite range):
    #: the site itself can never flag — the soundness-gate set
    proven: frozenset = frozenset()
    #: subset proven bit-exact (err == 0): shadow == IEEE always, so
    #: skipping dual-path instrumentation cannot change any downstream
    #: verdict either — the default exemption set
    exact: frozenset = frozenset()

    @property
    def prove_rate(self) -> float:
        return len(self.proven) / len(self.checkable) if self.checkable \
            else 0.0

    @property
    def exact_rate(self) -> float:
        return len(self.exact) / len(self.checkable) if self.checkable \
            else 0.0

    def summary(self, top: int = 0) -> str:
        out = [f"interval-range pass: {len(self.checkable)} checkable "
               f"sites, {len(self.proven)} proven divergence-free "
               f"({100 * self.prove_rate:.1f}%), {len(self.exact)} "
               f"bit-exact ({100 * self.exact_rate:.1f}%) at threshold "
               f"{self.threshold:g} "
               f"[{self.iterations} iterations, {self.ranges_ms:.1f}ms]"]
        rows = sorted(self.checkable)
        if top:
            rows = rows[:top]
        for addr in rows:
            b = self.bounds.get(addr)
            tag = ("EXACT " if addr in self.exact
                   else "PROVEN" if addr in self.proven else "      ")
            if b is None:
                out.append(f"  {addr:#10x} {self.mnemonics[addr]:10s} "
                           f"{tag}  range unknown")
            else:
                lo, hi, err = b
                out.append(f"  {addr:#10x} {self.mnemonics[addr]:10s} "
                           f"{tag}  [{lo:.6g}, {hi:.6g}] err<={err:.3g}")
        return "\n".join(out)

    def to_dict(self) -> dict:
        return {
            "binary_hash": self.binary_hash,
            "cache_hit": self.cache_hit,
            "threshold": self.threshold,
            "iterations": self.iterations,
            "ranges_ms": self.ranges_ms,
            "checkable": len(self.checkable),
            "proven": sorted(self.proven),
            "exact": sorted(self.exact),
            "prove_rate": self.prove_rate,
            "exact_rate": self.exact_rate,
            "bounds": {f"{a:#x}": self.bounds.get(a)
                       for a in self.checkable},
        }


#: (content-hash, threshold) -> report; matrix runs pay for one pass
_RANGES_CACHE: dict[tuple[str, float], RangeReport] = {}


def clear_ranges_cache() -> None:
    _RANGES_CACHE.clear()


def analyze_ranges(binary, *, threshold: float = 1e-6,
                   cache: bool = True) -> RangeReport:
    """Run the interval-range pass; returns the (cached) report."""
    key = (binary.content_hash(), threshold)
    if cache:
        hit = _RANGES_CACHE.get(key)
        if hit is not None:
            hit.cache_hit = True
            return hit
    t0 = perf_counter()
    ra = RangeAnalysis(binary, threshold)
    ra.run()

    report = RangeReport(binary_hash=key[0], threshold=threshold,
                         iterations=ra.iterations,
                         vsa_iterations=ra.vsa.iterations)
    checkable = []
    for ins in binary.text:
        mn = ins.mnemonic
        if mn in ("fpvm_trap", "fpvm_patch") and ins.payload:
            mn = ins.payload["original"].mnemonic
        if mn in CHECKED_SITE_MNEMONICS:
            checkable.append(ins.addr)
            report.mnemonics[ins.addr] = mn
    report.checkable = tuple(sorted(checkable))
    proven = set()
    exact = set()
    margin = threshold / 8.0
    for addr in report.checkable:
        b = ra.site_bounds.get(addr)
        if isinstance(b, Rng):
            report.bounds[addr] = (b.lo, b.hi, b.err)
            if (b.err <= margin and math.isfinite(b.lo)
                    and math.isfinite(b.hi)):
                proven.add(addr)
                if b.err == 0.0:
                    exact.add(addr)
        else:
            report.bounds[addr] = None
    report.proven = frozenset(proven)
    report.exact = frozenset(exact)
    report.ranges_ms = (perf_counter() - t0) * 1e3
    report.cache_hit = False
    if cache:
        _RANGES_CACHE[key] = report
    return report


# --------------------------------------------------------------------------- #
# dynamic soundness gate (oracle style)                                        #
# --------------------------------------------------------------------------- #

@dataclass
class ExemptionValidation:
    """Cross-check of the static exemptions against a full dual-path
    run (exemption disabled): no proven site may flag dynamically."""

    label: str
    threshold: float
    precision: int
    proven_count: int = 0
    checkable_count: int = 0
    flagged: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    checks: int = 0
    flags: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (f"{self.label} [sanitize:{self.precision} thr "
                f"{self.threshold:g}]: {status}; "
                f"{self.proven_count}/{self.checkable_count} sites "
                f"statically exempt, {self.checks} dynamic checks, "
                f"{self.flags} flags at {len(self.flagged)} sites")

    def to_dict(self) -> dict:
        return {
            "label": self.label, "ok": self.ok,
            "threshold": self.threshold, "precision": self.precision,
            "proven": self.proven_count, "checkable": self.checkable_count,
            "checks": self.checks, "flags": self.flags,
            "flagged_sites": [f"{a:#x}" for a in self.flagged],
            "violations": list(self.violations),
        }


def validate_sanitize_exemptions(target, *, size: str = "test",
                                 threshold: float = 1e-6,
                                 precision: int = 200
                                 ) -> ExemptionValidation:
    """Soundness gate for one workload: run the sanitizer with the
    static exemption *disabled* so every site is dual-path checked,
    then require that no statically proven site flagged."""
    from repro.fpvm.runtime import FPVMConfig
    from repro.fpvm.sanitize import SanitizeConfig
    from repro.session import Session

    scfg = SanitizeConfig(threshold=threshold, precision=precision,
                          exempt=False)
    sess = Session(target, ("sanitize", precision), size=size,
                   config=FPVMConfig(sanitize=scfg), label="sanitize-gate")
    rr = analyze_ranges(sess.binary, threshold=threshold)
    sess.run()
    san = sess.fpvm.sanitizer

    res = ExemptionValidation(
        label=(target if isinstance(target, str) else "<builder>"),
        threshold=threshold, precision=precision,
        proven_count=len(rr.proven), checkable_count=len(rr.checkable),
        checks=san.stats.sanitize_checks, flags=san.stats.sanitize_flags)
    res.flagged = sorted(san.flagged_sites())
    for addr in res.flagged:
        if addr in rr.proven:
            site = san.sites[addr]
            res.violations.append(
                f"site {addr:#x} ({site.mnemonic}) was statically "
                f"proven divergence-free but flagged {site.flags}x "
                f"(max rel {site.max_rel:.3g})")
    return res


def validate_registry(*, size: str = "test", threshold: float = 1e-6,
                      precision: int = 200,
                      names=None) -> list[ExemptionValidation]:
    """Run the exemption soundness gate over the workload registry."""
    from repro.workloads import WORKLOADS

    return [validate_sanitize_exemptions(name, size=size,
                                         threshold=threshold,
                                         precision=precision)
            for name in (names or sorted(WORKLOADS))]


# --------------------------------------------------------------------------- #
# precision autotune                                                           #
# --------------------------------------------------------------------------- #

#: default shadow-precision ladder (bits); 53 and below would make the
#: shadow no better than the IEEE path itself, so the ladder stops at
#: values that still bracket the interesting transition
DEFAULT_LADDER = (200, 120, 80, 64, 56, 48, 40, 32, 24)


@dataclass
class AutotuneResult:
    """Minimal shadow precision whose verdict matches the reference."""

    label: str
    threshold: float
    reference_precision: int = 0
    minimal_precision: int = 0
    reference_flagged: tuple = ()
    #: (bits, n_flagged_sites, verdict_stable) per ladder step tried
    steps: list = field(default_factory=list)

    def summary(self) -> str:
        ref = ", ".join(f"{a:#x}" for a in self.reference_flagged) or "none"
        lines = [f"{self.label}: minimal safe shadow precision "
                 f"{self.minimal_precision} bits (reference "
                 f"{self.reference_precision} bits flags: {ref})"]
        for bits, n, stable in self.steps:
            lines.append(f"  {bits:4d} bits: {n} flagged sites "
                         f"[{'stable' if stable else 'VERDICT CHANGED'}]")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "label": self.label, "threshold": self.threshold,
            "reference_precision": self.reference_precision,
            "minimal_precision": self.minimal_precision,
            "reference_flagged": [f"{a:#x}"
                                  for a in self.reference_flagged],
            "steps": [{"bits": b, "flagged": n, "stable": s}
                      for b, n, s in self.steps],
        }


def autotune_precision(target, *, size: str = "test",
                       threshold: float = 1e-6,
                       ladder=DEFAULT_LADDER) -> AutotuneResult:
    """Walk the shadow precision down until the sanitizer's verdict
    (the set of flagged sites) changes; report the minimal precision
    that still reproduces the full-precision verdict."""
    from repro.fpvm.runtime import FPVMConfig
    from repro.fpvm.sanitize import SanitizeConfig
    from repro.session import Session

    res = AutotuneResult(
        label=(target if isinstance(target, str) else "<builder>"),
        threshold=threshold, reference_precision=ladder[0])
    reference = None
    for bits in ladder:
        scfg = SanitizeConfig(threshold=threshold, precision=bits,
                              exempt=False)
        sess = Session(target, ("sanitize", bits), size=size,
                       config=FPVMConfig(sanitize=scfg),
                       label=f"autotune:{bits}")
        sess.run()
        flagged = frozenset(sess.fpvm.sanitizer.flagged_sites())
        if reference is None:
            reference = flagged
            res.reference_flagged = tuple(sorted(flagged))
            res.minimal_precision = bits
            res.steps.append((bits, len(flagged), True))
            continue
        stable = flagged == reference
        res.steps.append((bits, len(flagged), stable))
        if not stable:
            break
        res.minimal_precision = bits
    return res
