"""Worklist value-set analysis over a Binary (§4.2).

Flow-sensitive register + current-frame-stack states per instruction;
flow-insensitive (monotone) classification of memory into FP-written
and int-read cells.  Two phases:

1. the abstract interpreter runs to fixpoint, recording for every
   instruction the *access sets* of its memory reads and writes and
   the kind of each access (FP store = source, integer load = sink
   candidate, …);
2. :mod:`repro.analysis.sources_sinks` intersects the accumulated FP
   write set with each integer-load access set to decide which
   candidates are true sinks.

Conservative escapes — unknown pointers (TOP) and over-wide strided
accesses — degrade to region ranges or "anywhere", which phase 2
treats as intersecting everything, exactly the "if VSA returns a
conservative result, FPVM follows suit" policy of the paper.

Context sensitivity (analysis v2): the interpreter distinguishes
states by a k=1 call-string — the address of the call site that
entered the current function.  Without it, a callee taking a pointer
argument from two different callers joins both pointers at its entry;
if the two regions differ the join is TOP and every access through
the parameter escapes, over-patching both callers' data.  With k=1
each call site gets its own copy of the callee's flow, so the
pointer-into-caller-frame pattern stays precise.  The accumulated
access tables stay keyed by instruction address (the monotone union
over contexts is exactly the flow the patcher must cover).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.isa.registers import canonical
from repro.asm.program import Binary
from repro.analysis.cfg import CFG
from repro.analysis.si import SI, SI_TOP
from repro.analysis.domain import (
    TOP,
    AccessSet,
    HeapAddr,
    Num,
    RegState,
    StackAddr,
    CALLER_SAVED,
    add_val,
    join_vals,
    resolve_access,
    sub_val,
)
from repro.analysis.report import AnalysisReport, ReadEvent

# Widening delay: small enough to terminate quickly, large enough that
# short monotone-decreasing chains (e.g. multigrid's n = n/2 + 1 level
# sizes) reach their exact fixpoint before widening blows their lower
# bound to -2^32 (which would make frame/array ranges unclampable).
_WIDEN_AFTER = 12

#: externals whose arguments can never carry FP payloads: no call-site
#: demotion patch needed (everything else uninterposed gets one)
NO_FP_EXTERNS = frozenset({
    "malloc", "calloc", "free", "memset", "strlen", "exit",
    "abort", "rand", "srand", "clock", "putchar", "puts",
})

#: externals FPVM interposes itself (math wrapper / output wrapper);
#: kept in sync with repro.machine.libc + repro.fpvm.runtime
INTERPOSED_EXTERNS = frozenset({
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "exp", "log",
    "log2", "log10", "pow", "fmod", "fabs", "floor", "ceil", "sqrt",
    "fmin", "fmax", "printf", "fwrite",
})

_FP_STORES = frozenset({"movsd", "movss", "movapd", "movupd", "movhpd"})
_INT_READERS = frozenset({"mov", "movzx", "movsx", "add", "sub", "and",
                          "or", "xor", "cmp", "test", "imul", "idiv",
                          "push", "inc", "dec", "not", "neg", "shl",
                          "shr", "sar", "xchg",
                          "cmove", "cmovne", "cmovl", "cmovg"})


@dataclass(frozen=True)
class AbsState:
    """Register state + tracked stack-slot values of the current frame."""

    regs: RegState
    stack: tuple  # sorted tuple of ((aloc), AbsVal)

    def stack_get(self, key):
        for k, v in self.stack:
            if k == key:
                return v
        # optimistic: a slot with no recorded store is "no value yet"
        # (BOTTOM); compiled code never reads uninitialized slots, and
        # treating them as TOP would let transient worklist orderings
        # poison the whole analysis (see module docstring)
        from repro.analysis.domain import BOTTOM
        return BOTTOM

    def stack_set(self, key, val) -> "AbsState":
        items = [(k, v) for k, v in self.stack if k != key]
        items.append((key, val))
        items.sort(key=lambda kv: repr(kv[0]))
        return AbsState(self.regs, tuple(items))

    def stack_clobber(self) -> "AbsState":
        return AbsState(self.regs, ())

    def with_regs(self, regs: RegState) -> "AbsState":
        return AbsState(regs, self.stack)

    def join(self, other: "AbsState", widen: bool = False) -> "AbsState":
        regs = (self.regs.widen(other.regs) if widen
                else self.regs.join(other.regs))
        keys = {k for k, _ in self.stack} | {k for k, _ in other.stack}
        items = []
        for k in keys:
            items.append((k, join_vals(self.stack_get(k),
                                       other.stack_get(k))))
        items.sort(key=lambda kv: repr(kv[0]))
        return AbsState(regs, tuple(items))


class ValueSetAnalysis:
    """The paper's static analyzer, operating on our ISA."""

    def __init__(self, binary: Binary, k: int = 1) -> None:
        self.binary = binary
        self.cfg = CFG.build(binary)
        #: call-string depth: 1 = per-call-site callee copies, 0 = merged
        self.k = k
        # states are keyed by (ctx, addr); ctx is the call-site address
        # that entered the current function (0 for the root function)
        self.states: dict[tuple[int, int], AbsState] = {}
        self.join_counts: dict[tuple[int, int], int] = {}
        self.contexts: set[int] = {0}
        self.iterations = 0
        self._ctx = 0

        # accumulated memory classification (monotone)
        self.writes_fp: dict[int, AccessSet] = {}   # instr -> access set
        self.writes_int: dict[int, AccessSet] = {}
        self.write_widths: dict[int, int] = {}      # instr -> min store width
        self.reads_int: dict[int, ReadEvent] = {}
        self.reads_fp: dict[int, AccessSet] = {}
        self.movq_sinks: set[int] = set()
        self.bitwise_sites: set[int] = set()

        # flow-insensitive global value map (seeded from static data)
        self.global_vals: dict[tuple, object] = {}
        self.global_readers: dict[tuple, set[tuple[int, int]]] = {}
        self._sym_bounds: list[int] | None = None
        self._poisoned: list[tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    def run(self) -> AnalysisReport:
        from repro.analysis.sources_sinks import classify

        entry = self.binary.entry
        init = AbsState(RegState.entry(entry, RegState.top_state()), ())
        work: list[tuple[int, int]] = []
        self._merge_in((0, entry), init, work)
        while work:
            key = work.pop()
            ctx, addr = key
            state = self.states.get(key)
            ins = self.binary.text_map.get(addr)
            if state is None or ins is None:
                continue
            self.iterations += 1
            self._ctx = ctx
            out_states = self._transfer(ins, state, work)
            for succ_key, succ_state in out_states:
                self._merge_in(succ_key, succ_state, work)
        self._record_at_fixpoint()
        return classify(self)

    def _record_at_fixpoint(self) -> None:
        """Re-derive the access tables from the converged states only.

        During the fixpoint the tables accumulate *transient*
        enumerations — a loop index seen as [0..12] on the iteration
        before widening enumerates words past the array it indexes, and
        the monotone tables would keep them forever.  At the fixpoint
        the same access is a widened range that the symbol clamper
        confines to the right a-loc, so one recording pass over the
        final states yields strictly tighter sources and sinks.
        """
        self.writes_fp.clear()
        self.writes_int.clear()
        self.write_widths.clear()
        self.reads_int.clear()
        self.reads_fp.clear()
        sink: list = []  # transfer at fixpoint re-queues nothing real
        for (ctx, addr), st in sorted(self.states.items()):
            ins = self.binary.text_map.get(addr)
            if ins is None:
                continue
            self._ctx = ctx
            self._transfer(ins, st, sink)

    def _merge_in(self, key: tuple[int, int], state: AbsState,
                  work: list[tuple[int, int]]) -> None:
        old = self.states.get(key)
        if old is None:
            self.states[key] = state
            work.append(key)
            return
        count = self.join_counts.get(key, 0) + 1
        self.join_counts[key] = count
        new = old.join(state, widen=count > _WIDEN_AFTER)
        if new != old:
            self.states[key] = new
            work.append(key)

    # ------------------------------------------------------------------ #
    # evaluation helpers                                                  #
    # ------------------------------------------------------------------ #

    def _eval_ea(self, mem: Mem, st: AbsState):
        from repro.analysis.domain import BOTTOM

        v = Num(SI.const(mem.disp))
        if mem.base is not None:
            v = add_val(st.regs.get(canonical(mem.base)), v)
        if mem.index is not None:
            iv = st.regs.get(canonical(mem.index))
            if isinstance(iv, Num):
                v = add_val(v, Num(iv.si.mul_const(mem.scale)))
            elif iv is BOTTOM or v is BOTTOM:
                v = BOTTOM
            else:
                v = TOP
        return v

    def _access(self, mem: Mem, st: AbsState) -> AccessSet:
        return resolve_access(self._eval_ea(mem, st), mem.size)

    def _record(self, table: dict, addr: int, acc: AccessSet) -> None:
        if acc.is_empty():
            return  # BOTTOM address: path not yet stable, nothing real
        old = table.get(addr)
        if old is None:
            table[addr] = acc
            return
        table[addr] = AccessSet(old.alocs | acc.alocs,
                                tuple(set(old.ranges) | set(acc.ranges)),
                                old.top or acc.top)

    @staticmethod
    def _stack_aloc(val) -> tuple | None:
        """Exact 8-byte stack a-loc for a singleton StackAddr, else None."""
        if isinstance(val, StackAddr) and val.si.is_const:
            off = val.si.lo
            return ("s", val.fn, off - (off % 8))
        return None

    def _read_int_value(self, ins: Instruction, mem: Mem, st: AbsState,
                        width: int):
        """Model an integer load: record the sink candidate, return the
        abstract loaded value (precise for tracked stack slots and
        never-written globals)."""
        from repro.analysis.domain import BOTTOM

        ea = self._eval_ea(mem, st)
        acc = resolve_access(ea, mem.size)
        if acc.is_empty():
            return BOTTOM
        ev = self.reads_int.get(ins.addr)
        if ev is None:
            self.reads_int[ins.addr] = ReadEvent(ins.addr, acc, width)
        else:
            merged = AccessSet(ev.access.alocs | acc.alocs,
                               tuple(set(ev.access.ranges) | set(acc.ranges)),
                               ev.access.top or acc.top)
            self.reads_int[ins.addr] = ReadEvent(ins.addr, merged, width)
        key = self._stack_aloc(ea)
        if key is not None:
            return st.stack_get(key)
        # global reads: join the (flow-insensitive) tracked values over
        # the words of the data *symbol* the address starts in — value
        # tracking never crosses a-loc (symbol) boundaries, so a read
        # whose index over-approximates past its array cannot absorb
        # unrelated data (e.g. FP constants) into an address value
        if isinstance(ea, Num) and not ea.si.top:
            keys = self._clamped_range_alocs(ea.si.lo,
                                             ea.si.hi + mem.size - 1)
            if keys is not None:
                return self._join_global_reads(ins, keys)
        return TOP

    def _join_global_reads(self, ins: Instruction, keys):
        from repro.analysis.domain import BOTTOM

        val = BOTTOM
        for gkey in keys:
            self.global_readers.setdefault(gkey, set()).add(
                (self._ctx, ins.addr))
            if self._global_poisoned(gkey[1]):
                return TOP
            cur = self.global_vals.get(gkey)
            if cur is None:
                cur = self._static_global_value(gkey)
            val = join_vals(val, cur)
        return val

    def _update_global(self, gkey, val, work) -> None:
        """Monotone weak update; re-queues affected readers."""
        old = self.global_vals.get(gkey)
        seeded = old if old is not None else self._static_global_value(gkey)
        new = join_vals(seeded, val)
        if new != seeded or gkey not in self.global_vals:
            self.global_vals[gkey] = new
            for reader in self.global_readers.get(gkey, ()):
                work.append(reader)

    def _poison_globals(self, lo, hi, work) -> None:
        """A write that cannot be enumerated: value tracking for the
        covered region (or everything) degrades to TOP."""
        rng = (lo, hi) if lo is not None else (-(1 << 62), 1 << 62)
        for existing in self._poisoned:
            if existing[0] <= rng[0] and rng[1] <= existing[1]:
                return
        self._poisoned.append(rng)
        for readers in self.global_readers.values():
            work.extend(readers)

    def _global_poisoned(self, addr: int) -> bool:
        return any(lo <= addr <= hi for lo, hi in self._poisoned)

    def _clamped_range_alocs(self, lo: int, hi: int):
        """Clamp [lo, hi] to the data symbol containing ``lo``; return
        its word a-locs if the clamped extent is small, else None."""
        binary = self.binary
        data_end = binary.data_base + len(binary.data)
        if not (binary.data_base <= lo < data_end):
            return None
        if self._sym_bounds is None:
            self._sym_bounds = sorted(
                a for a in binary.symbols.values()
                if binary.data_base <= a < data_end
            )
        nxt = data_end
        for bound in self._sym_bounds:
            if bound > lo:
                nxt = bound
                break
        hi = min(hi, nxt - 1)
        base = lo & ~7
        if (hi - base) // 8 + 1 > 64:
            return None
        return [("g", a) for a in range(base, hi + 1, 8)]

    def _static_global_value(self, gkey):
        addr = gkey[1]
        base = self.binary.data_base
        data = self.binary.data
        off = addr - base
        if 0 <= off and off + 8 <= len(data):
            return Num(SI.const(int.from_bytes(data[off:off + 8], "little")))
        return TOP

    def _write_value(self, ins, mem: Mem, st: AbsState, val,
                     kind: str, work: list) -> AbsState:
        ea = self._eval_ea(mem, st)
        acc = resolve_access(ea, mem.size)
        if acc.is_empty():
            return st  # BOTTOM address: re-analyzed when values arrive
        self._record(self.writes_fp if kind == "fp" else self.writes_int,
                     ins.addr, acc)
        if kind == "int":
            # minimum width over all flows: the liveness refinement may
            # treat the store as a strong kill only if every execution
            # overwrites the full 8-byte word
            prev = self.write_widths.get(ins.addr)
            self.write_widths[ins.addr] = (mem.size if prev is None
                                           else min(prev, mem.size))
        key = self._stack_aloc(ea)
        if key is not None:
            return st.stack_set(key, val)
        if isinstance(ea, Num) and ea.si.is_const:
            self._update_global(("g", ea.si.lo & ~7), val, work)
            return st
        if isinstance(ea, Num) and not ea.si.top:
            # non-constant global write: weak-update every word of the
            # symbol it starts in, or poison the region if unclampable
            keys = self._clamped_range_alocs(ea.si.lo,
                                             ea.si.hi + mem.size - 1)
            if keys is not None:
                for gkey in keys:
                    self._update_global(gkey, val, work)
                return st
            self._poison_globals(ea.si.lo, ea.si.hi + mem.size - 1, work)
            return st
        # weak update: drop only the tracked stack slots the write may
        # actually touch — global/heap writes never alias the frame
        if acc.top:
            # unknown pointer: both the frame and all globals are suspect
            self._poison_globals(None, None, work)
            return st.stack_clobber()
        if any(r[0] == "sr" for r in acc.ranges):
            return st.stack_clobber()  # unknown offset within a frame
        out = st
        for aloc in acc.alocs:
            if aloc[0] == "s":
                out = out.stack_set(aloc, TOP)
        return out

    # ------------------------------------------------------------------ #
    # the transfer function                                               #
    # ------------------------------------------------------------------ #

    def _transfer(self, ins: Instruction, st: AbsState,
                  work: list) -> list[tuple[tuple[int, int], AbsState]]:
        mn = ins.mnemonic
        if mn in ("fpvm_trap", "fpvm_patch") and ins.payload:
            ins = ins.payload["original"]
            mn = ins.mnemonic
        ops = ins.operands
        succs = self.cfg.succ.get(ins.addr, [])
        out = st

        if mn in ("mov", "movabs", "movzx", "movsx"):
            dst, src = ops
            if isinstance(src, Imm):
                val = Num(SI.const(src.value))
            elif isinstance(src, Reg):
                val = st.regs.get(canonical(src.name))
                if mn in ("movzx", "movsx") and src.size < 8:
                    val = Num(SI.range(0, (1 << (8 * src.size)) - 1, 1))
            else:
                width = src.size
                val = self._read_int_value(ins, src, st, width)
                if mn in ("movzx", "movsx") and width < 8:
                    val = Num(SI.range(0, (1 << (8 * width)) - 1, 1))
            if isinstance(dst, Reg):
                if dst.size >= 4:
                    out = st.with_regs(st.regs.set(canonical(dst.name), val))
                else:
                    out = st.with_regs(
                        st.regs.set(canonical(dst.name), Num(SI_TOP)))
            else:
                out = self._write_value(ins, dst, st, val, "int", work)

        elif mn == "lea":
            dst, src = ops
            out = st.with_regs(
                st.regs.set(canonical(dst.name), self._eval_ea(src, st)))

        elif mn in ("add", "sub"):
            dst, src = ops
            if isinstance(src, Mem):
                sval = self._read_int_value(ins, src, st, src.size)
            elif isinstance(src, Imm):
                sval = Num(SI.const(src.value))
            else:
                sval = st.regs.get(canonical(src.name))
            if isinstance(dst, Reg):
                cur = st.regs.get(canonical(dst.name))
                val = add_val(cur, sval) if mn == "add" else sub_val(cur, sval)
                out = st.with_regs(st.regs.set(canonical(dst.name), val))
            else:
                self._read_int_value(ins, dst, st, dst.size)  # RMW read
                out = self._write_value(ins, dst, st, TOP, "int", work)

        elif mn in ("and", "or", "xor", "imul", "not", "neg", "inc", "dec",
                    "shl", "shr", "sar", "idiv", "cqo",
                    "cmove", "cmovne", "cmovl", "cmovg"):
            out = self._transfer_alu(ins, mn, ops, st, work)

        elif mn in ("cmp", "test"):
            for op in ops:
                if isinstance(op, Mem):
                    self._read_int_value(ins, op, st, op.size)

        elif mn == "push":
            (src,) = ops
            if isinstance(src, Mem):
                val = self._read_int_value(ins, src, st, src.size)
            elif isinstance(src, Imm):
                val = Num(SI.const(src.value))
            else:
                val = st.regs.get(canonical(src.name))
            rsp = add_val(st.regs.get("rsp"), Num(SI.const(-8)))
            out = st.with_regs(st.regs.set("rsp", rsp))
            key = self._stack_aloc(rsp)
            if key is not None:
                out = out.stack_set(key, val)

        elif mn == "pop":
            (dst,) = ops
            rsp_val = st.regs.get("rsp")
            key = self._stack_aloc(rsp_val)
            val = st.stack_get(key) if key is not None else TOP
            rsp = add_val(rsp_val, Num(SI.const(8)))
            regs = st.regs.set("rsp", rsp)
            if isinstance(dst, Reg):
                regs = regs.set(canonical(dst.name), val)
            out = st.with_regs(regs)

        elif mn == "call":
            return self._transfer_call(ins, st, work)

        elif mn in _FP_STORES or mn == "movq":
            out = self._transfer_fp_mov(ins, mn, ops, st, work)

        elif mn in ("xorpd", "andpd", "orpd", "andnpd"):
            self.bitwise_sites.add(ins.addr)
            if isinstance(ops[1], Mem):
                acc = self._access(ops[1], st)
                self._record(self.reads_fp, ins.addr, acc)

        elif ins.info.opclass.name.startswith("FP"):
            # trap-capable FP instruction: memory operands are FP reads
            for op in ops:
                if isinstance(op, Mem):
                    self._record(self.reads_fp, ins.addr,
                                 self._access(op, st))
                elif isinstance(op, Reg) and mn.startswith("cvt"):
                    if op is ops[0]:
                        out = st.with_regs(
                            st.regs.set(canonical(op.name), Num(SI_TOP)))

        # default: no state change (nop, jcc, ucomisd reg forms, ...)
        return [((self._ctx, s), out) for s in succs]

    def _transfer_alu(self, ins, mn, ops, st: AbsState,
                      work) -> AbsState:
        if mn == "cqo":
            return st.with_regs(st.regs.set("rdx", Num(SI_TOP)))
        if mn == "idiv":
            if ops and isinstance(ops[0], Mem):
                divisor = self._read_int_value(ins, ops[0], st, ops[0].size)
            elif ops and isinstance(ops[0], Reg):
                divisor = st.regs.get(canonical(ops[0].name))
            else:
                divisor = TOP
            rax = st.regs.get("rax")
            if (isinstance(divisor, Num) and divisor.si.is_const
                    and divisor.si.lo != 0 and isinstance(rax, Num)):
                c = abs(divisor.si.lo)
                q = Num(rax.si.div_const(divisor.si.lo))
                r = Num(SI.range(-(c - 1), c - 1, 1))
                return st.with_regs(st.regs.set("rax", q).set("rdx", r))
            regs = st.regs.set("rax", Num(SI_TOP)).set("rdx", Num(SI_TOP))
            return st.with_regs(regs)
        dst = ops[0]
        if isinstance(dst, Mem):
            self._read_int_value(ins, dst, st, dst.size)
            return self._write_value(ins, dst, st, TOP, "int", work)
        for op in ops[1:]:
            if isinstance(op, Mem):
                self._read_int_value(ins, op, st, op.size)
        name = canonical(dst.name)
        cur = st.regs.get(name)
        src = ops[1] if len(ops) > 1 else None
        if mn == "xor" and isinstance(src, Reg) and \
                canonical(src.name) == name:
            return st.with_regs(st.regs.set(name, Num(SI.const(0))))
        if mn == "shl" and isinstance(src, Imm) and isinstance(cur, Num):
            return st.with_regs(
                st.regs.set(name, Num(cur.si.shl_const(src.value))))
        if mn == "imul" and isinstance(src, Imm) and isinstance(cur, Num):
            return st.with_regs(
                st.regs.set(name, Num(cur.si.mul_const(src.value))))
        if mn == "imul" and isinstance(src, Reg) and isinstance(cur, Num):
            sval = st.regs.get(canonical(src.name))
            if isinstance(sval, Num):
                return st.with_regs(
                    st.regs.set(name, Num(cur.si.mul(sval.si))))
        if mn == "neg" and isinstance(cur, Num):
            return st.with_regs(st.regs.set(name, Num(cur.si.neg())))
        if mn == "cqo":
            return st.with_regs(st.regs.set("rdx", Num(SI_TOP)))
        if mn == "idiv":
            regs = st.regs.set("rax", Num(SI_TOP)).set("rdx", Num(SI_TOP))
            return st.with_regs(regs)
        return st.with_regs(st.regs.set(name, Num(SI_TOP)))

    def _transfer_fp_mov(self, ins, mn, ops, st: AbsState,
                         work) -> AbsState:
        dst, src = ops
        if mn == "movq" and isinstance(dst, Reg) and isinstance(src, Xmm):
            # direct xmm->GPR bit transfer: unconditional sink (§6.2)
            self.movq_sinks.add(ins.addr)
            return st.with_regs(
                st.regs.set(canonical(dst.name), Num(SI_TOP)))
        if isinstance(dst, Mem) and (isinstance(src, Xmm)):
            return self._write_value(ins, dst, st, TOP, "fp", work)
        if isinstance(src, Mem):
            self._record(self.reads_fp, ins.addr, self._access(src, st))
        if mn == "movq" and isinstance(dst, Xmm) and isinstance(src, Reg):
            # GPR->xmm bit transfer; nothing to patch (int bits become
            # an FP value; FPVM sees it when arithmetic consumes it)
            return st
        return st

    def _transfer_call(self, ins, st: AbsState,
                       work) -> list[tuple[tuple[int, int], AbsState]]:
        out: list[tuple[tuple[int, int], AbsState]] = []
        ret_site = ins.next_addr
        callee = self.cfg.calls.get(ins.addr)
        extern = self.cfg.extern_calls.get(ins.addr)

        # fall-through state at the return site: havoc caller-saved regs
        regs = st.regs.havoc(CALLER_SAVED)
        if extern in ("malloc", "calloc"):
            regs = regs.set("rax", HeapAddr(ins.addr, SI.const(0)))
        ret_state = AbsState(regs, st.stack)
        if ret_site in self.binary.text_map:
            out.append(((self._ctx, ret_site), ret_state))

        # entry edge into an internal callee: argument registers flow,
        # analyzed under the call site's own k=1 context so two callers'
        # arguments never join at the callee entry
        if callee is not None:
            callee_ctx = ins.addr if self.k >= 1 else 0
            self.contexts.add(callee_ctx)
            entry_regs = st.regs.set("rsp", StackAddr(callee, SI.const(0)))
            out.append(((callee_ctx, callee), AbsState(entry_regs, ())))
        return out
