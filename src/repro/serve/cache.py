"""Result cache for the serving tier.

One level above the process-wide analysis report cache: where that one
memoizes the VSA per :meth:`Binary.content_hash`, this one memoizes the
*entire run* per (binary hash, normalized arith spec, guest inputs,
watchdog limits).  Runs are deterministic, so a cached result is
bit-identical to re-executing the job — the daemon can answer repeat
submissions without touching the pool at all.

Plain LRU over an :class:`~collections.OrderedDict`; all access happens
on the daemon's event loop, but a lock keeps it safe for the thread-
based tests and load generator too.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class ResultCache:
    """Bounded LRU mapping job cache keys to result dicts."""

    def __init__(self, capacity: int = 256):
        self.capacity = int(capacity)
        self._data: OrderedDict[tuple, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> dict | None:
        with self._lock:
            res = self._data.get(key)
            if res is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return dict(res)

    def put(self, key: tuple, result: dict) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._data[key] = dict(result)
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
