"""The worker-pool scheduler: crash isolation for the serving tier.

Every job runs in a pool worker *process*; the daemon process never
executes guest code.  Each worker slot is minded by a tender thread
that feeds it jobs from the shared queue and watches the pipe for one
of three outcomes:

* **result** — the worker sent back a dict; the job completes.
* **death**  — the pipe hit EOF / the process died mid-job (guest
  chaos, SIGKILL).  The slot respawns immediately and the job is
  retried with exponential backoff on whichever worker picks it up —
  the same bounded-retry discipline as
  :func:`~repro.harness.experiment.run_matrix`.
* **timeout** — the per-job deadline passed.  The worker is SIGKILLed
  (a stuck guest cannot be salvaged), the slot respawns, and the job
  is retried under the same policy.

A reaper thread additionally respawns workers that die while *idle*
(chaos kills between jobs) so capacity never silently decays.  Jobs
are never lost: a queued or in-flight job either completes with a
worker result or completes with a structured error after exhausting
retries.  :meth:`JobRecord.complete` is idempotent, which makes the
"exactly once" guarantee easy to state and test.

Worker processes are forked, so they inherit warm import state; the
process-wide analysis report cache re-warms per worker after the first
job for each distinct binary.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import signal
import threading
import time

from repro.serve.jobs import JobRequest, error_result
from repro.trace.events import ServeWorkerEvent

_POLL_S = 0.05


class JobRecord:
    """One accepted job's lifecycle: request in, exactly one result out."""

    def __init__(self, job_id: int, request: JobRequest, *,
                 timeout_s: float, max_retries: int, backoff_s: float):
        self.id = job_id
        self.request = request
        self.tenant = request.tenant
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.attempts = 0
        #: set by the daemon when admission demoted the arith spec
        self.shed = False
        self.requested_arith = request.arith_text
        self.result: dict | None = None
        self.submitted_at = time.perf_counter()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: list = []

    def complete(self, result: dict) -> bool:
        """Record the job's result; only the first call wins."""
        with self._lock:
            if self.result is not None:
                return False
            self.result = result
            callbacks, self._callbacks = self._callbacks, []
        self._done.set()
        for cb in callbacks:
            cb(self)
        return True

    def add_done_callback(self, cb) -> None:
        with self._lock:
            if self.result is None:
                self._callbacks.append(cb)
                return
        cb(self)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> dict | None:
        self._done.wait(timeout)
        return self.result


def _worker_main(conn, worker_id: int) -> None:
    """Worker process loop: recv (job_id, tenant, request), send result."""
    from repro.serve.worker import execute_job

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        job_id, tenant, request = msg
        result = execute_job(request, job_id=job_id, tenant=tenant)
        try:
            conn.send((job_id, result))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _WorkerSlot:
    def __init__(self, index: int):
        self.index = index
        self.proc: mp.process.BaseProcess | None = None
        self.conn = None
        self.lock = threading.Lock()
        self.busy: int | None = None  # job id currently on this worker
        self.jobs_done = 0


class WorkerPool:
    """Fixed-size pool of crash-isolated job workers."""

    def __init__(self, workers: int = 2, *, job_timeout_s: float = 30.0,
                 retries: int = 2, backoff_s: float = 0.05, on_event=None):
        self.size = int(workers)
        self.job_timeout_s = job_timeout_s
        self.retries = int(retries)
        self.backoff_s = backoff_s
        self._on_event = on_event
        self._ctx = mp.get_context("fork")
        self._queue: queue.Queue = queue.Queue()
        self._slots = [_WorkerSlot(i) for i in range(self.size)]
        self._tenders: list[threading.Thread] = []
        self._reaper: threading.Thread | None = None
        self._timers: list[threading.Timer] = []
        self._stop = threading.Event()
        self._stats_lock = threading.Lock()
        self.worker_deaths = 0
        self.timeout_kills = 0
        self.respawns = 0
        self.retried_jobs = 0

    # ------------------------------------------------------------- events

    def _emit(self, worker: int, action: str, reason: str = "",
              jobs_done: int = 0) -> None:
        if self._on_event is not None:
            self._on_event(ServeWorkerEvent(worker=worker, action=action,
                                            reason=reason,
                                            jobs_done=jobs_done))

    # ----------------------------------------------------------- spawning

    def _spawn(self, slot: _WorkerSlot, action: str = "spawn",
               reason: str = "") -> None:
        """(Re)start the process behind ``slot``; caller holds slot.lock."""
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(target=_worker_main,
                                 args=(child_conn, slot.index),
                                 name=f"serve-worker-{slot.index}",
                                 daemon=True)
        proc.start()
        # close our copy of the child end so a dead worker reads as EOF
        child_conn.close()
        slot.proc, slot.conn = proc, parent_conn
        slot.busy = None
        if action != "spawn":
            with self._stats_lock:
                self.respawns += 1
        self._emit(slot.index, action, reason=reason,
                   jobs_done=slot.jobs_done)

    def start(self) -> None:
        for slot in self._slots:
            with slot.lock:
                self._spawn(slot)
            t = threading.Thread(target=self._tend, args=(slot,),
                                 name=f"serve-tender-{slot.index}",
                                 daemon=True)
            t.start()
            self._tenders.append(t)
        self._reaper = threading.Thread(target=self._reap,
                                        name="serve-reaper", daemon=True)
        self._reaper.start()

    # ---------------------------------------------------------- scheduling

    def submit(self, record: JobRecord) -> None:
        self._queue.put(record)

    def _retry_or_fail(self, rec: JobRecord, error_type: str,
                       message: str) -> None:
        if rec.attempts <= rec.max_retries:
            with self._stats_lock:
                self.retried_jobs += 1
            delay = rec.backoff_s * (2 ** (rec.attempts - 1))
            timer = threading.Timer(delay, self._queue.put, (rec,))
            timer.daemon = True
            timer.start()
            self._timers = [t for t in self._timers if t.is_alive()]
            self._timers.append(timer)
        else:
            rec.complete(error_result(
                error_type,
                f"{message} (after {rec.attempts} attempts)"))

    def _tend(self, slot: _WorkerSlot) -> None:
        """Tender thread: pump jobs through one worker slot."""
        while not self._stop.is_set():
            try:
                rec = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if rec is None or self._stop.is_set():
                if rec is not None:
                    self._queue.put(rec)  # hand back to stop() drain
                break
            if rec.done:
                continue  # completed elsewhere (shutdown race)
            with slot.lock:
                if slot.proc is None or not slot.proc.is_alive():
                    self._spawn(slot, action="respawn", reason="dead-idle")
                slot.busy = rec.id
                conn = slot.conn
            rec.attempts += 1
            try:
                conn.send((rec.id, rec.tenant, rec.request))
                self._await_result(slot, rec, conn)
            except (BrokenPipeError, OSError, EOFError):
                self._on_death(slot, rec)
            finally:
                with slot.lock:
                    slot.busy = None

    def _await_result(self, slot: _WorkerSlot, rec: JobRecord,
                      conn) -> None:
        deadline = time.monotonic() + rec.timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._on_timeout(slot, rec)
                return
            if conn.poll(min(remaining, _POLL_S)):
                job_id, result = conn.recv()  # EOFError → caller
                if job_id != rec.id:  # stale result from a prior epoch
                    continue
                slot.jobs_done += 1
                result["retries"] = rec.attempts - 1
                rec.complete(result)
                return
            proc = slot.proc
            if proc is None or not proc.is_alive():
                # drain any result that raced the death notice
                if conn.poll(0):
                    continue
                raise EOFError

    def _on_death(self, slot: _WorkerSlot, rec: JobRecord) -> None:
        with self._stats_lock:
            self.worker_deaths += 1
        self._emit(slot.index, "death", reason=f"died running job {rec.id}",
                   jobs_done=slot.jobs_done)
        with slot.lock:
            self._spawn(slot, action="respawn", reason="death")
        self._retry_or_fail(rec, "WorkerDied",
                            "worker process died mid-job")

    def _on_timeout(self, slot: _WorkerSlot, rec: JobRecord) -> None:
        with self._stats_lock:
            self.timeout_kills += 1
        self._emit(slot.index, "timeout-kill",
                   reason=f"job {rec.id} exceeded {rec.timeout_s}s",
                   jobs_done=slot.jobs_done)
        with slot.lock:
            proc = slot.proc
            if proc is not None and proc.is_alive():
                self._kill(proc)
            self._spawn(slot, action="respawn", reason="timeout")
        self._retry_or_fail(rec, "JobTimeout",
                            f"job exceeded {rec.timeout_s}s wall clock")

    # ------------------------------------------------------------- reaper

    def _reap(self) -> None:
        """Respawn workers that die while idle (chaos between jobs)."""
        while not self._stop.wait(0.25):
            for slot in self._slots:
                with slot.lock:
                    if (slot.proc is not None and not slot.proc.is_alive()
                            and slot.busy is None):
                        with self._stats_lock:
                            self.worker_deaths += 1
                        self._emit(slot.index, "death", reason="died idle",
                                   jobs_done=slot.jobs_done)
                        self._spawn(slot, action="respawn",
                                    reason="reaper")

    # -------------------------------------------------------------- chaos

    def kill_worker(self, index: int | None = None, *,
                    busy_only: bool = False, reason: str = "chaos") -> int | None:
        """SIGKILL one worker (chaos injection).  Returns the slot index."""
        candidates = []
        for slot in self._slots:
            if slot.proc is None or not slot.proc.is_alive():
                continue
            if busy_only and slot.busy is None:
                continue
            if index is not None and slot.index != index:
                continue
            candidates.append(slot)
        if not candidates:
            return None
        slot = candidates[0]
        self._emit(slot.index, "chaos-kill", reason=reason,
                   jobs_done=slot.jobs_done)
        self._kill(slot.proc)
        return slot.index

    @staticmethod
    def _kill(proc) -> None:
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass
        proc.join(timeout=2.0)

    # ------------------------------------------------------- introspection

    def busy_indices(self) -> list[int]:
        return [s.index for s in self._slots if s.busy is not None]

    @property
    def alive(self) -> int:
        return sum(1 for s in self._slots
                   if s.proc is not None and s.proc.is_alive())

    @property
    def backlog(self) -> int:
        """Jobs queued plus jobs currently on a worker."""
        return self._queue.qsize() + len(self.busy_indices())

    @property
    def stats(self) -> dict:
        with self._stats_lock:
            return {
                "workers": self.size,
                "alive": self.alive,
                "busy": len(self.busy_indices()),
                "queued": self._queue.qsize(),
                "worker_deaths": self.worker_deaths,
                "timeout_kills": self.timeout_kills,
                "respawns": self.respawns,
                "retried_jobs": self.retried_jobs,
                "jobs_done": sum(s.jobs_done for s in self._slots),
            }

    # ------------------------------------------------------------ shutdown

    def stop(self) -> None:
        self._stop.set()
        for timer in self._timers:
            timer.cancel()
        for _ in self._slots:
            self._queue.put(None)
        for t in self._tenders:
            t.join(timeout=2.0)
        if self._reaper is not None:
            self._reaper.join(timeout=2.0)
        for slot in self._slots:
            with slot.lock:
                if slot.proc is not None and slot.proc.is_alive():
                    self._kill(slot.proc)
                if slot.conn is not None:
                    try:
                        slot.conn.close()
                    except OSError:
                        pass
        # any job still queued completes with a structured error
        while True:
            try:
                rec = self._queue.get_nowait()
            except queue.Empty:
                break
            if rec is not None and not rec.done:
                rec.complete(error_result("PoolStopped",
                                          "pool shut down before the job ran"))
