"""Blocking client + load generator for the serve daemon.

:class:`ServeClient` is a thin stdlib-only HTTP client (TCP or unix
socket) used by the CLI, the tests, and the benchmark.
:func:`generate_load` is the closed-loop load generator behind the
serve benchmark and the CI smoke job: N client threads submit jobs as
fast as the daemon accepts them, and the report accounts for every
submission — completed, rejected, or errored — so "zero lost jobs"
is checkable from the outside.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time


class _UnixHTTPConnection(http.client.HTTPConnection):
    """HTTP/1.1 over an ``AF_UNIX`` socket path."""

    def __init__(self, socket_path: str, timeout: float):
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ServeClient:
    """One blocking HTTP client for a running serve daemon."""

    def __init__(self, port: int | None = None, *,
                 host: str = "127.0.0.1",
                 socket_path: str | None = None,
                 timeout: float = 60.0):
        if port is None and socket_path is None:
            raise ValueError("need a port or a socket_path")
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> tuple[int, dict]:
        if self.socket_path is not None:
            conn = _UnixHTTPConnection(self.socket_path, self.timeout)
        else:
            conn = http.client.HTTPConnection(self.host, self.port,
                                              timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                doc = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                doc = {"error": raw.decode("latin-1", "replace")}
            return resp.status, doc
        finally:
            conn.close()

    # ------------------------------------------------------------- verbs

    def submit(self, job: dict, *, wait: bool = True) -> tuple[int, dict]:
        """POST a job; returns (http status, result/err document)."""
        path = "/jobs" if wait else "/jobs?wait=false"
        return self._request("POST", path, job)

    def job(self, job_id: int) -> tuple[int, dict]:
        return self._request("GET", f"/jobs/{job_id}")

    def health(self) -> dict:
        return self._request("GET", "/health")[1]

    def stats(self) -> dict:
        return self._request("GET", "/stats")[1]

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")[1]


def generate_load(client: ServeClient, job: dict, *,
                  duration_s: float = 5.0, concurrency: int = 4,
                  jobs: int | None = None) -> dict:
    """Closed-loop load generation with full submission accounting.

    Each of ``concurrency`` threads submits ``job`` back-to-back until
    ``duration_s`` elapses (or until the shared budget of ``jobs``
    submissions is spent).  Every submission is accounted for in the
    report; ``lost`` counts submissions that got *no* terminal answer
    and must be zero for a healthy daemon.
    """
    lock = threading.Lock()
    latencies: list[float] = []
    outcomes: dict[str, int] = {}
    shed = 0
    cached = 0
    lost = 0
    budget = [jobs if jobs is not None else -1]
    deadline = time.perf_counter() + duration_s

    def note(outcome: str) -> None:
        outcomes[outcome] = outcomes.get(outcome, 0) + 1

    def drive() -> None:
        nonlocal shed, cached, lost
        while True:
            with lock:
                if budget[0] == 0:
                    return
                if budget[0] > 0:
                    budget[0] -= 1
            if time.perf_counter() >= deadline:
                return
            t0 = time.perf_counter()
            try:
                status, doc = client.submit(job)
            except (OSError, http.client.HTTPException):
                with lock:
                    lost += 1
                continue
            wall = (time.perf_counter() - t0) * 1e3
            with lock:
                if status == 429:
                    note("rejected")
                elif status == 200 and doc.get("ok"):
                    note("ok")
                    latencies.append(wall)
                    if doc.get("shed"):
                        shed += 1
                    if doc.get("cached"):
                        cached += 1
                elif status == 200:
                    note(doc.get("error_type") or "error")
                    latencies.append(wall)
                else:
                    lost += 1

    t_start = time.perf_counter()
    threads = [threading.Thread(target=drive, daemon=True)
               for _ in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = max(time.perf_counter() - t_start, 1e-9)

    latencies.sort()
    completed = sum(outcomes.values()) - outcomes.get("rejected", 0)
    total = sum(outcomes.values()) + lost

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))]

    return {
        "submitted": total,
        "completed": completed,
        "outcomes": outcomes,
        "jobs_per_sec": completed / elapsed,
        "p50_ms": pct(0.50),
        "p99_ms": pct(0.99),
        "shed": shed,
        "shed_rate": shed / max(completed, 1),
        "cached": cached,
        "rejected": outcomes.get("rejected", 0),
        "lost": lost,
        "elapsed_s": elapsed,
    }
