"""The serve daemon: admission control, shedding, and the HTTP front.

A single asyncio event loop owns admission and the (hand-rolled,
stdlib-only) HTTP/1.1 front end; all guest execution happens in the
:class:`~repro.serve.pool.WorkerPool`'s processes, bridged back to the
loop with ``call_soon_threadsafe``.  The admission ladder runs, in
order, for every ``POST /jobs``:

1. **validate** — malformed submissions answer 400 with the
   :class:`~repro.serve.jobs.JobError` message; they never reach the
   queue.
2. **cache** — a deterministic repeat of a finished job answers from
   the :class:`~repro.serve.cache.ResultCache` without touching the
   pool (bit-identical by construction).
3. **reject** — backlog at ``queue_limit`` answers a structured 429:
   better an honest "overloaded" than an unbounded queue.
4. **shed** — backlog at ``shed_watermark`` demotes sheddable jobs
   (MPFR/posit/... arith) to vanilla-precision execution *before*
   anything is rejected — the graceful-degradation ladder used as an
   SLO valve, one :class:`~repro.trace.events.ServeShedEvent` per
   demotion.
5. **run** — the job enters the pool with per-job timeout and bounded
   backoff retries.

Every retired job emits one :class:`~repro.trace.events.ServeJobEvent`
into the daemon's trace bus (a ProfilerSink always listens; ``/stats``
serves its serving summary).  ``/health`` cross-checks the books:
``accepted == completed + in_flight`` — the "no lost jobs" invariant,
live.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.serve.cache import ResultCache
from repro.serve.jobs import JobError, JobRequest
from repro.serve.pool import JobRecord, WorkerPool
from repro.trace.events import ServeJobEvent, ServeShedEvent
from repro.trace.profiler import ProfilerSink

_COMPLETED_KEPT = 512


@dataclass
class ServeConfig:
    """Tunables for one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 → kernel-assigned, see .port
    socket_path: str | None = None     # unix socket instead of TCP
    workers: int = 2
    queue_limit: int = 16              # backlog ceiling → 429 above
    shed_watermark: int = 8            # backlog level that starts shedding
    job_timeout_s: float = 30.0
    retries: int = 2
    backoff_s: float = 0.05
    cache_entries: int = 256
    selftest: bool = True
    crash_log: str | None = None       # NDJSON crash-record append target
    trace: object | None = None        # extra TraceSink for serve events


class Daemon:
    """One serve daemon: pool + cache + admission + HTTP front end."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.profiler = ProfilerSink()
        self.cache = ResultCache(self.config.cache_entries)
        self.pool = WorkerPool(self.config.workers,
                               job_timeout_s=self.config.job_timeout_s,
                               retries=self.config.retries,
                               backoff_s=self.config.backoff_s,
                               on_event=self._emit)
        self._ids = itertools.count(1)
        #: binary_key → content_hash, learned from completed jobs so a
        #: repeat submission can probe the result cache before building
        self._hash_hints: dict[tuple, str] = {}
        self._inflight: dict[int, JobRecord] = {}
        self._completed: OrderedDict[int, dict] = OrderedDict()
        self._books_lock = threading.Lock()
        self.accepted = 0
        self.completed = 0
        self.rejected = 0
        self.selftest_ok: bool | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._crash_lock = threading.Lock()

    # ------------------------------------------------------------- events

    def _emit(self, event) -> None:
        self.profiler.emit(event)
        extra = self.config.trace
        if extra is not None:
            extra.emit(event)

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self.pool.start()
        if self.config.selftest:
            self.selftest_ok = await self._selftest()
            if not self.selftest_ok:
                raise RuntimeError("serve self-test failed: a trivial job "
                                   "did not complete cleanly")
        self._loop = asyncio.get_running_loop()
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.config.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle, self.config.host, self.config.port)
            self.port = self._server.sockets[0].getsockname()[1]

    async def _selftest(self) -> bool:
        """Run one trivial compiled job end to end before listening."""
        req = JobRequest.from_wire({
            "source": ("long main() { double x = 1.0 + 2.0; "
                       "printf(\"selftest %f\\n\", x); return 0; }"),
            "arith": "vanilla",
            "tenant": "selftest",
        })
        rec = self._admit(req, force=True)
        result = await self._await_record(rec, timeout=60.0)
        return bool(result and result.get("ok")
                    and result.get("exit_code") == 0)

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def stop(self) -> None:
        if self._server is not None:
            self._server.close()
        self.pool.stop()

    # ---------------------------------------------------------- admission

    def _admit(self, req: JobRequest, *, force: bool = False) -> JobRecord:
        """Queue a validated request; caller has already passed the
        reject/shed ladder (``force`` bypasses it for the self-test)."""
        job_id = next(self._ids)
        shed = False
        requested = req.arith_text
        backlog = self.pool.backlog
        if not force and backlog >= self.config.shed_watermark \
                and req.sheddable:
            self._emit(ServeShedEvent(job_id=job_id, tenant=req.tenant,
                                      queue_depth=backlog,
                                      watermark=self.config.shed_watermark,
                                      from_arith=requested))
            req = req.shed_to_vanilla()
            shed = True
        rec = JobRecord(job_id, req,
                        timeout_s=self.config.job_timeout_s,
                        max_retries=self.config.retries,
                        backoff_s=self.config.backoff_s)
        rec.shed = shed
        rec.requested_arith = requested
        with self._books_lock:
            self.accepted += 1
            self._inflight[job_id] = rec
        rec.add_done_callback(self._on_done)
        self.pool.submit(rec)
        return rec

    def _on_done(self, rec: JobRecord) -> None:
        """Pool-side completion: bookkeeping, cache fill, telemetry."""
        result = dict(rec.result or {})
        wall_ms = (time.perf_counter() - rec.submitted_at) * 1e3
        result.update(
            job_id=rec.id,
            tenant=rec.tenant,
            shed=rec.shed,
            requested_arith=rec.requested_arith,
            wall_ms=wall_ms,
            cached=False,
        )
        result.setdefault("retries", max(rec.attempts - 1, 0))
        req = rec.request
        if result.get("ok") and result.get("binary_hash") \
                and not req.trace and not req.no_cache and not req.chaos:
            self._hash_hints[req.binary_key] = result["binary_hash"]
            self.cache.put(req.cache_key(result["binary_hash"]), result)
        if result.get("crash_records") and self.config.crash_log:
            from repro.faults.crashreport import write_crash_report

            with self._crash_lock:
                write_crash_report(self.config.crash_log,
                                   result["crash_records"],
                                   append=True, fsync=True)
        with self._books_lock:
            self.completed += 1
            self._inflight.pop(rec.id, None)
            self._completed[rec.id] = result
            while len(self._completed) > _COMPLETED_KEPT:
                self._completed.popitem(last=False)
        outcome = ("ok" if result.get("ok")
                   else "timeout" if result.get("error_type") == "JobTimeout"
                   else "error")
        self._emit(ServeJobEvent(
            job_id=rec.id, tenant=rec.tenant,
            workload=req.workload or "<source>",
            arith=req.arith_text, outcome=outcome, shed=rec.shed,
            cached=False, retries=result["retries"], wall_ms=wall_ms,
            queue_depth=self.pool.backlog))

    def _try_cache(self, req: JobRequest) -> dict | None:
        if req.trace or req.no_cache or req.chaos:
            return None
        binary_hash = self._hash_hints.get(req.binary_key)
        if binary_hash is None:
            return None
        hit = self.cache.get(req.cache_key(binary_hash))
        if hit is None:
            return None
        job_id = next(self._ids)
        hit.update(job_id=job_id, tenant=req.tenant, cached=True,
                   shed=False, requested_arith=req.arith_text,
                   wall_ms=0.0, retries=0)
        with self._books_lock:
            self.accepted += 1
            self.completed += 1
            self._completed[job_id] = hit
            while len(self._completed) > _COMPLETED_KEPT:
                self._completed.popitem(last=False)
        self._emit(ServeJobEvent(
            job_id=job_id, tenant=req.tenant,
            workload=req.workload or "<source>",
            arith=req.arith_text, outcome="ok", cached=True,
            queue_depth=self.pool.backlog))
        return hit

    def _reject(self, req: JobRequest) -> dict:
        job_id = next(self._ids)
        with self._books_lock:
            self.rejected += 1
        backlog = self.pool.backlog
        self._emit(ServeJobEvent(
            job_id=job_id, tenant=req.tenant,
            workload=req.workload or "<source>",
            arith=req.arith_text, outcome="rejected",
            queue_depth=backlog))
        return {
            "error": "overloaded",
            "error_type": "Overloaded",
            "queue_depth": backlog,
            "queue_limit": self.config.queue_limit,
            "retry_after_s": self.config.job_timeout_s / 10,
        }

    # ----------------------------------------------------------- awaiting

    async def _await_record(self, rec: JobRecord,
                            timeout: float | None = None) -> dict | None:
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()

        def _done(r: JobRecord) -> None:
            def _set() -> None:
                if not fut.done():
                    fut.set_result(r.result)
            loop.call_soon_threadsafe(_set)

        rec.add_done_callback(_done)
        try:
            await asyncio.wait_for(asyncio.shield(fut), timeout)
        except asyncio.TimeoutError:
            return None
        # _on_done enriched the stored copy; serve that one
        with self._books_lock:
            stored = self._completed.get(rec.id)
        return stored if stored is not None else fut.result()

    # --------------------------------------------------------------- HTTP

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, doc = await self._dispatch(reader)
        except Exception as exc:  # noqa: BLE001 - front end must not die
            status, doc = 500, {"error": str(exc),
                                "error_type": type(exc).__name__}
        body = json.dumps(doc).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 429: "Too Many Requests",
                  500: "Internal Server Error"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _dispatch(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, target = parts[0], parts[1]
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await reader.readexactly(length) if length else b""

        path, _, query = target.partition("?")
        if method == "POST" and path == "/jobs":
            return await self._post_job(raw, query)
        if method == "GET" and path.startswith("/jobs/"):
            return self._get_job(path[len("/jobs/"):])
        if method == "GET" and path == "/health":
            return 200, self.health()
        if method == "GET" and path == "/stats":
            return 200, self.stats()
        if method == "POST" and path == "/shutdown":
            asyncio.get_running_loop().call_soon(self._server.close)
            return 200, {"ok": True, "shutting_down": True}
        return 404, {"error": f"no route {method} {path}"}

    async def _post_job(self, raw: bytes, query: str) -> tuple[int, dict]:
        try:
            doc = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            return 400, {"error": f"bad JSON: {exc}",
                         "error_type": "JobError"}
        try:
            req = JobRequest.from_wire(doc)
        except JobError as exc:
            return 400, {"error": str(exc), "error_type": "JobError"}

        hit = self._try_cache(req)
        if hit is not None:
            return 200, hit
        if self.pool.backlog >= self.config.queue_limit:
            return 429, self._reject(req)
        rec = self._admit(req)
        if "wait=false" in query:
            return 202, {"job_id": rec.id, "pending": True,
                         "shed": rec.shed}
        result = await self._await_record(rec)
        if result is None:  # only on daemon-side await failure
            return 500, {"error": "job did not complete",
                         "job_id": rec.id}
        return 200, result

    def _get_job(self, tail: str) -> tuple[int, dict]:
        try:
            job_id = int(tail)
        except ValueError:
            return 400, {"error": f"bad job id {tail!r}"}
        with self._books_lock:
            done = self._completed.get(job_id)
            pending = job_id in self._inflight
        if done is not None:
            return 200, done
        if pending:
            return 202, {"job_id": job_id, "pending": True}
        return 404, {"error": f"unknown job {job_id}"}

    # ------------------------------------------------------------- status

    def health(self) -> dict:
        pool = self.pool.stats
        with self._books_lock:
            accepted = self.accepted
            completed = self.completed
            in_flight = len(self._inflight)
        lost = accepted - completed - in_flight
        healthy = (lost == 0 and pool["alive"] == pool["workers"]
                   and self.selftest_ok is not False)
        return {
            "status": "ok" if healthy else "degraded",
            "selftest": self.selftest_ok,
            "accepted": accepted,
            "completed": completed,
            "in_flight": in_flight,
            "rejected": self.rejected,
            "lost": lost,
            "pool": pool,
            "cache": self.cache.stats,
            "queue_limit": self.config.queue_limit,
            "shed_watermark": self.config.shed_watermark,
        }

    def stats(self) -> dict:
        return {
            "serve": self.profiler.serve_summary(),
            "pool": self.pool.stats,
            "cache": self.cache.stats,
        }


class DaemonHandle:
    """A daemon running on a background thread (tests, bench, CI)."""

    def __init__(self, daemon: Daemon, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.daemon = daemon
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int | None:
        return self.daemon.port

    def client(self, timeout: float = 60.0):
        from repro.serve.client import ServeClient

        return ServeClient(self.daemon.port,
                           socket_path=self.daemon.config.socket_path,
                           timeout=timeout)

    def stop(self) -> None:
        def _close() -> None:
            if self.daemon._server is not None:
                self.daemon._server.close()
        self._loop.call_soon_threadsafe(_close)
        self._thread.join(timeout=10.0)
        self.daemon.pool.stop()


def start_in_thread(config: ServeConfig | None = None,
                    ready_timeout_s: float = 120.0) -> DaemonHandle:
    """Boot a daemon on a fresh event loop in a background thread."""
    daemon = Daemon(config)
    started = threading.Event()
    boot_error: list[BaseException] = []
    loop_box: list[asyncio.AbstractEventLoop] = []

    def _main() -> None:
        async def _run() -> None:
            loop_box.append(asyncio.get_running_loop())
            try:
                await daemon.start()
            except BaseException as exc:  # noqa: BLE001 - report to caller
                boot_error.append(exc)
                started.set()
                return
            started.set()
            try:
                await daemon.serve_forever()
            except asyncio.CancelledError:
                pass

        asyncio.run(_run())

    thread = threading.Thread(target=_main, name="serve-daemon",
                              daemon=True)
    thread.start()
    if not started.wait(ready_timeout_s):
        raise RuntimeError("serve daemon did not start in time")
    if boot_error:
        daemon.pool.stop()
        raise boot_error[0]
    return DaemonHandle(daemon, loop_box[0], thread)


def run_daemon(config: ServeConfig | None = None) -> None:
    """Blocking entry point for the ``repro serve`` CLI."""
    daemon = Daemon(config)

    async def _run() -> None:
        await daemon.start()
        where = (daemon.config.socket_path
                 or f"http://{daemon.config.host}:{daemon.port}")
        print(f"repro serve: {daemon.config.workers} workers, "
              f"queue limit {daemon.config.queue_limit}, "
              f"listening on {where}", flush=True)
        try:
            await daemon.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        daemon.pool.stop()
