"""The in-worker job executor.

Runs inside a pool worker process: one :class:`JobRequest` in, one
JSON-safe result dict out, *never* an exception — the same containment
discipline as :func:`~repro.harness.experiment.run_cell_guarded`.  A
guest binary that dies yields a result with ``error`` set plus
structured crash records tagged with the job's ``job_id``/``tenant``;
only a hard process death (chaos SIGKILL, ``os._exit``) escapes, and
that is the pool tender's problem, not ours.

Warm reuse across requests: workers are long-lived processes, so the
process-wide analysis report cache (keyed on
:meth:`Binary.content_hash`) makes every job after the first for a
given binary skip the VSA entirely — the serving tier's analysis
amortization.  The run itself is deterministic, so a retried job on a
fresh worker is bit-identical to its first attempt.
"""

from __future__ import annotations

import io
import os
import time

from repro.serve.jobs import JobRequest, error_result


def _chaos(req: JobRequest) -> None:
    """Serve-tier fault injection: misbehave on request (tests/chaos)."""
    knobs = dict(req.chaos)
    sleep_s = knobs.get("sleep_s")
    if sleep_s:
        time.sleep(float(sleep_s))
    if knobs.get("exit"):
        # a guest that takes the whole worker process down (the real
        # analogue: a segfault in native FPVM); bypasses containment
        os._exit(17)
    if knobs.get("raise"):
        raise RuntimeError("injected serve-tier fault")


def execute_job(req: JobRequest, *, job_id: int = 0,
                tenant: str = "") -> dict:
    """Run one job to completion inside this worker process."""
    from repro.compiler import compile_source
    from repro.faults.crashreport import build_crash_report
    from repro.session import Session
    from repro.trace.sinks import NDJSONSink

    session = None
    sink = None
    buf: io.StringIO | None = None
    try:
        _chaos(req)
        if req.trace:
            buf = io.StringIO()
            sink = NDJSONSink(buf)
        if req.workload:
            target = req.workload
        else:
            source = req.source
            target = lambda: compile_source(source)  # noqa: E731
        session = Session(
            target,
            req.arith,
            size=req.size,
            trace=sink,
            stdin=req.stdin,
            params=dict(req.params),
            label=f"job{job_id}",
        )
        res = session.run(req.max_instructions,
                          max_cycles=req.max_cycles)
        out = {
            "ok": True,
            "stdout": res.stdout,
            "exit_code": res.exit_code,
            "instr_count": res.instr_count,
            "fp_instr_count": res.fp_instr_count,
            "fp_traps": res.fp_traps,
            "correctness_traps": res.correctness_traps,
            "cycles": res.cycles,
            "degradations": 0,
            "sites_short_circuited": 0,
            "binary_hash": session.binary.content_hash(),
            "arith": req.arith_text,
            "error": None,
            "error_type": "",
            "crash_records": [],
            "trace_ndjson": None,
        }
        if res.fpvm is not None:
            st = res.fpvm.stats
            out["degradations"] = (st.degradations
                                   + res.fpvm.gc.sweeps_skipped
                                   + res.fpvm.emulator.corrupted_boxes)
            out["sites_short_circuited"] = st.sites_short_circuited
        if sink is not None:
            session.close()
            session = None
            out["trace_ndjson"] = buf.getvalue()
        return out
    except Exception as exc:  # noqa: BLE001 - containment is the point
        machine = session.machine if session is not None else None
        fpvm = session.fpvm if session is not None else None
        records = build_crash_report(exc, machine, fpvm,
                                     label=f"job{job_id}",
                                     job_id=job_id, tenant=tenant)
        out = error_result(type(exc).__name__, str(exc),
                           crash_records=records)
        if machine is not None:
            out.update(
                stdout="".join(machine.stdout),
                instr_count=machine.instr_count,
                fp_instr_count=machine.fp_instr_count,
                fp_traps=machine.fp_trap_count,
                correctness_traps=machine.correctness_trap_count,
                cycles=machine.cost.cycles,
            )
        if session is not None:
            out["binary_hash"] = session.binary.content_hash()
            out["arith"] = req.arith_text
        return out
    finally:
        if session is not None:
            session.close()
