"""The serving tier's job protocol.

A job is everything one served run needs: the guest binary (a built-in
workload name or ``.fpc`` source text), the arithmetic spec, guest
inputs (stdin, data-symbol pokes), and resource limits.  The wire
format is flat JSON; :meth:`JobRequest.from_wire` is the single
validation chokepoint — anything it rejects becomes a structured 400,
never a daemon traceback.

``JobRequest`` is picklable: the daemon sends it over the worker pipe
as-is.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from repro.arith import ArithSpecError, normalize_spec
from repro.errors import ReproError

#: the shed target: vanilla semantics under FPVM (IEEE-identical
#: results at a fraction of an MPFR/posit job's cost)
VANILLA = ("vanilla",)

_SIZES = ("test", "bench", "S")
_MAX_SOURCE = 256 * 1024
_MAX_STDIN = 64 * 1024

_FIELDS = {
    "workload", "source", "size", "arith", "stdin", "params",
    "max_instructions", "max_cycles", "tenant", "trace", "no_cache",
    "chaos",
}


class JobError(ReproError, ValueError):
    """A malformed job submission (daemon answers 400, not 500)."""


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise JobError(msg)


@dataclass(frozen=True)
class JobRequest:
    """One validated, immutable, picklable job."""

    workload: str = ""
    source: str = ""
    size: str = "test"
    #: normalized picklable arith spec tuple, or None for a native run
    arith: tuple | None = VANILLA
    stdin: bytes = b""
    #: data-symbol pokes as sorted (name, value) pairs
    params: tuple = ()
    max_instructions: int | None = 50_000_000
    max_cycles: float | None = None
    tenant: str = ""
    #: return the run's NDJSON trace text in the response
    trace: bool = False
    no_cache: bool = False
    #: serve-tier fault-injection knobs (tests/chaos plans only):
    #: ``sleep_s`` holds the worker busy mid-job, ``exit`` hard-kills
    #: the worker process (``os._exit``) as if the guest took it down
    chaos: tuple = ()

    @classmethod
    def from_wire(cls, doc: object) -> "JobRequest":
        """Validate a decoded JSON submission into a JobRequest."""
        _require(isinstance(doc, dict), "job must be a JSON object")
        unknown = set(doc) - _FIELDS
        _require(not unknown,
                 f"unknown job fields {sorted(unknown)} "
                 f"(allowed: {sorted(_FIELDS)})")
        workload = doc.get("workload") or ""
        source = doc.get("source") or ""
        _require(isinstance(workload, str) and isinstance(source, str),
                 "workload/source must be strings")
        _require(bool(workload) != bool(source),
                 "exactly one of 'workload' or 'source' is required")
        if workload:
            from repro.workloads import WORKLOADS

            _require(workload in WORKLOADS,
                     f"unknown workload {workload!r} "
                     f"(known: {sorted(WORKLOADS)})")
        _require(len(source) <= _MAX_SOURCE,
                 f"source exceeds {_MAX_SOURCE} bytes")
        size = doc.get("size", "test")
        _require(size in _SIZES, f"size must be one of {_SIZES}")

        raw_arith = doc.get("arith", "vanilla")
        if raw_arith in (None, "native"):
            arith = None
        else:
            _require(isinstance(raw_arith, str),
                     "arith must be a spec string, 'native', or null")
            try:
                arith = normalize_spec(raw_arith)
            except ArithSpecError as exc:
                raise JobError(str(exc)) from None

        stdin = doc.get("stdin", "")
        _require(isinstance(stdin, str), "stdin must be a string")
        _require(len(stdin) <= _MAX_STDIN,
                 f"stdin exceeds {_MAX_STDIN} bytes")

        params = doc.get("params") or {}
        _require(isinstance(params, dict), "params must be an object")
        for k, v in params.items():
            _require(isinstance(k, str) and isinstance(v, (int, float))
                     and not isinstance(v, bool),
                     "params must map symbol names to numbers")

        max_instructions = doc.get("max_instructions", 50_000_000)
        _require(max_instructions is None
                 or (isinstance(max_instructions, int)
                     and max_instructions > 0),
                 "max_instructions must be a positive integer or null")
        max_cycles = doc.get("max_cycles")
        _require(max_cycles is None
                 or (isinstance(max_cycles, (int, float))
                     and max_cycles > 0),
                 "max_cycles must be a positive number or null")

        tenant = doc.get("tenant", "")
        _require(isinstance(tenant, str) and len(tenant) <= 64,
                 "tenant must be a string of at most 64 chars")

        trace = doc.get("trace", False)
        no_cache = doc.get("no_cache", False)
        _require(isinstance(trace, bool) and isinstance(no_cache, bool),
                 "trace/no_cache must be booleans")

        chaos = doc.get("chaos") or {}
        _require(isinstance(chaos, dict)
                 and set(chaos) <= {"sleep_s", "exit", "raise"},
                 "chaos accepts only sleep_s/exit/raise")

        return cls(
            workload=workload,
            source=source,
            size=size,
            arith=arith,
            stdin=stdin.encode("latin-1"),
            params=tuple(sorted(params.items())),
            max_instructions=max_instructions,
            max_cycles=max_cycles,
            tenant=tenant,
            trace=trace,
            no_cache=no_cache,
            chaos=tuple(sorted(chaos.items())),
        )

    # ------------------------------------------------------------------ #

    @property
    def arith_text(self) -> str:
        """Human-readable spec ("native", "vanilla", "mpfr:64", ...)."""
        if self.arith is None:
            return "native"
        return ":".join(str(x) for x in self.arith)

    @property
    def sheddable(self) -> bool:
        """True when demoting to vanilla would actually shed load."""
        return self.arith is not None and self.arith != VANILLA

    def shed_to_vanilla(self) -> "JobRequest":
        """The same job demoted to vanilla-precision execution."""
        return replace(self, arith=VANILLA)

    @property
    def binary_key(self) -> tuple:
        """Identifies the guest binary *before* it is built.

        The daemon uses this to remember which ``content_hash`` a
        (workload, size) or source text produced, so later
        submissions can probe the result cache without building.
        """
        if self.workload:
            return ("workload", self.workload, self.size)
        digest = hashlib.sha256(self.source.encode()).hexdigest()
        return ("source", digest, self.size)

    def cache_key(self, binary_hash: str) -> tuple:
        """Full result-cache key: binary content + arith + inputs."""
        return (binary_hash, self.arith, self.stdin, self.params,
                self.max_instructions, self.max_cycles)


def error_result(error_type: str, message: str, *,
                 crash_records: list | None = None) -> dict:
    """A result dict for a job that never produced a run."""
    return {
        "ok": False,
        "stdout": "",
        "exit_code": -1,
        "instr_count": 0,
        "fp_instr_count": 0,
        "fp_traps": 0,
        "correctness_traps": 0,
        "cycles": 0.0,
        "degradations": 0,
        "sites_short_circuited": 0,
        "binary_hash": "",
        "arith": "",
        "error": message,
        "error_type": error_type,
        "crash_records": crash_records or [],
        "trace_ndjson": None,
    }
