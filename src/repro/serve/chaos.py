"""Chaos plans aimed at the serving tier.

The fault campaigns in :mod:`repro.faults` attack the *guest* (bit
flips, delayed traps); this module attacks the *infrastructure*: a
seeded monkey thread that SIGKILLs pool workers mid-job on a schedule.
The serving tier's acceptance bar — asserted by the integration and
property tests — is that every accepted job still completes exactly
once, bit-identical to a fault-free run.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class ServeChaosPlan:
    """A deterministic schedule of worker kills."""

    kills: int = 2
    interval_s: float = 0.3
    initial_delay_s: float = 0.2
    seed: int = 0
    #: only kill workers that are mid-job (maximises lost-work pressure)
    busy_only: bool = True

    def monkey(self, pool) -> "ChaosMonkey":
        return ChaosMonkey(pool, self)


class ChaosMonkey(threading.Thread):
    """Background thread executing a :class:`ServeChaosPlan`."""

    def __init__(self, pool, plan: ServeChaosPlan):
        super().__init__(name="serve-chaos-monkey", daemon=True)
        self.pool = pool
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.kills_done = 0
        self._halt = threading.Event()

    def run(self) -> None:
        if self._halt.wait(self.plan.initial_delay_s):
            return
        while self.kills_done < self.plan.kills and not self._halt.is_set():
            victims = (self.pool.busy_indices() if self.plan.busy_only
                       else list(range(self.pool.size)))
            if victims:
                index = self.rng.choice(victims)
                killed = self.pool.kill_worker(
                    index=index, busy_only=self.plan.busy_only,
                    reason=f"chaos kill {self.kills_done + 1}"
                           f"/{self.plan.kills}")
                if killed is not None:
                    self.kills_done += 1
                    if self._halt.wait(self.plan.interval_s):
                        return
                    continue
            # nothing killable right now; retry shortly
            if self._halt.wait(0.02):
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)
