"""repro.serve — FPVM as a crash-isolated, load-shedding daemon.

The paper frames FPVM as transparent infrastructure that arbitrary
existing binaries run *under*; this package makes that literal: a
long-running asyncio daemon (``repro serve``) accepts (binary,
arith-spec, stdin, limits) jobs from many tenants over a local
socket/HTTP API and returns stdout + stats + an optional NDJSON trace.
The robustness core is the point — a misbehaving guest binary must
never take the daemon with it:

* :mod:`repro.serve.jobs`   — the validated job protocol (wire JSON ↔
  :class:`JobRequest`) and the result-cache key;
* :mod:`repro.serve.worker` — the in-worker executor: one job runs in
  one pool process with :func:`run_cell_guarded`-style containment
  (typed watchdogs, structured crash records tagged ``job_id``/
  ``tenant``) and warm analysis-cache reuse across requests;
* :mod:`repro.serve.pool`   — the worker-pool scheduler: per-job
  process isolation, per-job timeout → SIGKILL → bounded retry with
  exponential backoff on a fresh worker (the ``run_matrix`` retry
  discipline), and a reaper that respawns crashed workers without
  losing queued jobs;
* :mod:`repro.serve.cache`  — result caching keyed on
  (:meth:`Binary.content_hash`, normalized arith spec, guest inputs),
  extending the analysis report cache one level up;
* :mod:`repro.serve.daemon` — admission control with a bounded queue
  and structured 429-style rejections, load-shedding that drives the
  graceful-degradation ladder as an SLO valve (under queue pressure
  new jobs are demoted to vanilla-precision execution *before* any
  are dropped, one :class:`~repro.trace.events.ServeShedEvent` per
  shed), a startup self-test, and ``/health`` reporting
  pool/queue/cache state;
* :mod:`repro.serve.chaos`  — chaos plans aimed at the serving tier
  (a seeded monkey that SIGKILLs workers mid-job);
* :mod:`repro.serve.client` — a blocking HTTP client plus the
  load-generator used by the benchmark and the CI smoke job.

Serving telemetry flows through the same typed trace bus as the VM
itself (``ServeJobEvent`` / ``ServeShedEvent`` / ``ServeWorkerEvent``,
aggregated by the :class:`~repro.trace.profiler.ProfilerSink` serving
table).
"""

from repro.serve.jobs import JobError, JobRequest
from repro.serve.cache import ResultCache
from repro.serve.pool import JobRecord, WorkerPool
from repro.serve.daemon import Daemon, ServeConfig, start_in_thread
from repro.serve.chaos import ChaosMonkey, ServeChaosPlan
from repro.serve.client import ServeClient, generate_load

__all__ = [
    "JobError",
    "JobRequest",
    "ResultCache",
    "JobRecord",
    "WorkerPool",
    "Daemon",
    "ServeConfig",
    "start_in_thread",
    "ChaosMonkey",
    "ServeChaosPlan",
    "ServeClient",
    "generate_load",
]
