"""Lorenz system simulator (the paper's own test code; Fig. 13).

Forward-Euler integration of the classic chaotic system

    dx/dt = sigma (y - x)
    dy/dt = x (rho - z) - y
    dz/dt = x y - beta z

with sigma=10, rho=28, beta=8/3 — "the classic example of a chaotic
dynamic system": every rounding event is a perturbation that diverges
exponentially, which is why running it under FPVM+MPFR visibly changes
the trajectory (Fig. 13) while FPVM+Vanilla must not change it at all.
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source

NAME = "lorenz"

SOURCE_TEMPLATE = """
double sigma = 10.0;
double rho = 28.0;
double beta = 2.6666666666666665;

long main() {{
    double x = 1.0;
    double y = 1.0;
    double z = 1.0;
    double dt = {dt};
    long steps = {steps};
    long sample = {sample};
    for (long i = 0; i < steps; i = i + 1) {{
        double dx = sigma * (y - x);
        double dy = x * (rho - z) - y;
        double dz = x * y - beta * z;
        x = x + dt * dx;
        y = y + dt * dy;
        z = z + dt * dz;
        if ((i + 1) % sample == 0) {{
            printf("t=%d x=%.17g y=%.17g z=%.17g\\n", i + 1, x, y, z);
        }}
    }}
    printf("final x=%.17g y=%.17g z=%.17g\\n", x, y, z);
    return 0;
}}
"""

# The paper's simulator emits the trajectory it plots in Fig. 13, so
# output happens every step — which is also why Lorenz shows the
# smallest non-IS slowdown in Fig. 12 (much of its native time is IO).
SIZES = {
    "test": dict(steps=100, dt=0.005, sample=1),
    "S": dict(steps=2500, dt=0.005, sample=1),  # the Fig. 13 run
    "bench": dict(steps=400, dt=0.005, sample=1),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
