"""Planar three-body gravitational simulation (paper test code).

Leapfrog (kick-drift-kick) integration of three point masses — like
Lorenz, a chaotic system where higher-precision arithmetic changes the
computed trajectory (§5.4 "primarily Lorenz and three-body").  The
force kernel is division- and sqrt-heavy, giving a different trap mix
than Lorenz's add/mul-dominated stepper.
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source

NAME = "three_body"

SOURCE_TEMPLATE = """
double m[3] = {{ 1.0, 0.9, 0.8 }};
double px[3] = {{ -1.0, 1.0, 0.0 }};
double py[3] = {{ 0.0, 0.0, 0.8 }};
double vx[3] = {{ 0.0, 0.0, 0.3 }};
double vy[3] = {{ -0.35, 0.35, 0.0 }};
double ax[3];
double ay[3];
double G = 1.0;

void accel() {{
    for (long i = 0; i < 3; i = i + 1) {{
        ax[i] = 0.0;
        ay[i] = 0.0;
    }}
    for (long i = 0; i < 3; i = i + 1) {{
        for (long j = 0; j < 3; j = j + 1) {{
            if (i != j) {{
                double dx = px[j] - px[i];
                double dy = py[j] - py[i];
                double r2 = dx * dx + dy * dy + 1.0e-9;
                double r = sqrt(r2);
                double f = G * m[j] / (r2 * r);
                ax[i] = ax[i] + f * dx;
                ay[i] = ay[i] + f * dy;
            }}
        }}
    }}
}}

double energy() {{
    double e = 0.0;
    for (long i = 0; i < 3; i = i + 1) {{
        e = e + 0.5 * m[i] * (vx[i] * vx[i] + vy[i] * vy[i]);
    }}
    for (long i = 0; i < 3; i = i + 1) {{
        for (long j = i + 1; j < 3; j = j + 1) {{
            double dx = px[j] - px[i];
            double dy = py[j] - py[i];
            double r = sqrt(dx * dx + dy * dy + 1.0e-9);
            e = e - G * m[i] * m[j] / r;
        }}
    }}
    return e;
}}

long main() {{
    double dt = {dt};
    long steps = {steps};
    double e0 = energy();
    accel();
    for (long s = 0; s < steps; s = s + 1) {{
        for (long i = 0; i < 3; i = i + 1) {{
            vx[i] = vx[i] + 0.5 * dt * ax[i];
            vy[i] = vy[i] + 0.5 * dt * ay[i];
            px[i] = px[i] + dt * vx[i];
            py[i] = py[i] + dt * vy[i];
        }}
        accel();
        for (long i = 0; i < 3; i = i + 1) {{
            vx[i] = vx[i] + 0.5 * dt * ax[i];
            vy[i] = vy[i] + 0.5 * dt * ay[i];
        }}
    }}
    double e1 = energy();
    for (long i = 0; i < 3; i = i + 1) {{
        printf("body%d x=%.17g y=%.17g\\n", i, px[i], py[i]);
    }}
    printf("energy drift=%.17g\\n", e1 - e0);
    return 0;
}}
"""

SIZES = {
    "test": dict(steps=20, dt=0.01),
    "S": dict(steps=800, dt=0.01),
    "bench": dict(steps=120, dt=0.01),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
