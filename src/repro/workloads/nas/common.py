"""Shared NAS pieces: the ``randlc`` pseudorandom generator in fpc.

NAS's generator computes ``x_{k+1} = a * x_k mod 2^46`` *entirely in
double-precision floating point*, splitting operands into 23-bit
halves — a famous example of integer arithmetic done in doubles.
Under FPVM every multiply that rounds and every (double)(long) cast
traps, so even the "integer" NAS benchmarks (IS) virtualize.
"""

RANDLC_FPC = """
double R23 = 1.1920928955078125e-07;
double R46 = 1.4210854715202004e-14;
double T23 = 8388608.0;
double T46 = 70368744177664.0;
double randlc_seed = 314159265.0;
double randlc_a = 1220703125.0;

double randlc() {{
    double t1 = R23 * randlc_a;
    double a1 = (double)(long)t1;
    double a2 = randlc_a - T23 * a1;
    t1 = R23 * randlc_seed;
    double x1 = (double)(long)t1;
    double x2 = randlc_seed - T23 * x1;
    t1 = a1 * x2 + a2 * x1;
    double t2 = (double)(long)(R23 * t1);
    double z = t1 - T23 * t2;
    double t3 = T23 * z + a2 * x2;
    double t4 = (double)(long)(R46 * t3);
    double x3 = t3 - T46 * t4;
    randlc_seed = x3;
    return R46 * x3;
}}
"""
