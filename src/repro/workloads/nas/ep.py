"""NAS EP (Embarrassingly Parallel) — Class T.

Marsaglia polar method over NAS ``randlc`` uniforms: generate pairs,
accept those inside the unit disk, transform with sqrt/log, tally
Gaussian deviates into concentric square annuli.  Virtually every
dynamic FP instruction rounds, so EP virtualizes heavily (396x).
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source
from repro.workloads.nas.common import RANDLC_FPC

NAME = "nas_ep"

SOURCE_TEMPLATE = RANDLC_FPC + """
long q[10];

long main() {{
    long pairs = {pairs};
    double sx = 0.0;
    double sy = 0.0;
    long accepted = 0;
    for (long i = 0; i < 10; i = i + 1) {{ q[i] = 0; }}
    for (long i = 0; i < pairs; i = i + 1) {{
        double x = 2.0 * randlc() - 1.0;
        double y = 2.0 * randlc() - 1.0;
        double t = x * x + y * y;
        if (t <= 1.0 && t > 0.0) {{
            double t2 = sqrt(-2.0 * log(t) / t);
            double gx = x * t2;
            double gy = y * t2;
            double ax = fabs(gx);
            double ay = fabs(gy);
            double mx = ax;
            if (ay > ax) {{ mx = ay; }}
            long bucket = (long)mx;
            if (bucket > 9) {{ bucket = 9; }}
            q[bucket] = q[bucket] + 1;
            sx = sx + gx;
            sy = sy + gy;
            accepted = accepted + 1;
        }}
    }}
    printf("EP pairs=%d accepted=%d\\n", pairs, accepted);
    printf("EP sx=%.15g sy=%.15g\\n", sx, sy);
    for (long i = 0; i < 4; i = i + 1) {{
        printf("EP q[%d]=%d\\n", i, q[i]);
    }}
    return 0;
}}
"""

SIZES = {
    "test": dict(pairs=32),
    "S": dict(pairs=1024),
    "bench": dict(pairs=192),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
