"""NAS IS (Integer Sort) — Class T.

Bucket/counting sort of pseudorandom integer keys.  The only floating
point is in key *generation* (the double-based ``randlc``), which is
why IS shows the smallest FPVM slowdown of the NAS set in Fig. 12
(204x on the R815): the sort itself runs at native speed.
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source
from repro.workloads.nas.common import RANDLC_FPC

NAME = "nas_is"

SOURCE_TEMPLATE = RANDLC_FPC + """
long keys[{nkeys}];
long count[{maxkey}];
long sorted_keys[{nkeys}];

long main() {{
    long nkeys = {nkeys};
    long maxkey = {maxkey};
    // key generation: NAS uses an average of 4 randlc draws per key
    for (long i = 0; i < nkeys; i = i + 1) {{
        double x = randlc() + randlc() + randlc() + randlc();
        keys[i] = (long)(x * 0.25 * (double)maxkey);
    }}
    // counting sort
    for (long k = 0; k < maxkey; k = k + 1) {{ count[k] = 0; }}
    for (long i = 0; i < nkeys; i = i + 1) {{
        count[keys[i]] = count[keys[i]] + 1;
    }}
    for (long k = 1; k < maxkey; k = k + 1) {{
        count[k] = count[k] + count[k - 1];
    }}
    for (long i = nkeys - 1; i >= 0; i = i - 1) {{
        long k = keys[i];
        count[k] = count[k] - 1;
        sorted_keys[count[k]] = k;
    }}
    // partial verification: monotone + checksum
    long ok = 1;
    long checksum = 0;
    for (long i = 1; i < nkeys; i = i + 1) {{
        if (sorted_keys[i - 1] > sorted_keys[i]) {{ ok = 0; }}
        checksum = checksum + sorted_keys[i] * (i % 13);
    }}
    printf("IS keys=%d sorted=%d checksum=%d\\n", nkeys, ok, checksum);
    return 0;
}}
"""

SIZES = {
    "test": dict(nkeys=64, maxkey=32),
    "S": dict(nkeys=2048, maxkey=512),
    "bench": dict(nkeys=512, maxkey=128),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
