"""NAS CG (Conjugate Gradient) — Class T.

Power-method outer loop around a conjugate-gradient solve on a sparse
symmetric positive-definite matrix (CSR layout, randlc-seeded
off-diagonal pattern), estimating the largest eigenvalue shift — the
structure of the real CG benchmark at toy scale.

CG is almost nothing *but* rounding FP ops (dot products, axpy,
matvec), which is why it is Fig. 12's worst slowdown (12,169x on the
R815): nearly every dynamic instruction traps into FPVM.
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source
from repro.workloads.nas.common import RANDLC_FPC

NAME = "nas_cg"

SOURCE_TEMPLATE = RANDLC_FPC + """
double aval[{nnz_max}];
long acol[{nnz_max}];
long arow[{n_plus_1}];
double xvec[{n}];
double rvec[{n}];
double pvec[{n}];
double qvec[{n}];
double zvec[{n}];

long build_matrix(long n, long band) {{
    long nnz = 0;
    for (long i = 0; i < n; i = i + 1) {{
        arow[i] = nnz;
        long lo = i - band;
        if (lo < 0) {{ lo = 0; }}
        long hi = i + band;
        if (hi >= n) {{ hi = n - 1; }}
        for (long j = lo; j <= hi; j = j + 1) {{
            double v = 0.0;
            if (j == i) {{
                v = 2.0 * (double)band + 2.0 + randlc();
            }} else {{
                v = 0.5 - randlc() * 0.3;
                long d = i - j;
                if (d < 0) {{ d = 0 - d; }}
                v = v / (double)(1 + d);
            }}
            aval[nnz] = v;
            acol[nnz] = j;
            nnz = nnz + 1;
        }}
    }}
    arow[n] = nnz;
    return nnz;
}}

void matvec(long n, double* src, double* dst) {{
    for (long i = 0; i < n; i = i + 1) {{
        double sum = 0.0;
        for (long k = arow[i]; k < arow[i + 1]; k = k + 1) {{
            sum = sum + aval[k] * src[acol[k]];
        }}
        dst[i] = sum;
    }}
}}

long main() {{
    long n = {n};
    long iters = {iters};
    long outer = {outer};
    build_matrix(n, {band});
    for (long i = 0; i < n; i = i + 1) {{ xvec[i] = 1.0; }}
    double zeta = 0.0;
    for (long it = 0; it < outer; it = it + 1) {{
        // CG solve A z = x
        for (long i = 0; i < n; i = i + 1) {{
            zvec[i] = 0.0;
            rvec[i] = xvec[i];
            pvec[i] = rvec[i];
        }}
        double rho = 0.0;
        for (long i = 0; i < n; i = i + 1) {{ rho = rho + rvec[i] * rvec[i]; }}
        for (long cgit = 0; cgit < iters; cgit = cgit + 1) {{
            matvec(n, pvec, qvec);
            double dpq = 0.0;
            for (long i = 0; i < n; i = i + 1) {{ dpq = dpq + pvec[i] * qvec[i]; }}
            double alpha = rho / dpq;
            double rho0 = rho;
            rho = 0.0;
            for (long i = 0; i < n; i = i + 1) {{
                zvec[i] = zvec[i] + alpha * pvec[i];
                rvec[i] = rvec[i] - alpha * qvec[i];
                rho = rho + rvec[i] * rvec[i];
            }}
            double betac = rho / rho0;
            for (long i = 0; i < n; i = i + 1) {{
                pvec[i] = rvec[i] + betac * pvec[i];
            }}
        }}
        // zeta = shift + 1 / (x . z); x = z / ||z||
        double xz = 0.0;
        double zz = 0.0;
        for (long i = 0; i < n; i = i + 1) {{
            xz = xz + xvec[i] * zvec[i];
            zz = zz + zvec[i] * zvec[i];
        }}
        zeta = 10.0 + 1.0 / xz;
        double norm = 1.0 / sqrt(zz);
        for (long i = 0; i < n; i = i + 1) {{ xvec[i] = zvec[i] * norm; }}
        printf("CG outer=%d zeta=%.15g\\n", it, zeta);
    }}
    printf("CG final zeta=%.15g\\n", zeta);
    return 0;
}}
"""


def _params(n, band, iters, outer):
    return dict(n=n, band=band, iters=iters, outer=outer,
                n_plus_1=n + 1, nnz_max=n * (2 * band + 1))


SIZES = {
    "test": _params(n=16, band=2, iters=3, outer=1),
    "S": _params(n=96, band=4, iters=12, outer=3),
    "bench": _params(n=32, band=3, iters=5, outer=1),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
