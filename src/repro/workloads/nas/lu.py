"""NAS LU — Class T.

Dense LU factorization with partial pivoting plus forward/backward
triangular solves (the linear-algebra heart of the SSOR-based LU
benchmark, at toy scale).  Division-heavy inner loops with dependent
chains make it one of Fig. 12's worst slowdowns (10,773x).
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source
from repro.workloads.nas.common import RANDLC_FPC

NAME = "nas_lu"

SOURCE_TEMPLATE = RANDLC_FPC + """
double a[{n2}];
long piv[{n}];
double b[{n}];
double x[{n}];
double a0[{n2}];

long main() {{
    long n = {n};
    long reps = {reps};
    double resid = 0.0;
    for (long r = 0; r < reps; r = r + 1) {{
        // diagonally dominant random matrix
        for (long i = 0; i < n; i = i + 1) {{
            for (long j = 0; j < n; j = j + 1) {{
                double v = randlc() - 0.5;
                if (i == j) {{ v = v + (double)n; }}
                a[i * n + j] = v;
                a0[i * n + j] = v;
            }}
            b[i] = randlc();
            piv[i] = i;
        }}
        // LU with partial pivoting
        for (long k = 0; k < n; k = k + 1) {{
            long pk = k;
            double best = fabs(a[k * n + k]);
            for (long i = k + 1; i < n; i = i + 1) {{
                double cand = fabs(a[i * n + k]);
                if (cand > best) {{ best = cand; pk = i; }}
            }}
            if (pk != k) {{
                for (long j = 0; j < n; j = j + 1) {{
                    double tmp = a[k * n + j];
                    a[k * n + j] = a[pk * n + j];
                    a[pk * n + j] = tmp;
                }}
                long tp = piv[k]; piv[k] = piv[pk]; piv[pk] = tp;
            }}
            for (long i = k + 1; i < n; i = i + 1) {{
                double m = a[i * n + k] / a[k * n + k];
                a[i * n + k] = m;
                for (long j = k + 1; j < n; j = j + 1) {{
                    a[i * n + j] = a[i * n + j] - m * a[k * n + j];
                }}
            }}
        }}
        // solve LUx = Pb
        for (long i = 0; i < n; i = i + 1) {{
            double s = b[piv[i]];
            for (long j = 0; j < i; j = j + 1) {{
                s = s - a[i * n + j] * x[j];
            }}
            x[i] = s;
        }}
        for (long i = n - 1; i >= 0; i = i - 1) {{
            double s = x[i];
            for (long j = i + 1; j < n; j = j + 1) {{
                s = s - a[i * n + j] * x[j];
            }}
            x[i] = s / a[i * n + i];
        }}
        // residual ||A0 x - b||_inf (verification step)
        resid = 0.0;
        for (long i = 0; i < n; i = i + 1) {{
            double s = 0.0;
            for (long j = 0; j < n; j = j + 1) {{
                s = s + a0[i * n + j] * x[j];
            }}
            double d = fabs(s - b[i]);
            if (d > resid) {{ resid = d; }}
        }}
    }}
    printf("LU n=%d resid=%.15g\\n", n, resid);
    return 0;
}}
"""


def _params(n, reps):
    return dict(n=n, reps=reps, n2=n * n)


SIZES = {
    "test": _params(n=6, reps=1),
    "S": _params(n=24, reps=2),
    "bench": _params(n=10, reps=1),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
