"""NAS MG (MultiGrid) — Class T.

V-cycle multigrid for the 1-D Poisson equation: weighted-Jacobi
smoothing, full-weighting restriction, linear prolongation, recursive
coarse solves.  Stencil sweeps are add/mul-dominated with almost every
operation rounding — MG sits near the top of Fig. 12 (5,163x).
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source

NAME = "nas_mg"

SOURCE_TEMPLATE = """
// grids for all levels packed into one arena: level l starts at off[l]
double u[{arena}];
double rhs[{arena}];
double res[{arena}];
long off[{levels_p1}];
long sz[{levels_p1}];

void smooth(long o, long n, long passes) {{
    for (long p = 0; p < passes; p = p + 1) {{
        for (long i = 1; i < n - 1; i = i + 1) {{
            double newv = 0.5 * (u[o + i - 1] + u[o + i + 1] + rhs[o + i]);
            u[o + i] = u[o + i] + 0.6666666666666666 * (newv - u[o + i]);
        }}
    }}
}}

void residual(long o, long n) {{
    res[o] = 0.0;
    res[o + n - 1] = 0.0;
    for (long i = 1; i < n - 1; i = i + 1) {{
        res[o + i] = rhs[o + i] - (2.0 * u[o + i] - u[o + i - 1] - u[o + i + 1]);
    }}
}}

void vcycle(long level, long levels) {{
    long o = off[level];
    long n = sz[level];
    if (level == levels - 1) {{
        smooth(o, n, 16);
        return;
    }}
    smooth(o, n, 2);
    residual(o, n);
    long oc = off[level + 1];
    long nc = sz[level + 1];
    for (long i = 1; i < nc - 1; i = i + 1) {{
        rhs[oc + i] = 0.25 * (res[o + 2 * i - 1] + 2.0 * res[o + 2 * i] + res[o + 2 * i + 1]);
        u[oc + i] = 0.0;
    }}
    vcycle(level + 1, levels);
    for (long i = 1; i < nc - 1; i = i + 1) {{
        u[o + 2 * i] = u[o + 2 * i] + u[oc + i];
        u[o + 2 * i + 1] = u[o + 2 * i + 1] + 0.5 * (u[oc + i] + u[oc + i + 1]);
    }}
    u[o + 1] = u[o + 1] + 0.5 * u[oc + 1];
    smooth(o, n, 2);
}}

long main() {{
    long levels = {levels};
    long nfine = {nfine};
    long cycles = {cycles};
    long total = 0;
    long n = nfine;
    for (long l = 0; l < levels; l = l + 1) {{
        off[l] = total;
        sz[l] = n;
        total = total + n;
        n = n / 2 + 1;
    }}
    // rhs: a couple of point charges (as in MG's +1/-1 seeding)
    for (long i = 0; i < total; i = i + 1) {{
        u[i] = 0.0;
        rhs[i] = 0.0;
        res[i] = 0.0;
    }}
    rhs[nfine / 4] = 1.0;
    rhs[(3 * nfine) / 4] = -1.0;
    for (long c = 0; c < cycles; c = c + 1) {{
        vcycle(0, levels);
        residual(off[0], sz[0]);
        double rnorm = 0.0;
        for (long i = 0; i < nfine; i = i + 1) {{
            rnorm = rnorm + res[i] * res[i];
        }}
        printf("MG cycle=%d rnorm=%.15g\\n", c, sqrt(rnorm));
    }}
    return 0;
}}
"""


def _params(nfine, levels, cycles):
    total, n = 0, nfine
    for _ in range(levels):
        total += n
        n = n // 2 + 1
    return dict(nfine=nfine, levels=levels, cycles=cycles,
                arena=total + 4, levels_p1=levels + 1)


SIZES = {
    "test": _params(nfine=17, levels=3, cycles=1),
    "S": _params(nfine=129, levels=5, cycles=4),
    "bench": _params(nfine=33, levels=3, cycles=2),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
