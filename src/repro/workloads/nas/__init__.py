"""Selections from the NAS Parallel Benchmarks 3.0 [4, 34, 46],
ported to fpc at reduced ("Class T") sizes: IS, EP, CG, MG, LU."""
