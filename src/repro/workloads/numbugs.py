"""Seeded numerical-bug workloads for the NSan-mode sanitizer.

Three classic floating-point pathologies, each compiled as a normal
workload so the sanitizer's true-positive rate is testable end to end
(`repro sanitize numbugs_*` must flag the seeded site; clean codes
like lorenz/fbench must not flag at the default threshold).  Each hot
loop also feeds the seeded bug through statically provable sites
(integer conversions, multiplications by constants) so the
interval-range pass has something to exempt — the dual-path overhead
reduction is measurable on the same binaries that contain the bugs.

* ``numbugs_cancel`` — catastrophic cancellation: ``(big + 1.0) - big``
  with ``big = 1e16``.  The IEEE path absorbs the ``1.0`` (one rounding
  of relative size 1e-16, well under any threshold — the *addition* is
  innocent), then the subtraction collapses to 0 against a
  high-precision shadow of exactly 1: relative divergence 1.0 at the
  ``subsd``.  FlowFPX-style blame localization in one instruction.

* ``numbugs_sum`` — naive summation of small terms (``~0.001``) into a
  ``1e12`` base against a Kahan-compensated copy, with the base
  subtracted back out at the end.  The naive accumulator sheds a few
  ulp-of-1e12 per add; the closing ``subsd`` cancels the base and
  surfaces the accumulated loss as a large relative divergence.  The
  Kahan copy's *printed value* is accurate (the ``- comp`` correction
  recovers the lost bits), which is the numerical TP-vs-fix pair in
  one binary.  Note the known shadow-execution artifact (NSan reports
  the same): compensated summation flags anyway — the accumulator
  genuinely diverges from the exact sum (the recovery lives in a
  *separate* variable the per-op check cannot see), and the
  compensation term ``(t - s) - y`` is exactly zero in high precision
  while its IEEE value is the useful low-bits remainder.  Tests assert
  the naive site flags and the Kahan value is accurate; they must not
  assert the Kahan sites clean.

* ``numbugs_var`` — the textbook one-pass variance
  ``(sumsq - sum*sum/n) / (n - 1)`` over samples ``1e8 + (i % 2)``.
  Accumulating ``x*x ~ 1e16`` drops the ``+1`` cross terms (each a
  harmless 1e-16 rounding), but the final subtraction cancels sixteen
  digits and surfaces them all at once: the closing ``subsd`` flags
  with divergence ~2 while every upstream site stays quiet.
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source

CANCEL_TEMPLATE = """
double big;
double diff;
double probe;
double acc;

long main() {{
    big = 1e16;
    acc = 0.0;
    for (long i = 0; i < {iters}; i = i + 1) {{
        probe = 0.001 * i;
        diff = (big + 1.0) - big;
        acc = acc + diff + probe;
    }}
    printf("cancel diff=%.17g acc=%.17g\\n", diff, acc);
    return 0;
}}
"""

SUM_TEMPLATE = """
double naive;
double kahan;
double comp;
double naive_sum;
double kahan_sum;

long main() {{
    naive = 1e12;
    kahan = 1e12;
    comp = 0.0;
    for (long i = 0; i < {iters}; i = i + 1) {{
        double term = 0.001 + 0.0000001 * i;
        naive = naive + term;
        double y = term - comp;
        double t = kahan + y;
        comp = (t - kahan) - y;
        kahan = t;
    }}
    naive_sum = naive - 1e12;
    kahan_sum = (kahan - 1e12) - comp;
    printf("naive=%.17g kahan=%.17g gap=%.17g\\n",
           naive_sum, kahan_sum, kahan_sum - naive_sum);
    return 0;
}}
"""

VAR_TEMPLATE = """
double sum;
double sumsq;
double mean;
double var;

long main() {{
    long n = {n};
    sum = 0.0;
    sumsq = 0.0;
    for (long i = 0; i < n; i = i + 1) {{
        double x = 1e8 + (i % 2);
        sum = sum + x;
        sumsq = sumsq + x * x;
    }}
    mean = sum / n;
    var = (sumsq - sum * mean) / (n - 1);
    printf("mean=%.17g var=%.17g\\n", mean, var);
    return 0;
}}
"""

CANCEL_SIZES = {"test": dict(iters=50), "S": dict(iters=2000),
                "bench": dict(iters=500)}
SUM_SIZES = {"test": dict(iters=100), "S": dict(iters=4000),
             "bench": dict(iters=1000)}
VAR_SIZES = {"test": dict(n=100), "S": dict(n=5000),
             "bench": dict(n=1500)}


def build_cancel(size: str = "S") -> Binary:
    return compile_source(CANCEL_TEMPLATE.format(**CANCEL_SIZES[size]))


def build_sum(size: str = "S") -> Binary:
    return compile_source(SUM_TEMPLATE.format(**SUM_SIZES[size]))


def build_var(size: str = "S") -> Binary:
    return compile_source(VAR_TEMPLATE.format(**VAR_SIZES[size]))


#: name -> (mnemonic of the seeded site, builder) — the integration
#: tests use this to assert the sanitizer blames the right site kind
SEEDED_BUGS = {
    "numbugs_cancel": ("subsd", build_cancel),
    "numbugs_sum": ("subsd", build_sum),
    "numbugs_var": ("subsd", build_var),
}
