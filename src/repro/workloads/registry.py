"""Workload registry: name → builder + metadata + paper expectations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.asm.program import Binary
from repro.workloads import enzo, fbench, lorenz, miniaero, numbugs, three_body
from repro.workloads.nas import cg, ep, is_, lu, mg


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark/test code."""

    name: str
    build: Callable[[str], Binary]
    description: str
    #: Fig. 12 R815 slowdown reported by the paper (shape reference)
    paper_slowdown_r815: float | None = None
    sizes: tuple = ("test", "bench", "S")


WORKLOADS: dict[str, WorkloadSpec] = {}


def _reg(spec: WorkloadSpec) -> None:
    WORKLOADS[spec.name] = spec


_reg(WorkloadSpec("fbench", fbench.build,
                  "Walker's trig-heavy optical ray-tracing benchmark",
                  paper_slowdown_r815=1808.0))
_reg(WorkloadSpec("lorenz", lorenz.build,
                  "Lorenz attractor simulator (chaotic ODE, Fig. 13)",
                  paper_slowdown_r815=268.0))
_reg(WorkloadSpec("three_body", three_body.build,
                  "planar three-body gravitational simulation",
                  paper_slowdown_r815=789.0))
_reg(WorkloadSpec("miniaero", miniaero.build,
                  "compressible Navier-Stokes finite-volume mini-app",
                  paper_slowdown_r815=1811.0))
_reg(WorkloadSpec("nas_is", is_.build,
                  "NAS IS: integer bucket sort (FP only in key gen)",
                  paper_slowdown_r815=204.0))
_reg(WorkloadSpec("nas_ep", ep.build,
                  "NAS EP: Gaussian deviates via Marsaglia polar method",
                  paper_slowdown_r815=396.0))
_reg(WorkloadSpec("nas_cg", cg.build,
                  "NAS CG: sparse conjugate gradient eigenvalue estimate",
                  paper_slowdown_r815=12169.0))
_reg(WorkloadSpec("nas_mg", mg.build,
                  "NAS MG: multigrid V-cycle Poisson solver",
                  paper_slowdown_r815=5163.0))
_reg(WorkloadSpec("nas_lu", lu.build,
                  "NAS LU: dense LU factorization + triangular solves",
                  paper_slowdown_r815=10773.0))
_reg(WorkloadSpec("enzo", enzo.build,
                  "Enzo stand-in: particle-mesh cosmology step with "
                  "bit-level state hashing in the hot loop",
                  paper_slowdown_r815=1976.0))
# seeded numerical bugs (not paper benchmarks: no Fig. 12 slowdown) —
# the sanitizer's true-positive corpus; see repro.workloads.numbugs
_reg(WorkloadSpec("numbugs_cancel", numbugs.build_cancel,
                  "seeded bug: catastrophic cancellation (big+1)-big"))
_reg(WorkloadSpec("numbugs_sum", numbugs.build_sum,
                  "seeded bug: naive summation into a 1e12 base "
                  "vs a Kahan-compensated copy"))
_reg(WorkloadSpec("numbugs_var", numbugs.build_var,
                  "seeded bug: one-pass textbook variance "
                  "(sumsq - sum^2/n) cancellation"))


def get_workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
