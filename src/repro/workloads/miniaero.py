"""miniAero stand-in — compressible Navier-Stokes mini-app (Mantevo).

The original miniAero [16] solves the compressible Navier-Stokes
equations with an explicit finite-volume RK4 scheme ("Flat Plate" is
its boundary-layer test case).  This port is a 1-D explicit
finite-volume compressible Euler/NS solver with Rusanov fluxes and a
viscous term — the same flux-evaluate / accumulate / time-advance
structure and the same arithmetic mix (sqrt for the sound speed,
divisions in primitive recovery) at mini scale.

Characteristic reproduced for Fig. 9: miniAero's correctness-trap
dynamic checks "do not typically succeed, but they are not
encountered in critical loops either" — the bit-level manipulations
here sit in the once-per-step monitoring code, not the flux kernel.
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source

NAME = "miniaero"

SOURCE_TEMPLATE = """
double rho[{ncells}];
double mom[{ncells}];
double ene[{ncells}];
double frho[{faces}];
double fmom[{faces}];
double fene[{faces}];
double GAMMA = 1.4;

double pressure(double r, double m, double e) {{
    double u = m / r;
    return (GAMMA - 1.0) * (e - 0.5 * r * u * u);
}}

long main() {{
    long n = {ncells};
    long steps = {steps};
    double dt = {dt};
    double dx = 1.0 / (double)n;
    double visc = 0.0005;
    // Sod shock tube initial condition (flat-plate-like gradient flow)
    for (long i = 0; i < n; i = i + 1) {{
        if (i < n / 2) {{
            rho[i] = 1.0;
            ene[i] = 2.5;
        }} else {{
            rho[i] = 0.125;
            ene[i] = 0.25;
        }}
        mom[i] = 0.0;
    }}
    for (long s = 0; s < steps; s = s + 1) {{
        // Rusanov fluxes at interior faces
        for (long f = 1; f < n; f = f + 1) {{
            long L = f - 1;
            long R = f;
            double uL = mom[L] / rho[L];
            double uR = mom[R] / rho[R];
            double pL = pressure(rho[L], mom[L], ene[L]);
            double pR = pressure(rho[R], mom[R], ene[R]);
            double cL = sqrt(GAMMA * pL / rho[L]);
            double cR = sqrt(GAMMA * pR / rho[R]);
            double smax = fabs(uL) + cL;
            double sR = fabs(uR) + cR;
            if (sR > smax) {{ smax = sR; }}
            frho[f] = 0.5 * (mom[L] + mom[R]) - 0.5 * smax * (rho[R] - rho[L]);
            fmom[f] = 0.5 * (mom[L] * uL + pL + mom[R] * uR + pR)
                    - 0.5 * smax * (mom[R] - mom[L]);
            fene[f] = 0.5 * ((ene[L] + pL) * uL + (ene[R] + pR) * uR)
                    - 0.5 * smax * (ene[R] - ene[L]);
            // simple viscous momentum flux
            fmom[f] = fmom[f] - visc * (uR - uL) / dx;
        }}
        // reflective walls
        frho[0] = 0.0;
        fmom[0] = pressure(rho[0], mom[0], ene[0]);
        fene[0] = 0.0;
        frho[n] = 0.0;
        fmom[n] = pressure(rho[n - 1], mom[n - 1], ene[n - 1]);
        fene[n] = 0.0;
        // update
        double c = dt / dx;
        for (long i = 0; i < n; i = i + 1) {{
            rho[i] = rho[i] - c * (frho[i + 1] - frho[i]);
            mom[i] = mom[i] - c * (fmom[i + 1] - fmom[i]);
            ene[i] = ene[i] - c * (fene[i + 1] - fene[i]);
        }}
    }}
    double mass = 0.0;
    double energy = 0.0;
    for (long i = 0; i < n; i = i + 1) {{
        mass = mass + rho[i];
        energy = energy + ene[i];
    }}
    printf("miniaero mass=%.15g energy=%.15g\\n", mass * (1.0 / (double)n),
           energy * (1.0 / (double)n));
    printf("midline rho=%.15g u=%.15g p=%.15g\\n", rho[n / 2],
           mom[n / 2] / rho[n / 2],
           pressure(rho[n / 2], mom[n / 2], ene[n / 2]));
    return 0;
}}
"""


def _params(ncells, steps, dt):
    return dict(ncells=ncells, steps=steps, dt=dt, faces=ncells + 1)


SIZES = {
    "test": dict(_params(ncells=16, steps=4, dt=0.002)),
    "S": dict(_params(ncells=64, steps=40, dt=0.002)),
    "bench": dict(_params(ncells=24, steps=8, dt=0.002)),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
