"""Enzo stand-in — "Cosmology Simulation" mini-app.

Enzo [12] is a ~307 kLoC astrophysics/hydrodynamics code; its FPVM-
relevant behaviour in the paper is (a) a large FP workload and (b)
**correctness traps inside critical loops** that the static analysis
could not prove unnecessary, making Enzo the one benchmark where
correctness overhead is substantial in Fig. 9 ("the vast majority of
the dynamic checks succeed however").

This port is a 1-D particle-mesh cosmology step: cloud-in-cell mass
deposit (with (double)(long) floor casts), Jacobi relaxation of the
Poisson equation for the potential, force interpolation, and a
kick-drift particle update.  Crucially, the per-step diagnostics
fold particle energies through ``__bits`` (bit-level checksumming, as
Enzo/HDF5 do when hashing/serializing state) *inside the main loop* —
VSA must patch those loads, and the resulting checks fire every
iteration but almost never find a live box on the integer side.
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source
from repro.workloads.nas.common import RANDLC_FPC

NAME = "enzo"

SOURCE_TEMPLATE = RANDLC_FPC + """
double density[{grid}];
double phi[{grid}];
double phi_new[{grid}];
double force[{grid}];
double px[{nparts}];
double pv[{nparts}];
long state_hash = 0;

long main() {{
    long g = {grid};
    long np = {nparts};
    long steps = {steps};
    double dt = 0.05;
    double box = (double)g;
    // initial particle lattice with randlc perturbations (Zel'dovich-ish)
    for (long p = 0; p < np; p = p + 1) {{
        double frac = (double)p / (double)np;
        px[p] = frac * box + 0.35 * sin(6.283185307179586 * frac)
              + 0.01 * (randlc() - 0.5);
        pv[p] = 0.0;
    }}
    for (long s = 0; s < steps; s = s + 1) {{
        // cloud-in-cell deposit
        for (long i = 0; i < g; i = i + 1) {{ density[i] = -1.0 * (double)np / (double)g; }}
        for (long p = 0; p < np; p = p + 1) {{
            double xp = px[p];
            while (xp < 0.0) {{ xp = xp + box; }}
            while (xp >= box) {{ xp = xp - box; }}
            px[p] = xp;
            long i0 = (long)xp;
            double w = xp - (double)i0;
            long i1 = (i0 + 1) % g;
            density[i0] = density[i0] + (1.0 - w);
            density[i1] = density[i1] + w;
        }}
        // Poisson: Jacobi iterations for phi'' = density (periodic)
        for (long it = 0; it < {jacobi}; it = it + 1) {{
            for (long i = 0; i < g; i = i + 1) {{
                long im = (i + g - 1) % g;
                long ip = (i + 1) % g;
                phi_new[i] = 0.5 * (phi[im] + phi[ip] - density[i]);
            }}
            for (long i = 0; i < g; i = i + 1) {{ phi[i] = phi_new[i]; }}
        }}
        // force = -grad phi (central difference)
        for (long i = 0; i < g; i = i + 1) {{
            long im = (i + g - 1) % g;
            long ip = (i + 1) % g;
            force[i] = -0.5 * (phi[ip] - phi[im]);
        }}
        // kick + drift, with bit-level state hashing in the hot loop
        double ke = 0.0;
        for (long p = 0; p < np; p = p + 1) {{
            long i0 = (long)px[p];
            double w = px[p] - (double)i0;
            long i1 = (i0 + 1) % g;
            double f = (1.0 - w) * force[i0] + w * force[i1];
            pv[p] = pv[p] + dt * f;
            px[p] = px[p] + dt * pv[p];
            ke = ke + 0.5 * pv[p] * pv[p];
            if ((p & 3) == 0) {{
                state_hash = state_hash ^ (__bits(pv[p]) >> 27);
            }}
        }}
        printf("enzo step=%d ke=%.15g hash=%d\\n", s, ke, state_hash & 65535);
    }}
    double rho_max = 0.0;
    for (long i = 0; i < g; i = i + 1) {{
        if (density[i] > rho_max) {{ rho_max = density[i]; }}
    }}
    printf("enzo done rho_max=%.15g hash=%d\\n", rho_max, state_hash & 65535);
    return 0;
}}
"""


def _params(grid, nparts, steps, jacobi):
    return dict(grid=grid, nparts=nparts, steps=steps, jacobi=jacobi)


SIZES = {
    "test": _params(grid=16, nparts=8, steps=2, jacobi=4),
    "S": _params(grid=64, nparts=48, steps=12, jacobi=20),
    "bench": _params(grid=24, nparts=12, steps=4, jacobi=8),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
