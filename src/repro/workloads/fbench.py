"""FBench — John Walker's trigonometry-heavy optical ray tracer [57].

The original benchmark traces paraxial and marginal rays through a
four-element achromatic telescope objective and evaluates the design
against aberration limits; its arithmetic is dominated by
sin/cos/tan/asin/atan and sqrt — i.e. by libm calls FPVM interposes
with its math wrapper, plus rounding mul/div chains.

This port keeps the structure of Walker's ``transit_surface``: Snell's
law via arcsin at each spherical surface, iterated over the classic
4-surface design for both ray types, repeated ``iterations`` times,
reporting the focal distances (which a higher-precision arithmetic
system perturbs in the last digits).
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.driver import compile_source

NAME = "fbench"

SOURCE_TEMPLATE = """
double radius[4]   = {{ 27.05, -16.68, -16.68, -78.1 }};
double index_n[4]  = {{ 1.5137, 1.0, 1.6164, 1.0 }};
double dist[4]     = {{ 0.52, 0.138, 0.38, 0.0 }};
double clear_ap = 4.0;

double obj_dist;
double ray_h;
double from_index;
double slope_angle;
double axis_incidence;

void transit_surface(double rad, double to_index, double d) {{
    double iang;
    double rang;
    if (rad != 0.0) {{
        if (obj_dist == 0.0) {{
            slope_angle = 0.0;
            iang = ray_h / rad;
        }} else {{
            iang = ((obj_dist - rad) / rad) * sin(slope_angle);
        }}
        iang = asin(iang * 0.999999);
        rang = asin((from_index / to_index) * sin(iang) * 0.999999);
        double old_slope = slope_angle;
        slope_angle = slope_angle + iang - rang;
        if (old_slope != 0.0) {{
            ray_h = obj_dist * sin(old_slope) / sin(slope_angle) * cos(old_slope - iang + rang);
        }}
        obj_dist = rad * sin(iang - slope_angle + rang) / sin(slope_angle);
    }} else {{
        double old_slope = slope_angle;
        slope_angle = asin((from_index / to_index) * sin(old_slope) * 0.999999);
        obj_dist = obj_dist * (to_index * cos(slope_angle) / (from_index * cos(old_slope)));
    }}
    from_index = to_index;
    obj_dist = obj_dist - d;
}}

double trace_line(double h) {{
    obj_dist = 0.0;
    ray_h = h;
    from_index = 1.0;
    slope_angle = 0.0;
    for (long s = 0; s < 4; s = s + 1) {{
        transit_surface(radius[s], index_n[s], dist[s]);
    }}
    return obj_dist + 0.0;
}}

long main() {{
    long iterations = {iterations};
    double marginal = 0.0;
    double paraxial = 0.0;
    for (long it = 0; it < iterations; it = it + 1) {{
        marginal = trace_line(clear_ap / 2.0);
        paraxial = trace_line(clear_ap / 20.0);
    }}
    double aberr_ls = fabs(paraxial - marginal);
    double max_ls = 0.0000926;
    printf("marginal focal=%.17g\\n", marginal);
    printf("paraxial focal=%.17g\\n", paraxial);
    printf("longitudinal spherical aberration=%.17g\\n", aberr_ls);
    printf("aberration ratio=%.6f\\n", aberr_ls / max_ls);
    return 0;
}}
"""

SIZES = {
    "test": dict(iterations=2),
    "S": dict(iterations=60),
    "bench": dict(iterations=15),
}


def build(size: str = "S") -> Binary:
    return compile_source(SOURCE_TEMPLATE.format(**SIZES[size]))
