"""The paper's test codes (§5.1), ported to fpc mini-C.

    "Our test code consists of the FBench floating point benchmark, a
    version of the Lorenz system simulator that we developed, a
    three-body problem simulation, selections from the NAS 3.0
    Application Benchmark Suite, miniAero, and an Enzo application."

Each port preserves the arithmetic character of the original (what
fraction of dynamic instructions are FP, which ones round, how much
trig/division/sqrt) because those properties determine the Fig. 9/10/12
results.  Problem sizes are scaled to the simulated machine ("Class T"
< Class S) — DESIGN.md records the substitutions.
"""

from repro.workloads.registry import WORKLOADS, WorkloadSpec, get_workload

__all__ = ["WORKLOADS", "WorkloadSpec", "get_workload"]
