"""Generators for every table and figure of the evaluation (§5).

Each ``fig*`` function returns plain data structures (and can render a
text table) so the pytest-benchmark harness, the examples, and
EXPERIMENTS.md all consume the same code paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.machine.costmodel import PLATFORMS, Platform, R815
from repro.arith.bigfloat import BigFloatArithmetic, BigFloatContext
from repro.fpvm.runtime import FPVMConfig
from repro.harness.experiment import MatrixCell, run_matrix, slowdown
from repro.session import Session
from repro.workloads import WORKLOADS

#: benchmarks in the paper's Fig. 9/10 order
FIG9_CODES = ("miniaero", "enzo", "lorenz", "nas_cg", "fbench", "three_body")
#: rows of Fig. 12 (ours have one size each — "Class T")
FIG12_CODES = ("fbench", "lorenz", "three_body", "miniaero", "nas_is",
               "nas_ep", "nas_cg", "nas_mg", "nas_lu", "enzo")


# --------------------------------------------------------------------------- #
# Fig. 9 — average cost of virtualizing an FP instruction + breakdown          #
# --------------------------------------------------------------------------- #

def fig9_trap_cost(codes=FIG9_CODES, size: str = "bench",
                   precision: int = 200, platform: Platform = R815,
                   jobs: int | None = None) -> dict:
    """Per-benchmark average virtualization cost (cycles) by component.

    Each benchmark is an independent cell; ``run_matrix`` fans them out
    over processes (``jobs`` defaults to ``REPRO_JOBS``/CPU count).
    """
    cells = [MatrixCell(workload=name, size=size,
                        arith=("mpfr", precision), platform=platform.name)
             for name in codes]
    rows: dict[str, dict[str, float]] = {}
    for cell, res in zip(cells, run_matrix(cells, jobs=jobs)):
        breakdown = dict(res.fig9)
        breakdown["decode_cache_hit_rate"] = res.decode_cache_hit_rate
        breakdown["bind_cache_hit_rate"] = res.bind_cache_hit_rate
        rows[cell.workload] = breakdown
    return rows


def render_fig9(rows: dict) -> str:
    comps = ["hardware overhead", "kernel overhead", "decode", "bind",
             "emulate", "garbage collection", "correctness overhead",
             "correctness handler", "total"]
    out = [f"{'benchmark':12s} " + " ".join(f"{c[:9]:>10s}" for c in comps)]
    for name, row in rows.items():
        out.append(f"{name:12s} " + " ".join(
            f"{row.get(c, 0.0):10.0f}" for c in comps))
    return "\n".join(out)


# --------------------------------------------------------------------------- #
# Fig. 10 — garbage collector statistics                                       #
# --------------------------------------------------------------------------- #

def fig10_gc(codes=FIG9_CODES, size: str = "bench",
             precision: int = 200,
             gc_epoch_cycles: int = 3_000_000) -> dict:
    """alive / freed / latency per benchmark (plus collection fraction).

    Fig. 10 dynamics need paper-like epochs: long enough that garbage
    from emulated temporaries dwarfs the persistent live set (the
    paper's 1 s epoch at 2.1 GHz is ~2e9 cycles)."""
    rows: dict[str, dict] = {}
    config = FPVMConfig(gc_epoch_cycles=gc_epoch_cycles)
    for name in codes:
        res = Session(name, ("mpfr", precision), size=size,
                      config=config).run()
        rows[name] = res.fpvm.gc.summary()
        rows[name]["boxes_created"] = res.fpvm.emulator.boxes_created
    return rows


def render_fig10(rows: dict) -> str:
    out = [f"{'benchmark':12s} {'passes':>7s} {'alive':>8s} {'freed':>9s} "
           f"{'latency(us)':>12s} {'collected':>10s}"]
    for name, r in rows.items():
        out.append(f"{name:12s} {r['passes']:7d} {r['alive']:8d} "
                   f"{r['freed']:9d} {r['latency_us']:12.1f} "
                   f"{100 * r['collect_fraction']:9.1f}%")
    return "\n".join(out)


# --------------------------------------------------------------------------- #
# Fig. 11 — MPFR op cost vs precision                                          #
# --------------------------------------------------------------------------- #

def fig11_mpfr_precision(
    precisions=(32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
    samples: int = 200,
    ghz: float = 2.1,
) -> dict:
    """Measured host time per bigfloat op, expressed in model cycles.

    Reproduces the Fig. 11 shape: add grows ~linearly in limb count
    while mul/div/sqrt grow polynomially, so the precision at which
    the arithmetic dominates FPVM's ~12k-cycle virtualization cost is
    op-dependent (division crosses first).
    """
    out: dict[int, dict[str, float]] = {}
    for prec in precisions:
        ctx = BigFloatContext(prec)
        third = ctx.div(ctx.from_int(1), ctx.from_int(3))
        e_ish = ctx.div(ctx.from_int(271828), ctx.from_int(100000))
        ops = {
            "add": lambda: ctx.add(third, e_ish),
            "sub": lambda: ctx.sub(third, e_ish),
            "mul": lambda: ctx.mul(third, e_ish),
            "div": lambda: ctx.div(third, e_ish),
        }
        row: dict[str, float] = {}
        for op, fn in ops.items():
            t0 = time.perf_counter()
            for _ in range(samples):
                fn()
            host_s = (time.perf_counter() - t0) / samples
            row[op] = host_s * ghz * 1e9  # host-measured "cycles"
        # the calibrated model the FPVM cost accounting actually uses
        arith = BigFloatArithmetic(prec)
        row["model_add"] = arith.op_cycles("add")
        row["model_div"] = arith.op_cycles("div")
        out[prec] = row
    return out


def render_fig11(rows: dict) -> str:
    out = [f"{'prec(bits)':>10s} {'add':>12s} {'sub':>12s} {'mul':>12s} "
           f"{'div':>12s} {'model add':>10s} {'model div':>10s}"]
    for prec, r in rows.items():
        out.append(f"{prec:10d} {r['add']:12.0f} {r['sub']:12.0f} "
                   f"{r['mul']:12.0f} {r['div']:12.0f} "
                   f"{r['model_add']:10d} {r['model_div']:10d}")
    return "\n".join(out)


# --------------------------------------------------------------------------- #
# Fig. 12 — wall-clock slowdowns per benchmark x machine                       #
# --------------------------------------------------------------------------- #

def fig12_slowdowns(codes=FIG12_CODES, size: str = "bench",
                    precision: int = 200,
                    platforms=("R815", "7220", "R730xd"),
                    jobs: int | None = None) -> dict:
    """Modeled slowdown factors (FPVM+MPFR vs native) per platform.

    The full workload × platform × {native, FPVM} matrix is flattened
    into independent cells and dispatched through ``run_matrix``.
    """
    cells = []
    for name in codes:
        for pname in platforms:
            cells.append(MatrixCell(workload=name, size=size, arith=None,
                                    platform=pname))
            cells.append(MatrixCell(workload=name, size=size,
                                    arith=("mpfr", precision),
                                    platform=pname))
    results = run_matrix(cells, jobs=jobs)
    by_key = {(r.cell.workload, r.cell.platform, r.cell.arith is None): r
              for r in results}
    rows: dict[str, dict[str, float]] = {}
    for name in codes:
        row: dict[str, float] = {
            "paper_R815": WORKLOADS[name].paper_slowdown_r815}
        for pname in platforms:
            nat = by_key[(name, pname, True)]
            vir = by_key[(name, pname, False)]
            row[pname] = slowdown(nat, vir)
        rows[name] = row
    return rows


def render_fig12(rows: dict) -> str:
    plats = [k for k in next(iter(rows.values())) if k != "paper_R815"]
    out = [f"{'benchmark':12s} " + " ".join(f"{p:>9s}" for p in plats)
           + f" {'paper R815':>11s}"]
    for name, row in rows.items():
        out.append(f"{name:12s} " + " ".join(
            f"{row[p]:8.0f}x" for p in plats)
            + f" {row['paper_R815']:10.0f}x")
    return "\n".join(out)


# --------------------------------------------------------------------------- #
# Fig. 13 — Lorenz trajectories under IEEE / Vanilla / MPFR                    #
# --------------------------------------------------------------------------- #

def fig13_lorenz(size: str = "S", precision: int = 200) -> dict:
    """The §5.4 experiment: Vanilla must match bit-for-bit; MPFR must
    diverge (chaotic sensitivity to rounding)."""
    nat = Session("lorenz", None, size=size).run()
    van = Session("lorenz", "vanilla", size=size).run()
    mp = Session("lorenz", ("mpfr", precision), size=size).run()
    return {
        "ieee": nat.stdout,
        "vanilla": van.stdout,
        "mpfr": mp.stdout,
        "vanilla_identical": nat.stdout == van.stdout,
        "mpfr_diverged": nat.stdout != mp.stdout,
    }


# --------------------------------------------------------------------------- #
# Fig. 14 — user- vs kernel-level exception delivery                           #
# --------------------------------------------------------------------------- #

def fig14_trap_delivery() -> dict:
    """Delivery cost per platform and §6 deployment scenario (cycles)."""
    rows: dict[str, dict[str, int]] = {}
    for name, plat in PLATFORMS.items():
        rows[name] = {
            "user": plat.scenario_delivery("user"),
            "kernel": plat.scenario_delivery("kernel"),
            "hrt": plat.scenario_delivery("hrt"),
            "pipeline": plat.scenario_delivery("pipeline"),
            "user_over_kernel": round(
                plat.scenario_delivery("user")
                / plat.scenario_delivery("kernel"), 2),
        }
    return rows


def fig14_scenario_slowdowns(workload: str = "lorenz", size: str = "bench",
                             precision: int = 200) -> dict:
    """End-to-end slowdown of one workload under each §6 scenario."""
    nat = Session(workload, None, size=size).run()
    out: dict[str, float] = {}
    for scenario in ("user", "kernel", "hrt", "pipeline"):
        vir = Session(workload, ("mpfr", precision), size=size,
                      delivery_scenario=scenario).run()
        out[scenario] = slowdown(nat, vir)
    return out


def render_fig14(rows: dict) -> str:
    out = [f"{'platform':10s} {'user':>8s} {'kernel':>8s} {'hrt':>8s} "
           f"{'pipeline':>9s} {'user/kern':>10s}"]
    for name, r in rows.items():
        out.append(f"{name:10s} {r['user']:8d} {r['kernel']:8d} "
                   f"{r['hrt']:8d} {r['pipeline']:9d} "
                   f"{r['user_over_kernel']:10.1f}")
    return "\n".join(out)


# --------------------------------------------------------------------------- #
# Fig. 3 / §3.2 — trap-and-emulate vs trap-and-patch microcomparison           #
# --------------------------------------------------------------------------- #

def fig3_patch_vs_trap(workload: str = "lorenz", size: str = "bench",
                       precision: int = 200) -> dict:
    """Compare the two dynamic approaches on one workload.

    Under trap-and-patch the *first* event at a site pays fault
    delivery, later ones only the inline check; for sites whose checks
    pass (operands clean, result exact) the fast path skips emulation
    entirely."""
    nat = Session(workload, None, size=size).run()
    out: dict[str, dict] = {}
    for mode in ("trap-and-emulate", "trap-and-patch"):
        res = Session(workload, ("mpfr", precision), size=size,
                      config=FPVMConfig(mode=mode)).run()
        out[mode] = {
            "slowdown": slowdown(nat, res),
            "cycles": res.cycles,
            "fault_deliveries": res.fp_traps,
            "patch_sites": res.fpvm.stats.patch_sites_installed,
            "patch_fast_path": res.fpvm.stats.patch_fast_path,
            "patch_slow_path": res.fpvm.stats.patch_slow_path,
            "stdout": res.stdout,
        }
    out["identical_output"] = (
        out["trap-and-emulate"]["stdout"] == out["trap-and-patch"]["stdout"]
    )
    return out
