"""Experiment harness: run workloads native / under FPVM, regenerate
every table and figure of the paper's evaluation (§5)."""

from repro.harness.experiment import (CellResult, MatrixCell, RunResult,
                                      run_cell, run_matrix, run_native,
                                      run_under_fpvm)
from repro.harness.platforms import PLATFORMS

__all__ = ["CellResult", "MatrixCell", "RunResult", "run_cell",
           "run_matrix", "run_native", "run_under_fpvm", "PLATFORMS"]
