"""Experiment harness: run workloads native / under FPVM, regenerate
every table and figure of the paper's evaluation (§5)."""

from repro.harness.experiment import (BatchResult, CellResult, MatrixCell,
                                      RunResult, run_cell, run_matrix)
from repro.harness.platforms import PLATFORMS

__all__ = ["BatchResult", "CellResult", "MatrixCell", "RunResult",
           "run_cell", "run_matrix", "PLATFORMS"]
