"""Experiment harness: run workloads native / under FPVM, regenerate
every table and figure of the paper's evaluation (§5)."""

from repro.harness.experiment import RunResult, run_native, run_under_fpvm
from repro.harness.platforms import PLATFORMS

__all__ = ["RunResult", "run_native", "run_under_fpvm", "PLATFORMS"]
