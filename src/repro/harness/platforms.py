"""Platform presets for the three machines of the paper (§5.1, §5.3).

* **R815** — Dell R815, 4x 16-core AMD Opteron 6272 @ 2.1 GHz (the
  main testbed; Ubuntu 16.04, 4.4 kernel).
* **7220** — Dell 7720, Intel Xeon E3-1505M v6 @ 3.0 GHz (Ubuntu
  20.04, 5.4 kernel).
* **R730xd** — Dell R730xd, 2x Xeon E5-2695 v3 @ 2.3 GHz (RHEL 8.5,
  4.18 kernel).

Trap-delivery constants are calibrated so that (a) the R815's
per-virtualized-instruction totals land in the paper's 12k-24k cycle
band (Fig. 9) and (b) kernel-level delivery is 7-30x cheaper than
user-level (Fig. 14, quoting [24]).
"""

from repro.machine.costmodel import P7220, PLATFORMS, R730XD, R815

__all__ = ["R815", "P7220", "R730XD", "PLATFORMS"]
