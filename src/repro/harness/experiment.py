"""Run a Binary natively or under FPVM and collect every statistic the
evaluation section needs."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.asm.program import Binary
from repro.machine.costmodel import Platform, R815
from repro.machine.cpu import Machine
from repro.machine.loader import load_binary
from repro.arith.interface import AlternativeArithmetic
from repro.fpvm.runtime import FPVM
from repro.analysis import analyze_and_patch


@dataclass
class RunResult:
    """Everything measured from one simulated execution."""

    stdout: str
    exit_code: int
    instr_count: int
    fp_instr_count: int
    fp_traps: int
    correctness_traps: int
    cycles: int
    buckets: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    fpvm: FPVM | None = None
    machine: Machine | None = None
    analysis=None

    @property
    def seconds_modeled(self) -> float:
        """Modeled wall-clock on the platform (cycles / frequency)."""
        plat = self.machine.cost.platform if self.machine else R815
        return self.cycles / (plat.ghz * 1e9)


def run_native(
    binary_or_builder: Binary | Callable[[], Binary],
    *,
    platform: Platform = R815,
    max_instructions: int | None = None,
) -> RunResult:
    """Execute on the bare machine (no FPVM; all exceptions masked)."""
    binary = (binary_or_builder() if callable(binary_or_builder)
              else binary_or_builder)
    m = load_binary(binary, platform=platform)
    t0 = time.perf_counter()
    m.run(max_instructions)
    wall = time.perf_counter() - t0
    return RunResult(
        stdout="".join(m.stdout),
        exit_code=m.exit_code,
        instr_count=m.instr_count,
        fp_instr_count=m.fp_instr_count,
        fp_traps=m.fp_trap_count,
        correctness_traps=m.correctness_trap_count,
        cycles=m.cost.cycles,
        buckets=dict(m.cost.buckets),
        wall_s=wall,
        machine=m,
    )


def run_under_fpvm(
    binary_or_builder: Binary | Callable[[], Binary],
    arith: AlternativeArithmetic,
    *,
    platform: Platform = R815,
    patch: bool = True,
    mode: str = "trap-and-emulate",
    delivery_scenario: str = "user",
    gc_epoch_cycles: int = 5_000_000,
    box_exact_results: bool = True,
    printf_shadow_digits: int | None = None,
    max_instructions: int | None = None,
    final_gc: bool = True,
) -> RunResult:
    """The full pipeline of Fig. 8: static analysis + patching, then
    trap-and-emulate (or trap-and-patch) execution under FPVM."""
    binary = (binary_or_builder() if callable(binary_or_builder)
              else binary_or_builder)
    report = analyze_and_patch(binary) if patch else None
    m = load_binary(binary, platform=platform)
    m.delivery_scenario = delivery_scenario
    fpvm = FPVM(
        arith,
        mode=mode,
        gc_epoch_cycles=gc_epoch_cycles,
        box_exact_results=box_exact_results,
        printf_shadow_digits=printf_shadow_digits,
    )
    fpvm.install(m)
    t0 = time.perf_counter()
    m.run(max_instructions)
    wall = time.perf_counter() - t0
    if final_gc:
        fpvm.gc.collect(m)
    result = RunResult(
        stdout="".join(m.stdout),
        exit_code=m.exit_code,
        instr_count=m.instr_count,
        fp_instr_count=m.fp_instr_count,
        fp_traps=m.fp_trap_count,
        correctness_traps=m.correctness_trap_count,
        cycles=m.cost.cycles,
        buckets=dict(m.cost.buckets),
        wall_s=wall,
        fpvm=fpvm,
        machine=m,
    )
    result.analysis = report
    return result


def slowdown(native: RunResult, virtualized: RunResult) -> float:
    """Modeled wall-clock slowdown factor (the Fig. 12 metric)."""
    if native.cycles == 0:
        return float("inf")
    return virtualized.cycles / native.cycles
