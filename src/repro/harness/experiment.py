"""Run a Binary natively or under FPVM and collect every statistic the
evaluation section needs.

The module also provides the parallel experiment matrix: every cell of
the workload × arithmetic × platform sweep is an independent,
deterministic simulation, so :func:`run_matrix` fans the cells out over
a ``multiprocessing`` pool (``fork`` start method; falls back to a
serial loop on single-CPU hosts or when forking is unavailable).
Cells and their results are plain picklable data — a
:class:`RunResult` holds live machine/FPVM objects and cannot cross a
process boundary, so workers distill each run into a
:class:`CellResult` in-process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.asm.program import Binary
from repro.machine.costmodel import PLATFORMS, Platform, R815
from repro.machine.cpu import Machine
from repro.arith import from_spec
from repro.arith.interface import AlternativeArithmetic
from repro.fpvm.runtime import FPVM, FPVMConfig


@dataclass
class RunResult:
    """Everything measured from one simulated execution."""

    stdout: str
    exit_code: int
    instr_count: int
    fp_instr_count: int
    fp_traps: int
    correctness_traps: int
    cycles: int
    buckets: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    fpvm: FPVM | None = None
    machine: Machine | None = None
    analysis=None

    @property
    def seconds_modeled(self) -> float:
        """Modeled wall-clock on the platform (cycles / frequency)."""
        plat = self.machine.cost.platform if self.machine else R815
        return self.cycles / (plat.ghz * 1e9)


def run_native(
    binary_or_builder: Binary | Callable[[], Binary],
    *,
    platform: Platform = R815,
    max_instructions: int | None = None,
    predecode: bool = True,
    trace=None,
) -> RunResult:
    """Execute on the bare machine (no FPVM; all exceptions masked).

    Deprecated thin wrapper: new code should use
    :class:`repro.session.Session` with ``arith=None``.
    """
    from repro.session import Session

    session = Session(binary_or_builder, None, platform=platform,
                      predecode=predecode, trace=trace)
    return session.run(max_instructions)


def run_under_fpvm(
    binary_or_builder: Binary | Callable[[], Binary],
    arith: AlternativeArithmetic,
    *,
    platform: Platform = R815,
    patch: bool = True,
    mode: str = "trap-and-emulate",
    delivery_scenario: str = "user",
    gc_epoch_cycles: int = 5_000_000,
    box_exact_results: bool = True,
    printf_shadow_digits: int | None = None,
    max_instructions: int | None = None,
    final_gc: bool = True,
    predecode: bool = True,
    trace=None,
) -> RunResult:
    """The full pipeline of Fig. 8: static analysis + patching, then
    trap-and-emulate (or trap-and-patch) execution under FPVM.

    Deprecated thin wrapper: new code should use
    :class:`repro.session.Session` with an :class:`FPVMConfig`.
    """
    from repro.session import Session

    config = FPVMConfig(
        mode=mode,
        gc_epoch_cycles=gc_epoch_cycles,
        box_exact_results=box_exact_results,
        printf_shadow_digits=printf_shadow_digits,
        trace=trace,
    )
    session = Session(binary_or_builder, arith, config=config,
                      platform=platform, patch=patch,
                      delivery_scenario=delivery_scenario,
                      predecode=predecode)
    return session.run(max_instructions, final_gc=final_gc)


def slowdown(native, virtualized) -> float:
    """Modeled wall-clock slowdown factor (the Fig. 12 metric)."""
    if native.cycles == 0:
        return float("inf")
    return virtualized.cycles / native.cycles


# --------------------------------------------------------------------------- #
# the parallel experiment matrix                                               #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class MatrixCell:
    """One independent cell of the workload × arithmetic × platform sweep.

    ``arith`` is a picklable spec tuple — ``None`` for a native run,
    ``("vanilla",)``, ``("mpfr", precision)``, or ``("posit", n, es)``
    — materialized by :func:`make_arith` inside the worker process.
    """

    workload: str
    size: str = "bench"
    arith: tuple | None = None
    platform: str = "R815"
    mode: str = "trap-and-emulate"
    delivery_scenario: str = "user"
    patch: bool = True
    gc_epoch_cycles: int = 5_000_000
    box_exact_results: bool = True
    predecode: bool = True


@dataclass
class CellResult:
    """Plain-data distillation of one cell run (picklable)."""

    cell: MatrixCell
    stdout: str
    exit_code: int
    instr_count: int
    fp_instr_count: int
    fp_traps: int
    correctness_traps: int
    cycles: float
    buckets: dict = field(default_factory=dict)
    wall_s: float = 0.0
    #: fig9_breakdown + cache hit rates (FPVM cells only)
    fig9: dict | None = None
    decode_cache_hit_rate: float = 0.0
    bind_cache_hit_rate: float = 0.0


def make_arith(spec: tuple) -> AlternativeArithmetic:
    """Materialize an arithmetic system from its picklable spec tuple.

    Deprecated thin wrapper over :func:`repro.arith.from_spec` (which
    also accepts the CLI string form).
    """
    return from_spec(spec)


def run_cell(cell: MatrixCell) -> CellResult:
    """Worker entry point: run one cell and distill the result.

    Module-level (not a closure) so a ``multiprocessing`` pool can
    pickle it; all statistics that need live machine/FPVM objects are
    computed here, inside the worker.
    """
    from repro.session import Session

    platform = PLATFORMS[cell.platform]
    if cell.arith is None:
        session = Session(cell.workload, None, platform=platform,
                          size=cell.size, predecode=cell.predecode)
        res = session.run()
        fig9 = None
    else:
        config = FPVMConfig(
            mode=cell.mode,
            gc_epoch_cycles=cell.gc_epoch_cycles,
            box_exact_results=cell.box_exact_results,
        )
        session = Session(cell.workload, cell.arith, config=config,
                          platform=platform, size=cell.size,
                          patch=cell.patch,
                          delivery_scenario=cell.delivery_scenario,
                          predecode=cell.predecode)
        res = session.run()
        fig9 = res.fpvm.stats.fig9_breakdown(res.machine)
    out = CellResult(
        cell=cell,
        stdout=res.stdout,
        exit_code=res.exit_code,
        instr_count=res.instr_count,
        fp_instr_count=res.fp_instr_count,
        fp_traps=res.fp_traps,
        correctness_traps=res.correctness_traps,
        cycles=res.cycles,
        buckets=dict(res.buckets),
        wall_s=res.wall_s,
        fig9=fig9,
    )
    if res.fpvm is not None:
        out.decode_cache_hit_rate = res.fpvm.decode_cache.hit_rate
        out.bind_cache_hit_rate = res.fpvm.bind_cache.hit_rate
    return out


def _default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def run_matrix(cells, jobs: int | None = None) -> list[CellResult]:
    """Run every cell, fanning out over processes when it pays off.

    Results come back in input order.  Each cell is a deterministic,
    independent simulation, so the fan-out is bit-identical to the
    serial loop.  ``jobs`` defaults to ``REPRO_JOBS`` or the CPU
    count; anything ≤ 1 (or any pool failure, e.g. a platform without
    ``fork``) runs serially.
    """
    cells = list(cells)
    n = jobs if jobs is not None else _default_jobs()
    n = min(n, len(cells))
    if n > 1:
        try:
            import multiprocessing as mp

            ctx = mp.get_context("fork")
            with ctx.Pool(processes=n) as pool:
                return pool.map(run_cell, cells)
        except (ImportError, ValueError, OSError):
            pass  # no fork on this platform / resources: run serial
    return [run_cell(c) for c in cells]
