"""Run a Binary natively or under FPVM and collect every statistic the
evaluation section needs.

The module also provides the parallel experiment matrix: every cell of
the workload × arithmetic × platform sweep is an independent,
deterministic simulation, so :func:`run_matrix` fans the cells out over
a ``multiprocessing`` pool (``fork`` start method; falls back to a
serial loop on single-CPU hosts or when forking is unavailable).
Cells and their results are plain picklable data — a
:class:`RunResult` holds live machine/FPVM objects and cannot cross a
process boundary, so workers distill each run into a
:class:`CellResult` in-process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from repro.machine.costmodel import PLATFORMS, R815
from repro.machine.cpu import Machine
from repro.fpvm.runtime import FPVM, FPVMConfig


@dataclass
class RunResult:
    """Everything measured from one simulated execution."""

    stdout: str
    exit_code: int
    instr_count: int
    fp_instr_count: int
    fp_traps: int
    correctness_traps: int
    cycles: int
    buckets: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    fpvm: FPVM | None = None
    machine: Machine | None = None
    #: RegFile.snapshot() at halt — populated by Session.run and the
    #: batched backend so lanes can be compared bit-for-bit
    final_regs: dict | None = None
    #: a contained MachineError (batch lanes carry their own failure
    #: instead of aborting sibling lanes); None on success
    error: str | None = None
    error_type: str = ""
    analysis = None
    #: the LaneSpec this result answers (batch lanes only; None for
    #: scalar runs)
    spec = None

    @property
    def ok(self) -> bool:
        """True when the run completed without a contained error."""
        return self.error is None

    @property
    def seconds_modeled(self) -> float:
        """Modeled wall-clock on the platform (cycles / frequency)."""
        plat = self.machine.cost.platform if self.machine else R815
        return self.cycles / (plat.ghz * 1e9)


@dataclass
class BatchResult:
    """Result of one :meth:`Session.run_batch` call.

    ``lanes`` holds one :class:`RunResult` per :class:`LaneSpec`, in
    spec order; each is bit-identical to what a scalar ``Session.run``
    of that lane would produce.  The remaining fields are batch-level
    statistics from the SoA interpreter.
    """

    lanes: list[RunResult]
    #: vectorized dispatches retired while >= 1 lane was in the batch
    dispatches: int = 0
    #: LaneDivergence / post-commit spill events
    spill_events: int = 0
    #: lanes that left lockstep and completed on the scalar interpreter
    spilled_lanes: int = 0
    wall_s: float = 0.0

    def __len__(self) -> int:
        return len(self.lanes)

    def __iter__(self):
        return iter(self.lanes)

    def __getitem__(self, i: int) -> RunResult:
        return self.lanes[i]

    @property
    def spill_rate(self) -> float:
        """Fraction of lanes that finished scalar rather than in-batch."""
        return self.spilled_lanes / len(self.lanes) if self.lanes else 0.0

    @property
    def ok(self) -> bool:
        return all(r.error is None for r in self.lanes)


def slowdown(native, virtualized) -> float:
    """Modeled wall-clock slowdown factor (the Fig. 12 metric)."""
    if native.cycles == 0:
        return float("inf")
    return virtualized.cycles / native.cycles


# --------------------------------------------------------------------------- #
# the parallel experiment matrix                                               #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class MatrixCell:
    """One independent cell of the workload × arithmetic × platform sweep.

    ``arith`` is a picklable spec tuple — ``None`` for a native run,
    ``("vanilla",)``, ``("mpfr", precision)``, or ``("posit", n, es)``
    — materialized by :func:`repro.arith.from_spec` inside the worker.
    """

    workload: str
    size: str = "bench"
    arith: tuple | None = None
    platform: str = "R815"
    mode: str = "trap-and-emulate"
    delivery_scenario: str = "user"
    patch: bool = True
    gc_epoch_cycles: int = 5_000_000
    box_exact_results: bool = True
    predecode: bool = True
    #: fault-injection plan (a frozen, picklable FaultPlan) and the
    #: degradation ladder's storm threshold — the chaos-campaign knobs
    fault_plan: object = None
    storm_threshold: int = 8
    #: per-cell watchdogs, raised as typed WatchdogExpired in-worker
    max_instructions: int | None = None
    max_cycles: float | None = None
    #: per-cell guest inputs (picklable: params as (name, value) pairs)
    #: — the serving tier expresses every job as a cell, so jobs carry
    #: their stdin stream and data-symbol pokes through the matrix
    stdin: bytes = b""
    params: tuple = ()
    label: str = ""


@dataclass
class CellResult:
    """Plain-data distillation of one cell run (picklable)."""

    cell: MatrixCell
    stdout: str
    exit_code: int
    instr_count: int
    fp_instr_count: int
    fp_traps: int
    correctness_traps: int
    cycles: float
    buckets: dict = field(default_factory=dict)
    wall_s: float = 0.0
    #: fig9_breakdown + cache hit rates (FPVM cells only)
    fig9: dict | None = None
    decode_cache_hit_rate: float = 0.0
    bind_cache_hit_rate: float = 0.0
    #: crash isolation: a cell that died carries the error here (and
    #: its structured crash records) instead of aborting the matrix
    error: str | None = None
    error_type: str = ""
    crash_records: list = field(default_factory=list)
    retries: int = 0
    #: robustness accounting (fault-injected cells)
    degradations: int = 0
    sites_short_circuited: int = 0
    faults_fired: dict = field(default_factory=dict)
    fault_occurrences: dict = field(default_factory=dict)

    @property
    def survived(self) -> bool:
        """True when the cell produced a result (possibly degraded)."""
        return self.error is None


def _make_session(cell: MatrixCell):
    from repro.session import Session

    platform = PLATFORMS[cell.platform]
    inputs = {"stdin": cell.stdin, "params": dict(cell.params)}
    if cell.arith is None:
        return Session(cell.workload, None, platform=platform,
                       size=cell.size, predecode=cell.predecode,
                       label=cell.label, **inputs)
    config = FPVMConfig(
        mode=cell.mode,
        gc_epoch_cycles=cell.gc_epoch_cycles,
        box_exact_results=cell.box_exact_results,
        faults=cell.fault_plan,
        storm_threshold=cell.storm_threshold,
    )
    return Session(cell.workload, cell.arith, config=config,
                   platform=platform, size=cell.size,
                   patch=cell.patch,
                   delivery_scenario=cell.delivery_scenario,
                   predecode=cell.predecode, label=cell.label, **inputs)


def _distill(cell: MatrixCell, res) -> CellResult:
    """RunResult (live objects) → CellResult (plain picklable data)."""
    out = CellResult(
        cell=cell,
        stdout=res.stdout,
        exit_code=res.exit_code,
        instr_count=res.instr_count,
        fp_instr_count=res.fp_instr_count,
        fp_traps=res.fp_traps,
        correctness_traps=res.correctness_traps,
        cycles=res.cycles,
        buckets=dict(res.buckets),
        wall_s=res.wall_s,
        fig9=(res.fpvm.stats.fig9_breakdown(res.machine)
              if res.fpvm is not None else None),
    )
    if res.fpvm is not None:
        out.decode_cache_hit_rate = res.fpvm.decode_cache.hit_rate
        out.bind_cache_hit_rate = res.fpvm.bind_cache.hit_rate
        st = res.fpvm.stats
        out.degradations = (st.degradations
                            + res.fpvm.gc.sweeps_skipped
                            + res.fpvm.emulator.corrupted_boxes)
        out.sites_short_circuited = st.sites_short_circuited
        if res.fpvm.injector is not None:
            out.faults_fired = dict(res.fpvm.injector.fired)
            out.fault_occurrences = dict(res.fpvm.injector.occurrences)
    return out


def run_cell(cell: MatrixCell) -> CellResult:
    """Worker entry point: run one cell and distill the result.

    Module-level (not a closure) so a ``multiprocessing`` pool can
    pickle it; all statistics that need live machine/FPVM objects are
    computed here, inside the worker.
    """
    session = _make_session(cell)
    res = session.run(cell.max_instructions, max_cycles=cell.max_cycles)
    return _distill(cell, res)


def run_cell_guarded(cell: MatrixCell) -> CellResult:
    """Like :func:`run_cell`, but a dying cell is contained: any
    exception becomes ``CellResult.error`` plus structured crash
    records instead of unwinding into (and killing) the pool worker."""
    from repro.faults.crashreport import build_crash_report

    session = None
    try:
        session = _make_session(cell)
        res = session.run(cell.max_instructions, max_cycles=cell.max_cycles)
        return _distill(cell, res)
    except Exception as exc:  # noqa: BLE001 - containment is the point
        machine = session.machine if session is not None else None
        fpvm = session.fpvm if session is not None else None
        ring = (session.trace if session is not None
                and hasattr(session.trace, "events") else None)
        records = build_crash_report(exc, machine, fpvm, ring=ring,
                                     cell=cell, label=cell.label)
        out = CellResult(
            cell=cell,
            stdout=("".join(machine.stdout) if machine is not None else ""),
            exit_code=-1,
            instr_count=machine.instr_count if machine is not None else 0,
            fp_instr_count=(machine.fp_instr_count
                            if machine is not None else 0),
            fp_traps=machine.fp_trap_count if machine is not None else 0,
            correctness_traps=(machine.correctness_trap_count
                               if machine is not None else 0),
            cycles=machine.cost.cycles if machine is not None else 0,
            error=str(exc),
            error_type=type(exc).__name__,
            crash_records=records,
        )
        if fpvm is not None:
            st = fpvm.stats
            out.degradations = (st.degradations + fpvm.gc.sweeps_skipped
                                + fpvm.emulator.corrupted_boxes)
            out.sites_short_circuited = st.sites_short_circuited
            if fpvm.injector is not None:
                out.faults_fired = dict(fpvm.injector.fired)
                out.fault_occurrences = dict(fpvm.injector.occurrences)
        return out


def _batch_key(cell: MatrixCell):
    """Cells that may share one SoA batch: same binary + same machine
    configuration, differing only in watchdogs and label."""
    return (cell.workload, cell.size, cell.arith, cell.platform,
            cell.mode, cell.delivery_scenario, cell.patch,
            cell.gc_epoch_cycles, cell.box_exact_results, cell.predecode,
            cell.storm_threshold)


def _run_matrix_batched(cells: list[MatrixCell]) -> list[CellResult]:
    """Batched backend: group compatible cells into SoA batches.

    Groups of >= 2 compatible cells (no fault injection — the injector
    is inherently per-trap/per-site scalar state) run as one
    :meth:`Session.run_batch`; everything else goes through the scalar
    worker.  Results are bit-identical to the serial loop either way.
    """
    from repro.session import LaneSpec, Session

    groups: dict[tuple, list[int]] = {}
    for i, cell in enumerate(cells):
        if cell.fault_plan is None:
            groups.setdefault(_batch_key(cell), []).append(i)
    results: list[CellResult | None] = [None] * len(cells)
    batched: set[int] = set()
    for indices in groups.values():
        if len(indices) < 2:
            continue
        group = [cells[i] for i in indices]
        try:
            session = _make_session(group[0])
            batch = session.run_batch([
                LaneSpec(params=dict(c.params) or None, stdin=c.stdin,
                         max_instructions=c.max_instructions,
                         max_cycles=c.max_cycles, label=c.label)
                for c in group])
        except Exception:  # noqa: BLE001 - fall back to scalar workers
            continue
        for i, cell, res in zip(indices, group, batch.lanes):
            if res.error is not None:
                out = CellResult(
                    cell=cell, stdout=res.stdout, exit_code=res.exit_code,
                    instr_count=res.instr_count,
                    fp_instr_count=res.fp_instr_count,
                    fp_traps=res.fp_traps,
                    correctness_traps=res.correctness_traps,
                    cycles=res.cycles, buckets=dict(res.buckets),
                    error=res.error, error_type=res.error_type,
                )
            else:
                out = _distill(cell, res)
            results[i] = out
            batched.add(i)
    for i, cell in enumerate(cells):
        if i not in batched:
            results[i] = run_cell_guarded(cell)
    return [r for r in results if r is not None]


def _default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def run_matrix(cells, jobs: int | None = None, *,
               timeout_s: float | None = None,
               retries: int = 0,
               capture_errors: bool = True,
               batch: bool = False) -> list[CellResult]:
    """Run every cell, fanning out over processes when it pays off.

    Results come back in input order.  Each cell is a deterministic,
    independent simulation, so the fan-out is bit-identical to the
    serial loop.  ``jobs`` defaults to ``REPRO_JOBS`` or the CPU
    count; anything ≤ 1 (or any pool failure, e.g. a platform without
    ``fork``) runs serially.

    ``batch=True`` selects the SoA batched backend: compatible cells
    (same workload/arith/platform configuration, no fault injection)
    execute in lockstep as one :meth:`Session.run_batch` inside this
    process instead of fanning out — one Python dispatch per
    instruction for the whole group.  Incompatible cells fall back to
    the scalar worker; results stay bit-identical either way.

    Crash isolation: with ``capture_errors`` (the default) a cell that
    raises — or whose worker dies, or that exceeds the per-cell
    ``timeout_s`` wall-clock limit — yields a :class:`CellResult` with
    ``error`` set instead of aborting the whole matrix.  Failed or
    timed-out cells are retried up to ``retries`` times, each round on
    a fresh pool so a wedged worker cannot poison its successors.
    """
    cells = list(cells)
    if batch:
        return _run_matrix_batched(cells)
    worker = run_cell_guarded if capture_errors else run_cell
    n = jobs if jobs is not None else _default_jobs()
    n = min(n, len(cells))
    if n > 1:
        try:
            results = _run_matrix_pooled(cells, worker, n,
                                         timeout_s=timeout_s,
                                         retries=retries,
                                         capture_errors=capture_errors)
            if results is not None:
                return results
        except (ImportError, ValueError, OSError):
            pass  # no fork on this platform / resources: run serial
    results = [worker(c) for c in cells]
    if capture_errors and retries > 0:
        for i, res in enumerate(results):
            attempt = 0
            while res.error is not None and attempt < retries:
                attempt += 1
                res = worker(cells[i])
                res.retries = attempt
            results[i] = res
    return results


def _run_matrix_pooled(cells, worker, n, *, timeout_s, retries,
                       capture_errors) -> list[CellResult] | None:
    """Pool fan-out with per-cell timeouts and per-round isolation.

    Returns ``None`` when a pool cannot be created at all (caller
    falls back to the serial loop).  Each retry round gets a fresh
    pool: a cell whose worker hung past ``timeout_s`` leaves its
    zombie behind when the round's pool is terminated, so later
    rounds start clean.
    """
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    results: list[CellResult | None] = [None] * len(cells)
    pending = list(range(len(cells)))
    for round_no in range(retries + 1):
        if not pending:
            break
        failed: list[int] = []
        with ctx.Pool(processes=min(n, len(pending))) as pool:
            handles = [(i, pool.apply_async(worker, (cells[i],)))
                       for i in pending]
            for i, handle in handles:
                try:
                    res = handle.get(timeout_s)
                except mp.TimeoutError:
                    if not capture_errors:
                        raise
                    res = _timeout_result(cells[i], timeout_s)
                except Exception as exc:  # worker died mid-cell
                    if not capture_errors:
                        raise
                    res = _worker_death_result(cells[i], exc)
                res.retries = round_no
                results[i] = res
                if res.error is not None:
                    failed.append(i)
            pool.terminate()
        pending = failed if round_no < retries else []
    return [r for r in results if r is not None] \
        if all(r is not None for r in results) else None


def _empty_error_result(cell: MatrixCell, error_type: str,
                        message: str) -> CellResult:
    return CellResult(
        cell=cell, stdout="", exit_code=-1, instr_count=0,
        fp_instr_count=0, fp_traps=0, correctness_traps=0, cycles=0,
        error=message, error_type=error_type,
        crash_records=[{"kind": "crash", "error": error_type,
                        "message": message, "label": cell.label}],
    )


def _timeout_result(cell: MatrixCell, timeout_s: float) -> CellResult:
    return _empty_error_result(
        cell, "CellTimeout",
        f"cell exceeded {timeout_s:g}s wall-clock timeout")


def _worker_death_result(cell: MatrixCell, exc: Exception) -> CellResult:
    return _empty_error_result(
        cell, type(exc).__name__,
        f"worker died before returning a result: {exc}")
