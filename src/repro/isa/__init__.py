"""The simulated x64-subset instruction set architecture.

The ISA is object-form rather than byte-encoded: an
:class:`~repro.isa.instructions.Instruction` carries a mnemonic, fully
resolved operands, a synthetic encoded *length* in bytes (so code
addresses, patch-size constraints, and decode behave like real x64),
and the address the assembler placed it at.

Submodules:

* :mod:`repro.isa.registers` — register names, widths, classes
* :mod:`repro.isa.operands`  — Reg/Xmm/Imm/Mem/Label operand model
* :mod:`repro.isa.opcodes`   — mnemonic table with classification
  (which instructions can raise FP exceptions, which are the
  non-faulting "correctness hole" ops, base cycle costs…)
* :mod:`repro.isa.instructions` — the Instruction dataclass
"""

from repro.isa.registers import GPR64, XMM_COUNT, is_gpr, subreg_size
from repro.isa.operands import Imm, Label, Mem, Reg, Xmm
from repro.isa.opcodes import (
    OPCODES,
    OpClass,
    opcode_info,
    is_fp_trapping,
    is_fp_bitwise,
    is_fp_mov,
)
from repro.isa.instructions import Instruction

__all__ = [
    "GPR64",
    "XMM_COUNT",
    "is_gpr",
    "subreg_size",
    "Imm",
    "Label",
    "Mem",
    "Reg",
    "Xmm",
    "OPCODES",
    "OpClass",
    "opcode_info",
    "is_fp_trapping",
    "is_fp_bitwise",
    "is_fp_mov",
    "Instruction",
]
