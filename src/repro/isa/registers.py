"""Register file description for the simulated x64 subset.

General-purpose registers are addressed by their canonical 64-bit name;
narrower operand views (``eax``, ``ax``, ``al``) are modeled by a Reg
operand carrying a *size*.  XMM registers are 128 bits wide, stored as
two u64 lanes — enough for the scalar + 2-lane packed-double forms the
paper's engine handles.
"""

from __future__ import annotations

#: canonical 64-bit general purpose registers (SysV order first)
GPR64 = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

GPR_INDEX = {name: i for i, name in enumerate(GPR64)}

XMM_COUNT = 16

#: sub-register aliases -> (canonical 64-bit name, size in bytes)
_SUBREGS: dict[str, tuple[str, int]] = {}
for _i, _r in enumerate(GPR64):
    _SUBREGS[_r] = (_r, 8)
for _r32, _r64 in [
    ("eax", "rax"), ("ebx", "rbx"), ("ecx", "rcx"), ("edx", "rdx"),
    ("esi", "rsi"), ("edi", "rdi"), ("ebp", "rbp"), ("esp", "rsp"),
    ("r8d", "r8"), ("r9d", "r9"), ("r10d", "r10"), ("r11d", "r11"),
    ("r12d", "r12"), ("r13d", "r13"), ("r14d", "r14"), ("r15d", "r15"),
]:
    _SUBREGS[_r32] = (_r64, 4)
for _r16, _r64 in [("ax", "rax"), ("bx", "rbx"), ("cx", "rcx"), ("dx", "rdx"),
                   ("si", "rsi"), ("di", "rdi")]:
    _SUBREGS[_r16] = (_r64, 2)
for _r8, _r64 in [("al", "rax"), ("bl", "rbx"), ("cl", "rcx"), ("dl", "rdx")]:
    _SUBREGS[_r8] = (_r64, 1)


def is_gpr(name: str) -> bool:
    """True if ``name`` is a recognized GPR (any width alias)."""
    return name in _SUBREGS


def canonical(name: str) -> str:
    """Map any width alias to its canonical 64-bit register name."""
    return _SUBREGS[name][0]


def subreg_size(name: str) -> int:
    """Operand size in bytes implied by a register alias."""
    return _SUBREGS[name][1]


#: SysV AMD64 integer argument registers, in order
INT_ARG_REGS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
#: SysV AMD64 FP argument registers, in order (xmm indices)
FP_ARG_REGS = (0, 1, 2, 3, 4, 5, 6, 7)
#: caller-saved GPRs (everything the compiler may clobber across a call)
CALLER_SAVED = ("rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11")
CALLEE_SAVED = ("rbx", "rbp", "r12", "r13", "r14", "r15")
