"""Mnemonic table: classification, synthetic encoding length, base cost.

The classification is the load-bearing part of the whole reproduction:

* ``FP_ARITH`` / ``FP_CMP`` / ``FP_CVT`` instructions consult MXCSR and
  **can raise precise FP faults** — these are what trap-and-emulate
  catches.
* ``FP_MOV`` and ``FP_BITWISE`` instructions move/mangle FP *bits*
  without ever consulting MXCSR — x64 will happily pass a NaN-boxed
  value through ``movq %rax, %xmm0`` or ``xorpd``; these are exactly
  the paper's "x64 FP is not fully virtualizable" holes (§4.2, Figs
  6-8) that static analysis must patch.
* ``INT_*`` instructions can load FP bit patterns as integers — the
  *sink* instructions of the VSA source/sink analysis.

Lengths are synthetic but x64-plausible; they matter for trap-and-patch
(5-byte patch constraint, §3.2) and give the binary an address space
that behaves like a real text segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class OpClass(Enum):
    INT_ALU = auto()      # add/sub/and/or/... on GPRs; sets rflags
    INT_MOV = auto()      # mov/movzx/movsx/lea
    STACK = auto()        # push/pop
    CONTROL = auto()      # jmp/jcc/call/ret
    FP_ARITH = auto()     # SSE arithmetic; consults MXCSR; can fault
    FP_CMP = auto()       # ucomisd/comisd/cmpsd; can fault
    FP_CVT = auto()       # conversions; can fault
    FP_MOV = auto()       # movsd/movq/movapd...; never faults
    FP_BITWISE = auto()   # xorpd/andpd/orpd/andnpd; never faults
    SYSTEM = auto()       # nop/hlt/int3/fpvm_trap/ud2


@dataclass(frozen=True, slots=True)
class OpInfo:
    """Static properties of a mnemonic."""

    mnemonic: str
    opclass: OpClass
    length: int   # synthetic encoded length in bytes
    cycles: int   # base (non-faulting, L1-hit) cost in model cycles
    lanes: int = 1  # 2 for packed-double forms


def _mk(table: dict[str, OpInfo], mnemonic: str, opclass: OpClass,
        length: int, cycles: int, lanes: int = 1) -> None:
    table[mnemonic] = OpInfo(mnemonic, opclass, length, cycles, lanes)


OPCODES: dict[str, OpInfo] = {}

# --- integer data movement -------------------------------------------------
_mk(OPCODES, "mov", OpClass.INT_MOV, 3, 1)
_mk(OPCODES, "movabs", OpClass.INT_MOV, 10, 1)   # mov r64, imm64
_mk(OPCODES, "movzx", OpClass.INT_MOV, 4, 1)
_mk(OPCODES, "movsx", OpClass.INT_MOV, 4, 1)
_mk(OPCODES, "lea", OpClass.INT_MOV, 4, 1)
_mk(OPCODES, "push", OpClass.STACK, 1, 2)
_mk(OPCODES, "pop", OpClass.STACK, 1, 2)
_mk(OPCODES, "xchg", OpClass.INT_MOV, 2, 2)

# --- integer ALU -------------------------------------------------------------
for _m in ("add", "sub", "and", "or", "xor", "cmp", "test"):
    _mk(OPCODES, _m, OpClass.INT_ALU, 3, 1)
for _m in ("inc", "dec", "not", "neg"):
    _mk(OPCODES, _m, OpClass.INT_ALU, 3, 1)
for _m in ("shl", "shr", "sar"):
    _mk(OPCODES, _m, OpClass.INT_ALU, 3, 1)
_mk(OPCODES, "imul", OpClass.INT_ALU, 4, 3)
_mk(OPCODES, "idiv", OpClass.INT_ALU, 3, 24)
_mk(OPCODES, "cqo", OpClass.INT_ALU, 2, 1)
for _cc in ("sete", "setne", "setl", "setle", "setg", "setge",
            "setb", "setbe", "seta", "setae", "setp", "setnp"):
    _mk(OPCODES, _cc, OpClass.INT_ALU, 3, 1)
for _cc in ("cmove", "cmovne", "cmovl", "cmovg"):
    _mk(OPCODES, _cc, OpClass.INT_ALU, 4, 1)

# --- control flow ------------------------------------------------------------
_mk(OPCODES, "jmp", OpClass.CONTROL, 2, 1)
for _cc in ("je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe", "ja", "jae",
            "js", "jns", "jp", "jnp"):
    _mk(OPCODES, _cc, OpClass.CONTROL, 2, 1)
_mk(OPCODES, "call", OpClass.CONTROL, 5, 4)
_mk(OPCODES, "ret", OpClass.CONTROL, 1, 4)

# --- SSE FP arithmetic (trap-capable) ---------------------------------------
for _m, _c in (("addsd", 3), ("subsd", 3), ("mulsd", 5), ("divsd", 20),
               ("sqrtsd", 27), ("minsd", 3), ("maxsd", 3)):
    _mk(OPCODES, _m, OpClass.FP_ARITH, 4, _c)
for _m, _c in (("addpd", 3), ("subpd", 3), ("mulpd", 5), ("divpd", 25),
               ("sqrtpd", 35), ("minpd", 3), ("maxpd", 3)):
    _mk(OPCODES, _m, OpClass.FP_ARITH, 4, _c, lanes=2)
for _m, _c in (("addss", 3), ("subss", 3), ("mulss", 5), ("divss", 13)):
    _mk(OPCODES, _m, OpClass.FP_ARITH, 4, _c)
_mk(OPCODES, "fmaddsd", OpClass.FP_ARITH, 5, 5)  # simplified 3-op FMA

# --- SSE FP comparison -------------------------------------------------------
_mk(OPCODES, "ucomisd", OpClass.FP_CMP, 4, 2)
_mk(OPCODES, "comisd", OpClass.FP_CMP, 4, 2)
_mk(OPCODES, "cmpsd", OpClass.FP_CMP, 5, 3)

# --- SSE FP conversions ------------------------------------------------------
for _m, _c in (("cvtsi2sd", 4), ("cvttsd2si", 4), ("cvtsd2si", 4),
               ("cvtsd2ss", 4), ("cvtss2sd", 2), ("roundsd", 6)):
    _mk(OPCODES, _m, OpClass.FP_CVT, 4 if _m != "roundsd" else 6, _c)

# --- SSE FP moves (never fault — NaN-boxes flow through silently) -----------
for _m in ("movsd", "movss", "movapd", "movupd"):
    _mk(OPCODES, _m, OpClass.FP_MOV, 4, 1, lanes=2 if _m.endswith("pd") else 1)
_mk(OPCODES, "movq", OpClass.FP_MOV, 4, 1)     # xmm <-> r64/m64 bit transfer
_mk(OPCODES, "movhpd", OpClass.FP_MOV, 5, 1)   # high lane <-> m64

# --- SSE FP bitwise (never fault — the §4.2 correctness hole) ---------------
for _m in ("xorpd", "andpd", "orpd", "andnpd"):
    _mk(OPCODES, _m, OpClass.FP_BITWISE, 4, 1, lanes=2)

# --- system ------------------------------------------------------------------
_mk(OPCODES, "nop", OpClass.SYSTEM, 1, 1)
_mk(OPCODES, "hlt", OpClass.SYSTEM, 1, 1)
_mk(OPCODES, "int3", OpClass.SYSTEM, 1, 1)
_mk(OPCODES, "ud2", OpClass.SYSTEM, 2, 1)
#: pseudo-instruction installed by the static patcher (e9patch stand-in);
#: same encoded length as the instruction it replaces (carried in payload)
_mk(OPCODES, "fpvm_trap", OpClass.SYSTEM, 1, 1)
#: pseudo-instruction installed by the trap-and-patch engine (§3.2):
#: inline pre/post-condition check replacing a faulting FP instruction
_mk(OPCODES, "fpvm_patch", OpClass.SYSTEM, 1, 1)


def opcode_info(mnemonic: str) -> OpInfo:
    """Look up static properties; raises KeyError for unknown mnemonics."""
    return OPCODES[mnemonic]


_FP_TRAPPING = frozenset(
    m for m, i in OPCODES.items()
    if i.opclass in (OpClass.FP_ARITH, OpClass.FP_CMP, OpClass.FP_CVT)
)
_FP_BITWISE = frozenset(
    m for m, i in OPCODES.items() if i.opclass is OpClass.FP_BITWISE
)
_FP_MOV = frozenset(m for m, i in OPCODES.items() if i.opclass is OpClass.FP_MOV)


def is_fp_trapping(mnemonic: str) -> bool:
    """True if the instruction consults MXCSR and can raise an FP fault."""
    return mnemonic in _FP_TRAPPING


def is_fp_bitwise(mnemonic: str) -> bool:
    """True for the non-faulting bitwise FP ops (xorpd/andpd/...)."""
    return mnemonic in _FP_BITWISE


def is_fp_mov(mnemonic: str) -> bool:
    """True for non-faulting FP data movement."""
    return mnemonic in _FP_MOV
