"""The Instruction object — one decoded machine instruction.

Instructions are created by the assembler with operands fully resolved
(labels replaced by absolute addresses) and pinned to a text address.
``length`` is the synthetic encoded size; the next sequential
instruction lives at ``addr + length``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.isa.opcodes import OPCODES, OpInfo
from repro.isa.operands import Operand


@dataclass(slots=True)
class Instruction:
    """One instruction of the simulated binary.

    Attributes:
        mnemonic: lower-case opcode name, a key of :data:`OPCODES`.
        operands: destination-first operand tuple (Intel order).
        addr: absolute text address (assigned by the assembler).
        length: encoded byte length.
        info: cached static opcode properties.
        payload: free-form slot used by the binary patcher — a
            ``fpvm_trap`` carries the original replaced instruction and
            the patch kind here.
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    addr: int = 0
    length: int = 0
    info: OpInfo = field(default=None, repr=False)  # type: ignore[assignment]
    payload: Any = None

    def __post_init__(self) -> None:
        if self.info is None:
            try:
                self.info = OPCODES[self.mnemonic]
            except KeyError:
                raise ValueError(f"unknown mnemonic {self.mnemonic!r}") from None
        if self.length == 0:
            self.length = self.info.length

    @property
    def next_addr(self) -> int:
        return self.addr + self.length

    def with_addr(self, addr: int) -> "Instruction":
        """Return a copy pinned at ``addr`` (used by the assembler)."""
        return Instruction(self.mnemonic, self.operands, addr, self.length,
                           self.info, self.payload)

    def __str__(self) -> str:
        ops = ", ".join(str(o) for o in self.operands)
        return f"{self.addr:#08x}: {self.mnemonic} {ops}".rstrip()
