"""Operand model: registers, immediates, memory references, labels.

Operands are small immutable objects.  ``Mem`` mirrors the x64
addressing form ``[base + index*scale + disp]`` and carries the access
size in bytes — binding (FPVM §4.1) resolves it to a concrete address
at trap time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import registers as R


@dataclass(frozen=True, slots=True)
class Reg:
    """A general-purpose register operand of a given width.

    ``Reg("eax")`` is the 32-bit view of ``rax``; writes through a
    32-bit view zero-extend into the full register (x64 semantics),
    while 16/8-bit writes merge.
    """

    name: str

    def __post_init__(self) -> None:
        if not R.is_gpr(self.name):
            raise ValueError(f"unknown GPR {self.name!r}")

    @property
    def canonical(self) -> str:
        return R.canonical(self.name)

    @property
    def size(self) -> int:
        return R.subreg_size(self.name)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"%{self.name}"


@dataclass(frozen=True, slots=True)
class Xmm:
    """An XMM register operand (128-bit; two binary64 lanes)."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < R.XMM_COUNT:
            raise ValueError(f"xmm index out of range: {self.index}")

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"%xmm{self.index}"


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate integer operand (stored unsigned-64 internally)."""

    value: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"${self.value:#x}" if abs(self.value) > 9 else f"${self.value}"


@dataclass(frozen=True, slots=True)
class Mem:
    """Memory operand ``[base + index*scale + disp]`` of ``size`` bytes."""

    base: str | None = None
    index: str | None = None
    scale: int = 1
    disp: int = 0
    size: int = 8

    def __post_init__(self) -> None:
        if self.base is not None and not R.is_gpr(self.base):
            raise ValueError(f"bad base register {self.base!r}")
        if self.index is not None and not R.is_gpr(self.index):
            raise ValueError(f"bad index register {self.index!r}")
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale}")
        if self.size not in (1, 2, 4, 8, 16):
            raise ValueError(f"bad access size {self.size}")

    def __str__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        if self.base:
            parts.append(f"%{self.base}")
        if self.index:
            parts.append(f"%{self.index}*{self.scale}")
        inner = "+".join(parts)
        return f"{self.disp:#x}({inner})" if inner else f"{self.disp:#x}"


@dataclass(frozen=True, slots=True)
class Label:
    """A symbolic code/data reference, resolved by the assembler."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.name


Operand = Reg | Xmm | Imm | Mem | Label
