"""Binary: the linked artifact of the simulated toolchain.

A ``Binary`` is what the loader maps, what the static analyzer reads,
and what the e9patch-equivalent rewrites.  It mirrors the parts of an
ELF executable that matter to FPVM:

* a text section of address-pinned instructions,
* one writable data section (data + bss merged),
* a symbol table and an import table (the "PLT" — calls to external
  library functions resolve to synthetic addresses the machine binds
  to built-in implementations, the simulated libc/libm),
* an entry symbol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction

#: segment layout of the simulated process
IMPORT_BASE = 0x0030_0000
TEXT_BASE = 0x0040_0000
DATA_ALIGN = 0x1000
IMPORT_STRIDE = 16


@dataclass
class Binary:
    """A fully linked simulated executable."""

    text: list[Instruction]
    data: bytearray
    data_base: int
    symbols: dict[str, int]
    imports: dict[str, int]
    entry: int
    #: data symbols marked read-only (format strings etc.) — loader hint
    rodata_symbols: set[str] = field(default_factory=set)

    text_map: dict[int, Instruction] = field(init=False, repr=False)
    #: callbacks fired after replace_instruction (predecode recompiles)
    _patch_listeners: list = field(init=False, repr=False,
                                   default_factory=list)

    def __post_init__(self) -> None:
        self.text_map = {i.addr: i for i in self.text}

    def add_patch_listener(self, fn) -> None:
        """Register ``fn(new_instruction)`` to run after each patch."""
        self._patch_listeners.append(fn)

    # ------------------------------------------------------------------ #
    @property
    def text_base(self) -> int:
        return self.text[0].addr if self.text else TEXT_BASE

    @property
    def text_end(self) -> int:
        return self.text[-1].next_addr if self.text else TEXT_BASE

    def instruction_at(self, addr: int) -> Instruction:
        try:
            return self.text_map[addr]
        except KeyError:
            raise AssemblyError(f"no instruction at {addr:#x}") from None

    def symbol_addr(self, name: str) -> int:
        if name in self.symbols:
            return self.symbols[name]
        if name in self.imports:
            return self.imports[name]
        raise AssemblyError(f"undefined symbol {name!r}")

    def import_name_at(self, addr: int) -> str | None:
        for name, a in self.imports.items():
            if a == addr:
                return name
        return None

    def content_hash(self) -> str:
        """Stable digest of the program content.

        Keyed on everything the static analyzer reads: instruction
        stream (patched sites hash their payload kind plus the
        displaced original), data image, symbol/import tables, and the
        entry point.  Two binaries with equal hashes get identical
        analysis reports, which is what lets matrix runs share one.
        """
        import hashlib

        h = hashlib.sha256()
        for ins in self.text:
            h.update(f"{ins.addr}:{ins.mnemonic}:{ins.operands!r}"
                     f":{ins.length}".encode())
            if ins.payload:
                kind = ins.payload.get("kind")
                orig = ins.payload.get("original")
                h.update(f":{kind}:{orig!r}".encode())
        h.update(bytes(self.data))
        h.update(repr(sorted(self.symbols.items())).encode())
        h.update(repr(sorted(self.imports.items())).encode())
        h.update(str(self.entry).encode())
        return h.hexdigest()

    # ------------------------------------------------------------------ #
    # patching support (e9patch stand-in)                                 #
    # ------------------------------------------------------------------ #

    def replace_instruction(self, addr: int, new: Instruction) -> Instruction:
        """Replace the instruction at ``addr`` in place (same length).

        Returns the displaced original.  Length preservation keeps all
        other addresses valid, mirroring how e9patch avoids control-flow
        recovery by never moving instructions.
        """
        old = self.instruction_at(addr)
        if new.length != old.length:
            raise AssemblyError(
                f"patch at {addr:#x} changes length {old.length}->{new.length}"
            )
        new = new.with_addr(addr)
        idx = self.text.index(old)
        self.text[idx] = new
        self.text_map[addr] = new
        for fn in self._patch_listeners:
            fn(new)
        return old

    # ------------------------------------------------------------------ #
    def disassemble(self) -> str:
        """Human-readable listing (debugging / analysis reports)."""
        rev_syms = {}
        for name, a in self.symbols.items():
            rev_syms.setdefault(a, []).append(name)
        out: list[str] = []
        for ins in self.text:
            for name in rev_syms.get(ins.addr, ()):
                out.append(f"{name}:")
            out.append(f"  {ins}")
        return "\n".join(out)

    def function_symbols(self) -> dict[str, int]:
        """Symbols that point into the text section."""
        lo, hi = self.text_base, self.text_end
        return {n: a for n, a in self.symbols.items() if lo <= a < hi}
