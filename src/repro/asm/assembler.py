"""Two-pass assembler: emit instructions + data, resolve labels, link.

Pass 1 assigns addresses (instruction lengths are static per opcode);
pass 2 rewrites :class:`~repro.isa.operands.Label` references into
absolute immediates / displacements.  Imports (``extern``) get
synthetic PLT addresses the machine binds to built-in libc/libm
implementations at load time.
"""

from __future__ import annotations

import struct

from repro.errors import AssemblyError
from repro.ieee.bits import f64_to_bits
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Label, Mem, Operand
from repro.asm.program import (
    Binary,
    DATA_ALIGN,
    IMPORT_BASE,
    IMPORT_STRIDE,
    TEXT_BASE,
)


def _align(n: int, a: int) -> int:
    return (n + a - 1) & ~(a - 1)


class Assembler:
    """Incremental program builder producing a :class:`Binary`."""

    def __init__(self, text_base: int = TEXT_BASE) -> None:
        self._text_base = text_base
        self._items: list[tuple[str, object]] = []  # ("label", name)|("ins", i)
        self._data = bytearray()
        self._data_symbols: dict[str, int] = {}  # name -> data offset
        self._rodata: set[str] = set()
        self._externs: list[str] = []

    # ------------------------------------------------------------------ #
    # text                                                                #
    # ------------------------------------------------------------------ #

    def label(self, name: str) -> None:
        """Define a code label at the current text position."""
        self._items.append(("label", name))

    def emit(self, mnemonic: str, *operands: Operand) -> Instruction:
        """Append one instruction (operands may reference labels)."""
        ins = Instruction(mnemonic, tuple(operands))
        self._items.append(("ins", ins))
        return ins

    def extern(self, *names: str) -> None:
        """Declare imported (dynamically linked) functions."""
        for name in names:
            if name not in self._externs:
                self._externs.append(name)

    # ------------------------------------------------------------------ #
    # data directives (8-byte aligned)                                    #
    # ------------------------------------------------------------------ #

    def _def_data(self, name: str, payload: bytes, ro: bool = False) -> None:
        if name in self._data_symbols:
            raise AssemblyError(f"duplicate data symbol {name!r}")
        pad = _align(len(self._data), 8) - len(self._data)
        self._data.extend(b"\x00" * pad)
        self._data_symbols[name] = len(self._data)
        self._data.extend(payload)
        if ro:
            self._rodata.add(name)

    def quad(self, name: str, values: int | list[int]) -> None:
        """Define 64-bit integer data (``.quad``)."""
        vals = values if isinstance(values, list) else [values]
        self._def_data(
            name,
            b"".join(struct.pack("<Q", v & 0xFFFF_FFFF_FFFF_FFFF) for v in vals),
        )

    def double(self, name: str, values: float | list[float]) -> None:
        """Define binary64 constant data (``.double``)."""
        vals = values if isinstance(values, list) else [values]
        self._def_data(
            name, b"".join(struct.pack("<Q", f64_to_bits(v)) for v in vals)
        )

    def asciiz(self, name: str, s: str) -> None:
        """Define a NUL-terminated string (read-only)."""
        self._def_data(name, s.encode() + b"\x00", ro=True)

    def space(self, name: str, nbytes: int) -> None:
        """Reserve zeroed space (``.bss``-style)."""
        self._def_data(name, b"\x00" * nbytes)

    # ------------------------------------------------------------------ #
    # assembly                                                            #
    # ------------------------------------------------------------------ #

    def assemble(self, entry: str = "main") -> Binary:
        """Lay out, resolve, and link into a :class:`Binary`."""
        # pass 1: addresses
        addr = self._text_base
        labels: dict[str, int] = {}
        text: list[Instruction] = []
        for kind, item in self._items:
            if kind == "label":
                name = item  # type: ignore[assignment]
                if name in labels:
                    raise AssemblyError(f"duplicate label {name!r}")
                labels[name] = addr
            else:
                ins = item  # type: ignore[assignment]
                text.append(ins.with_addr(addr))
                addr += ins.length

        imports = {
            name: IMPORT_BASE + i * IMPORT_STRIDE
            for i, name in enumerate(self._externs)
        }
        data_base = _align(addr, DATA_ALIGN)
        symbols = dict(labels)
        for name, off in self._data_symbols.items():
            if name in symbols:
                raise AssemblyError(f"symbol {name!r} defined in text and data")
            symbols[name] = data_base + off

        def resolve(name: str) -> int:
            if name in symbols:
                return symbols[name]
            if name in imports:
                return imports[name]
            raise AssemblyError(f"undefined symbol {name!r}")

        # pass 2: label resolution
        for i, ins in enumerate(text):
            new_ops: list[Operand] = []
            changed = False
            for op in ins.operands:
                if isinstance(op, Label):
                    new_ops.append(Imm(resolve(op.name)))
                    changed = True
                elif isinstance(op, Mem) and isinstance(op.disp, Label):
                    new_ops.append(
                        Mem(op.base, op.index, op.scale,
                            resolve(op.disp.name), op.size)
                    )
                    changed = True
                else:
                    new_ops.append(op)
            if changed:
                text[i] = Instruction(ins.mnemonic, tuple(new_ops), ins.addr,
                                      ins.length, ins.info, ins.payload)

        if entry not in symbols:
            raise AssemblyError(f"entry symbol {entry!r} not defined")
        return Binary(
            text=text,
            data=bytearray(self._data),
            data_base=data_base,
            symbols=symbols,
            imports=imports,
            entry=symbols[entry],
            rodata_symbols=set(self._rodata),
        )
