"""Assembler for the simulated ISA.

Provides :class:`~repro.asm.assembler.Assembler` (two-pass, label
resolving) and :class:`~repro.asm.program.Binary` (the "ELF file" of
the simulated world).  For concise hand-written assembly this module
also exports ready-made register operands::

    from repro.asm import Assembler, rax, rdi, xmm0, mem

    a = Assembler()
    a.label("main")
    a.emit("mov", rax, Imm(0))
    ...
"""

from repro.asm.assembler import Assembler
from repro.asm.program import Binary

from repro.isa.operands import Imm, Label, Mem, Reg, Xmm
from repro.isa.registers import GPR64

# convenience operand singletons: rax, rbx, ..., r15
for _name in GPR64:
    globals()[_name] = Reg(_name)
for _name in ("eax", "ebx", "ecx", "edx", "esi", "edi", "al", "cl"):
    globals()[_name] = Reg(_name)
# xmm0..xmm15
for _i in range(16):
    globals()[f"xmm{_i}"] = Xmm(_i)


def mem(base=None, disp=0, index=None, scale=1, size=8) -> Mem:
    """Shorthand memory-operand constructor accepting Reg or str names."""
    b = base.name if isinstance(base, Reg) else base
    ix = index.name if isinstance(index, Reg) else index
    return Mem(base=b, index=ix, scale=scale, disp=disp, size=size)


def imm(v: int) -> Imm:
    """Shorthand immediate constructor."""
    return Imm(v)


def lbl(name: str) -> Label:
    """Shorthand label reference constructor."""
    return Label(name)


__all__ = ["Assembler", "Binary", "Imm", "Label", "Mem", "Reg", "Xmm",
           "mem", "imm", "lbl"] + list(GPR64) + [f"xmm{i}" for i in range(16)]
