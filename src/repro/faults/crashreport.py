"""Structured NDJSON crash reports for unrecoverable machine faults.

When a :class:`~repro.errors.MachineError` escapes the recovery ladder
the run is over — but the *run's state* is still intact in-process, and
throwing it away turns every crash into archaeology.  This module
distills the machine into a list of flat JSON-safe records, one
``kind``-tagged object per line when serialized:

``crash``         error type/message, rip, instruction/cycle counters
``disassembly``   a window of instructions around the faulting rip
``registers``     the full register file + MXCSR masks/flags
``trap_context``  FPVM counters (traps, degradations, live shadows)
``trace_tail``    the retained suffix of a ring-buffer trace sink
``cell``          the matrix-cell coordinates, when run under a sweep

Everything is best-effort: a half-constructed machine (or none at all)
still yields a valid report containing whatever was recoverable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.fpvm.runtime import FPVM
    from repro.machine.cpu import Machine

#: instructions either side of rip in the disassembly window
_WINDOW = 8

#: events retained from a ring-buffer trace sink
_TAIL = 32


def _disasm_window(machine: "Machine", rip: int) -> list[list]:
    """``[addr, text, is_rip]`` rows around the faulting instruction."""
    text = machine.binary.text
    idx = next((i for i, ins in enumerate(text) if ins.addr == rip), None)
    if idx is None:
        # rip between instructions (corrupt) — nearest preceding site
        idx = max(range(len(text)),
                  key=lambda i: (text[i].addr <= rip, text[i].addr),
                  default=None)
    if idx is None:
        return []
    lo = max(0, idx - _WINDOW)
    hi = min(len(text), idx + _WINDOW + 1)
    return [[ins.addr, str(ins), ins.addr == rip] for ins in text[lo:hi]]


def build_crash_report(
    exc: BaseException,
    machine: "Machine | None" = None,
    fpvm: "FPVM | None" = None,
    *,
    ring=None,
    cell=None,
    label: str = "",
    job_id: int | None = None,
    tenant: str = "",
) -> list[dict]:
    """Distill a crash into JSON-safe, ``kind``-tagged records.

    ``job_id``/``tenant`` are the serving tier's attribution tags: the
    daemon assigns every accepted job a monotonic id, and concurrent
    workers append their reports to one shared NDJSON stream — so the
    tags go on *every* record, making each line independently
    attributable after interleaving.
    """
    records: list[dict] = []
    head: dict = {
        "kind": "crash",
        "error": type(exc).__name__,
        "message": str(exc),
        "label": label,
    }
    if machine is not None:
        head.update(
            rip=machine.regs.rip,
            instr_count=machine.instr_count,
            fp_instr_count=machine.fp_instr_count,
            cycles=machine.cost.cycles,
            halted=machine.halted,
            stdout_tail="".join(machine.stdout)[-512:],
        )
    records.append(head)

    if machine is not None:
        records.append({
            "kind": "disassembly",
            "window": _disasm_window(machine, machine.regs.rip),
        })
        snap = machine.regs.snapshot()
        zf, sf, cf, of, pf = snap["flags"]
        records.append({
            "kind": "registers",
            "rip": snap["rip"],
            "gpr": snap["gpr"],
            "xmm": snap["xmm"],
            "flags": {"zf": zf, "sf": sf, "cf": cf, "of": of, "pf": pf},
            "mxcsr": {"masks": machine.mxcsr.masks,
                      "flags": machine.mxcsr.flags},
        })

    if fpvm is not None:
        st = fpvm.stats
        records.append({
            "kind": "trap_context",
            "mode": fpvm.mode,
            "arith": fpvm.arith.describe(),
            "fp_traps": st.fp_traps,
            "traps_by_flag": dict(st.traps_by_flag),
            "correctness_traps": st.correctness_traps,
            "degradations": st.degradations,
            "sites_short_circuited": st.sites_short_circuited,
            "live_shadow_values": fpvm.store.live_count,
            "injector": (fpvm.injector.summary()
                         if fpvm.injector is not None else None),
        })

    if ring is not None and getattr(ring, "events", None):
        events = ring.events[-_TAIL:]
        records.append({
            "kind": "trace_tail",
            "dropped": getattr(ring, "dropped", 0),
            "events": [ev.to_dict() for ev in events],
        })

    if cell is not None:
        from dataclasses import asdict, is_dataclass

        info = asdict(cell) if is_dataclass(cell) else dict(cell)
        plan = info.get("fault_plan")
        if plan is not None:
            info["fault_plan"] = cell.fault_plan.describe()
        for key, val in info.items():
            if isinstance(val, bytes):  # e.g. MatrixCell.stdin
                info[key] = val.decode("latin-1")
        records.append({"kind": "cell", **info})
    if job_id is not None:
        for rec in records:
            rec["job_id"] = job_id
            rec["tenant"] = tenant
    return records


def write_crash_report(path_or_file: str | Path | IO[str],
                       records: list[dict],
                       *,
                       append: bool = False,
                       fsync: bool = False) -> None:
    """Serialize records as NDJSON (one JSON object per line).

    ``append=True`` opens the file in ``O_APPEND`` mode and writes the
    whole report as a single buffer, so concurrent workers sharing one
    crash log interleave at report granularity rather than tearing
    lines; ``fsync=True`` forces the report to stable storage before
    returning (a crashed-worker report must survive the daemon dying
    right after).  Both matter only for the serving tier — one-shot
    CLI reports keep the plain truncate-and-write default.
    """
    buf = "".join(json.dumps(rec) + "\n" for rec in records)
    if isinstance(path_or_file, (str, Path)):
        with Path(path_or_file).open("a" if append else "w") as fh:
            fh.write(buf)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
    else:
        path_or_file.write(buf)
        if fsync:
            path_or_file.flush()
            fileno = getattr(path_or_file, "fileno", None)
            if fileno is not None:
                try:
                    os.fsync(fileno())
                except (OSError, ValueError):
                    pass  # not a real file (StringIO etc.)
