"""Chaos campaigns: sweep workloads × arithmetics × fault stages.

A campaign is an ordinary experiment matrix whose cells carry
:class:`~repro.faults.injector.FaultPlan`\\ s: for every workload ×
arithmetic pair there is one zero-fault control cell plus one cell per
injectable VM stage.  Cells run through the isolated
:func:`~repro.harness.experiment.run_matrix` (per-cell timeouts,
bounded retries, crash containment), so the worst a fault can do is a
structured crash report — the campaign itself always completes.

Determinism: per-cell seeds derive from the campaign seed with
``zlib.crc32`` over the cell coordinates (*not* Python's ``hash``,
which is salted per-process), so the same campaign seed reproduces the
identical survival table run after run, across processes.
"""

from __future__ import annotations

import zlib

from repro.faults.injector import STAGES, FaultPlan, FaultRule
from repro.harness.experiment import CellResult, MatrixCell, run_matrix

#: per-stage triggers: (probability, max_fires) — protective-action
#: stages fire every occurrence (the degradation is cheap and silent),
#: pipeline stages fire often enough to trip the storm detector
_STAGE_TRIGGERS: dict[str, tuple[float, int | None]] = {
    "decode": (0.05, None),
    "bind": (0.05, None),
    "emulate": (0.05, None),
    "gc_sweep": (1.0, None),
    "shadow_lookup": (0.05, None),
    "nanbox_corrupt": (0.02, None),
    "extern_demote": (1.0, None),
}


def _cell_seed(seed: int, workload: str, arith: tuple, stage: str) -> int:
    key = f"{workload}:{arith}:{stage}".encode()
    return (seed * 0x1_0000_0000) ^ zlib.crc32(key)


def chaos_cells(
    workloads,
    ariths,
    *,
    seed: int = 0,
    stages=STAGES,
    size: str = "test",
    storm_threshold: int = 8,
    max_instructions: int | None = 5_000_000,
    max_cycles: float | None = None,
) -> list[MatrixCell]:
    """Build the campaign matrix: control + one cell per fault stage."""
    cells: list[MatrixCell] = []
    for workload in workloads:
        for arith in ariths:
            arith = tuple(arith) if not isinstance(arith, tuple) else arith
            plans = [("control", FaultPlan(
                seed=_cell_seed(seed, workload, arith, "control")))]
            for stage in stages:
                prob, cap = _STAGE_TRIGGERS[stage]
                plans.append((stage, FaultPlan(
                    seed=_cell_seed(seed, workload, arith, stage),
                    rules=(FaultRule(stage, probability=prob,
                                     max_fires=cap),),
                )))
            for label, plan in plans:
                cells.append(MatrixCell(
                    workload=workload,
                    size=size,
                    arith=arith,
                    fault_plan=plan,
                    storm_threshold=storm_threshold,
                    max_instructions=max_instructions,
                    max_cycles=max_cycles,
                    label=label,
                ))
    return cells


def run_campaign(cells, *, jobs: int | None = None,
                 timeout_s: float | None = 120.0,
                 retries: int = 1) -> list[CellResult]:
    """Run a chaos matrix under full crash isolation."""
    return run_matrix(cells, jobs, timeout_s=timeout_s, retries=retries,
                      capture_errors=True)


def _outcome(res: CellResult) -> str:
    if res.error is not None:
        return f"crashed:{res.error_type}"
    if res.sites_short_circuited:
        return "degraded+demoted"
    if res.degradations:
        return "degraded"
    return "ok"


def survival_table(results) -> str:
    """Render the campaign's survival/degradation table.

    Deterministic for a given seed: every column is modeled state
    (cycles, counters), never wall-clock.
    """
    header = ("workload", "arith", "stage", "fired", "degr", "demoted",
              "cycles", "outcome")
    rows = [header]
    for res in results:
        cell = res.cell
        arith = ":".join(str(x) for x in (cell.arith or ("native",)))
        fired = sum(res.faults_fired.values())
        rows.append((
            cell.workload,
            arith,
            cell.label or "-",
            str(fired),
            str(res.degradations),
            str(res.sites_short_circuited),
            f"{res.cycles:.0f}",
            _outcome(res),
        ))
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for j, row in enumerate(rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths))
                     .rstrip())
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    survived = sum(1 for r in results if r.survived)
    lines.append("")
    lines.append(f"survived {survived}/{len(results)} cells "
                 f"({sum(1 for r in results if r.error is not None)} "
                 "contained crashes)")
    return "\n".join(lines)
