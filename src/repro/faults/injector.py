"""Seeded, deterministic fault injection for the FPVM pipeline.

A :class:`FaultPlan` is plain frozen data (picklable, hashable) naming
*where* and *when* faults fire; a :class:`FaultInjector` is the runtime
object that evaluates the plan.  Determinism is the load-bearing
property: the same plan produces the same fault sequence on every run
— per-stage PRNG streams are seeded from ``(plan.seed, stage)`` so the
sequence at one stage never depends on how probes at other stages
interleave, and campaign tables are reproducible bit-for-bit.

Stages map onto the named phases of the trap-and-emulate pipeline
(paper §4.1) plus the protective actions around it:

=================  ======================================================
``decode``         instruction → FPVMOp flattening fails
``bind``           operand templates → locations fails
``emulate``        the arithmetic port raises mid-operation
``gc_sweep``       the conservative collector skips its sweep phase
``shadow_lookup``  a NaN-box handle misses the shadow table (dangling)
``nanbox_corrupt`` a bit flip lands in the 51-bit box payload
``extern_demote``  the pre-extern-call register demotion is skipped
=================  ======================================================

Probes are host-side only: evaluating a rule charges no modeled cycles,
so a zero-rule plan is bit-identical (instructions, cycles, stdout) to
running without an injector at all — a property the test suite pins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ReproError

#: the injectable VM stages, in pipeline order
STAGES = (
    "decode",
    "bind",
    "emulate",
    "gc_sweep",
    "shadow_lookup",
    "nanbox_corrupt",
    "extern_demote",
)


class FaultPlanError(ReproError):
    """A fault plan names an unknown stage or an impossible trigger."""


class InjectedFault(ReproError):
    """A fault fired by the injector at a named VM stage.

    Recoverable by design: the runtime's degradation ladder catches it,
    demotes the faulting operands, and re-executes under vanilla
    semantics.
    """

    def __init__(self, stage: str, occurrence: int, detail: str = "") -> None:
        msg = f"injected {stage} fault (occurrence {occurrence})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.stage = stage
        self.occurrence = occurrence


@dataclass(frozen=True)
class FaultRule:
    """One trigger: fire at ``stage`` on the nth occurrence and/or with
    per-occurrence probability.

    ``nth`` fires exactly at that 1-based occurrence of the stage;
    ``probability`` rolls an independent per-stage PRNG on every
    occurrence.  ``max_fires`` bounds total fires from this rule
    (``None`` = unbounded); the default of 1 makes a bare
    ``FaultRule("emulate", nth=3)`` a single-shot fault.
    """

    stage: str
    probability: float = 0.0
    nth: int | None = None
    max_fires: int | None = 1

    def validate(self) -> None:
        if self.stage not in STAGES:
            raise FaultPlanError(
                f"unknown fault stage {self.stage!r}; "
                f"expected one of {', '.join(STAGES)}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.nth is not None and self.nth < 1:
            raise FaultPlanError(f"nth must be >= 1, got {self.nth}")
        if self.probability == 0.0 and self.nth is None:
            raise FaultPlanError(
                f"rule for {self.stage!r} can never fire "
                "(no probability, no nth)")
        if self.max_fires is not None and self.max_fires < 1:
            raise FaultPlanError(
                f"max_fires must be >= 1 or None, got {self.max_fires}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of fault rules (plain picklable data).

    The zero-rule plan (``FaultPlan(seed=s)``) is the control: it
    threads an injector through the pipeline but never fires, and runs
    bit-identical to an uninstrumented execution.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            rule.validate()

    @property
    def stages(self) -> tuple[str, ...]:
        """The distinct stages this plan can fault, in STAGES order."""
        mine = {r.stage for r in self.rules}
        return tuple(s for s in STAGES if s in mine)

    def describe(self) -> str:
        if not self.rules:
            return f"zero-fault plan (seed {self.seed})"
        parts = []
        for r in self.rules:
            trig = []
            if r.nth is not None:
                trig.append(f"nth={r.nth}")
            if r.probability:
                trig.append(f"p={r.probability:g}")
            cap = "" if r.max_fires is None else f"≤{r.max_fires}"
            parts.append(f"{r.stage}[{','.join(trig)}{cap}]")
        return f"seed {self.seed}: " + " ".join(parts)


@dataclass
class _StageState:
    """Runtime bookkeeping for one stage's rules."""

    rules: list[FaultRule] = field(default_factory=list)
    rng: random.Random | None = None
    occurrences: int = 0
    fired: int = 0
    rule_fires: list[int] = field(default_factory=list)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against a running pipeline.

    The runtime calls :meth:`fires` (boolean probe, used where the
    degradation is behavioral — skip a sweep, skip a demotion, corrupt
    a payload) or :meth:`fire` (raising probe, used where the fault
    must unwind into the recovery ladder) at each stage.  Stages with
    no rules cost one dict lookup per probe and nothing else.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._stages: dict[str, _StageState] = {}
        for rule in plan.rules:
            st = self._stages.get(rule.stage)
            if st is None:
                st = self._stages[rule.stage] = _StageState(
                    rng=random.Random(f"{plan.seed}:{rule.stage}"))
            st.rules.append(rule)
            st.rule_fires.append(0)

    # ------------------------------------------------------------------ #

    def fires(self, stage: str) -> bool:
        """Count one occurrence of ``stage``; True if any rule fires."""
        st = self._stages.get(stage)
        if st is None:
            return False
        st.occurrences += 1
        hit = False
        for i, rule in enumerate(st.rules):
            if (rule.max_fires is not None
                    and st.rule_fires[i] >= rule.max_fires):
                continue
            if rule.nth is not None and st.occurrences == rule.nth:
                fired = True
            elif rule.probability > 0.0:
                # roll even when another rule already hit, so the
                # stage's PRNG stream advances identically regardless
                # of which rules are present alongside it
                fired = st.rng.random() < rule.probability
            else:
                fired = False
            if fired:
                st.rule_fires[i] += 1
                hit = True
        if hit:
            st.fired += 1
        return hit

    def fire(self, stage: str, detail: str = "") -> None:
        """Raising probe: raise :class:`InjectedFault` if a rule fires."""
        if self.fires(stage):
            raise InjectedFault(stage, self._stages[stage].occurrences,
                                detail)

    def rng(self, stage: str) -> random.Random:
        """The stage's deterministic PRNG (payload corruption etc.)."""
        st = self._stages.get(stage)
        if st is None:  # probe-only stage: still deterministic
            st = self._stages[stage] = _StageState(
                rng=random.Random(f"{self.plan.seed}:{stage}"))
        return st.rng

    # ------------------------------------------------------------------ #
    # accounting                                                          #
    # ------------------------------------------------------------------ #

    @property
    def total_fired(self) -> int:
        return sum(st.fired for st in self._stages.values())

    @property
    def fired(self) -> dict[str, int]:
        """Stage → number of occurrences at which a fault fired."""
        return {s: st.fired for s, st in self._stages.items() if st.fired}

    @property
    def occurrences(self) -> dict[str, int]:
        """Stage → number of times the stage was probed."""
        return {s: st.occurrences for s, st in self._stages.items()
                if st.occurrences}

    def summary(self) -> dict:
        """Picklable accounting snapshot (campaign table rows)."""
        return {
            "plan": self.plan.describe(),
            "fired": self.fired,
            "occurrences": self.occurrences,
            "total_fired": self.total_fired,
        }
