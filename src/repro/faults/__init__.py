"""repro.faults — fault injection, crash reporting, chaos campaigns.

FPVM's value proposition is that an unmodified binary keeps running
correctly while its arithmetic is virtualized; this package makes that
claim *testable*.  It provides the three robustness layers of the
FlowFPX/NSan school — exception flows as first-class observable events,
graceful degradation instead of host crashes, and structured post-mortem
artifacts:

* :mod:`repro.faults.injector` — a seeded, deterministic
  :class:`FaultPlan`/:class:`FaultInjector` pair that fires faults at
  named VM stages (decode, bind, emulate, gc_sweep, shadow_lookup,
  nanbox_corrupt, extern_demote) with per-stage probability or
  nth-occurrence triggers;
* :mod:`repro.faults.crashreport` — structured NDJSON crash reports
  for unrecoverable :class:`~repro.errors.MachineError`\\ s (rip,
  disassembly window, register file, trap context, trace-ring tail);
* :mod:`repro.faults.campaign` — the ``repro chaos`` campaign: sweep
  registry workloads × fault stages through the isolated experiment
  matrix and render a survival/degradation table.

The recovery consumer lives in :mod:`repro.fpvm.runtime`: recoverable
faults demote the faulting operands to IEEE doubles and re-execute the
instruction under vanilla semantics (a :class:`~repro.trace.events.DegradeEvent`
per recovery), and a per-site storm detector permanently demotes trap
sites that keep faulting — the paper's §4.1 trap-short-circuiting
turned into a safety valve.
"""

from repro.faults.injector import (
    STAGES,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedFault,
)
from repro.faults.crashreport import build_crash_report, write_crash_report


def __getattr__(name):
    # campaign pulls in the experiment harness (which itself imports the
    # FPVM runtime, which imports this package for the injector), so its
    # symbols resolve lazily to keep the import graph acyclic
    if name in ("chaos_cells", "run_campaign", "survival_table"):
        from repro.faults import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "STAGES",
    "FaultRule",
    "FaultPlan",
    "FaultPlanError",
    "FaultInjector",
    "InjectedFault",
    "build_crash_report",
    "write_crash_report",
    "chaos_cells",
    "run_campaign",
    "survival_table",
]
