"""Posit word codec: n-bit words ↔ exact (sign, mant, exp) triples.

A posit<n, es> word, read after stripping the sign by two's-complement
negation, is:  regime (run-length encoded k) | es exponent bits |
fraction.  The represented value is ``(1 + f/2^F) * 2^(k*2^es + e)``.

Encoding of an arbitrary real ``±mant * 2^exp`` builds the unbounded
bit string and rounds it to n-1 bits with round-to-nearest-even *on
the word* — valid because posit words are monotone in value — then
saturates to minpos/maxpos (the standard: finite nonzero values never
round to zero or NaR).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PositEnv:
    """A posit configuration (word size and exponent field size)."""

    nbits: int
    es: int = 2

    def __post_init__(self) -> None:
        if not 3 <= self.nbits <= 64:
            raise ValueError("posit nbits must be in [3, 64]")
        if not 0 <= self.es <= 4:
            raise ValueError("posit es must be in [0, 4]")

    @property
    def mask(self) -> int:
        return (1 << self.nbits) - 1

    @property
    def nar(self) -> int:
        """Not-a-Real: 1000…0."""
        return 1 << (self.nbits - 1)

    @property
    def maxpos(self) -> int:
        return (1 << (self.nbits - 1)) - 1

    @property
    def minpos(self) -> int:
        return 1

    @property
    def max_scale(self) -> int:
        return (self.nbits - 2) * (1 << self.es)


def decode(env: PositEnv, word: int) -> tuple[int, int, int] | None:
    """Posit word → ``(sign, mant, exp)`` with value ``±mant * 2^exp``.

    Returns None for NaR; ``(0, 0, 0)`` for zero.  ``mant`` is a
    positive integer (the significand ``1.f`` scaled to an int).
    """
    n, es = env.nbits, env.es
    word &= env.mask
    if word == 0:
        return (0, 0, 0)
    if word == env.nar:
        return None
    sign = (word >> (n - 1)) & 1
    if sign:
        word = (-word) & env.mask
    body = word & ((1 << (n - 1)) - 1)  # n-1 bits below the sign
    # regime: run of identical bits from the top of body
    pos = n - 2
    r0 = (body >> pos) & 1
    run = 0
    while pos >= 0 and ((body >> pos) & 1) == r0:
        run += 1
        pos -= 1
    k = (run - 1) if r0 else -run
    pos -= 1  # skip the terminating regime bit (may be off the end)
    # exponent: up to es bits (truncated bits read as 0)
    e = 0
    for _ in range(es):
        e <<= 1
        if pos >= 0:
            e |= (body >> pos) & 1
            pos -= 1
    # fraction: whatever remains (regime/exponent may consume everything)
    fbits = max(pos + 1, 0)
    f = body & ((1 << fbits) - 1) if fbits > 0 else 0
    scale = k * (1 << es) + e
    mant = (1 << fbits) | f
    return (sign, mant, scale - fbits)


def encode(env: PositEnv, sign: int, mant: int, exp: int,
           sticky: bool = False) -> int:
    """Exact/truncated real → nearest posit word (RNE, saturating).

    ``mant`` > 0; ``sticky`` means nonzero bits below ``mant`` were
    already discarded (from division/sqrt remainders).
    """
    n, es = env.nbits, env.es
    if mant == 0:
        return 0
    bl = mant.bit_length()
    scale = exp + bl - 1
    k = scale >> es
    e = scale - (k << es)
    if k >= 0:
        regime = ((1 << (k + 1)) - 1) << 1  # k+1 ones, terminating zero
        rlen = k + 2
    else:
        regime = 1  # -k zeros then a one
        rlen = -k + 1
    fbits = bl - 1
    frac = mant - (1 << (bl - 1))
    u = (((regime << es) | e) << fbits) | frac
    length = rlen + es + fbits
    target = n - 1
    shift = length - target
    if shift <= 0:
        u <<= -shift
        # sticky below the word's LSB can never reach half an ulp
    else:
        dropped = u & ((1 << shift) - 1)
        u >>= shift
        half = 1 << (shift - 1)
        if dropped > half or (dropped == half and (sticky or (u & 1))):
            u += 1
    # saturate: never to zero, never past maxpos (no NaR from rounding)
    if u < env.minpos:
        u = env.minpos
    if u > env.maxpos:
        u = env.maxpos
    return (-u) & env.mask if sign else u
