"""posit — a from-scratch posit<nbits, es> implementation.

The reproduction's substitute for the Universal Numbers Library
(paper §4.3):

    "A posit number has four parts which include sign, regime,
    exponent and fraction.  Among the four, exponent and fraction
    have variable length.  The posit sizes/precisions available in
    the library can be chosen at compile-time."

* :mod:`repro.arith.posit.encoding` — decode/encode between n-bit
  posit words and exact ``(sign, mantissa, exp2)`` triples, with
  round-to-nearest-even in encoding space (posit encodings are
  monotone in value, so integer rounding of the word *is* value
  rounding) and saturation to minpos/maxpos (posits never overflow
  to NaR).
* :class:`PositArithmetic` — the FPVM port: exact integer arithmetic
  for +,−,×,÷,√,fma (then a single posit rounding), transcendentals
  via the bigfloat engine at 80-bit working precision.

Shadow values are the raw n-bit words (ints) — cheap to store, and
comparisons are just signed integer comparisons, a defining posit
property.
"""

from repro.arith.posit.adapter import PositArithmetic
from repro.arith.posit.encoding import PositEnv
from repro.arith.posit.quire import Quire, quire_dot

__all__ = ["PositArithmetic", "PositEnv", "Quire", "quire_dot"]
