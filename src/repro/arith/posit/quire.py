"""The quire: posits' exact dot-product accumulator.

The posit standard pairs each posit<n,es> with a *quire* — a wide
fixed-point register (2^(es+2)·(n−2) + ~30 carry bits) in which sums
of products of posits accumulate **exactly**; rounding happens once,
when the quire is read back to a posit.  The Universal library the
paper links against ships quires; FPVM itself operates per
instruction and cannot use one, but the library feature matters for
any downstream numerical use of this package (fused dot products,
Kulisch-style sums).

Implementation: an unbounded Python integer holding the value scaled
by 2^FRACBITS, where FRACBITS comfortably exceeds the smallest
possible product scale (2·minpos exponent), so *every* posit product
is representable exactly — a superset of the standard's fixed width,
with saturating NaR semantics preserved.
"""

from __future__ import annotations

from repro.arith.posit.encoding import PositEnv, decode, encode


class Quire:
    """Exact accumulator for sums of posit products."""

    def __init__(self, env: PositEnv) -> None:
        self.env = env
        #: fixed-point LSB: 2 * (most negative posit exponent), padded
        self.fracbits = 2 * (env.max_scale + env.nbits) + 8
        self._acc = 0
        self._nar = False

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        self._acc = 0
        self._nar = False

    @property
    def is_nar(self) -> bool:
        return self._nar

    def _fixed(self, word: int) -> int | None:
        d = decode(self.env, word)
        if d is None:
            self._nar = True
            return None
        s, m, e = d
        if m == 0:
            return 0
        shift = e + self.fracbits
        v = m << shift if shift >= 0 else m >> -shift
        return -v if s else v

    # ------------------------------------------------------------------ #
    def add(self, word: int) -> "Quire":
        """Accumulate a single posit exactly."""
        v = self._fixed(word)
        if v is not None:
            self._acc += v
        return self

    def add_product(self, a: int, b: int) -> "Quire":
        """Accumulate ``a*b`` exactly (the fused dot-product step)."""
        da = decode(self.env, a)
        db = decode(self.env, b)
        if da is None or db is None:
            self._nar = True
            return self
        (sa, ma, ea), (sb, mb, eb) = da, db
        if ma == 0 or mb == 0:
            return self
        m = ma * mb
        shift = ea + eb + self.fracbits
        v = m << shift if shift >= 0 else m >> -shift
        # the fracbits budget guarantees shift >= 0 for all products
        self._acc += -v if sa ^ sb else v
        return self

    def sub_product(self, a: int, b: int) -> "Quire":
        from repro.arith.posit.encoding import decode as _d

        d = _d(self.env, b)
        if d is None:
            self._nar = True
            return self
        neg_b = (-b) & self.env.mask if b != 0 else 0
        return self.add_product(a, neg_b)

    # ------------------------------------------------------------------ #
    def to_posit(self) -> int:
        """Round the exact accumulation to the nearest posit (once)."""
        if self._nar:
            return self.env.nar
        if self._acc == 0:
            return 0
        mag = abs(self._acc)
        return encode(self.env, 1 if self._acc < 0 else 0, mag,
                      -self.fracbits)


def quire_dot(env: PositEnv, xs: list[int], ys: list[int]) -> int:
    """Exactly-rounded dot product of two posit vectors."""
    q = Quire(env)
    for a, b in zip(xs, ys):
        q.add_product(a, b)
    return q.to_posit()
