"""PositArithmetic: the FPVM port of the posit library.

Shadow values are raw n-bit posit words.  Arithmetic decodes to exact
``±mant * 2^exp`` integers, computes exactly (with a sticky bit for
division and square root remainders), and rounds once through the
word codec — the same "exact then posit-round" structure the
Universal library uses internally.
"""

from __future__ import annotations

import math

from repro.ieee.bits import (
    F64_DEFAULT_QNAN,
    bits_to_f32,
    decompose64,
    f32_to_bits,
    f64_to_bits,
    is_nan64,
)
from repro.arith.interface import AlternativeArithmetic, Ordering
from repro.arith.posit.encoding import PositEnv, decode, encode
from repro.arith.bigfloat.number import BigFloatContext, FINITE, NAN, ZERO
from repro.arith.bigfloat import transcendental as T

_I64_INDEFINITE = 1 << 63
_I32_INDEFINITE = 1 << 31


class PositArithmetic(AlternativeArithmetic):
    """posit<nbits, es> arithmetic behind the 37-function interface."""

    def __init__(self, nbits: int = 32, es: int = 2) -> None:
        self.env = PositEnv(nbits, es)
        self.name = f"posit{nbits}es{es}"
        # transcendental working engine (wide enough for any posit<=64)
        self._bctx = BigFloatContext(80)
        scale = max(nbits / 32.0, 0.5)
        self._costs = {
            "add": int(95 * scale), "sub": int(95 * scale),
            "mul": int(130 * scale), "div": int(320 * scale),
            "sqrt": int(400 * scale), "fma": int(180 * scale),
            "neg": 12, "abs": 12, "min": 20, "max": 20, "compare": 15,
        }

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    @property
    def nar(self) -> int:
        return self.env.nar

    def _dec(self, w: int):
        return decode(self.env, w)

    def _enc(self, sign: int, mant: int, exp: int, sticky: bool = False) -> int:
        return encode(self.env, sign, mant, exp, sticky)

    def _signed_word(self, w: int) -> int:
        w &= self.env.mask
        return w - (1 << self.env.nbits) if w >> (self.env.nbits - 1) else w

    def _to_bf(self, w: int):
        d = self._dec(w)
        if d is None:
            return self._bctx.nan()
        s, m, e = d
        if m == 0:
            return self._bctx.zero()
        return self._bctx.round_mant(s, m, e)

    def _from_bf(self, v) -> int:
        if v.kind == NAN:
            return self.nar
        if v.kind == ZERO:
            return 0
        if v.kind != FINITE:  # ±inf saturates (posits have no infinity)
            return self._enc(v.sign, 1, self.env.max_scale + 1)
        return self._enc(v.sign, v.mant, v.exp, sticky=True)

    def _via_bf(self, fn, *words: int) -> int:
        return self._from_bf(fn(self._bctx, *(self._to_bf(w) for w in words)))

    # ------------------------------------------------------------------ #
    # arithmetic                                                          #
    # ------------------------------------------------------------------ #

    def add(self, a: int, b: int) -> int:
        da, db = self._dec(a), self._dec(b)
        if da is None or db is None:
            return self.nar
        (sa, ma, ea), (sb, mb, eb) = da, db
        if ma == 0:
            return b & self.env.mask
        if mb == 0:
            return a & self.env.mask
        e = min(ea, eb)
        total = ((-ma if sa else ma) << (ea - e)) + (
            (-mb if sb else mb) << (eb - e))
        if total == 0:
            return 0
        return self._enc(1 if total < 0 else 0, abs(total), e)

    def sub(self, a: int, b: int) -> int:
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        da, db = self._dec(a), self._dec(b)
        if da is None or db is None:
            return self.nar
        (sa, ma, ea), (sb, mb, eb) = da, db
        if ma == 0 or mb == 0:
            return 0
        return self._enc(sa ^ sb, ma * mb, ea + eb)

    def div(self, a: int, b: int) -> int:
        da, db = self._dec(a), self._dec(b)
        if da is None or db is None:
            return self.nar
        (sa, ma, ea), (sb, mb, eb) = da, db
        if mb == 0:
            return self.nar  # x/0 = NaR (posit standard)
        if ma == 0:
            return 0
        shift = 2 * self.env.nbits + 8
        q, r = divmod(ma << shift, mb)
        return self._enc(sa ^ sb, q, ea - eb - shift, sticky=r != 0)

    def sqrt(self, a: int) -> int:
        d = self._dec(a)
        if d is None:
            return self.nar
        s, m, e = d
        if m == 0:
            return 0
        if s:
            return self.nar
        shift = 2 * (2 * self.env.nbits + 8) - m.bit_length()
        if shift < 0:
            shift = 0
        if (e - shift) % 2:
            shift += 1
        m <<= shift
        e -= shift
        r = math.isqrt(m)
        return self._enc(0, r, e // 2, sticky=r * r != m)

    def fma(self, a: int, b: int, c: int) -> int:
        da, db, dc = self._dec(a), self._dec(b), self._dec(c)
        if da is None or db is None or dc is None:
            return self.nar
        (sa, ma, ea), (sb, mb, eb), (sc, mc, ec) = da, db, dc
        pm = ma * mb
        ps = sa ^ sb
        pe = ea + eb
        if pm == 0:
            return c & self.env.mask
        if mc == 0:
            return self._enc(ps, pm, pe)
        e = min(pe, ec)
        total = ((-pm if ps else pm) << (pe - e)) + (
            (-mc if sc else mc) << (ec - e))
        if total == 0:
            return 0
        return self._enc(1 if total < 0 else 0, abs(total), e)

    def neg(self, a: int) -> int:
        a &= self.env.mask
        if a == 0 or a == self.nar:
            return a
        return (-a) & self.env.mask

    def abs(self, a: int) -> int:
        a &= self.env.mask
        if a == self.nar:
            return a
        return self.neg(a) if a >> (self.env.nbits - 1) else a

    def min(self, a: int, b: int) -> int:
        c = self.compare(a, b)
        if c is Ordering.UNORDERED or c is Ordering.EQ:
            return b & self.env.mask
        return (a if c is Ordering.LT else b) & self.env.mask

    def max(self, a: int, b: int) -> int:
        c = self.compare(a, b)
        if c is Ordering.UNORDERED or c is Ordering.EQ:
            return b & self.env.mask
        return (a if c is Ordering.GT else b) & self.env.mask

    # transcendentals route through the bigfloat engine
    def sin(self, a: int) -> int:
        return self._via_bf(T.bf_sin, a)

    def cos(self, a: int) -> int:
        return self._via_bf(T.bf_cos, a)

    def tan(self, a: int) -> int:
        return self._via_bf(T.bf_tan, a)

    def asin(self, a: int) -> int:
        return self._via_bf(T.bf_asin, a)

    def acos(self, a: int) -> int:
        return self._via_bf(T.bf_acos, a)

    def atan(self, a: int) -> int:
        return self._via_bf(T.bf_atan, a)

    def atan2(self, a: int, b: int) -> int:
        return self._via_bf(T.bf_atan2, a, b)

    def exp(self, a: int) -> int:
        return self._via_bf(T.bf_exp, a)

    def log(self, a: int) -> int:
        return self._via_bf(T.bf_log, a)

    def log2(self, a: int) -> int:
        return self._via_bf(T.bf_log2, a)

    def log10(self, a: int) -> int:
        return self._via_bf(T.bf_log10, a)

    def pow(self, a: int, b: int) -> int:
        return self._via_bf(T.bf_pow, a, b)

    def fmod(self, a: int, b: int) -> int:
        return self._via_bf(T.bf_fmod, a, b)

    # ------------------------------------------------------------------ #
    # conversions                                                         #
    # ------------------------------------------------------------------ #

    def from_f64_bits(self, bits: int) -> int:
        if is_nan64(bits):
            return self.nar
        if (bits & 0x7FF0_0000_0000_0000) == 0x7FF0_0000_0000_0000:
            return self.nar  # ±inf has no posit; Universal maps to NaR
        s, m, e = decompose64(bits)
        if m == 0:
            return 0
        return self._enc(s, m, e)

    def to_f64_bits(self, a: int) -> int:
        d = self._dec(a)
        if d is None:
            return F64_DEFAULT_QNAN
        s, m, e = d
        if m == 0:
            return 0
        v = math.ldexp(float(m), e) if m.bit_length() <= 53 else (
            self._big_to_float(m, e))
        return f64_to_bits(-v if s else v)

    @staticmethod
    def _big_to_float(m: int, e: int) -> float:
        extra = m.bit_length() - 54
        sticky = 1 if (m & ((1 << extra) - 1)) else 0
        return math.ldexp(float(((m >> extra) << 1) | sticky), e + extra - 1)

    def from_i64(self, i: int) -> int:
        if i >= 1 << 63:
            i -= 1 << 64
        if i == 0:
            return 0
        return self._enc(1 if i < 0 else 0, abs(i), 0)

    def from_i32(self, i: int) -> int:
        if i >= 1 << 31:
            i -= 1 << 32
        return self.from_i64(i & ((1 << 64) - 1))

    def _to_int(self, a: int, truncate: bool) -> int | None:
        d = self._dec(a)
        if d is None:
            return None
        s, m, e = d
        if m == 0:
            return 0
        if e >= 0:
            v = m << e
        else:
            whole = m >> -e
            frac = m & ((1 << -e) - 1)
            if truncate or frac == 0:
                v = whole
            else:
                half = 1 << (-e - 1)
                if frac > half or (frac == half and (whole & 1)):
                    whole += 1
                v = whole
        return -v if s else v

    def to_i64(self, a: int, truncate: bool) -> int:
        v = self._to_int(a, truncate)
        if v is None or not (-(1 << 63) <= v < (1 << 63)):
            return _I64_INDEFINITE
        return v & ((1 << 64) - 1)

    def to_i32(self, a: int, truncate: bool) -> int:
        v = self._to_int(a, truncate)
        if v is None or not (-(1 << 31) <= v < (1 << 31)):
            return _I32_INDEFINITE
        return v & ((1 << 32) - 1)

    def from_f32_bits(self, bits: int) -> int:
        return self.from_f64_bits(f64_to_bits(bits_to_f32(bits)))

    def to_f32_bits(self, a: int) -> int:
        from repro.ieee.bits import bits_to_f64

        return f32_to_bits(bits_to_f64(self.to_f64_bits(a)))

    def round_to_integral(self, a: int, mode: int) -> int:
        d = self._dec(a)
        if d is None:
            return self.nar
        s, m, e = d
        if m == 0:
            return 0
        if e >= 0:
            return a & self.env.mask  # already integral
        whole = m >> -e
        frac = m & ((1 << -e) - 1)
        if mode == 0:  # nearest-even
            half = 1 << (-e - 1)
            if frac > half or (frac == half and (whole & 1)):
                whole += 1
        elif mode == 1:  # floor
            if s and frac:
                whole += 1
        elif mode == 2:  # ceil
            if not s and frac:
                whole += 1
        # mode 3 (trunc): nothing
        if whole == 0:
            return 0
        return self._enc(s, whole, 0)

    def to_decimal_str(self, a: int, precision: int | None = None) -> str:
        return self._bctx.to_decimal_str(self._to_bf(a), precision or 12)

    # ------------------------------------------------------------------ #
    # comparisons (posit words compare as signed integers)                #
    # ------------------------------------------------------------------ #

    def compare(self, a: int, b: int) -> Ordering:
        a &= self.env.mask
        b &= self.env.mask
        if a == self.nar or b == self.nar:
            return Ordering.UNORDERED
        sa, sb = self._signed_word(a), self._signed_word(b)
        if sa < sb:
            return Ordering.LT
        if sa > sb:
            return Ordering.GT
        return Ordering.EQ

    def is_nan(self, a: int) -> bool:
        return (a & self.env.mask) == self.nar

    def is_zero(self, a: int) -> bool:
        return (a & self.env.mask) == 0

    def is_negative(self, a: int) -> bool:
        a &= self.env.mask
        return a != self.nar and bool(a >> (self.env.nbits - 1))

    # ------------------------------------------------------------------ #

    def op_cycles(self, op: str) -> int:
        return self._costs.get(op, 2500)
