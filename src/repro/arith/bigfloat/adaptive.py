"""Adaptive-precision arithmetic — the version the paper was
"considering" (§4.3: "the precision used by FPVM is determined by a
compile-time configurable parameter or environment variable, and we
are also considering an adaptive precision version").

:class:`AdaptiveBigFloatArithmetic` starts at a modest precision and
escalates (geometrically, up to a cap) whenever it observes
**catastrophic cancellation**: an add/sub whose result loses more
than ``cancel_threshold`` leading bits relative to its larger operand.
Values already stored in the shadow store keep their original
precision — mixed-precision operands are fine, every operation rounds
once into the *current* context — so escalation only affects
newly-computed values, exactly how an adaptive MPFR deployment would
behave under FPVM.
"""

from __future__ import annotations

from repro.arith.bigfloat.adapter import BigFloatArithmetic
from repro.arith.bigfloat.number import BF, FINITE


def _scale(v: BF) -> int | None:
    """log2-magnitude of a finite nonzero value, else None."""
    if v.kind != FINITE:
        return None
    return v.exp + v.mant.bit_length()


class AdaptiveBigFloatArithmetic(BigFloatArithmetic):
    """Bigfloat arithmetic that raises its own precision on demand."""

    def __init__(
        self,
        initial_precision: int = 64,
        max_precision: int = 2048,
        growth: float = 2.0,
        cancel_threshold: int = 20,
    ) -> None:
        if initial_precision > max_precision:
            raise ValueError("initial precision exceeds the maximum")
        if growth <= 1.0:
            raise ValueError("growth factor must be > 1")
        super().__init__(initial_precision)
        self.initial_precision = initial_precision
        self.max_precision = max_precision
        self.growth = growth
        self.cancel_threshold = cancel_threshold
        self.escalations = 0
        self.cancellations_seen = 0
        self._rename()

    def _rename(self) -> None:
        self.name = (f"mpfr-adaptive{self.precision}"
                     f"(max{self.max_precision})")

    # ------------------------------------------------------------------ #
    def _maybe_escalate(self, a: BF, b: BF, r: BF) -> None:
        from repro.arith.bigfloat.number import ZERO

        sa, sb, sr = _scale(a), _scale(b), _scale(r)
        if sa is None and sb is None:
            return  # specials in, nothing to measure
        top = max(s for s in (sa, sb) if s is not None)
        if sr is not None:
            lost = top - sr
        elif r.kind == ZERO:
            lost = self.cancel_threshold  # total cancellation
        else:
            return  # inf/nan result: overflow, not cancellation
        if lost < self.cancel_threshold:
            return
        self.cancellations_seen += 1
        if self.precision >= self.max_precision:
            return
        new_prec = min(int(self.precision * self.growth),
                       self.max_precision)
        self._set_precision(new_prec)
        self._rename()
        self.escalations += 1

    # ------------------------------------------------------------------ #
    def add(self, a: BF, b: BF) -> BF:
        r = self.ctx.add(a, b)
        self._maybe_escalate(a, b, r)
        return r

    def sub(self, a: BF, b: BF) -> BF:
        r = self.ctx.sub(a, b)
        self._maybe_escalate(a, b, r)
        return r

    def fma(self, a: BF, b: BF, c: BF) -> BF:
        r = self.ctx.fma(a, b, c)
        # cancellation in the additive part
        prod_scale = None
        if a.kind == FINITE and b.kind == FINITE:
            prod_scale = _scale(a) + _scale(b)
        if prod_scale is not None and c.kind == FINITE:
            fake = BF(FINITE, 0, 1 << (self.precision - 1),
                      prod_scale - self.precision, self.precision)
            self._maybe_escalate(fake, c, r)
        return r
