"""BigFloatArithmetic: the FPVM port of the bigfloat library (§4.3).

Cycle model: calibrated to the paper's measurements.  Footnote 9:
"200 bit MPFR operations themselves take from 93 (add) to 2175
(divide) cycles."  With L = precision/64 limbs we use

* add/sub:  40 + 17·L          (93 at 200 bits)
* mul:      90 + 44·L^1.585    (Karatsuba exponent)
* div/sqrt: 180 + 205·L²       (2172 at 200 bits)
* transcendental: ≈ series-length · mul

which reproduces Fig. 11's shape: div dominates at low precision,
everything goes polynomial as precision grows.
"""

from __future__ import annotations

from repro.ieee.bits import (
    F64_DEFAULT_QNAN,
    bits_to_f32,
    decompose64,
    f32_to_bits,
    f64_to_bits,
    is_nan64,
)
from repro.arith.interface import AlternativeArithmetic, Ordering
from repro.arith.bigfloat.number import (
    BF,
    FINITE,
    INF,
    NAN,
    ZERO,
    BigFloatContext,
)
from repro.arith.bigfloat import transcendental as T

_I64_INDEFINITE = 1 << 63
_I32_INDEFINITE = 1 << 31


class BigFloatArithmetic(AlternativeArithmetic):
    """Arbitrary-precision binary floating point (the MPFR stand-in)."""

    def __init__(self, precision: int = 200) -> None:
        self._set_precision(precision)

    def _set_precision(self, precision: int) -> None:
        self.ctx = BigFloatContext(precision)
        self.precision = precision
        self.name = f"mpfr{precision}"
        limbs = max(precision / 64.0, 1.0)
        self._costs = {
            "add": int(40 + 17 * limbs),
            "sub": int(40 + 17 * limbs),
            "mul": int(90 + 44 * limbs ** 1.585),
            "div": int(180 + 205 * limbs ** 2),
            "sqrt": int(230 + 240 * limbs ** 2),
            "fma": int(130 + 60 * limbs ** 1.585),
            "neg": 24,
            "abs": 24,
            "min": 30,
            "max": 30,
            "compare": 35,
        }
        trans = int(30 * self._costs["mul"])
        for op in ("sin", "cos", "tan", "asin", "acos", "atan", "atan2",
                   "exp", "log", "log2", "log10", "pow"):
            self._costs[op] = trans
        self._costs["fmod"] = self._costs["div"]

    # -------------------------- arithmetic ---------------------------- #

    def add(self, a: BF, b: BF) -> BF:
        return self.ctx.add(a, b)

    def sub(self, a: BF, b: BF) -> BF:
        return self.ctx.sub(a, b)

    def mul(self, a: BF, b: BF) -> BF:
        return self.ctx.mul(a, b)

    def div(self, a: BF, b: BF) -> BF:
        return self.ctx.div(a, b)

    def sqrt(self, a: BF) -> BF:
        return self.ctx.sqrt(a)

    def fma(self, a: BF, b: BF, c: BF) -> BF:
        return self.ctx.fma(a, b, c)

    def neg(self, a: BF) -> BF:
        return self.ctx.neg(a)

    def abs(self, a: BF) -> BF:
        return self.ctx.abs(a)

    def min(self, a: BF, b: BF) -> BF:
        # x64 MINSD semantics: NaN or equal -> second operand
        c = self.ctx.cmp(a, b)
        if c is None or c == 0:
            return b
        return a if c < 0 else b

    def max(self, a: BF, b: BF) -> BF:
        c = self.ctx.cmp(a, b)
        if c is None or c == 0:
            return b
        return a if c > 0 else b

    def sin(self, a: BF) -> BF:
        return T.bf_sin(self.ctx, a)

    def cos(self, a: BF) -> BF:
        return T.bf_cos(self.ctx, a)

    def tan(self, a: BF) -> BF:
        return T.bf_tan(self.ctx, a)

    def asin(self, a: BF) -> BF:
        return T.bf_asin(self.ctx, a)

    def acos(self, a: BF) -> BF:
        return T.bf_acos(self.ctx, a)

    def atan(self, a: BF) -> BF:
        return T.bf_atan(self.ctx, a)

    def atan2(self, a: BF, b: BF) -> BF:
        return T.bf_atan2(self.ctx, a, b)

    def exp(self, a: BF) -> BF:
        return T.bf_exp(self.ctx, a)

    def log(self, a: BF) -> BF:
        return T.bf_log(self.ctx, a)

    def log2(self, a: BF) -> BF:
        return T.bf_log2(self.ctx, a)

    def log10(self, a: BF) -> BF:
        return T.bf_log10(self.ctx, a)

    def pow(self, a: BF, b: BF) -> BF:
        return T.bf_pow(self.ctx, a, b)

    def fmod(self, a: BF, b: BF) -> BF:
        return T.bf_fmod(self.ctx, a, b)

    # -------------------------- conversions --------------------------- #

    def from_f64_bits(self, bits: int) -> BF:
        if is_nan64(bits):
            return self.ctx.nan()
        exp_field = bits & 0x7FF0_0000_0000_0000
        if exp_field == 0x7FF0_0000_0000_0000:
            return self.ctx.inf(1 if bits >> 63 else 0)
        s, m, e = decompose64(bits)
        if m == 0:
            return self.ctx.zero(s)
        return self.ctx.round_mant(s, m, e)

    def to_f64_bits(self, a: BF) -> int:
        if a.kind == NAN:
            return F64_DEFAULT_QNAN
        return f64_to_bits(a.to_float())

    def from_i64(self, i: int) -> BF:
        if i >= 1 << 63:
            i -= 1 << 64
        return self.ctx.from_int(i)

    def from_i32(self, i: int) -> BF:
        if i >= 1 << 31:
            i -= 1 << 32
        return self.ctx.from_int(i)

    def to_i64(self, a: BF, truncate: bool) -> int:
        v = self.ctx.to_int(a, "trunc" if truncate else "nearest")
        if v is None or not (-(1 << 63) <= v < (1 << 63)):
            return _I64_INDEFINITE
        return v & ((1 << 64) - 1)

    def to_i32(self, a: BF, truncate: bool) -> int:
        v = self.ctx.to_int(a, "trunc" if truncate else "nearest")
        if v is None or not (-(1 << 31) <= v < (1 << 31)):
            return _I32_INDEFINITE
        return v & ((1 << 32) - 1)

    def from_f32_bits(self, bits: int) -> BF:
        return self.ctx.from_float(bits_to_f32(bits))

    def to_f32_bits(self, a: BF) -> int:
        return f32_to_bits(a.to_float())

    def round_to_integral(self, a: BF, mode: int) -> BF:
        return self.ctx.round_to_integral(a, mode)

    def to_decimal_str(self, a: BF, precision: int | None = None) -> str:
        return self.ctx.to_decimal_str(a, precision)

    # -------------------------- comparisons --------------------------- #

    def compare(self, a: BF, b: BF) -> Ordering:
        c = self.ctx.cmp(a, b)
        if c is None:
            return Ordering.UNORDERED
        if c < 0:
            return Ordering.LT
        if c > 0:
            return Ordering.GT
        return Ordering.EQ

    def is_nan(self, a: BF) -> bool:
        return a.kind == NAN

    def is_zero(self, a: BF) -> bool:
        return a.kind == ZERO

    def is_negative(self, a: BF) -> bool:
        return bool(a.sign) and a.kind != NAN

    # -------------------------- cost model ---------------------------- #

    def op_cycles(self, op: str) -> int:
        return self._costs.get(op, self._costs["mul"])
