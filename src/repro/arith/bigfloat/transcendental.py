"""Transcendental functions for bigfloat via fixed-point integer series.

Strategy (classic arbitrary-precision recipe):

* work at ``w = prec + 32`` guard bits in fixed point (an int ``X``
  represents ``X / 2**w``),
* reduce the argument into a small interval (``exp``: subtract
  ``n*ln2``; ``sin``/``cos``: subtract ``q*pi/2`` with extra reduction
  precision to absorb cancellation; ``log``: normalize the mantissa
  into [1,2); ``atan``: reciprocal + repeated halving),
* evaluate a fast-converging Taylor/atanh series with integer ops,
* round once into the destination context with the sticky bit set
  (faithful rounding — see the package docstring for the deviation
  from MPFR's correctly rounded transcendentals).

Constants (ln2, ln10, pi) are computed on demand at the needed fixed
precision and memoized.
"""

from __future__ import annotations

import math

from repro.arith.bigfloat.number import (
    BF,
    FINITE,
    INF,
    NAN,
    ZERO,
    BigFloatContext,
)

_GUARD = 32

#: cache: (name, w) -> fixed-point integer at scale 2**w
_CONSTS: dict[tuple[str, int], int] = {}


# --------------------------------------------------------------------------- #
# fixed-point constants                                                        #
# --------------------------------------------------------------------------- #

def _atanh_inv_fixed(x: int, w: int) -> int:
    """atanh(1/x) * 2^w for integer x >= 2."""
    g = w + 16
    t = (1 << g) // x
    x2 = x * x
    acc = t
    k = 1
    while t:
        t //= x2
        if not t:
            break
        acc += t // (2 * k + 1)
        k += 1
    return acc >> 16


def _atan_inv_fixed(x: int, w: int) -> int:
    """atan(1/x) * 2^w for integer x >= 2 (alternating series)."""
    g = w + 16
    t = (1 << g) // x
    x2 = x * x
    acc = t
    k = 1
    while t:
        t //= x2
        if not t:
            break
        term = t // (2 * k + 1)
        acc += -term if k % 2 else term
        k += 1
    return acc >> 16


def ln2_fixed(w: int) -> int:
    key = ("ln2", w)
    v = _CONSTS.get(key)
    if v is None:
        v = 2 * _atanh_inv_fixed(3, w)  # ln2 = 2 atanh(1/3)
        _CONSTS[key] = v
    return v


def ln10_fixed(w: int) -> int:
    key = ("ln10", w)
    v = _CONSTS.get(key)
    if v is None:
        # ln10 = ln(1.25) + 3 ln2 ; ln(1.25) = 2 atanh(1/9)
        v = 2 * _atanh_inv_fixed(9, w) + 3 * ln2_fixed(w)
        _CONSTS[key] = v
    return v


def pi_fixed(w: int) -> int:
    key = ("pi", w)
    v = _CONSTS.get(key)
    if v is None:
        # Machin: pi = 16 atan(1/5) - 4 atan(1/239)
        v = 16 * _atan_inv_fixed(5, w) - 4 * _atan_inv_fixed(239, w)
        _CONSTS[key] = v
    return v


# --------------------------------------------------------------------------- #
# fixed-point kernels                                                          #
# --------------------------------------------------------------------------- #

def _exp_series(r: int, w: int) -> int:
    """e^(r/2^w) * 2^w for |r| <= ~0.37 * 2^w."""
    acc = term = 1 << w
    k = 1
    while term:
        term = (term * r) >> w
        term = term // k if term >= 0 else -((-term) // k)
        acc += term
        k += 1
        if k > 10_000:  # pragma: no cover - defensive
            break
    return acc


def _ln_series(y: int, w: int) -> int:
    """ln(y/2^w) * 2^w for y in [2^w, 2^(w+1)) (mantissa in [1,2))."""
    one = 1 << w
    z = ((y - one) << w) // (y + one)
    z2 = (z * z) >> w
    t = z
    acc = z
    k = 1
    while t:
        t = (t * z2) >> w
        if not t:
            break
        acc += t // (2 * k + 1)
        k += 1
    return 2 * acc


def _sin_series(r: int, w: int) -> int:
    """sin(r/2^w) * 2^w for |r| <= ~0.8 * 2^w."""
    acc = term = r
    k = 1
    r2 = (r * r) >> w
    while term:
        term = (term * r2) >> w
        d = (2 * k) * (2 * k + 1)
        term = term // d if term >= 0 else -((-term) // d)
        term = -term
        acc += term
        k += 1
    return acc


def _cos_series(r: int, w: int) -> int:
    """cos(r/2^w) * 2^w for |r| <= ~0.8 * 2^w."""
    acc = term = 1 << w
    k = 1
    r2 = (r * r) >> w
    while term:
        term = (term * r2) >> w
        d = (2 * k - 1) * (2 * k)
        term = term // d if term >= 0 else -((-term) // d)
        term = -term
        acc += term
        k += 1
    return acc


def _atan_series(z: int, w: int) -> int:
    """atan(z/2^w) * 2^w for |z| <= ~2^-3 * 2^w."""
    z2 = (z * z) >> w
    t = z
    acc = z
    k = 1
    while t:
        t = (t * z2) >> w
        if not t:
            break
        term = t // (2 * k + 1)
        acc += -term if k % 2 else term
        k += 1
    return acc


def _sqrt_fixed(f: int, w: int) -> int:
    """sqrt(f/2^w) * 2^w (f >= 0)."""
    return math.isqrt(f << w)


# --------------------------------------------------------------------------- #
# BF <-> fixed-point plumbing                                                  #
# --------------------------------------------------------------------------- #

def _to_fixed(a: BF, w: int) -> int:
    """Signed fixed-point integer ≈ value(a) * 2^w (a finite)."""
    if a.kind == ZERO:
        return 0
    shift = a.exp + w
    mag = a.mant << shift if shift >= 0 else a.mant >> -shift
    return -mag if a.sign else mag


def _from_fixed(ctx: BigFloatContext, v: int, w: int) -> BF:
    if v == 0:
        return ctx.zero()
    return ctx.round_mant(1 if v < 0 else 0, abs(v), -w, sticky=True)


def _too_big(a: BF, limit_log2: int = 40) -> bool:
    """Magnitude exceeds 2^limit — out of sane transcendental range."""
    return a.kind == FINITE and (a.exp + a.mant.bit_length()) > limit_log2


# --------------------------------------------------------------------------- #
# public functions                                                             #
# --------------------------------------------------------------------------- #

def bf_exp(ctx: BigFloatContext, a: BF) -> BF:
    if a.kind == NAN:
        return ctx.nan()
    if a.kind == INF:
        return ctx.zero() if a.sign else ctx.inf()
    if a.kind == ZERO:
        return ctx.from_int(1)
    if _too_big(a):
        return ctx.zero() if a.sign else ctx.inf()
    w = ctx.prec + _GUARD
    x = _to_fixed(a, w)
    ln2 = ln2_fixed(w)
    n = (2 * x + ln2) // (2 * ln2)  # round(x / ln2)
    r = x - n * ln2
    e = _exp_series(r, w)
    return ctx.round_mant(0, e, int(n) - w, sticky=True)


def bf_log(ctx: BigFloatContext, a: BF, base_const=None) -> BF:
    if a.kind == NAN or a.sign and a.kind != ZERO:
        return ctx.nan()
    if a.kind == ZERO:
        return ctx.inf(1)
    if a.kind == INF:
        return ctx.inf(0)
    w = ctx.prec + _GUARD
    bl = a.mant.bit_length()
    scale = a.exp + bl - 1  # value = y * 2^scale, y in [1,2)
    y = (a.mant << (w + 1)) >> bl  # y * 2^w
    lnm = _ln_series(y, w)
    total = scale * ln2_fixed(w) + lnm
    if base_const is not None:
        total = (total << w) // base_const(w)
    return _from_fixed(ctx, total, w)


def bf_log2(ctx: BigFloatContext, a: BF) -> BF:
    return bf_log(ctx, a, base_const=ln2_fixed)


def bf_log10(ctx: BigFloatContext, a: BF) -> BF:
    return bf_log(ctx, a, base_const=ln10_fixed)


def _sincos_reduced(ctx: BigFloatContext, a: BF) -> tuple[int, int, int]:
    """Reduce |a| mod pi/2: returns (quadrant, r_fixed, w).

    Reduction is done at ``w + magnitude`` bits so cancellation against
    q*pi/2 leaves at least w good bits.
    """
    w = ctx.prec + _GUARD
    mag = max(0, a.exp + a.mant.bit_length())
    wr = w + mag + 8
    x = _to_fixed(a, wr)
    pi2 = pi_fixed(wr) // 2
    q = (2 * x + pi2) // (2 * pi2)  # round(x / (pi/2))
    r = x - q * pi2
    return int(q) & 3, r >> (wr - w), w


def bf_sin(ctx: BigFloatContext, a: BF) -> BF:
    if a.kind == NAN or a.kind == INF or _too_big(a):
        return ctx.nan() if a.kind != ZERO else a
    if a.kind == ZERO:
        return a
    q, r, w = _sincos_reduced(ctx, a)
    if q == 0:
        v = _sin_series(r, w)
    elif q == 1:
        v = _cos_series(r, w)
    elif q == 2:
        v = -_sin_series(r, w)
    else:
        v = -_cos_series(r, w)
    return _from_fixed(ctx, v, w)


def bf_cos(ctx: BigFloatContext, a: BF) -> BF:
    if a.kind == NAN or a.kind == INF or _too_big(a):
        return ctx.nan()
    if a.kind == ZERO:
        return ctx.from_int(1)
    q, r, w = _sincos_reduced(ctx, a)
    if q == 0:
        v = _cos_series(r, w)
    elif q == 1:
        v = -_sin_series(r, w)
    elif q == 2:
        v = -_cos_series(r, w)
    else:
        v = _sin_series(r, w)
    return _from_fixed(ctx, v, w)


def bf_tan(ctx: BigFloatContext, a: BF) -> BF:
    if a.kind == NAN or a.kind == INF or _too_big(a):
        return ctx.nan()
    if a.kind == ZERO:
        return a
    q, r, w = _sincos_reduced(ctx, a)
    s, c = _sin_series(r, w), _cos_series(r, w)
    if q in (1, 3):
        s, c = c, -s
    if c == 0:
        return ctx.inf(1 if s < 0 else 0)
    # floor division costs at most one guard-level ulp: absorbed by
    # the sticky (faithful) rounding in _from_fixed
    return _from_fixed(ctx, (s << w) // c, w)


def bf_atan(ctx: BigFloatContext, a: BF) -> BF:
    if a.kind == NAN:
        return ctx.nan()
    w = ctx.prec + _GUARD
    pi2 = pi_fixed(w) // 2
    if a.kind == INF:
        return _from_fixed(ctx, -pi2 if a.sign else pi2, w)
    if a.kind == ZERO:
        return a
    # |x| > 1: atan(x) = sign * (pi/2 - atan(1/|x|))
    big = (a.exp + a.mant.bit_length()) > 0
    x = _to_fixed(ctx.abs(a), w)
    if big:
        x = (1 << (2 * w)) // x
    # repeated halving until |x| < 2^(w-3)
    k = 0
    one = 1 << w
    while x >= (one >> 3):
        s = _sqrt_fixed(one + ((x * x) >> w), w)
        x = (x << w) // (one + s)
        k += 1
        if k > 80:  # pragma: no cover - defensive
            break
    v = _atan_series(x, w) << k
    if big:
        v = pi2 - v
    if a.sign:
        v = -v
    return _from_fixed(ctx, v, w)


def bf_asin(ctx: BigFloatContext, a: BF) -> BF:
    if a.kind == NAN or a.kind == INF:
        return ctx.nan()
    if a.kind == ZERO:
        return a
    c = ctx.cmp(ctx.abs(a), ctx.from_int(1))
    if c is not None and c > 0:
        return ctx.nan()
    if c == 0:
        w = ctx.prec + _GUARD
        v = pi_fixed(w) // 2
        return _from_fixed(ctx, -v if a.sign else v, w)
    # asin(x) = atan(x / sqrt(1 - x^2))
    wctx = BigFloatContext(ctx.prec + _GUARD)
    x2 = wctx.mul(a, a)
    denom = wctx.sqrt(wctx.sub(wctx.from_int(1), x2))
    return bf_atan(ctx, wctx.div(a, denom))


def bf_acos(ctx: BigFloatContext, a: BF) -> BF:
    if a.kind == NAN or a.kind == INF:
        return ctx.nan()
    c = ctx.cmp(ctx.abs(a), ctx.from_int(1))
    if c is not None and c > 0:
        return ctx.nan()
    w = ctx.prec + _GUARD
    if c == 0:  # acos(1) = +0 exactly; acos(-1) = pi
        if a.sign:
            return _from_fixed(ctx, pi_fixed(w), w)
        return ctx.zero(0)
    wctx = BigFloatContext(w)
    asin = bf_asin(wctx, a)
    pi2 = _from_fixed(wctx, pi_fixed(w) // 2, w)
    return _narrow(ctx, wctx.sub(pi2, asin))


def bf_atan2(ctx: BigFloatContext, y: BF, x: BF) -> BF:
    if y.kind == NAN or x.kind == NAN:
        return ctx.nan()
    w = ctx.prec + _GUARD
    pi = pi_fixed(w)
    if x.kind == ZERO and y.kind == ZERO:
        # C atan2: atan2(±0, +0) = ±0; atan2(±0, -0) = ±pi
        if not x.sign:
            return y
        return _from_fixed(ctx, -pi if y.sign else pi, w)
    if y.kind == ZERO:
        if x.sign:
            return _from_fixed(ctx, -pi if y.sign else pi, w)
        return y
    if x.kind == ZERO:
        v = pi // 2
        return _from_fixed(ctx, -v if y.sign else v, w)
    if x.kind == INF or y.kind == INF:
        if x.kind == INF and y.kind == INF:
            v = pi // 4 if not x.sign else 3 * pi // 4
        elif y.kind == INF:
            v = pi // 2
        elif x.sign:  # finite y, x = -inf
            v = pi
        else:  # finite y, x = +inf
            return ctx.zero(y.sign)
        return _from_fixed(ctx, -v if y.sign else v, w)
    wctx = BigFloatContext(w)
    base = bf_atan(wctx, wctx.div(y, x))
    if x.sign:  # shift into the correct half-plane
        piv = _from_fixed(wctx, pi, w)
        base = wctx.add(base, piv) if not y.sign else wctx.sub(base, piv)
    return _narrow(ctx, base)


def bf_pow(ctx: BigFloatContext, a: BF, b: BF) -> BF:
    if a.kind == NAN or b.kind == NAN:
        if b.kind == ZERO:
            return ctx.from_int(1)
        return ctx.nan()
    if b.kind == ZERO:
        return ctx.from_int(1)
    one = ctx.from_int(1)
    if a.kind == ZERO:
        if b.sign:
            return ctx.inf(0)
        return ctx.zero(0)
    if ctx.cmp(a, one) == 0 and a.sign == 0:
        return one
    wctx = BigFloatContext(ctx.prec + _GUARD)
    bi = wctx.to_int(b, "trunc")
    is_int_b = (b.kind != INF and bi is not None
                and wctx.cmp(b, wctx.from_int(bi)) == 0)
    if is_int_b and abs(bi) <= (1 << 20):
        # exact repeated squaring at working precision
        r = wctx.from_int(1)
        base = a
        n = abs(bi)
        while n:
            if n & 1:
                r = wctx.mul(r, base)
            base = wctx.mul(base, base)
            n >>= 1
        if bi < 0:
            r = wctx.div(wctx.from_int(1), r)
        return _narrow(ctx, r)
    if a.sign:
        return ctx.nan()  # negative base, non-integer exponent
    if a.kind == INF or b.kind == INF:
        mag_gt1 = a.kind == INF or ctx.cmp(ctx.abs(a), one) > 0
        b_pos = not b.sign
        if mag_gt1 == b_pos:
            return ctx.inf(0)
        return ctx.zero(0)
    return bf_exp(ctx, wctx.mul(b, bf_log(wctx, a)))


def bf_fmod(ctx: BigFloatContext, a: BF, b: BF) -> BF:
    """C fmod: a - trunc(a/b)*b, computed exactly."""
    if a.kind == NAN or b.kind == NAN or a.kind == INF or b.kind == ZERO:
        return ctx.nan()
    if a.kind == ZERO or b.kind == INF:
        return a
    e = min(a.exp, b.exp)
    if max(a.exp, b.exp) - e > (1 << 22):
        return ctx.nan()  # pathological exponent gap
    am = a.mant << (a.exp - e)
    bm = b.mant << (b.exp - e)
    r = am % bm
    if r == 0:
        return ctx.zero(a.sign)
    return ctx.round_mant(a.sign, r, e)


def _narrow(ctx: BigFloatContext, a: BF) -> BF:
    """Round a wider-precision BF into ``ctx`` (sticky: faithful)."""
    if a.kind != FINITE:
        return BF(a.kind, a.sign, 0, 0, ctx.prec)
    return ctx.round_mant(a.sign, a.mant, a.exp, sticky=True)
