"""The BF value type and the core correctly rounded arithmetic.

A finite nonzero ``BF`` is ``(-1)**sign * mant * 2**exp`` where
``mant`` always has exactly ``prec`` bits (normalized: its top bit is
set).  Zeros keep a sign (IEEE-style); infinities and NaN are kinded
specials.  The exponent is an unbounded Python int — like MPFR, there
is no overflow/underflow in the representation itself (MPFR's
exponent is a 64-bit integer; ours is unbounded, a strict superset).

Rounding: all core operations compute an exact (or
guard+sticky-truncated) integer result and round once with
round-to-nearest-even; directed modes (toward zero / ±inf) are also
supported for completeness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ieee.bits import decompose64, f64_to_bits

# kinds
FINITE = 0
ZERO = 1
INF = 2
NAN = 3

# rounding modes (MPFR naming)
RNDN = "RNDN"  # nearest, ties to even
RNDZ = "RNDZ"  # toward zero
RNDU = "RNDU"  # toward +inf
RNDD = "RNDD"  # toward -inf


@dataclass(frozen=True, slots=True)
class BF:
    """An immutable arbitrary-precision binary float value."""

    kind: int
    sign: int      # 0 positive, 1 negative (meaningful for ZERO/INF too)
    mant: int      # normalized, exactly prec bits (FINITE only)
    exp: int       # value = mant * 2**exp (FINITE only)
    prec: int      # precision this value was rounded to
    #: MPFR-style ternary: sign of (stored - exact) for the rounding
    #: that produced this value; 0 when exact.  Lets to_float avoid
    #: double rounding into the binary64 subnormal range
    #: (mpfr_subnormalize needs the same side information).
    ternary: int = field(default=0, compare=False)

    # ------------------------------------------------------------------ #
    @property
    def is_nan(self) -> bool:
        return self.kind == NAN

    @property
    def is_inf(self) -> bool:
        return self.kind == INF

    @property
    def is_zero(self) -> bool:
        return self.kind == ZERO

    @property
    def is_finite(self) -> bool:
        return self.kind in (FINITE, ZERO)

    def signed_mant(self) -> int:
        return -self.mant if self.sign else self.mant

    def to_float(self) -> float:
        """Nearest binary64 (RNE), overflow to ±inf.

        Rounds exactly once, in integer arithmetic, at the target
        precision — 53 bits for normal results, fewer inside the
        subnormal range — then scales with an exact ldexp.  Double
        rounding can only go wrong when the stored value sits exactly
        on a tie of the coarser grid (the first rounding erred by
        < 1/2 stored-ulp, which is under the tie distance everywhere
        else); the stored ternary says which side the exact value is
        on, so we break those ties toward it (mpfr_subnormalize).
        """
        if self.kind == NAN:
            return math.nan
        if self.kind == INF:
            return -math.inf if self.sign else math.inf
        if self.kind == ZERO:
            return -0.0 if self.sign else 0.0
        m, e = self.mant, self.exp
        msb = e + m.bit_length() - 1
        if msb >= -1022:
            excess = m.bit_length() - 53     # normal: 53-bit target
        else:
            excess = -1074 - e               # subnormal: fixed ulp 2^-1074
        if excess > 0:
            dropped = m & ((1 << excess) - 1)
            m >>= excess
            e += excess
            half = 1 << (excess - 1)
            if dropped > half:
                m += 1
            elif dropped == half:
                mag_t = -self.ternary if self.sign else self.ternary
                if mag_t < 0:                # stored < exact: true value
                    m += 1                   # is above the tie point
                elif mag_t == 0 and (m & 1):
                    m += 1                   # genuine tie: ties-to-even
                # mag_t > 0: exact below the tie point — round down
        try:
            v = math.ldexp(float(m), e)
        except OverflowError:
            v = math.inf
        return -v if self.sign else v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.kind == NAN:
            return "BF(nan)"
        if self.kind == INF:
            return f"BF({'-' if self.sign else '+'}inf)"
        if self.kind == ZERO:
            return f"BF({'-' if self.sign else '+'}0)"
        return f"BF({'-' if self.sign else ''}{self.mant}*2^{self.exp})"


def _nan(prec: int) -> BF:
    return BF(NAN, 0, 0, 0, prec)


def _inf(sign: int, prec: int) -> BF:
    return BF(INF, sign, 0, 0, prec)


def _zero(sign: int, prec: int) -> BF:
    return BF(ZERO, sign, 0, 0, prec)


class BigFloatContext:
    """Arithmetic at a fixed precision and rounding mode (MPFR-style)."""

    def __init__(self, precision: int = 200, rounding: str = RNDN) -> None:
        if precision < 2:
            raise ValueError("precision must be at least 2 bits")
        if rounding not in (RNDN, RNDZ, RNDU, RNDD):
            raise ValueError(f"unknown rounding mode {rounding!r}")
        self.prec = precision
        self.rounding = rounding

    # ------------------------------------------------------------------ #
    # construction / rounding                                             #
    # ------------------------------------------------------------------ #

    def nan(self) -> BF:
        return _nan(self.prec)

    def inf(self, sign: int = 0) -> BF:
        return _inf(sign, self.prec)

    def zero(self, sign: int = 0) -> BF:
        return _zero(sign, self.prec)

    def round_mant(self, sign: int, m: int, e: int,
                   sticky: bool = False) -> BF:
        """Round ``(-1)**sign * m * 2**e`` (m > 0 exact unless ``sticky``)
        to context precision.  ``sticky`` means bits beyond ``m`` were
        already dropped (all-zero iff sticky is False)."""
        if m == 0:
            return _zero(sign, self.prec)
        nb = m.bit_length()
        excess = nb - self.prec
        if excess <= 0:
            if sticky:
                # pad 2 bits then re-round: the sticky bit lands well
                # below the rounding position, so it can never fake a tie
                m = (m << (-excess + 2)) | 1
                e += excess - 2
                return self.round_mant(sign, m, e, sticky=False)
            return BF(FINITE, sign, m << -excess, e + excess, self.prec)
        dropped = m & ((1 << excess) - 1)
        m >>= excess
        e += excess
        ternary = 0
        if dropped != 0 or sticky:
            mode = self.rounding
            up = False
            if mode == RNDN:
                half = 1 << (excess - 1)
                if dropped > half or (
                    dropped == half and (sticky or (m & 1))
                ):
                    up = True
            elif mode == RNDU and not sign:
                up = True
            elif mode == RNDD and sign:
                up = True
            # RNDZ truncates: nothing to do
            if up:
                m += 1
                if m == (1 << self.prec):
                    m >>= 1
                    e += 1
            # magnitude moved up or down; express as sign of stored-exact
            mag_t = 1 if up else -1
            ternary = -mag_t if sign else mag_t
        return BF(FINITE, sign, m, e, self.prec, ternary)

    # ------------------------------------------------------------------ #
    # conversions in                                                      #
    # ------------------------------------------------------------------ #

    def from_float(self, x: float) -> BF:
        if math.isnan(x):
            return self.nan()
        if math.isinf(x):
            return self.inf(1 if x < 0 else 0)
        if x == 0.0:
            return self.zero(1 if math.copysign(1.0, x) < 0 else 0)
        s, m, e = decompose64(f64_to_bits(x))
        return self.round_mant(s, m, e)

    def from_int(self, i: int) -> BF:
        if i == 0:
            return self.zero()
        return self.round_mant(1 if i < 0 else 0, abs(i), 0)

    def from_mant_exp(self, sign: int, mant: int, exp: int) -> BF:
        return self.round_mant(sign, mant, exp)

    # ------------------------------------------------------------------ #
    # basic arithmetic                                                    #
    # ------------------------------------------------------------------ #

    def add(self, a: BF, b: BF) -> BF:
        if a.kind == NAN or b.kind == NAN:
            return self.nan()
        if a.kind == INF or b.kind == INF:
            if a.kind == INF and b.kind == INF and a.sign != b.sign:
                return self.nan()
            return self.inf(a.sign if a.kind == INF else b.sign)
        if a.kind == ZERO and b.kind == ZERO:
            if a.sign and b.sign:
                return self.zero(1)
            if self.rounding == RNDD and (a.sign or b.sign):
                return self.zero(1)
            return self.zero(0)
        if a.kind == ZERO:
            return self.round_mant(b.sign, b.mant, b.exp)
        if b.kind == ZERO:
            return self.round_mant(a.sign, a.mant, a.exp)
        sa, ea = a.signed_mant(), a.exp
        sb, eb = b.signed_mant(), b.exp
        # cap the alignment: the far-smaller operand only contributes a
        # sticky bit (prevents astronomically wide integers)
        gap = abs(ea - eb)
        cap = max(a.mant.bit_length(), b.mant.bit_length()) + self.prec + 4
        sticky = False
        if gap > cap:
            if ea > eb:
                sb = (1 if sb > 0 else -1)
                eb = ea - cap
                sticky = True
            else:
                sa = (1 if sa > 0 else -1)
                ea = eb - cap
                sticky = True
        e = min(ea, eb)
        total = (sa << (ea - e)) + (sb << (eb - e))
        if total == 0:
            if sticky:
                # cancellation to the sticky bit cannot actually happen
                # (the small operand is far below the large one)
                pass
            sign = 1 if (self.rounding == RNDD) else 0
            return self.zero(sign if not sticky else 0)
        return self.round_mant(1 if total < 0 else 0, abs(total), e,
                               sticky=sticky)

    def sub(self, a: BF, b: BF) -> BF:
        return self.add(a, self.neg(b))

    def neg(self, a: BF) -> BF:
        if a.kind == NAN:
            return a
        return BF(a.kind, a.sign ^ 1, a.mant, a.exp, a.prec, -a.ternary)

    def abs(self, a: BF) -> BF:
        if a.kind == NAN:
            return a
        return BF(a.kind, 0, a.mant, a.exp, a.prec,
                  -a.ternary if a.sign else a.ternary)

    def mul(self, a: BF, b: BF) -> BF:
        if a.kind == NAN or b.kind == NAN:
            return self.nan()
        sign = a.sign ^ b.sign
        if a.kind == INF or b.kind == INF:
            if a.kind == ZERO or b.kind == ZERO:
                return self.nan()
            return self.inf(sign)
        if a.kind == ZERO or b.kind == ZERO:
            return self.zero(sign)
        return self.round_mant(sign, a.mant * b.mant, a.exp + b.exp)

    def div(self, a: BF, b: BF) -> BF:
        if a.kind == NAN or b.kind == NAN:
            return self.nan()
        sign = a.sign ^ b.sign
        if a.kind == INF:
            return self.nan() if b.kind == INF else self.inf(sign)
        if b.kind == INF:
            return self.zero(sign)
        if b.kind == ZERO:
            return self.nan() if a.kind == ZERO else self.inf(sign)
        if a.kind == ZERO:
            return self.zero(sign)
        shift = self.prec + 2
        q, r = divmod(a.mant << shift, b.mant)
        return self.round_mant(sign, q, a.exp - b.exp - shift,
                               sticky=r != 0)

    def sqrt(self, a: BF) -> BF:
        if a.kind == NAN:
            return a
        if a.kind == ZERO:
            return a  # sqrt(±0) = ±0
        if a.sign:
            return self.nan()
        if a.kind == INF:
            return self.inf(0)
        m, e = a.mant, a.exp
        # want ~2*(prec+2) significant bits under the square root
        shift = 2 * (self.prec + 2) - m.bit_length()
        if shift < 0:
            shift = 0
        if (e - shift) % 2:
            shift += 1
        m <<= shift
        e -= shift
        r = math.isqrt(m)
        sticky = r * r != m
        return self.round_mant(0, r, e // 2, sticky=sticky)

    def fma(self, a: BF, b: BF, c: BF) -> BF:
        """a*b + c with a single rounding."""
        if a.kind == NAN or b.kind == NAN or c.kind == NAN:
            return self.nan()
        psign = a.sign ^ b.sign
        if a.kind == INF or b.kind == INF:
            if a.kind == ZERO or b.kind == ZERO:
                return self.nan()
            if c.kind == INF and c.sign != psign:
                return self.nan()
            return self.inf(psign)
        if c.kind == INF:
            return self.inf(c.sign)
        if a.kind == ZERO or b.kind == ZERO:
            return self.round_mant(c.sign, c.mant, c.exp) \
                if c.kind == FINITE else self.zero(
                    psign & c.sign if c.kind == ZERO else c.sign)
        pm = a.mant * b.mant
        pe = a.exp + b.exp
        prod = BF(FINITE, psign, pm, pe, pm.bit_length())
        if c.kind == ZERO:
            return self.round_mant(psign, pm, pe)
        return self.add(prod, c)

    # ------------------------------------------------------------------ #
    # comparison                                                          #
    # ------------------------------------------------------------------ #

    def cmp(self, a: BF, b: BF) -> int | None:
        """-1/0/+1, or None if unordered (±0 compare equal)."""
        if a.kind == NAN or b.kind == NAN:
            return None
        if a.kind == ZERO and b.kind == ZERO:
            return 0
        if a.kind == ZERO:
            return 1 if b.sign else -1
        if b.kind == ZERO:
            return -1 if a.sign else 1
        if a.sign != b.sign:
            return -1 if a.sign else 1
        # same sign; compare magnitudes (INF is the largest magnitude)
        if a.kind == INF or b.kind == INF:
            if a.kind == b.kind:
                return 0
            mag = 1 if a.kind == INF else -1
        else:
            sa = a.exp + a.mant.bit_length()
            sb = b.exp + b.mant.bit_length()
            if sa != sb:
                mag = 1 if sa > sb else -1
            else:
                e = min(a.exp, b.exp)
                ma = a.mant << (a.exp - e)
                mb = b.mant << (b.exp - e)
                mag = (ma > mb) - (ma < mb)
        return -mag if a.sign else mag

    def cmp_total(self, a: BF, b: BF) -> int:
        """Total order used internally (NaN greatest)."""
        c = self.cmp(a, b)
        if c is not None:
            return c
        if a.kind == NAN and b.kind == NAN:
            return 0
        return 1 if a.kind == NAN else -1

    # ------------------------------------------------------------------ #
    # integral conversions / rounding to integer                          #
    # ------------------------------------------------------------------ #

    def to_int(self, a: BF, mode: str = "trunc") -> int | None:
        """Exact integer conversion; None for NaN/Inf."""
        if a.kind in (NAN, INF):
            return None
        if a.kind == ZERO:
            return 0
        m, e = a.mant, a.exp
        if e >= 0:
            v = m << e
        else:
            whole = m >> -e
            frac = m & ((1 << -e) - 1)
            if mode == "trunc" or frac == 0:
                v = whole
            elif mode == "nearest":
                half = 1 << (-e - 1)
                if frac > half or (frac == half and (whole & 1)):
                    whole += 1
                v = whole
            elif mode == "floor":
                v = whole if not a.sign else whole + (1 if frac else 0)
            elif mode == "ceil":
                v = whole + (1 if frac and not a.sign else 0)
            else:  # pragma: no cover
                raise ValueError(mode)
        return -v if a.sign else v

    def round_to_integral(self, a: BF, mode: int) -> BF:
        """ROUNDSD-compatible: 0=nearest-even 1=floor 2=ceil 3=trunc."""
        if a.kind in (NAN, INF, ZERO):
            return a
        names = {0: "nearest", 1: "floor", 2: "ceil", 3: "trunc"}
        i = self.to_int(a, names[mode])
        if i == 0:
            return self.zero(a.sign)
        return self.from_int(i)

    # ------------------------------------------------------------------ #
    # decimal rendering                                                   #
    # ------------------------------------------------------------------ #

    def to_decimal_str(self, a: BF, digits: int | None = None) -> str:
        """Scientific-notation decimal rendering with ``digits``
        significant digits (default: full precision, ~prec*log10(2))."""
        if a.kind == NAN:
            return "nan"
        if a.kind == INF:
            return "-inf" if a.sign else "inf"
        if a.kind == ZERO:
            return "-0" if a.sign else "0"
        if digits is None:
            digits = max(2, int(self.prec * 0.30103) + 1)
        m, e = a.mant, a.exp
        # decimal exponent estimate
        log10 = (e + m.bit_length() - 1) * 0.3010299956639812
        d10 = int(math.floor(log10))
        # compute m * 2^e * 10^(digits-1-d10) as an integer (rounded)
        k = digits - 1 - d10
        if k >= 0:
            num = m * (10 ** k)
            scaled = num << e if e >= 0 else _div_round(num, 1 << -e)
        else:
            den = 10 ** -k
            if e >= 0:
                scaled = _div_round(m << e, den)
            else:
                scaled = _div_round(m, den << -e)
        s = str(scaled)
        # normalize digit count drift from the log10 estimate
        while len(s) > digits:
            scaled = _div_round(scaled, 10)
            d10 += 1
            s = str(scaled)
        while len(s) < digits:
            scaled *= 10
            d10 -= 1
            s = str(scaled)
        sign = "-" if a.sign else ""
        if len(s) == 1:
            body = s
        else:
            body = s[0] + "." + s[1:]
        return f"{sign}{body}e{d10:+03d}"


def _div_round(num: int, den: int) -> int:
    """Round-half-even integer division."""
    q, r = divmod(num, den)
    if 2 * r > den or (2 * r == den and q & 1):
        q += 1
    return q
