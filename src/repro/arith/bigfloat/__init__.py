"""bigfloat — a from-scratch arbitrary-precision binary float library.

This is the reproduction's GNU MPFR substitute (paper §4.3):

    "MPFR… essentially implements the IEEE floating point standard in
    software, but with dynamic runtime selectable precision.  The
    fraction can be an arbitrary number of bits long…"

* :mod:`repro.arith.bigfloat.number` — the ``BF`` value type (sign ×
  integer mantissa × power of two, plus ±0/±inf/NaN) and
  :class:`BigFloatContext`: correctly rounded (round-to-nearest-even,
  with guard/sticky on integer mantissas) add/sub/mul/div/sqrt/fma at
  any precision, conversions, comparison.
* :mod:`repro.arith.bigfloat.transcendental` — exp/log/sin/cos/tan/
  atan/… via argument reduction + fixed-point integer series at
  ``prec + 32`` guard bits (faithful rounding; MPFR's Ziv loop for
  *correct* transcendental rounding is out of scope and irrelevant to
  the paper's claims — see DESIGN.md).
* :class:`BigFloatArithmetic` — the FPVM porting adapter, with the
  precision-dependent cycle model behind Figs. 9 and 11 (calibrated to
  the paper's footnote 9: at 200 bits, add ≈ 93 … div ≈ 2175 cycles).
"""

from repro.arith.bigfloat.number import BF, BigFloatContext
from repro.arith.bigfloat.adapter import BigFloatArithmetic
from repro.arith.bigfloat.adaptive import AdaptiveBigFloatArithmetic

__all__ = ["BF", "BigFloatContext", "BigFloatArithmetic",
           "AdaptiveBigFloatArithmetic"]
