"""The alternative-arithmetic porting interface (paper §4.3).

    "FPVM includes an interface for alternative arithmetic systems to
    be plugged in… a small number (currently 37) scalar functions (the
    emulator handles vectors)… 23 of these consist of arithmetic
    operations like add, multiply, multiply-add, sin, cosine, and
    square root, etc, 10 are conversion operations, and 4 are
    comparisons."

We reproduce that exact 23 + 10 + 4 split.  Values are opaque objects
owned by the arithmetic system; FPVM stores them in the shadow store
and never inspects them.  Memory management is provided by FPVM (the
shadow store + GC), matching the paper.

Every method must be *total*: invalid inputs produce the system's NaN
value rather than raising, because the emulator sits below application
code that may legitimately compute 0/0.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from typing import Any

Value = Any  # opaque per-system value type


class Ordering(Enum):
    """Result of a floating point comparison (maps to UCOMISD flags)."""

    LT = "lt"
    EQ = "eq"
    GT = "gt"
    UNORDERED = "unordered"

    def to_rflags(self) -> tuple[int, int, int]:
        """(ZF, PF, CF) as UCOMISD/COMISD would set them."""
        return {
            Ordering.GT: (0, 0, 0),
            Ordering.LT: (0, 0, 1),
            Ordering.EQ: (1, 0, 0),
            Ordering.UNORDERED: (1, 1, 1),
        }[self]


class AlternativeArithmetic(ABC):
    """The 37-function scalar interface an arithmetic system ports to."""

    #: short identifier used in reports ("vanilla", "mpfr200", "posit32")
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # 23 arithmetic operations                                            #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def add(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def sub(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def mul(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def div(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def sqrt(self, a: Value) -> Value: ...

    @abstractmethod
    def fma(self, a: Value, b: Value, c: Value) -> Value:
        """Fused ``a*b + c`` with a single rounding."""

    @abstractmethod
    def neg(self, a: Value) -> Value: ...

    @abstractmethod
    def abs(self, a: Value) -> Value: ...

    @abstractmethod
    def min(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def max(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def sin(self, a: Value) -> Value: ...

    @abstractmethod
    def cos(self, a: Value) -> Value: ...

    @abstractmethod
    def tan(self, a: Value) -> Value: ...

    @abstractmethod
    def asin(self, a: Value) -> Value: ...

    @abstractmethod
    def acos(self, a: Value) -> Value: ...

    @abstractmethod
    def atan(self, a: Value) -> Value: ...

    @abstractmethod
    def atan2(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def exp(self, a: Value) -> Value: ...

    @abstractmethod
    def log(self, a: Value) -> Value: ...

    @abstractmethod
    def log2(self, a: Value) -> Value: ...

    @abstractmethod
    def log10(self, a: Value) -> Value: ...

    @abstractmethod
    def pow(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def fmod(self, a: Value, b: Value) -> Value: ...

    # ------------------------------------------------------------------ #
    # 10 conversion operations                                            #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def from_f64_bits(self, bits: int) -> Value:
        """Promote an IEEE binary64 bit pattern."""

    @abstractmethod
    def to_f64_bits(self, a: Value) -> int:
        """Demote to the nearest IEEE binary64 (bit pattern)."""

    @abstractmethod
    def from_i64(self, i: int) -> Value:
        """Convert a signed 64-bit integer."""

    @abstractmethod
    def from_i32(self, i: int) -> Value: ...

    @abstractmethod
    def to_i64(self, a: Value, truncate: bool) -> int:
        """Convert to signed i64 (trunc or round-half-even); returns the
        x64 *integer indefinite* (1<<63) for NaN/out-of-range."""

    @abstractmethod
    def to_i32(self, a: Value, truncate: bool) -> int: ...

    @abstractmethod
    def from_f32_bits(self, bits: int) -> Value: ...

    @abstractmethod
    def to_f32_bits(self, a: Value) -> int: ...

    @abstractmethod
    def round_to_integral(self, a: Value, mode: int) -> Value:
        """ROUNDSD modes: 0=nearest-even, 1=floor, 2=ceil, 3=trunc."""

    @abstractmethod
    def to_decimal_str(self, a: Value, precision: int | None = None) -> str:
        """Decimal rendering (drives the hijacked printf, §2)."""

    # ------------------------------------------------------------------ #
    # 4 comparison operations                                             #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def compare(self, a: Value, b: Value) -> Ordering: ...

    @abstractmethod
    def is_nan(self, a: Value) -> bool: ...

    @abstractmethod
    def is_zero(self, a: Value) -> bool: ...

    @abstractmethod
    def is_negative(self, a: Value) -> bool: ...

    # ------------------------------------------------------------------ #
    # cost-model hook (not part of the 37; feeds the Fig. 9/12 model)     #
    # ------------------------------------------------------------------ #

    def op_cycles(self, op: str) -> int:
        """Modeled cost in cycles of one scalar operation ``op``.

        Defaults to a flat estimate; systems override with measured or
        precision-dependent tables (e.g. MPFR's 93-2175 cycles at 200
        bits, paper §5.3 footnote 9).
        """
        return 50

    def describe(self) -> str:
        return self.name


#: operation names the emulator may charge via :meth:`op_cycles`
ARITH_OPS = (
    "add", "sub", "mul", "div", "sqrt", "fma", "neg", "abs", "min", "max",
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
    "exp", "log", "log2", "log10", "pow", "fmod",
)
CONVERSION_OPS = (
    "from_f64_bits", "to_f64_bits", "from_i64", "from_i32", "to_i64",
    "to_i32", "from_f32_bits", "to_f32_bits", "round_to_integral",
    "to_decimal_str",
)
COMPARISON_OPS = ("compare", "is_nan", "is_zero", "is_negative")

assert len(ARITH_OPS) == 23 and len(CONVERSION_OPS) == 10 and \
    len(COMPARISON_OPS) == 4, "interface must stay 23+10+4 (paper §4.3)"
