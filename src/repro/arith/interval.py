"""Interval arithmetic as an FPVM-pluggable system.

The paper's introduction lists interval arithmetic [29, Hickey et al.]
among the alternative representations FPVM exists to host.  This
binding turns any existing binary into a *self-verifying* computation:
every value carries rigorous lower/upper bounds, and the interval
width at the end measures the accumulated rounding uncertainty of the
whole run — error bars for free, without touching the program.

Values are ``(lo, hi)`` pairs of binary64 endpoints maintained with
*outward rounding*: since the host FPU rounds to nearest, every
endpoint computation is widened one ulp outward with
:func:`math.nextafter`, which over-approximates directed rounding and
preserves the containment invariant (tested against exact
``fractions.Fraction`` arithmetic in the property suite).

FPVM needs total functions and decisive comparisons, so:

* empty/invalid results are the NaN interval (both endpoints NaN);
* comparisons are decided by certainty where possible (disjoint
  intervals) and by midpoints when intervals overlap — the program's
  control flow then follows the most likely branch, as shadow-value
  tools do;
* demotion (``to_f64_bits``) returns the midpoint.

This file is the whole port — the same order of effort as the paper's
"roughly 350 lines" per arithmetic binding (§5.5).
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.ieee.bits import (
    F64_DEFAULT_QNAN,
    bits_to_f32,
    bits_to_f64,
    f32_to_bits,
    f64_to_bits,
    is_nan64,
)
from repro.arith.interface import AlternativeArithmetic, Ordering

_INF = math.inf
_I64_INDEFINITE = 1 << 63
_I32_INDEFINITE = 1 << 31

Interval = tuple  # (lo: float, hi: float)

NAI: Interval = (math.nan, math.nan)  # "not an interval"


def _down(x: float) -> float:
    # an overflowed +inf LOWER bound must come back down to DBL_MAX:
    # the true value may be finite-but-unrepresentable, and [inf, inf]
    # would exclude it
    if x == -_INF or math.isnan(x):
        return x
    return math.nextafter(x, -_INF)


def _up(x: float) -> float:
    if x == _INF or math.isnan(x):
        return x
    return math.nextafter(x, _INF)


def _mk(lo: float, hi: float) -> Interval:
    if math.isnan(lo) or math.isnan(hi) or lo > hi:
        return NAI
    return (lo, hi)


def _outward(lo: float, hi: float) -> Interval:
    return _mk(_down(lo), _up(hi))


def _is_nai(v: Interval) -> bool:
    return math.isnan(v[0]) or math.isnan(v[1])


def _singleton(v: Interval) -> bool:
    return v[0] == v[1]


def _mul_exact(x: float, y: float, p: float) -> bool:
    """True iff the IEEE product ``p = x*y`` is error-free."""
    if not (math.isfinite(x) and math.isfinite(y) and math.isfinite(p)):
        return False
    return Fraction(x) * Fraction(y) == Fraction(p)


def _div_exact(x: float, y: float, q: float) -> bool:
    """True iff the IEEE quotient ``q = x/y`` is error-free."""
    if y == 0.0 or not (math.isfinite(x) and math.isfinite(y)
                        and math.isfinite(q)):
        return False
    return Fraction(x) == Fraction(q) * Fraction(y)


def midpoint(v: Interval) -> float:
    if _is_nai(v):
        return math.nan
    lo, hi = v
    if lo == -_INF and hi == _INF:
        return 0.0
    if math.isinf(lo):
        return lo
    if math.isinf(hi):
        return hi
    mid = 0.5 * (lo + hi)
    if math.isinf(mid):  # overflow of lo+hi
        mid = lo * 0.5 + hi * 0.5
    return mid


def width(v: Interval) -> float:
    """The rigorous uncertainty carried by this value."""
    if _is_nai(v):
        return math.nan
    return v[1] - v[0]


class IntervalArithmetic(AlternativeArithmetic):
    """Outward-rounded interval arithmetic behind the §4.3 interface."""

    name = "interval"

    # -------------------------- arithmetic ---------------------------- #

    def add(self, a: Interval, b: Interval) -> Interval:
        if _is_nai(a) or _is_nai(b):
            return NAI
        s = a[0] + b[0]
        # error-free singleton sum: re-subtraction recovers both addends
        if (_singleton(a) and _singleton(b) and math.isfinite(s)
                and s - a[0] == b[0] and s - b[0] == a[0]):
            return (s, s)
        return _outward(s, a[1] + b[1])

    def sub(self, a: Interval, b: Interval) -> Interval:
        if _is_nai(a) or _is_nai(b):
            return NAI
        d = a[0] - b[1]
        if (_singleton(a) and _singleton(b) and math.isfinite(d)
                and d + b[0] == a[0] and a[0] - d == b[0]):
            return (d, d)
        return _outward(d, a[1] - b[0])

    def mul(self, a: Interval, b: Interval) -> Interval:
        if _is_nai(a) or _is_nai(b):
            return NAI
        if _singleton(a) and _singleton(b):
            p = a[0] * b[0]
            if math.isnan(p):
                return NAI
            if _mul_exact(a[0], b[0], p):
                return (p, p)
        ps = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
        if any(math.isnan(p) for p in ps):  # 0 * inf corners
            return NAI
        return _outward(min(ps), max(ps))

    def div(self, a: Interval, b: Interval) -> Interval:
        if _is_nai(a) or _is_nai(b):
            return NAI
        if b[0] <= 0.0 <= b[1]:
            return NAI  # division through zero: undefined as one interval
        if _singleton(a) and _singleton(b):
            q = a[0] / b[0]
            if math.isnan(q):
                return NAI
            if _div_exact(a[0], b[0], q):
                return (q, q)
        qs = [a[0] / b[0], a[0] / b[1], a[1] / b[0], a[1] / b[1]]
        if any(math.isnan(q) for q in qs):
            return NAI
        return _outward(min(qs), max(qs))

    def sqrt(self, a: Interval) -> Interval:
        if _is_nai(a) or a[1] < 0.0:
            return NAI
        if _singleton(a) and a[0] >= 0.0 and math.isfinite(a[0]):
            s = math.sqrt(a[0])
            if Fraction(s) * Fraction(s) == Fraction(a[0]):
                return (s, s)
        lo = 0.0 if a[0] < 0.0 else math.sqrt(a[0])
        return _outward(lo, math.sqrt(a[1]))

    def fma(self, a: Interval, b: Interval, c: Interval) -> Interval:
        return self.add(self.mul(a, b), c)

    def neg(self, a: Interval) -> Interval:
        if _is_nai(a):
            return NAI
        return (-a[1], -a[0])

    def abs(self, a: Interval) -> Interval:
        if _is_nai(a):
            return NAI
        if a[0] >= 0.0:
            return a
        if a[1] <= 0.0:
            return (-a[1], -a[0])
        return (0.0, max(-a[0], a[1]))

    def min(self, a: Interval, b: Interval) -> Interval:
        if _is_nai(a) or _is_nai(b):
            return b  # x64 MINSD forwards src2 on NaN
        return (min(a[0], b[0]), min(a[1], b[1]))

    def max(self, a: Interval, b: Interval) -> Interval:
        if _is_nai(a) or _is_nai(b):
            return b
        return (max(a[0], b[0]), max(a[1], b[1]))

    # monotone elementary functions lift endpointwise
    def _mono(self, fn, a: Interval) -> Interval:
        if _is_nai(a):
            return NAI
        try:
            return _outward(fn(a[0]), fn(a[1]))
        except (ValueError, OverflowError):
            return NAI

    def exp(self, a: Interval) -> Interval:
        if _is_nai(a):
            return NAI
        try:
            lo = math.exp(a[0])
        except OverflowError:
            lo = _INF
        try:
            hi = math.exp(a[1])
        except OverflowError:
            hi = _INF
        return _outward(lo, hi)

    def log(self, a: Interval) -> Interval:
        if _is_nai(a) or a[1] <= 0.0:
            return NAI
        lo = -_INF if a[0] <= 0.0 else math.log(a[0])
        return _outward(lo, math.log(a[1]))

    def log2(self, a: Interval) -> Interval:
        if _is_nai(a) or a[1] <= 0.0:
            return NAI
        lo = -_INF if a[0] <= 0.0 else math.log2(a[0])
        return _outward(lo, math.log2(a[1]))

    def log10(self, a: Interval) -> Interval:
        if _is_nai(a) or a[1] <= 0.0:
            return NAI
        lo = -_INF if a[0] <= 0.0 else math.log10(a[0])
        return _outward(lo, math.log10(a[1]))

    def atan(self, a: Interval) -> Interval:
        return self._mono(math.atan, a)

    def asin(self, a: Interval) -> Interval:
        if _is_nai(a) or a[1] < -1.0 or a[0] > 1.0:
            return NAI
        lo = math.asin(max(a[0], -1.0))
        hi = math.asin(min(a[1], 1.0))
        return _outward(lo, hi)

    def acos(self, a: Interval) -> Interval:
        if _is_nai(a) or a[1] < -1.0 or a[0] > 1.0:
            return NAI
        lo = math.acos(min(a[1], 1.0))
        hi = math.acos(max(a[0], -1.0))
        return _outward(lo, hi)

    # sin/cos: locate interior extrema by quadrant counting
    def sin(self, a: Interval) -> Interval:
        return self._trig(a, math.sin, offset=0.0)

    def cos(self, a: Interval) -> Interval:
        return self._trig(a, math.cos, offset=math.pi / 2)

    def _trig(self, a: Interval, fn, offset: float) -> Interval:
        if _is_nai(a) or math.isinf(a[0]) or math.isinf(a[1]):
            return NAI if _is_nai(a) else (-1.0, 1.0)
        if a[1] - a[0] >= 2 * math.pi:
            return (-1.0, 1.0)
        lo = min(fn(a[0]), fn(a[1]))
        hi = max(fn(a[0]), fn(a[1]))
        # max of sin at x = pi/2 + 2k*pi  <=>  (x - offset - pi/2)/(2pi) ∈ Z
        def contains_extremum(at: float) -> bool:
            k0 = math.ceil((a[0] - at) / (2 * math.pi))
            return a[0] <= at + 2 * math.pi * k0 <= a[1]

        if contains_extremum(math.pi / 2 - offset):
            hi = 1.0
        if contains_extremum(-math.pi / 2 - offset):
            lo = -1.0
        # widen outward but never beyond the function's true range
        return (max(_down(lo), -1.0), min(_up(hi), 1.0))

    def tan(self, a: Interval) -> Interval:
        if _is_nai(a):
            return NAI
        # a pole inside the interval makes the range unbounded
        k0 = math.ceil((a[0] - math.pi / 2) / math.pi)
        if a[0] <= math.pi / 2 + math.pi * k0 <= a[1]:
            return NAI
        return self._mono(math.tan, a)

    def atan2(self, a: Interval, b: Interval) -> Interval:
        if _is_nai(a) or _is_nai(b):
            return NAI
        corners = []
        for y in a:
            for x in b:
                corners.append(math.atan2(y, x))
        if b[0] <= 0.0 <= b[1] and a[0] <= 0.0 <= a[1]:
            return (-math.pi, math.pi)  # straddles the branch cut
        if b[0] < 0.0 < b[1] and a[0] > 0.0:
            pass  # continuous through the upper half plane
        return _outward(min(corners), max(corners))

    def pow(self, a: Interval, b: Interval) -> Interval:
        if _is_nai(a) or _is_nai(b):
            return NAI
        # integer exponent fast path (degenerate b); sound for bases of
        # any sign, including sign-crossing: repeated interval mul
        # over-approximates the dependent product, and even powers are
        # additionally clamped to the nonnegative half-line
        if b[0] == b[1] and float(b[0]).is_integer() and abs(b[0]) < 64:
            n = int(b[0])
            if n == 0:
                return (1.0, 1.0)
            r = (1.0, 1.0)
            base = a if n > 0 else self.div((1.0, 1.0), a)
            for _ in range(abs(n)):
                r = self.mul(r, base)
            if n % 2 == 0 and not _is_nai(r):
                r = (max(r[0], 0.0), r[1])
            return r
        if a[0] < 0.0:
            return NAI  # non-integer power of a (partly) negative base
        if a == (0.0, 0.0):
            # pow(0, b): 0 for b>0, +inf/NaN corners otherwise
            return (0.0, 0.0) if b[0] > 0.0 else NAI
        # base touching zero flows through log -> [-inf, ...] -> exp -> 0
        return self.exp(self.mul(b, self.log(a)))

    def fmod(self, a: Interval, b: Interval) -> Interval:
        # fmod is discontinuous in its first argument, so a midpoint
        # estimate is unsound; bound it from first principles instead:
        # the result has the sign of a and |r| < |b|, |r| <= |a|.
        if _is_nai(a) or _is_nai(b) or b[0] <= 0.0 <= b[1]:
            return NAI
        if math.isinf(a[0]) or math.isinf(a[1]):
            return NAI  # fmod(inf, y) is NaN and may be in the set
        if _singleton(a) and _singleton(b):
            r = math.fmod(a[0], b[0])  # exact for finite doubles
            return (r, r)
        lo_b = min(abs(b[0]), abs(b[1]))
        hi_b = max(abs(b[0]), abs(b[1]))
        hi_a = max(abs(a[0]), abs(a[1]))
        if hi_a < lo_b:
            return a  # |a| always below the divisor: fmod is identity
        mag = min(hi_a, hi_b)
        if a[0] >= 0.0:
            return (0.0, mag)
        if a[1] <= 0.0:
            return (-mag, 0.0)
        return (-mag, mag)

    # -------------------------- conversions --------------------------- #

    def from_f64_bits(self, bits: int) -> Interval:
        if is_nan64(bits):
            return NAI
        x = bits_to_f64(bits)
        return (x, x)  # a double is an exact (degenerate) interval

    def to_f64_bits(self, a: Interval) -> int:
        m = midpoint(a)
        return F64_DEFAULT_QNAN if math.isnan(m) else f64_to_bits(m)

    def from_i64(self, i: int) -> Interval:
        if i >= 1 << 63:
            i -= 1 << 64
        x = float(i)
        if int(x) == i:
            return (x, x)
        return _outward(x, x)

    def from_i32(self, i: int) -> Interval:
        if i >= 1 << 31:
            i -= 1 << 32
        return (float(i), float(i))

    def _to_int(self, a: Interval, truncate: bool) -> int | None:
        m = midpoint(a)
        if math.isnan(m) or math.isinf(m):
            return None
        if truncate:
            return math.trunc(m)
        fl = math.floor(m)
        d = m - fl
        if d > 0.5 or (d == 0.5 and fl & 1):
            fl += 1
        return fl

    def to_i64(self, a: Interval, truncate: bool) -> int:
        v = self._to_int(a, truncate)
        if v is None or not (-(1 << 63) <= v < (1 << 63)):
            return _I64_INDEFINITE
        return v & ((1 << 64) - 1)

    def to_i32(self, a: Interval, truncate: bool) -> int:
        v = self._to_int(a, truncate)
        if v is None or not (-(1 << 31) <= v < (1 << 31)):
            return _I32_INDEFINITE
        return v & ((1 << 32) - 1)

    def from_f32_bits(self, bits: int) -> Interval:
        x = bits_to_f32(bits)
        if math.isnan(x):
            return NAI
        return (x, x)

    def to_f32_bits(self, a: Interval) -> int:
        return f32_to_bits(midpoint(a))

    def round_to_integral(self, a: Interval, mode: int) -> Interval:
        m = midpoint(a)
        if math.isnan(m):
            return NAI
        if math.isinf(m):
            return (m, m)
        if mode == 0:
            v = float(self._to_int(a, truncate=False))
        elif mode == 1:
            v = float(math.floor(m))
        elif mode == 2:
            v = float(math.ceil(m))
        else:
            v = float(math.trunc(m))
        return (v, v)

    def to_decimal_str(self, a: Interval, precision: int | None = None) -> str:
        if _is_nai(a):
            return "nai"
        p = precision or 17
        return f"[{a[0]:.{p}g}, {a[1]:.{p}g}]"

    # -------------------------- comparisons --------------------------- #

    def compare(self, a: Interval, b: Interval) -> Ordering:
        if _is_nai(a) or _is_nai(b):
            return Ordering.UNORDERED
        if a[1] < b[0]:
            return Ordering.LT
        if a[0] > b[1]:
            return Ordering.GT
        if a == b and a[0] == a[1]:
            return Ordering.EQ
        # overlapping: decide by midpoints so control flow stays decisive
        ma, mb = midpoint(a), midpoint(b)
        if ma < mb:
            return Ordering.LT
        if ma > mb:
            return Ordering.GT
        return Ordering.EQ

    def is_nan(self, a: Interval) -> bool:
        return _is_nai(a)

    def is_zero(self, a: Interval) -> bool:
        return a[0] == 0.0 and a[1] == 0.0

    def is_negative(self, a: Interval) -> bool:
        if _is_nai(a):
            return False
        return midpoint(a) < 0.0 or (midpoint(a) == 0.0
                                     and math.copysign(1.0, a[0]) < 0)

    # -------------------------- cost model ---------------------------- #

    _COSTS = {"add": 45, "sub": 45, "mul": 90, "div": 130, "sqrt": 110,
              "fma": 140, "neg": 12, "abs": 15, "min": 20, "max": 20,
              "compare": 25}

    def op_cycles(self, op: str) -> int:
        return self._COSTS.get(op, 220)
