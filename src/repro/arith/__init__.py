"""Alternative arithmetic systems and the FPVM porting interface (§4.3).

FPVM's emulator is arithmetic-agnostic: it drives any object
implementing :class:`~repro.arith.interface.AlternativeArithmetic` — 37
scalar functions (23 arithmetic, 10 conversion, 4 comparison), exactly
the shape of the paper's interface.  Three systems are ported, as in
the paper:

* :class:`~repro.arith.vanilla.VanillaArithmetic` — IEEE binary64
  pass-through; FPVM + Vanilla must be bit-identical to native
  execution (the §5.2 validation).
* :class:`~repro.arith.bigfloat.BigFloatArithmetic` — a from-scratch
  arbitrary-precision binary float (the GNU MPFR substitute).
* :class:`~repro.arith.posit.PositArithmetic` — posit<nbits,es>
  (the Universal-library substitute).
"""

from repro.arith.interface import AlternativeArithmetic, Ordering
from repro.arith.vanilla import VanillaArithmetic
from repro.arith.interval import IntervalArithmetic


def __getattr__(name: str):
    # lazy imports keep `import repro.arith` light
    if name == "BigFloatArithmetic":
        from repro.arith.bigfloat import BigFloatArithmetic

        return BigFloatArithmetic
    if name == "AdaptiveBigFloatArithmetic":
        from repro.arith.bigfloat import AdaptiveBigFloatArithmetic

        return AdaptiveBigFloatArithmetic
    if name == "PositArithmetic":
        from repro.arith.posit import PositArithmetic

        return PositArithmetic
    raise AttributeError(name)


__all__ = [
    "AlternativeArithmetic",
    "Ordering",
    "VanillaArithmetic",
    "BigFloatArithmetic",
    "AdaptiveBigFloatArithmetic",
    "PositArithmetic",
    "IntervalArithmetic",
]
