"""Alternative arithmetic systems and the FPVM porting interface (§4.3).

FPVM's emulator is arithmetic-agnostic: it drives any object
implementing :class:`~repro.arith.interface.AlternativeArithmetic` — 37
scalar functions (23 arithmetic, 10 conversion, 4 comparison), exactly
the shape of the paper's interface.  Three systems are ported, as in
the paper:

* :class:`~repro.arith.vanilla.VanillaArithmetic` — IEEE binary64
  pass-through; FPVM + Vanilla must be bit-identical to native
  execution (the §5.2 validation).
* :class:`~repro.arith.bigfloat.BigFloatArithmetic` — a from-scratch
  arbitrary-precision binary float (the GNU MPFR substitute).
* :class:`~repro.arith.posit.PositArithmetic` — posit<nbits,es>
  (the Universal-library substitute).
"""

from repro.arith.interface import AlternativeArithmetic, Ordering
from repro.arith.vanilla import VanillaArithmetic
from repro.arith.interval import IntervalArithmetic
from repro.errors import ArithSpecError

#: spec kind -> (int-argument defaults)
_SPEC_DEFAULTS: dict[str, tuple[int, ...]] = {
    "vanilla": (),
    "mpfr": (200,),
    "adaptive": (64, 2048),
    "posit": (32, 2),
    "interval": (),
    "sanitize": (200,),
}

SPEC_HELP = ("vanilla | mpfr:BITS | adaptive[:INIT:MAX] | posit:N[:ES] "
             "| interval | sanitize[:BITS]")


def normalize_spec(spec) -> tuple:
    """Validate a spec and return its canonical picklable tuple form.

    ``"mpfr:200"`` and ``("mpfr", 200)`` both normalize to
    ``("mpfr", 200)`` with defaults filled in; the experiment matrix
    and the chaos CLI store this form in their (picklable) cells.
    Raises :class:`~repro.errors.ArithSpecError` like :func:`from_spec`.
    """
    if isinstance(spec, str):
        parts = spec.split(":")
        kind, raw_args = parts[0].lower(), parts[1:]
    elif isinstance(spec, (tuple, list)) and spec:
        kind, raw_args = str(spec[0]).lower(), list(spec[1:])
    else:
        raise ArithSpecError(f"bad arithmetic spec {spec!r} ({SPEC_HELP})")

    defaults = _SPEC_DEFAULTS.get(kind)
    if defaults is None:
        raise ArithSpecError(f"unknown arithmetic spec {spec!r} "
                             f"({SPEC_HELP})")
    if len(raw_args) > len(defaults):
        raise ArithSpecError(f"too many arguments in spec {spec!r} "
                             f"({SPEC_HELP})")
    try:
        args = tuple(int(a) for a in raw_args)
    except (TypeError, ValueError):
        raise ArithSpecError(f"non-integer argument in spec {spec!r} "
                             f"({SPEC_HELP})") from None
    return (kind,) + args + defaults[len(args):]


def from_spec(spec) -> AlternativeArithmetic:
    """Materialize an arithmetic system from a spec.

    Accepts the CLI string form (``"mpfr:200"``, ``"posit:32:2"``) or
    the picklable tuple form (``("mpfr", 200)``) used by the
    experiment matrix.  An :class:`~repro.errors.ArithSpecError` is
    raised for unknown kinds or malformed arguments.
    """
    if isinstance(spec, AlternativeArithmetic):
        return spec
    kind, *args = normalize_spec(spec)
    args = tuple(args)

    if kind == "vanilla":
        return VanillaArithmetic()
    if kind == "interval":
        return IntervalArithmetic()
    if kind == "mpfr":
        from repro.arith.bigfloat import BigFloatArithmetic
        return BigFloatArithmetic(*args)
    if kind == "adaptive":
        from repro.arith.bigfloat import AdaptiveBigFloatArithmetic
        return AdaptiveBigFloatArithmetic(*args)
    if kind == "sanitize":
        from repro.fpvm.sanitize import DualPathArithmetic
        return DualPathArithmetic(*args)
    from repro.arith.posit import PositArithmetic
    return PositArithmetic(*args)


def __getattr__(name: str):
    # lazy imports keep `import repro.arith` light
    if name == "BigFloatArithmetic":
        from repro.arith.bigfloat import BigFloatArithmetic

        return BigFloatArithmetic
    if name == "AdaptiveBigFloatArithmetic":
        from repro.arith.bigfloat import AdaptiveBigFloatArithmetic

        return AdaptiveBigFloatArithmetic
    if name == "PositArithmetic":
        from repro.arith.posit import PositArithmetic

        return PositArithmetic
    raise AttributeError(name)


__all__ = [
    "AlternativeArithmetic",
    "ArithSpecError",
    "Ordering",
    "SPEC_HELP",
    "from_spec",
    "normalize_spec",
    "VanillaArithmetic",
    "BigFloatArithmetic",
    "AdaptiveBigFloatArithmetic",
    "PositArithmetic",
    "IntervalArithmetic",
]
