"""Vanilla: IEEE binary64 implemented with… IEEE binary64 (§4.3).

    "The primary purpose of Vanilla is to allow us to test the other
    elements of FPVM independently.  If FPVM is working correctly,
    then Vanilla should produce the identical results to running
    without FPVM."

Values are host Python floats (binary64 with RNE — the same hardware
semantics as the simulated FPU), so every demotion is exact and
FPVM + Vanilla is bit-identical to native execution.
"""

from __future__ import annotations

import math

from repro.ieee.bits import (
    F64_DEFAULT_QNAN,
    bits_to_f32,
    bits_to_f64,
    f32_to_bits,
    f64_to_bits,
    is_nan64,
    quiet64,
)
from repro.arith.interface import AlternativeArithmetic, Ordering

_I64_INDEFINITE = 1 << 63
_I32_INDEFINITE = 1 << 31


def _nan() -> float:
    return math.nan


class VanillaArithmetic(AlternativeArithmetic):
    """Pass-through binary64 arithmetic (validation system)."""

    name = "vanilla"

    # -------------------------- arithmetic ---------------------------- #

    def add(self, a: float, b: float) -> float:
        return a + b

    def sub(self, a: float, b: float) -> float:
        return a - b

    def mul(self, a: float, b: float) -> float:
        try:
            return a * b
        except OverflowError:  # pragma: no cover - floats don't raise
            return math.inf

    def div(self, a: float, b: float) -> float:
        if b == 0.0:
            if a == 0.0 or math.isnan(a):
                return _nan()
            return math.copysign(math.inf, a) * math.copysign(1.0, b)
        return a / b

    def sqrt(self, a: float) -> float:
        if math.isnan(a):
            return a
        if a < 0.0:
            return _nan()
        return math.sqrt(a)

    def fma(self, a: float, b: float, c: float) -> float:
        # single-rounding FMA via the exact softfloat path
        from repro.ieee.softfloat import SoftFPU

        r, _ = SoftFPU().fma64(f64_to_bits(a), f64_to_bits(b), f64_to_bits(c))
        return bits_to_f64(r)

    def neg(self, a: float) -> float:
        return -a

    def abs(self, a: float) -> float:
        return math.fabs(a)

    def min(self, a: float, b: float) -> float:
        # x64 MINSD semantics: NaN or equal -> src2
        if math.isnan(a) or math.isnan(b) or a == b:
            return b
        return a if a < b else b

    def max(self, a: float, b: float) -> float:
        if math.isnan(a) or math.isnan(b) or a == b:
            return b
        return a if a > b else b

    @staticmethod
    def _guard1(fn, a: float) -> float:
        if math.isnan(a):
            return a
        try:
            return fn(a)
        except (ValueError, OverflowError, ZeroDivisionError):
            return _nan()

    def sin(self, a: float) -> float:
        return self._guard1(math.sin, a)

    def cos(self, a: float) -> float:
        return self._guard1(math.cos, a)

    def tan(self, a: float) -> float:
        return self._guard1(math.tan, a)

    def asin(self, a: float) -> float:
        return self._guard1(math.asin, a)

    def acos(self, a: float) -> float:
        return self._guard1(math.acos, a)

    def atan(self, a: float) -> float:
        return self._guard1(math.atan, a)

    def atan2(self, a: float, b: float) -> float:
        if math.isnan(a) or math.isnan(b):
            return _nan()
        return math.atan2(a, b)

    def exp(self, a: float) -> float:
        if math.isnan(a):
            return a
        try:
            return math.exp(a)
        except OverflowError:
            return math.inf

    def log(self, a: float) -> float:
        if math.isnan(a):
            return a
        if a < 0.0:
            return _nan()
        if a == 0.0:
            return -math.inf
        return math.log(a)

    def log2(self, a: float) -> float:
        if math.isnan(a):
            return a
        if a < 0.0:
            return _nan()
        if a == 0.0:
            return -math.inf
        return math.log2(a)

    def log10(self, a: float) -> float:
        if math.isnan(a):
            return a
        if a < 0.0:
            return _nan()
        if a == 0.0:
            return -math.inf
        return math.log10(a)

    def pow(self, a: float, b: float) -> float:
        if a == 0.0 and b == 0.0:
            return 1.0
        try:
            return math.pow(a, b)
        except (ValueError, OverflowError, ZeroDivisionError):
            if math.isnan(a) or math.isnan(b):
                return _nan()
            try:
                return math.inf if abs(a) > 1 else 0.0
            except Exception:  # pragma: no cover
                return _nan()

    def fmod(self, a: float, b: float) -> float:
        if math.isnan(a) or math.isnan(b) or b == 0.0 or math.isinf(a):
            return _nan()
        return math.fmod(a, b)

    # -------------------------- conversions --------------------------- #

    def from_f64_bits(self, bits: int) -> float:
        if is_nan64(bits):
            return bits_to_f64(quiet64(bits))
        return bits_to_f64(bits)

    def to_f64_bits(self, a: float) -> int:
        if math.isnan(a):
            return F64_DEFAULT_QNAN
        return f64_to_bits(a)

    def from_i64(self, i: int) -> float:
        if i >= 1 << 63:
            i -= 1 << 64
        return float(i)

    def from_i32(self, i: int) -> float:
        if i >= 1 << 31:
            i -= 1 << 32
        return float(i)

    def to_i64(self, a: float, truncate: bool) -> int:
        if math.isnan(a) or math.isinf(a):
            return _I64_INDEFINITE
        v = math.trunc(a) if truncate else _round_half_even(a)
        if not (-(1 << 63) <= v < (1 << 63)):
            return _I64_INDEFINITE
        return v & ((1 << 64) - 1)

    def to_i32(self, a: float, truncate: bool) -> int:
        if math.isnan(a) or math.isinf(a):
            return _I32_INDEFINITE
        v = math.trunc(a) if truncate else _round_half_even(a)
        if not (-(1 << 31) <= v < (1 << 31)):
            return _I32_INDEFINITE
        return v & ((1 << 32) - 1)

    def from_f32_bits(self, bits: int) -> float:
        return bits_to_f32(bits)

    def to_f32_bits(self, a: float) -> int:
        return f32_to_bits(a)

    def round_to_integral(self, a: float, mode: int) -> float:
        if math.isnan(a) or math.isinf(a):
            return a
        if mode == 0:
            v = float(_round_half_even(a))
        elif mode == 1:
            v = float(math.floor(a))
        elif mode == 2:
            v = float(math.ceil(a))
        else:
            v = float(math.trunc(a))
        if v == 0.0 and math.copysign(1.0, a) < 0:
            v = -0.0
        return v

    def to_decimal_str(self, a: float, precision: int | None = None) -> str:
        if precision is None:
            return repr(a)
        return f"{a:.{precision}g}"

    # -------------------------- comparisons --------------------------- #

    def compare(self, a: float, b: float) -> Ordering:
        if math.isnan(a) or math.isnan(b):
            return Ordering.UNORDERED
        if a < b:
            return Ordering.LT
        if a > b:
            return Ordering.GT
        return Ordering.EQ

    def is_nan(self, a: float) -> bool:
        return math.isnan(a)

    def is_zero(self, a: float) -> bool:
        return a == 0.0

    def is_negative(self, a: float) -> bool:
        return math.copysign(1.0, a) < 0

    # -------------------------- cost model ---------------------------- #

    _COSTS = {"add": 18, "sub": 18, "mul": 22, "div": 40, "sqrt": 45,
              "fma": 30, "neg": 6, "abs": 6, "min": 10, "max": 10,
              "compare": 10}

    def op_cycles(self, op: str) -> int:
        return self._COSTS.get(op, 60)


def _round_half_even(f: float) -> int:
    fl = math.floor(f)
    diff = f - fl
    if diff > 0.5:
        return fl + 1
    if diff < 0.5:
        return fl
    return fl + 1 if fl & 1 else fl
