"""Compiler driver: source text → linked Binary.

``instrument_fp=True`` selects the paper's §3.4 compiler-based
approach: every trap-capable FP site is emitted with an inline
pre/post-condition check (a ``fpvm_patch`` carrying the original
instruction, flagged as compiler-generated so the cost model charges
the cheaper optimized-check rate).  Such binaries run unchanged
without FPVM and under ``FPVM(mode="static")`` with it.
"""

from __future__ import annotations

from repro.asm.program import Binary
from repro.compiler.codegen import CodeGen
from repro.compiler.parser import parse
from repro.compiler import ast as A
from repro.isa.instructions import Instruction
from repro.isa.opcodes import is_fp_trapping


def compile_source(source: str, *, entry: str = "main",
                   instrument_fp: bool = False) -> Binary:
    """Compile fpc source text into a simulated Binary."""
    return compile_program(parse(source), entry=entry,
                           instrument_fp=instrument_fp)


def compile_file(path, *, entry: str = "main",
                 instrument_fp: bool = False) -> Binary:
    """Compile an fpc source file into a simulated Binary."""
    from pathlib import Path

    return compile_source(Path(path).read_text(), entry=entry,
                          instrument_fp=instrument_fp)


def compile_program(program: A.Program, *, entry: str = "main",
                    instrument_fp: bool = False) -> Binary:
    """Compile a parsed Program AST into a simulated Binary."""
    binary = CodeGen(program).generate(entry=entry)
    if instrument_fp:
        instrument_fp_sites(binary)
    return binary


def instrument_fp_sites(binary: Binary) -> int:
    """§3.4: wrap every trap-capable FP instruction in an inline
    compiler-emitted check.  Returns the number of instrumented sites."""
    n = 0
    for ins in list(binary.text):
        if is_fp_trapping(ins.mnemonic):
            patch = Instruction(
                "fpvm_patch", (), ins.addr, ins.length,
                payload={"original": ins, "compiler": True},
            )
            binary.replace_instruction(ins.addr, patch)
            n += 1
    return n
