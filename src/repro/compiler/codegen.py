"""Code generation: fpc AST → simulated ISA via the assembler.

The code shape is deliberately -O0-like: every value lives in a stack
slot, expressions evaluate through xmm0/rax with spills to temporaries.
That is not laziness — it is what makes the generated binaries good
FPVM subjects: NaN-boxed doubles genuinely reside in program memory
(exercising the conservative GC), and every double that round-trips
through an integer register does so via the store/load idioms the
static analysis must classify (Figs. 6/7).

Compiler idioms that create the §4.2 correctness holes on purpose:

* unary ``-x`` on a double   → ``xorpd xmm0, [SIGNMASK]``
* ``fabs(x)``                → ``andpd xmm0, [ABSMASK]``
* ``__bits(x)`` intrinsic    → ``movsd [tmp], xmm0; mov rax, [tmp]``
* ``__double(i)`` intrinsic  → ``mov [tmp], rax; movsd xmm0, [tmp]``
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.ieee.bits import f64_to_bits
from repro.isa.operands import Imm, Label, Mem, Reg, Xmm
from repro.asm.assembler import Assembler
from repro.asm.program import Binary
from repro.compiler import ast as A

RAX, RCX, RDX, RSP, RBP = (Reg("rax"), Reg("rcx"), Reg("rdx"),
                           Reg("rsp"), Reg("rbp"))
AL, CL = Reg("al"), Reg("cl")
XMM0, XMM1 = Xmm(0), Xmm(1)

INT_ARG_REGS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

#: return types of libc/libm externals the compiler may call
EXTERN_RETURNS = {
    "printf": "long", "puts": "long", "putchar": "long", "getchar": "long",
    "fwrite": "long",
    "malloc": "long", "calloc": "long", "free": "void", "memcpy": "long",
    "memset": "long", "strlen": "long", "exit": "void", "abort": "void",
    "rand": "long", "srand": "void", "clock": "long",
}
_LIBM = ("sin", "cos", "tan", "asin", "acos", "atan", "atan2", "exp",
         "log", "log2", "log10", "pow", "fmod", "floor", "ceil",
         "fmin", "fmax", "sinh", "cosh", "tanh")
for _f in _LIBM:
    EXTERN_RETURNS[_f] = "double"


def _is_ptr(ty: str) -> bool:
    return ty.endswith("*")


class FunctionContext:
    """Per-function state: scoped locals, frame layout, temps, labels.

    Locals live in a stack of lexical scopes (C block scoping: a new
    ``long i`` per loop is legal); every declaration still gets its
    own frame slot — no slot reuse across scopes, which keeps the
    VSA's stack a-locs unambiguous.
    """

    def __init__(self) -> None:
        self.scopes: list[dict[str, tuple[str, int, int | None]]] = [{}]
        self.frame = 0
        # separate spill pools per register class, like a real compiler's
        # stack coloring: FP and integer temporaries never share a slot
        # (deliberate exception: __bits/__double reinterpret through one)
        self._temp_free: dict[bool, list[int]] = {False: [], True: []}
        self.epilogue: str = ""
        self.ret_type: str = "void"
        self.loop_stack: list[tuple[str, str]] = []  # (continue, break)

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, info: tuple[str, int, int | None]) -> None:
        if name in self.scopes[-1]:
            raise CompileError(f"duplicate local {name!r} in this scope")
        self.scopes[-1][name] = info

    def lookup(self, name: str) -> tuple[str, int, int | None] | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def alloc_slot(self, nbytes: int = 8) -> int:
        self.frame += nbytes
        return self.frame

    def alloc_temp(self, fp: bool = False) -> int:
        pool = self._temp_free[fp]
        if pool:
            return pool.pop()
        return self.alloc_slot(8)

    def free_temp(self, off: int, fp: bool = False) -> None:
        self._temp_free[fp].append(off)


class CodeGen:
    """One-pass code generator over a parsed Program."""

    def __init__(self, program: A.Program) -> None:
        self.prog = program
        self.asm = Assembler()
        self.globals: dict[str, tuple[str, int | None]] = {}
        self.funcs: dict[str, A.FuncDef] = {f.name: f for f in program.functions}
        self.externs: set[str] = set()
        self._labels = 0
        self._float_consts: dict[int, str] = {}
        self._strings: dict[str, str] = {}
        self._masks_emitted: set[str] = set()
        self.ctx = FunctionContext()

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    def new_label(self, stem: str) -> str:
        self._labels += 1
        return f".{stem}_{self._labels}"

    def float_const(self, value: float) -> str:
        bits = f64_to_bits(value)
        lbl = self._float_consts.get(bits)
        if lbl is None:
            lbl = f".fc_{len(self._float_consts)}"
            self.asm.quad(lbl, bits)
            self._float_consts[bits] = lbl
        return lbl

    def string_const(self, value: str) -> str:
        lbl = self._strings.get(value)
        if lbl is None:
            lbl = f".str_{len(self._strings)}"
            self.asm.asciiz(lbl, value)
            self._strings[value] = lbl
        return lbl

    def mask_const(self, which: str) -> str:
        """16-byte xorpd/andpd masks (sign-flip / abs)."""
        lbl = f".mask_{which}"
        if which not in self._masks_emitted:
            if which == "neg":
                self.asm.quad(lbl, [0x8000_0000_0000_0000,
                                    0x8000_0000_0000_0000])
            else:
                self.asm.quad(lbl, [0x7FFF_FFFF_FFFF_FFFF,
                                    0x7FFF_FFFF_FFFF_FFFF])
            self._masks_emitted.add(which)
        return lbl

    def slot(self, off: int, size: int = 8) -> Mem:
        return Mem(base="rbp", disp=-off, size=size)

    def e(self, mnemonic: str, *ops) -> None:
        self.asm.emit(mnemonic, *ops)

    # ------------------------------------------------------------------ #
    # top level                                                           #
    # ------------------------------------------------------------------ #

    def generate(self, entry: str = "main") -> Binary:
        for g in self.prog.globals:
            self._gen_global(g)
        if entry not in self.funcs:
            raise CompileError(f"no {entry}() function defined")
        for f in self.prog.functions:
            self._gen_function(f)
        for name in sorted(self.externs):
            self.asm.extern(name)
        return self.asm.assemble(entry=entry)

    def _gen_global(self, g: A.GlobalVar) -> None:
        if g.name in self.globals:
            raise CompileError(f"duplicate global {g.name!r}")
        self.globals[g.name] = (g.type, g.array_size)
        n = g.array_size or 1
        if g.init is None:
            self.asm.space(g.name, 8 * n)
            return
        vals = g.init if isinstance(g.init, list) else [g.init]
        if len(vals) > n:
            raise CompileError(f"too many initializers for {g.name!r}")
        vals = list(vals) + [0] * (n - len(vals))
        if g.type.startswith("double"):
            self.asm.double(g.name, [float(v) for v in vals])
        else:
            self.asm.quad(g.name, [int(v) for v in vals])

    # ------------------------------------------------------------------ #
    # functions                                                           #
    # ------------------------------------------------------------------ #

    def _gen_function(self, f: A.FuncDef) -> None:
        self.ctx = ctx = FunctionContext()
        ctx.ret_type = f.ret_type
        ctx.epilogue = self.new_label(f"{f.name}_ret")

        self.asm.label(f.name)
        self.e("push", RBP)
        self.e("mov", RBP, RSP)
        frame_ins = self.asm.emit("sub", RSP, Imm(0))  # patched below

        int_idx = fp_idx = 0
        for p in f.params:
            off = ctx.alloc_slot(8)
            ctx.declare(p.name, (p.type, off, None))
            if p.type == "double":
                self.e("movsd", self.slot(off), Xmm(fp_idx))
                fp_idx += 1
            else:
                if int_idx >= len(INT_ARG_REGS):
                    raise CompileError("too many integer parameters")
                self.e("mov", self.slot(off), Reg(INT_ARG_REGS[int_idx]))
                int_idx += 1

        self._gen_block(f.body)

        # implicit return for void / fall-through
        if f.ret_type == "double":
            lbl = self.float_const(0.0)
            self.e("movsd", XMM0, Mem(disp=Label(lbl)))
        else:
            self.e("mov", RAX, Imm(0))
        self.asm.label(ctx.epilogue)
        self.e("mov", RSP, RBP)
        self.e("pop", RBP)
        self.e("ret")

        frame = (ctx.frame + 15) & ~15
        frame_ins.operands = (RSP, Imm(frame))

    # ------------------------------------------------------------------ #
    # statements                                                          #
    # ------------------------------------------------------------------ #

    def _gen_block(self, block: A.Block) -> None:
        self.ctx.push_scope()
        for s in block.stmts:
            self._gen_stmt(s)
        self.ctx.pop_scope()

    def _gen_stmt(self, s) -> None:
        if isinstance(s, A.Block):
            self._gen_block(s)
        elif isinstance(s, A.VarDecl):
            self._gen_vardecl(s)
        elif isinstance(s, A.Assign):
            self._gen_assign(s)
        elif isinstance(s, A.If):
            self._gen_if(s)
        elif isinstance(s, A.While):
            self._gen_while(s)
        elif isinstance(s, A.For):
            self._gen_for(s)
        elif isinstance(s, A.Return):
            self._gen_return(s)
        elif isinstance(s, A.ExprStmt):
            self._gen_expr(s.expr)
        elif isinstance(s, A.Break):
            if not self.ctx.loop_stack:
                raise CompileError("break outside loop")
            self.e("jmp", Label(self.ctx.loop_stack[-1][1]))
        elif isinstance(s, A.Continue):
            if not self.ctx.loop_stack:
                raise CompileError("continue outside loop")
            self.e("jmp", Label(self.ctx.loop_stack[-1][0]))
        else:  # pragma: no cover
            raise CompileError(f"unknown statement {s!r}")

    def _gen_vardecl(self, s: A.VarDecl) -> None:
        if s.array_size is not None:
            self.ctx.alloc_slot(8 * (s.array_size - 1))
            off = self.ctx.alloc_slot(8)
            # store the *highest* offset: the array occupies
            # [rbp-off .. rbp-off+8*size)
            self.ctx.declare(s.name, (s.type, off, s.array_size))
            if s.init is not None:
                raise CompileError("array initializers only for globals")
            return
        off = self.ctx.alloc_slot(8)
        self.ctx.declare(s.name, (s.type, off, None))
        if s.init is not None:
            ty = self._gen_expr(s.init)
            self._coerce(ty, s.type)
            if s.type == "double":
                self.e("movsd", self.slot(off), XMM0)
            else:
                self.e("mov", self.slot(off), RAX)

    def _gen_assign(self, s: A.Assign) -> None:
        if isinstance(s.target, A.Var):
            ty, loc, is_arr = self._resolve_var(s.target.name)
            if is_arr:
                raise CompileError(f"cannot assign to array {s.target.name!r}")
            vty = self._gen_expr(s.value)
            self._coerce(vty, ty)
            if ty == "double":
                self.e("movsd", loc, XMM0)
            else:
                self.e("mov", loc, RAX)
            return
        # Index target: value first (into a temp), then the address
        elem_ty = self._elem_type_of(s.target.base)
        is_fp = elem_ty == "double"
        vty = self._gen_expr(s.value)
        self._coerce(vty, elem_ty)
        t = self.ctx.alloc_temp(is_fp)
        if is_fp:
            self.e("movsd", self.slot(t), XMM0)
        else:
            self.e("mov", self.slot(t), RAX)
        self._gen_address(s.target)  # address in rax
        if is_fp:
            self.e("movsd", XMM0, self.slot(t))
            self.e("movsd", Mem(base="rax"), XMM0)
        else:
            self.e("mov", RCX, self.slot(t))
            self.e("mov", Mem(base="rax"), RCX)
        self.ctx.free_temp(t, is_fp)

    def _gen_if(self, s: A.If) -> None:
        els = self.new_label("else")
        end = self.new_label("endif")
        self._gen_cond_branch(s.cond, els)
        self._gen_block(s.then)
        if s.els is not None:
            self.e("jmp", Label(end))
        self.asm.label(els)
        if s.els is not None:
            self._gen_block(s.els)
            self.asm.label(end)

    def _gen_while(self, s: A.While) -> None:
        top = self.new_label("while")
        end = self.new_label("wend")
        self.asm.label(top)
        self._gen_cond_branch(s.cond, end)
        self.ctx.loop_stack.append((top, end))
        self._gen_block(s.body)
        self.ctx.loop_stack.pop()
        self.e("jmp", Label(top))
        self.asm.label(end)

    def _gen_for(self, s: A.For) -> None:
        self.ctx.push_scope()  # the init declaration scopes to the loop
        if s.init is not None:
            self._gen_stmt(s.init)
        top = self.new_label("for")
        step = self.new_label("fstep")
        end = self.new_label("fend")
        self.asm.label(top)
        if s.cond is not None:
            self._gen_cond_branch(s.cond, end)
        self.ctx.loop_stack.append((step, end))
        self._gen_block(s.body)
        self.ctx.loop_stack.pop()
        self.asm.label(step)
        if s.step is not None:
            self._gen_stmt(s.step)
        self.e("jmp", Label(top))
        self.asm.label(end)
        self.ctx.pop_scope()

    def _gen_return(self, s: A.Return) -> None:
        if s.value is not None:
            ty = self._gen_expr(s.value)
            self._coerce(ty, self.ctx.ret_type)
        self.e("jmp", Label(self.ctx.epilogue))

    def _gen_cond_branch(self, cond, false_label: str) -> None:
        ty = self._gen_expr(cond)
        self._truthify(ty)
        self.e("test", RAX, RAX)
        self.e("je", Label(false_label))

    # ------------------------------------------------------------------ #
    # expressions — value lands in xmm0 (double) or rax (everything else) #
    # ------------------------------------------------------------------ #

    def _resolve_var(self, name: str):
        """-> (type, access operand, is_array)."""
        hit = self.ctx.lookup(name)
        if hit is not None:
            ty, off, arr = hit
            return ty, self.slot(off), arr is not None
        if name in self.globals:
            ty, arr = self.globals[name]
            return ty, Mem(disp=Label(name)), arr is not None
        raise CompileError(f"undefined variable {name!r}")

    def _var_base_address(self, name: str) -> None:
        """Load the address of an array variable into rax."""
        hit = self.ctx.lookup(name)
        if hit is not None:
            _, off, _ = hit
            self.e("lea", RAX, self.slot(off))
        else:
            self.e("movabs", RAX, Label(name))

    def _elem_type_of(self, base) -> str:
        """Element type loaded through ``base[...]``."""
        if isinstance(base, A.Var):
            ty, _, _ = self._resolve_var_type(base.name)
            return "double" if ty.startswith("double") else "long"
        if isinstance(base, A.Index):  # no 2-D arrays
            raise CompileError("multi-dimensional indexing is not supported")
        ty = self._type_of(base)
        return "double" if ty.startswith("double") else "long"

    def _resolve_var_type(self, name: str):
        hit = self.ctx.lookup(name)
        if hit is not None:
            return hit
        if name in self.globals:
            ty, arr = self.globals[name]
            return ty, None, arr
        raise CompileError(f"undefined variable {name!r}")

    def _type_of(self, e) -> str:
        """Best-effort static type (only where codegen needs lookahead)."""
        if isinstance(e, A.Num):
            return "long"
        if isinstance(e, A.FNum):
            return "double"
        if isinstance(e, A.Str):
            return "str"
        if isinstance(e, A.Var):
            ty, _, arr = self._resolve_var_type(e.name)
            return ty + "*" if (arr and not _is_ptr(ty)) else ty
        if isinstance(e, A.Index):
            return self._elem_type_of(e.base)
        if isinstance(e, A.Cast):
            return e.type
        if isinstance(e, A.UnOp):
            return self._type_of(e.operand) if e.op == "-" else "long"
        if isinstance(e, A.Call):
            return self._call_return_type(e.name)
        if isinstance(e, A.BinOp):
            if e.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
                return "long"
            lt, rt = self._type_of(e.left), self._type_of(e.right)
            if _is_ptr(lt):
                return lt
            if _is_ptr(rt):
                return rt
            return "double" if "double" in (lt, rt) else "long"
        raise CompileError(f"cannot type expression {e!r}")

    def _call_return_type(self, name: str) -> str:
        if name in ("sqrt", "fabs", "__double"):
            return "double"
        if name in ("__bits", "clock"):
            return "long"
        if name in self.funcs:
            return self.funcs[name].ret_type
        if name in EXTERN_RETURNS:
            return EXTERN_RETURNS[name]
        raise CompileError(f"call to undefined function {name!r}")

    # ------------------------------------------------------------------ #

    def _gen_expr(self, e) -> str:
        if isinstance(e, A.Num):
            self.e("movabs", RAX, Imm(e.value))
            return "long"
        if isinstance(e, A.FNum):
            lbl = self.float_const(e.value)
            self.e("movsd", XMM0, Mem(disp=Label(lbl)))
            return "double"
        if isinstance(e, A.Str):
            self.e("movabs", RAX, Label(self.string_const(e.value)))
            return "str"
        if isinstance(e, A.Var):
            ty, loc, is_arr = self._resolve_var(e.name)
            if is_arr:
                self._var_base_address(e.name)
                return ty + "*" if not _is_ptr(ty) else ty
            if ty == "double":
                self.e("movsd", XMM0, loc)
            else:
                self.e("mov", RAX, loc)
            return ty
        if isinstance(e, A.Index):
            elem = self._elem_type_of(e.base)
            self._gen_address(e)
            if elem == "double":
                self.e("movsd", XMM0, Mem(base="rax"))
            else:
                self.e("mov", RAX, Mem(base="rax"))
            return elem
        if isinstance(e, A.Cast):
            src_ty = self._gen_expr(e.operand)
            self._coerce(src_ty, e.type)
            return e.type
        if isinstance(e, A.UnOp):
            return self._gen_unop(e)
        if isinstance(e, A.BinOp):
            return self._gen_binop(e)
        if isinstance(e, A.Call):
            return self._gen_call(e)
        raise CompileError(f"cannot compile expression {e!r}")

    def _gen_address(self, e: A.Index) -> None:
        """Element address of ``base[index]`` into rax."""
        base_ty = self._gen_expr(e.base)
        if not (_is_ptr(base_ty) or base_ty == "long"):
            raise CompileError(f"cannot index a value of type {base_ty}")
        t = self.ctx.alloc_temp(False)
        self.e("mov", self.slot(t), RAX)
        ity = self._gen_expr(e.index)
        if ity == "double":
            raise CompileError("array index must be an integer")
        self.e("shl", RAX, Imm(3))
        self.e("add", RAX, self.slot(t))
        self.ctx.free_temp(t, False)

    def _gen_unop(self, e: A.UnOp) -> str:
        ty = self._gen_expr(e.operand)
        if e.op == "-":
            if ty == "double":
                # the compiler idiom: flip the sign bit with XORPD —
                # never faults, even on a NaN-boxed operand (§4.2)
                self.e("xorpd", XMM0, Mem(disp=Label(self.mask_const("neg")),
                                          size=16))
                return "double"
            self.e("neg", RAX)
            return "long"
        if e.op == "!":
            self._truthify(ty)
            self.e("test", RAX, RAX)
            self.e("sete", AL)
            self.e("movzx", RAX, AL)
            return "long"
        if e.op == "~":
            if ty == "double":
                raise CompileError("~ requires an integer operand")
            self.e("not", RAX)
            return "long"
        raise CompileError(f"unknown unary operator {e.op!r}")

    _CMP_LONG = {"<": "setl", "<=": "setle", ">": "setg", ">=": "setge",
                 "==": "sete", "!=": "setne"}

    def _gen_binop(self, e: A.BinOp) -> str:
        op = e.op
        if op in ("&&", "||"):
            return self._gen_logical(e)
        lt = self._type_of(e.left)
        rt = self._type_of(e.right)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            if "double" in (lt, rt):
                return self._gen_fcompare(e, op)
            return self._gen_icompare(e, op)
        # pointer arithmetic: p + i scales by 8 (element size)
        if _is_ptr(lt) or _is_ptr(rt):
            if op not in ("+", "-"):
                raise CompileError(f"operator {op!r} invalid on pointers")
            return self._gen_ptr_arith(e, lt, rt)
        if "double" in (lt, rt):
            if op not in ("+", "-", "*", "/"):
                raise CompileError(f"operator {op!r} invalid on doubles")
            return self._gen_farith(e, op)
        return self._gen_iarith(e, op)

    def _gen_farith(self, e: A.BinOp, op: str) -> str:
        mn = {"+": "addsd", "-": "subsd", "*": "mulsd", "/": "divsd"}[op]
        # fast path (the -O1 shape): when the right operand is
        # addressable without touching xmm0, fold it into the FP
        # instruction's memory operand — no spill, no reload
        rop_gen = self._simple_fp_operand(e.right)
        if rop_gen is not None:
            lt = self._gen_expr(e.left)
            self._coerce(lt, "double")
            self.e(mn, XMM0, rop_gen())
            return "double"
        lt = self._gen_expr(e.left)
        self._coerce(lt, "double")
        t = self.ctx.alloc_temp(True)
        self.e("movsd", self.slot(t), XMM0)
        rt = self._gen_expr(e.right)
        self._coerce(rt, "double")
        self.e("movsd", XMM1, self.slot(t))  # left
        self.e(mn, XMM1, XMM0)
        self.e("movapd", XMM0, XMM1)
        self.ctx.free_temp(t, True)
        return "double"

    # ------------------------------------------------------------------ #
    # addressable-operand analysis (the -O1 memory-operand fast path)     #
    # ------------------------------------------------------------------ #

    def _simple_fp_operand(self, e):
        """If ``e`` is a double-typed expression whose value can be
        addressed without clobbering xmm0, return a thunk that emits
        any address computation (using rax/rcx only) and returns the
        operand.  Otherwise None."""
        if isinstance(e, A.FNum):
            lbl = self.float_const(e.value)
            return lambda: Mem(disp=Label(lbl))
        if isinstance(e, A.Var):
            try:
                ty, loc, is_arr = self._resolve_var(e.name)
            except CompileError:
                return None
            if ty == "double" and not is_arr:
                return lambda: loc
            return None
        if isinstance(e, A.Index):
            try:
                if self._elem_type_of(e.base) != "double":
                    return None
            except CompileError:
                return None
            if not (isinstance(e.base, A.Var)
                    and self._xmm_free_int_expr(e.index)):
                return None

            def emit() -> Mem:
                self._gen_address(e)  # rax/rcx only (index is xmm-free)
                return Mem(base="rax")

            return emit
        return None

    def _xmm_free_int_expr(self, e) -> bool:
        """True if evaluating ``e`` provably never touches xmm0
        (integer-only, no calls, no float casts)."""
        if isinstance(e, A.Num):
            return True
        if isinstance(e, A.Var):
            try:
                ty, _, is_arr = self._resolve_var(e.name)
            except CompileError:
                return False
            return ty != "double" and not is_arr
        if isinstance(e, A.BinOp):
            if e.op in ("&&", "||"):
                return False  # truthify may touch xmm registers
            return (self._xmm_free_int_expr(e.left)
                    and self._xmm_free_int_expr(e.right))
        if isinstance(e, A.UnOp):
            return e.op in ("-", "~") and self._xmm_free_int_expr(e.operand)
        if isinstance(e, A.Index):
            try:
                elem = self._elem_type_of(e.base)
            except CompileError:
                return False
            return (elem != "double" and isinstance(e.base, A.Var)
                    and self._xmm_free_int_expr(e.index))
        return False

    def _gen_iarith(self, e: A.BinOp, op: str) -> str:
        self._expect_long(self._gen_expr(e.left), op)
        t = self.ctx.alloc_temp(False)
        self.e("mov", self.slot(t), RAX)
        self._expect_long(self._gen_expr(e.right), op)
        self.e("mov", RCX, RAX)
        self.e("mov", RAX, self.slot(t))
        self.ctx.free_temp(t, False)
        if op == "+":
            self.e("add", RAX, RCX)
        elif op == "-":
            self.e("sub", RAX, RCX)
        elif op == "*":
            self.e("imul", RAX, RCX)
        elif op in ("/", "%"):
            self.e("cqo")
            self.e("idiv", RCX)
            if op == "%":
                self.e("mov", RAX, RDX)
        elif op == "&":
            self.e("and", RAX, RCX)
        elif op == "|":
            self.e("or", RAX, RCX)
        elif op == "^":
            self.e("xor", RAX, RCX)
        elif op == "<<":
            self.e("shl", RAX, CL)
        elif op == ">>":
            self.e("sar", RAX, CL)
        else:  # pragma: no cover
            raise CompileError(f"unknown operator {op!r}")
        return "long"

    def _gen_ptr_arith(self, e: A.BinOp, lt: str, rt: str) -> str:
        ptr_left = _is_ptr(lt)
        pty = lt if ptr_left else rt
        lty = self._gen_expr(e.left)
        t = self.ctx.alloc_temp(False)
        self.e("mov", self.slot(t), RAX)
        self._gen_expr(e.right)
        self.e("mov", RCX, RAX)
        self.e("mov", RAX, self.slot(t))
        self.ctx.free_temp(t, False)
        # scale the integer side by the 8-byte element size
        if ptr_left:
            self.e("shl", RCX, Imm(3))
        else:
            self.e("shl", RAX, Imm(3))
        if e.op == "+":
            self.e("add", RAX, RCX)
        else:
            if not ptr_left:
                raise CompileError("cannot subtract a pointer from an int")
            self.e("sub", RAX, RCX)
        del lty
        return pty

    def _gen_icompare(self, e: A.BinOp, op: str) -> str:
        self._gen_expr(e.left)
        t = self.ctx.alloc_temp(False)
        self.e("mov", self.slot(t), RAX)
        self._gen_expr(e.right)
        self.e("mov", RCX, RAX)
        self.e("mov", RAX, self.slot(t))
        self.ctx.free_temp(t, False)
        self.e("cmp", RAX, RCX)
        self.e(self._CMP_LONG[op], AL)
        self.e("movzx", RAX, AL)
        return "long"

    def _gen_fcompare(self, e: A.BinOp, op: str) -> str:
        lt = self._gen_expr(e.left)
        self._coerce(lt, "double")
        t = self.ctx.alloc_temp(True)
        self.e("movsd", self.slot(t), XMM0)
        rt = self._gen_expr(e.right)
        self._coerce(rt, "double")
        self.e("movsd", XMM1, self.slot(t))  # xmm1 = left, xmm0 = right
        self.ctx.free_temp(t, True)
        if op == ">":
            self.e("ucomisd", XMM1, XMM0)
            self.e("seta", AL)
        elif op == ">=":
            self.e("ucomisd", XMM1, XMM0)
            self.e("setae", AL)
        elif op == "<":
            self.e("ucomisd", XMM0, XMM1)
            self.e("seta", AL)
        elif op == "<=":
            self.e("ucomisd", XMM0, XMM1)
            self.e("setae", AL)
        elif op == "==":
            self.e("ucomisd", XMM1, XMM0)
            self.e("setnp", CL)
            self.e("sete", AL)
            self.e("and", AL, CL)
        else:  # !=
            self.e("ucomisd", XMM1, XMM0)
            self.e("setp", CL)
            self.e("setne", AL)
            self.e("or", AL, CL)
        self.e("movzx", RAX, AL)
        return "long"

    def _gen_logical(self, e: A.BinOp) -> str:
        out_false = self.new_label("lfalse")
        out_true = self.new_label("ltrue")
        end = self.new_label("lend")
        if e.op == "&&":
            for side in (e.left, e.right):
                ty = self._gen_expr(side)
                self._truthify(ty)
                self.e("test", RAX, RAX)
                self.e("je", Label(out_false))
            self.e("jmp", Label(out_true))
        else:  # ||
            for side in (e.left, e.right):
                ty = self._gen_expr(side)
                self._truthify(ty)
                self.e("test", RAX, RAX)
                self.e("jne", Label(out_true))
            self.e("jmp", Label(out_false))
        self.asm.label(out_true)
        self.e("mov", RAX, Imm(1))
        self.e("jmp", Label(end))
        self.asm.label(out_false)
        self.e("mov", RAX, Imm(0))
        self.asm.label(end)
        return "long"

    # ------------------------------------------------------------------ #
    # calls                                                               #
    # ------------------------------------------------------------------ #

    def _gen_call(self, e: A.Call) -> str:
        name = e.name
        # intrinsics first
        if name == "sqrt" and len(e.args) == 1:
            ty = self._gen_expr(e.args[0])
            self._coerce(ty, "double")
            self.e("sqrtsd", XMM0, XMM0)
            return "double"
        if name == "fabs" and len(e.args) == 1:
            ty = self._gen_expr(e.args[0])
            self._coerce(ty, "double")
            # the ANDPD idiom: clears the sign bit without faulting (§4.2)
            self.e("andpd", XMM0, Mem(disp=Label(self.mask_const("abs")),
                                      size=16))
            return "double"
        if name == "__bits":
            # Fig. 6: reinterpret a double's bits through memory — the
            # canonical VSA *sink* (integer load of FP-stored data)
            ty = self._gen_expr(e.args[0])
            self._coerce(ty, "double")
            t = self.ctx.alloc_temp(True)
            self.e("movsd", self.slot(t), XMM0)
            self.e("mov", RAX, self.slot(t))
            self.ctx.free_temp(t, True)
            return "long"
        if name == "__double":
            ty = self._gen_expr(e.args[0])
            self._expect_long(ty, "__double")
            t = self.ctx.alloc_temp(False)
            self.e("mov", self.slot(t), RAX)
            self.e("movsd", XMM0, self.slot(t))
            self.ctx.free_temp(t, False)
            return "double"

        if name in self.funcs:
            param_types = [p.type for p in self.funcs[name].params]
            ret = self.funcs[name].ret_type
            is_extern = False
        elif name in EXTERN_RETURNS:
            param_types = None  # variadic / native — pass natural types
            ret = EXTERN_RETURNS[name]
            is_extern = True
        else:
            raise CompileError(f"call to undefined function {name!r}")

        # evaluate args left-to-right into temps
        temps: list[tuple[int, str]] = []
        for i, arg in enumerate(e.args):
            ty = self._gen_expr(arg)
            if param_types is not None:
                if i >= len(param_types):
                    raise CompileError(f"too many args to {name!r}")
                self._coerce(ty, param_types[i])
                ty = param_types[i]
            elif is_extern and name in _LIBM_SET and ty == "long":
                self._coerce(ty, "double")
                ty = "double"
            t = self.ctx.alloc_temp(ty == "double")
            if ty == "double":
                self.e("movsd", self.slot(t), XMM0)
            else:
                self.e("mov", self.slot(t), RAX)
            temps.append((t, ty))
        if param_types is not None and len(temps) < len(param_types):
            raise CompileError(f"too few args to {name!r}")

        # marshal into SysV registers
        int_i = fp_i = 0
        for t, ty in temps:
            if ty == "double":
                self.e("movsd", Xmm(fp_i), self.slot(t))
                fp_i += 1
            else:
                if int_i >= len(INT_ARG_REGS):
                    raise CompileError(f"too many integer args to {name!r}")
                self.e("mov", Reg(INT_ARG_REGS[int_i]), self.slot(t))
                int_i += 1
            self.ctx.free_temp(t, ty == "double")

        if is_extern:
            self.externs.add(name)
        self.e("call", Label(name))
        return ret

    # ------------------------------------------------------------------ #
    # coercions                                                           #
    # ------------------------------------------------------------------ #

    def _coerce(self, from_ty: str, to_ty: str) -> None:
        if from_ty == to_ty or to_ty == "void":
            return
        int_like = ("long", "str") + tuple(
            t for t in (from_ty, to_ty) if _is_ptr(t)
        )
        if from_ty in int_like and to_ty in int_like:
            return  # pointers/longs share a register class
        if from_ty in int_like and to_ty == "double":
            self.e("cvtsi2sd", XMM0, RAX)
            return
        if from_ty == "double" and to_ty in int_like:
            self.e("cvttsd2si", RAX, XMM0)  # C truncation semantics
            return
        raise CompileError(f"cannot convert {from_ty} to {to_ty}")

    def _truthify(self, ty: str) -> None:
        """Turn the current value into a 0/1 in rax (C truthiness)."""
        if ty == "double":
            zero = self.float_const(0.0)
            self.e("movsd", XMM1, Mem(disp=Label(zero)))
            self.e("ucomisd", XMM0, XMM1)
            self.e("setp", CL)
            self.e("setne", AL)
            self.e("or", AL, CL)
            self.e("movzx", RAX, AL)
        # long/pointer: already a register value; nonzero == true

    @staticmethod
    def _expect_long(ty: str, op: str) -> None:
        if ty == "double":
            raise CompileError(f"operator {op!r} requires integer operands")


_LIBM_SET = frozenset(_LIBM)
