"""fpc — a mini-C compiler targeting the simulated ISA.

The paper's workloads are C/C++/Fortran binaries from gcc 5.4; ours
are fpc programs.  The point of having a real (if small) compiler is
that it emits the *idioms that make x64 FP non-virtualizable*:

* unary negation of a double compiles to ``xorpd`` with a sign-mask
  constant and ``fabs()`` to ``andpd`` (§4.2: "modern compilers will
  often optimize common operations by operating on the bits of a
  floating point register directly");
* the ``__bits()`` / ``__double()`` intrinsics compile to the
  store-then-integer-load sequence of Fig. 6, producing the
  source/sink pairs the VSA analysis must find;
* doubles spill through stack slots constantly (a -O0-style code
  shape), so NaN-boxes genuinely live in program memory, which is
  what the conservative GC scans.

Language: ``double``, ``long``, 1-D arrays, pointers as parameters,
full expression/statement set, calls into the simulated libc/libm.
See :mod:`repro.compiler.parser` for the grammar.
"""

from repro.compiler.driver import (compile_file, compile_program,
                                   compile_source, instrument_fp_sites)

__all__ = ["compile_source", "compile_file", "compile_program",
           "instrument_fp_sites"]
