"""Tokenizer for the fpc mini-C language."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError

KEYWORDS = frozenset({
    "double", "long", "void", "if", "else", "while", "for", "return",
    "break", "continue",
})

#: multi-character operators, longest first
_OPS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";",
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str       # "num", "fnum", "str", "ident", "kw", or the op itself
    value: object
    line: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}({self.value!r})@{self.line}"


def tokenize(source: str) -> list[Token]:
    """Lex fpc source into a token list (raises CompileError on junk)."""
    toks: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i)
            if j < 0:
                raise CompileError(f"line {line}: unterminated comment")
            line += source.count("\n", i, j)
            i = j + 2
            continue
        if c == '"':
            j = i + 1
            buf: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", "0": "\0",
                                "\\": "\\", '"': '"'}.get(esc, esc))
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise CompileError(f"line {line}: unterminated string")
            toks.append(Token("str", "".join(buf), line))
            i = j + 1
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and (source[j].isdigit() or source[j] in ".eExX+-"):
                ch = source[j]
                if ch in "+-" and source[j - 1] not in "eE":
                    break
                if ch == ".":
                    is_float = True
                if ch in "eE" and not source[i:j].lower().startswith("0x"):
                    is_float = True
                if ch in "xX" and source[i:j] != "0":
                    break
                j += 1
            text = source[i:j]
            try:
                if is_float:
                    toks.append(Token("fnum", float(text), line))
                elif text.lower().startswith("0x"):
                    toks.append(Token("num", int(text, 16), line))
                else:
                    toks.append(Token("num", int(text), line))
            except ValueError:
                raise CompileError(f"line {line}: bad number {text!r}") from None
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            toks.append(Token("kw" if word in KEYWORDS else "ident", word, line))
            i = j
            continue
        for op in _OPS:
            if source.startswith(op, i):
                toks.append(Token(op, op, line))
                i += len(op)
                break
        else:
            raise CompileError(f"line {line}: unexpected character {c!r}")
    toks.append(Token("eof", None, line))
    return toks
