"""Recursive-descent parser for fpc.

Grammar (simplified EBNF)::

    program     := (global | funcdef)*
    global      := type ident ("[" num "]")? ("=" const-init)? ";"
    funcdef     := type ident "(" params? ")" block
    type        := ("double" | "long" | "void") "*"?
    block       := "{" stmt* "}"
    stmt        := vardecl | assign ";" | "if" ... | "while" ... |
                   "for" "(" simple? ";" expr? ";" simple? ")" block |
                   "return" expr? ";" | "break" ";" | "continue" ";" |
                   expr ";" | block
    expr        := logical-or with C precedence; unary - ! ~; casts
                   "(long) e" / "(double) e"; calls; indexing

Assignment is a statement (no chained ``a = b = c``), which keeps
lvalue handling simple without giving up anything the workloads need.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.compiler import ast as A
from repro.compiler.lexer import Token, tokenize


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.toks = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    def peek(self, k: int = 0) -> Token:
        return self.toks[min(self.pos + k, len(self.toks) - 1)]

    def next(self) -> Token:
        t = self.toks[self.pos]
        self.pos += 1
        return t

    def expect(self, kind: str, value: object = None) -> Token:
        t = self.next()
        if t.kind != kind or (value is not None and t.value != value):
            raise CompileError(
                f"line {t.line}: expected {value or kind!r}, got {t.value!r}"
            )
        return t

    def at(self, kind: str, value: object = None) -> bool:
        t = self.peek()
        return t.kind == kind and (value is None or t.value == value)

    def accept(self, kind: str, value: object = None) -> bool:
        if self.at(kind, value):
            self.next()
            return True
        return False

    # ------------------------------------------------------------------ #
    def parse_program(self) -> A.Program:
        globals_: list = []
        functions: list = []
        while not self.at("eof"):
            ty = self._parse_type()
            name = self.expect("ident").value
            if self.at("("):
                functions.append(self._parse_funcdef(ty, name))
            else:
                globals_.append(self._parse_global(ty, name))
        return A.Program(globals_, functions)

    def _parse_type(self) -> str:
        t = self.next()
        if t.kind != "kw" or t.value not in ("double", "long", "void"):
            raise CompileError(f"line {t.line}: expected type, got {t.value!r}")
        ty = t.value
        if self.accept("*"):
            ty += "*"
        return ty

    def _parse_global(self, ty: str, name: str) -> A.GlobalVar:
        array_size = None
        init = None
        if self.accept("["):
            array_size = self.expect("num").value
            self.expect("]")
        if self.accept("="):
            if self.accept("{"):
                items: list = []
                while not self.accept("}"):
                    items.append(self._parse_const())
                    if not self.at("}"):
                        self.expect(",")
                init = items
            else:
                init = self._parse_const()
        self.expect(";")
        return A.GlobalVar(name, ty, init, array_size)

    def _parse_const(self):
        neg = self.accept("-")
        t = self.next()
        if t.kind == "num":
            return -t.value if neg else t.value
        if t.kind == "fnum":
            return -t.value if neg else t.value
        raise CompileError(f"line {t.line}: expected constant initializer")

    def _parse_funcdef(self, ret_type: str, name: str) -> A.FuncDef:
        self.expect("(")
        params: list = []
        if not self.at(")"):
            while True:
                pty = self._parse_type()
                pname = self.expect("ident").value
                params.append(A.Param(pname, pty))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self._parse_block()
        return A.FuncDef(name, ret_type, params, body)

    # ------------------------------------------------------------------ #
    # statements                                                          #
    # ------------------------------------------------------------------ #

    def _parse_block(self) -> A.Block:
        self.expect("{")
        stmts: list = []
        while not self.accept("}"):
            stmts.append(self._parse_stmt())
        return A.Block(stmts)

    def _parse_stmt(self):
        t = self.peek()
        if t.kind == "{":
            return self._parse_block()
        if t.kind == "kw" and t.value in ("double", "long"):
            s = self._parse_vardecl()
            self.expect(";")
            return s
        if t.kind == "kw" and t.value == "if":
            return self._parse_if()
        if t.kind == "kw" and t.value == "while":
            self.next()
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            return A.While(cond, self._parse_stmt_as_block())
        if t.kind == "kw" and t.value == "for":
            return self._parse_for()
        if t.kind == "kw" and t.value == "return":
            self.next()
            value = None if self.at(";") else self._parse_expr()
            self.expect(";")
            return A.Return(value)
        if t.kind == "kw" and t.value == "break":
            self.next()
            self.expect(";")
            return A.Break()
        if t.kind == "kw" and t.value == "continue":
            self.next()
            self.expect(";")
            return A.Continue()
        s = self._parse_simple()
        self.expect(";")
        return s

    def _parse_stmt_as_block(self) -> A.Block:
        s = self._parse_stmt()
        return s if isinstance(s, A.Block) else A.Block([s])

    def _parse_vardecl(self) -> A.VarDecl:
        ty = self._parse_type()
        name = self.expect("ident").value
        array_size = None
        init = None
        if self.accept("["):
            array_size = self.expect("num").value
            self.expect("]")
        if self.accept("="):
            init = self._parse_expr()
        return A.VarDecl(name, ty, init, array_size)

    def _parse_if(self) -> A.If:
        self.expect("kw", "if")
        self.expect("(")
        cond = self._parse_expr()
        self.expect(")")
        then = self._parse_stmt_as_block()
        els = None
        if self.at("kw", "else"):
            self.next()
            els = self._parse_stmt_as_block()
        return A.If(cond, then, els)

    def _parse_for(self) -> A.For:
        self.expect("kw", "for")
        self.expect("(")
        init = None
        if not self.at(";"):
            if self.at("kw", "double") or self.at("kw", "long"):
                init = self._parse_vardecl()
            else:
                init = self._parse_simple()
        self.expect(";")
        cond = None if self.at(";") else self._parse_expr()
        self.expect(";")
        step = None if self.at(")") else self._parse_simple()
        self.expect(")")
        return A.For(init, cond, step, self._parse_stmt_as_block())

    def _parse_simple(self):
        """Assignment or expression statement (no trailing ';')."""
        start = self.pos
        expr = self._parse_expr()
        if self.accept("="):
            if not isinstance(expr, (A.Var, A.Index)):
                t = self.toks[start]
                raise CompileError(f"line {t.line}: invalid assignment target")
            return A.Assign(expr, self._parse_expr())
        return A.ExprStmt(expr)

    # ------------------------------------------------------------------ #
    # expressions (precedence climbing)                                   #
    # ------------------------------------------------------------------ #

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_expr(self, level: int = 0):
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        ops = self._PRECEDENCE[level]
        left = self._parse_expr(level + 1)
        while self.peek().kind in ops:
            op = self.next().kind
            right = self._parse_expr(level + 1)
            left = A.BinOp(op, left, right)
        return left

    def _parse_unary(self):
        t = self.peek()
        if t.kind in ("-", "!", "~"):
            self.next()
            operand = self._parse_unary()
            # constant-fold negated literals (as real compilers do —
            # no xorpd idiom is emitted for `-1.5`)
            if t.kind == "-" and isinstance(operand, A.FNum):
                return A.FNum(-operand.value)
            if t.kind == "-" and isinstance(operand, A.Num):
                return A.Num(-operand.value)
            return A.UnOp(t.kind, operand)
        # cast: "(" type ["*"] ")" unary
        if t.kind == "(" and self.peek(1).kind == "kw" and \
                self.peek(1).value in ("long", "double") and \
                (self.peek(2).kind == ")" or
                 (self.peek(2).kind == "*" and self.peek(3).kind == ")")):
            self.next()
            ty = self.next().value
            if self.accept("*"):
                ty += "*"
            self.expect(")")
            return A.Cast(ty, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self):
        e = self._parse_primary()
        while True:
            if self.accept("["):
                idx = self._parse_expr()
                self.expect("]")
                e = A.Index(e, idx)
            else:
                return e

    def _parse_primary(self):
        t = self.next()
        if t.kind == "num":
            return A.Num(t.value)
        if t.kind == "fnum":
            return A.FNum(t.value)
        if t.kind == "str":
            return A.Str(t.value)
        if t.kind == "(":
            e = self._parse_expr()
            self.expect(")")
            return e
        if t.kind == "ident":
            if self.accept("("):
                args: list = []
                if not self.at(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                return A.Call(t.value, args)
            return A.Var(t.value)
        raise CompileError(f"line {t.line}: unexpected token {t.value!r}")


def parse(source: str) -> A.Program:
    """Parse fpc source text into a Program AST."""
    return Parser(tokenize(source)).parse_program()
