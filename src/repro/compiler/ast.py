"""AST node definitions for fpc."""

from __future__ import annotations

from dataclasses import dataclass, field


# ------------------------------- expressions ------------------------------ #

@dataclass(slots=True)
class Num:
    value: int


@dataclass(slots=True)
class FNum:
    value: float


@dataclass(slots=True)
class Str:
    value: str


@dataclass(slots=True)
class Var:
    name: str


@dataclass(slots=True)
class Index:
    base: "Expr"
    index: "Expr"


@dataclass(slots=True)
class Call:
    name: str
    args: list


@dataclass(slots=True)
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(slots=True)
class UnOp:
    op: str  # "-", "!", "~"
    operand: "Expr"


@dataclass(slots=True)
class Cast:
    type: str  # "long" | "double"
    operand: "Expr"


Expr = Num | FNum | Str | Var | Index | Call | BinOp | UnOp | Cast


# ------------------------------- statements ------------------------------- #

@dataclass(slots=True)
class VarDecl:
    name: str
    type: str            # "double" | "long" | "double*" | "long*"
    init: Expr | None
    array_size: int | None = None


@dataclass(slots=True)
class Assign:
    target: Var | Index
    value: Expr


@dataclass(slots=True)
class If:
    cond: Expr
    then: "Block"
    els: "Block | None"


@dataclass(slots=True)
class While:
    cond: Expr
    body: "Block"


@dataclass(slots=True)
class For:
    init: "Stmt | None"
    cond: Expr | None
    step: "Stmt | None"
    body: "Block"


@dataclass(slots=True)
class Return:
    value: Expr | None


@dataclass(slots=True)
class ExprStmt:
    expr: Expr


@dataclass(slots=True)
class Break:
    pass


@dataclass(slots=True)
class Continue:
    pass


@dataclass(slots=True)
class Block:
    stmts: list = field(default_factory=list)


Stmt = VarDecl | Assign | If | While | For | Return | ExprStmt | Break | Continue | Block


# ------------------------------ declarations ------------------------------ #

@dataclass(slots=True)
class Param:
    name: str
    type: str


@dataclass(slots=True)
class FuncDef:
    name: str
    ret_type: str        # "double" | "long" | "void"
    params: list
    body: Block


@dataclass(slots=True)
class GlobalVar:
    name: str
    type: str
    init: object = None            # int | float | list of either
    array_size: int | None = None


@dataclass(slots=True)
class Program:
    globals: list
    functions: list
