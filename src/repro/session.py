"""The Session facade: one object that owns a whole FPVM run.

``Session`` is the single entry point the CLI, the harness, and the
figure scripts share (the historical ``run_native`` / ``run_under_fpvm``
wrappers are gone — a native run is ``Session(target, None)``):
build the binary, run the static analyzer/patcher, load the machine,
construct and install the FPVM, and — when tracing is enabled — wire
one :class:`~repro.trace.sinks.TraceSink` through every layer
(machine, runtime, emulator, GC, bind cache) and stamp the stream with
a :class:`~repro.trace.events.RunMetaEvent` header carrying the static
FP-site inventory.

::

    from repro.session import Session
    from repro.trace import NDJSONSink

    s = Session("lorenz", arith="mpfr:200", trace=NDJSONSink("t.ndjson"))
    result = s.run()
    s.close()

A native (no-FPVM) run is a Session with ``arith=None``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.asm.program import Binary
from repro.arith import AlternativeArithmetic, from_spec
from repro.errors import MachineError
from repro.analysis import analyze_and_patch
from repro.fpvm.runtime import FPVM, FPVMConfig
from repro.harness.experiment import BatchResult, RunResult
from repro.isa.opcodes import is_fp_trapping
from repro.machine.batch import BatchMachine, LaneSpec
from repro.machine.costmodel import PLATFORMS, Platform, R815
from repro.machine.loader import load_binary
from repro.trace.events import (AnalysisEvent, PatchEvent,
                                RangeAnalysisEvent, RunMetaEvent)

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.sinks import TraceSink


def _resolve_builder(target) -> tuple[Callable[[], Binary], str]:
    """Accept a Binary, a builder callable, or a workload name."""
    if isinstance(target, Binary):
        return (lambda: target), ""
    if isinstance(target, str):
        from repro.workloads import get_workload

        spec = get_workload(target)
        return (lambda size="bench": spec.build(size)), target
    return target, ""


class Session:
    """One configured simulated execution, native or under FPVM.

    Parameters
    ----------
    target:
        A :class:`Binary`, a zero-argument builder callable, or a
        built-in workload name (built at ``size``).
    arith:
        An :class:`AlternativeArithmetic`, a spec (``"mpfr:200"`` or
        ``("mpfr", 200)``), or ``None`` for a native run.
    config:
        The :class:`FPVMConfig`; ``trace`` is a shorthand that
        attaches a sink to (a copy of) the config.
    conservative:
        Patch refinement-pruned sinks too (the analysis-v1 behavior).
        The runtime still knows those sites are box-free and answers
        their traps on the analysis fast path.
    oracle:
        A :class:`~repro.analysis.oracle.SoundnessOracle` to attach to
        the machine before the run (usually with ``patch=False``).
    stdin:
        Bytes (or latin-1 ``str``) fed to the guest's ``getchar``
        extern — the scalar counterpart of ``LaneSpec.stdin``.
    params:
        ``{symbol: value}`` pokes applied to named 8-byte data symbols
        before execution (floats as IEEE binary64 bits, ints raw) —
        the scalar counterpart of ``LaneSpec.params``.  Unknown
        symbols raise :class:`~repro.errors.MachineError`.
    """

    def __init__(
        self,
        target,
        arith: AlternativeArithmetic | str | tuple | None = None,
        *,
        config: FPVMConfig | None = None,
        trace: "TraceSink | None" = None,
        platform: Platform | str = R815,
        size: str = "bench",
        patch: bool = True,
        conservative: bool = False,
        delivery_scenario: str = "user",
        predecode: bool = True,
        label: str = "",
        oracle=None,
        stdin: bytes | str = b"",
        params=None,
    ) -> None:
        if isinstance(platform, str):
            platform = PLATFORMS[platform]
        builder, name = _resolve_builder(target)
        if isinstance(target, str):
            binary = builder(size)
        else:
            binary = builder()
        if arith is not None and not isinstance(arith,
                                                AlternativeArithmetic):
            arith = from_spec(arith)
        if config is None:
            config = FPVMConfig()
        if trace is not None:
            from dataclasses import replace

            config = replace(config, trace=trace)
        self.config = config
        self.trace = config.trace
        self.label = label or name
        self.platform = platform
        self.arith = arith
        self.patched = patch and arith is not None
        self.binary = binary
        self.predecode = predecode
        self.delivery_scenario = delivery_scenario
        self._oracle = oracle

        # static FP-site inventory, taken before the patcher rewrites
        # sites: the denominator of the exception-flow coverage report
        fp_sites = [[ins.addr, ins.mnemonic] for ins in binary.text
                    if is_fp_trapping(ins.mnemonic)]

        self.conservative = conservative
        self.analysis = (analyze_and_patch(binary, conservative=conservative)
                         if self.patched else None)
        self.machine = load_binary(binary, platform=platform,
                                   predecode=predecode)
        self.machine.delivery_scenario = delivery_scenario
        self.machine.trace = self.trace
        if stdin:
            self.machine.stdin = (stdin.encode("latin-1")
                                  if isinstance(stdin, str) else bytes(stdin))
        if params:
            from repro.ieee.bits import f64_to_bits

            for pname, val in dict(params).items():
                addr = binary.symbols.get(pname)
                if addr is None:
                    raise MachineError(f"unknown data symbol {pname!r}")
                bits = (f64_to_bits(val) if isinstance(val, float)
                        else int(val) & 0xFFFF_FFFF_FFFF_FFFF)
                self.machine.memory.write(addr, 8, bits)
        if oracle is not None:
            self.machine.set_oracle(oracle)

        if self.trace is not None:
            self.trace.emit(RunMetaEvent(
                label=self.label,
                arith=arith.describe() if arith is not None else "native",
                mode=config.mode if arith is not None else "native",
                platform=platform.name,
                patched=self.patched,
                fp_sites=fp_sites,
            ))
            if self.analysis is not None:
                rep = self.analysis
                self.trace.emit(AnalysisEvent(
                    binary_hash=rep.binary_hash,
                    cache_hit=rep.cache_hit,
                    vsa_ms=rep.vsa_ms,
                    refine_ms=rep.refine_ms,
                    instructions=rep.instructions,
                    functions=rep.functions,
                    contexts=rep.contexts,
                    vsa_iterations=rep.vsa_iterations,
                    fp_store_sites=rep.fp_store_sites,
                    int_load_sites=rep.int_load_sites,
                    sinks=len(rep.sinks),
                    pruned_sinks=len(rep.pruned_sinks),
                    bitwise_sites=len(rep.bitwise_sites),
                    movq_sites=len(rep.movq_sites),
                    extern_demote_sites=len(rep.extern_demote_sites),
                ))
                patch_groups = [
                    ("sink", rep.sinks),
                    ("bitwise", rep.bitwise_sites),
                    ("movq", rep.movq_sites),
                    ("call_demote",
                     [addr for addr, _ in rep.extern_demote_sites]),
                ]
                if conservative:
                    patch_groups.append(("sink_pruned", rep.pruned_sinks))
                for patch_kind, addrs in patch_groups:
                    for addr in addrs:
                        ins = binary.text_map.get(addr)
                        self.trace.emit(PatchEvent(
                            addr=addr,
                            mnemonic=ins.mnemonic if ins is not None else "",
                            patch_kind=patch_kind,
                            source="patcher",
                        ))

        self.fpvm: FPVM | None = None
        self.range_report = None
        if arith is not None:
            self.fpvm = FPVM(arith, config)
            self.fpvm.install(self.machine)
            self.fpvm.apply_analysis(self.analysis)
            if (self.fpvm.sanitizer is not None
                    and self.fpvm.sanitizer.config.exempt):
                # interval-range pass: statically prove sites
                # divergence-free so the dual-path check skips them
                from repro.analysis.ranges import analyze_ranges

                rr = analyze_ranges(
                    binary,
                    threshold=self.fpvm.sanitizer.config.threshold)
                self.fpvm.apply_range_analysis(rr)
                self.range_report = rr
                if self.trace is not None:
                    self.trace.emit(RangeAnalysisEvent(
                        binary_hash=rr.binary_hash,
                        cache_hit=rr.cache_hit,
                        ranges_ms=rr.ranges_ms,
                        iterations=rr.iterations,
                        checkable=len(rr.checkable),
                        proven=len(rr.proven),
                        prove_rate=rr.prove_rate,
                        threshold=rr.threshold,
                    ))

        self._result: RunResult | None = None
        #: structured crash records from the last failed :meth:`run`
        self.crash_records: list[dict] = []

    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int | None = None, *,
            max_cycles: float | None = None,
            final_gc: bool = True,
            crash_report_path=None) -> RunResult:
        """Execute to completion (or a watchdog limit).

        ``max_instructions`` and ``max_cycles`` both raise a typed
        :class:`~repro.errors.WatchdogExpired` when exceeded.  An
        unrecoverable :class:`~repro.errors.MachineError` is contained:
        a structured crash report is built from the still-live machine
        state (written as NDJSON to ``crash_report_path`` when given,
        always kept on :attr:`crash_records`) before the error
        propagates.
        """
        m = self.machine
        if max_cycles is not None:
            m.cycle_watchdog = max_cycles
        t0 = time.perf_counter()
        try:
            m.run(max_instructions)
        except MachineError as exc:
            from repro.faults.crashreport import (build_crash_report,
                                                  write_crash_report)

            ring = self.trace if hasattr(self.trace, "events") else None
            self.crash_records = build_crash_report(
                exc, m, self.fpvm, ring=ring, label=self.label)
            if crash_report_path is not None:
                write_crash_report(crash_report_path, self.crash_records)
            raise
        wall = time.perf_counter() - t0
        if self.fpvm is not None and final_gc:
            self.fpvm.gc.collect(m)
        result = RunResult(
            stdout="".join(m.stdout),
            exit_code=m.exit_code,
            instr_count=m.instr_count,
            fp_instr_count=m.fp_instr_count,
            fp_traps=m.fp_trap_count,
            correctness_traps=m.correctness_trap_count,
            cycles=m.cost.cycles,
            buckets=dict(m.cost.buckets),
            wall_s=wall,
            fpvm=self.fpvm,
            machine=m,
            final_regs=m.regs.snapshot(),
        )
        result.analysis = self.analysis
        self._result = result
        return result

    def run_batch(self, specs, *, final_gc: bool = True) -> BatchResult:
        """Execute N parameterized lanes of this binary in SoA lockstep.

        ``specs`` is a sequence of :class:`~repro.machine.batch.LaneSpec`
        (or plain dicts with the same fields).  All lanes share one
        arithmetic configuration — the Session's own — so "mixed arith"
        batches are expressed as separate Sessions.  Each returned lane
        is bit-identical to a scalar :meth:`run` of the same lane:
        lanes that diverge (branches, faults, FPVM traps, watchdogs)
        are spilled to the scalar interpreter mid-flight.

        Scalar :meth:`run` is exactly the N=1 special case of this
        surface: both produce :class:`RunResult` objects with the same
        fields and semantics.
        """
        if self._oracle is not None:
            raise MachineError(
                "run_batch does not support a soundness oracle; "
                "oracle probes are scalar per-instruction hooks")
        specs = [s if isinstance(s, LaneSpec) else LaneSpec(**s)
                 for s in specs]
        t0 = time.perf_counter()
        bm = BatchMachine(
            self.binary, specs,
            platform=self.platform,
            arith=self.arith,
            config=self.config,
            analysis=self.analysis,
            predecode=self.predecode,
            delivery_scenario=self.delivery_scenario,
            final_gc=final_gc,
        )
        lanes = bm.run()
        wall = time.perf_counter() - t0
        for res, spec in zip(lanes, specs):
            res.analysis = self.analysis
            res.spec = spec
        result = BatchResult(
            lanes=lanes,
            dispatches=bm.dispatches,
            spill_events=bm.spill_events,
            spilled_lanes=bm.spilled_lanes,
            wall_s=wall,
        )
        if self.trace is not None:
            from repro.trace.events import BatchEvent

            self.trace.emit(BatchEvent(
                lanes=len(specs),
                dispatches=bm.dispatches,
                spill_events=bm.spill_events,
                spilled_lanes=bm.spilled_lanes,
                instr_count=bm.instr_count,
                wall_s=wall,
            ))
        return result

    @property
    def result(self) -> RunResult | None:
        """The last :meth:`run` result (``None`` before the first run)."""
        return self._result

    def close(self) -> None:
        """Flush/close the attached trace sink, if any."""
        if self.fpvm is not None and self.fpvm.tracejit is not None:
            # retire rows for still-live loop traces (hits/deopt totals)
            self.fpvm.tracejit.flush_events()
        if self.trace is not None:
            self.trace.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
