"""Trap-site JIT: compile hot trap sites to specialized closures (§4.2).

The trap-and-emulate path pays hardware fault delivery plus the full
decode→bind→emulate pipeline on *every* FP event.  The paper's binary
patching (§3.2/§4.2, e9patch-style call-site rewriting) exists to
erase exactly that round-trip: rewrite the hot site so it calls the
emulation directly.  This module is the simulator's equivalent — after
a site has trapped ``threshold`` times with a stable operand shape,
its predecoded interpreter step is replaced by a specialized closure
that inlines decode + bind + the alternative-arithmetic call and runs
straight from the dispatch loop.  No fault is delivered, no handler
dispatched, no cache probed: the site is "patched".

A compiled step mirrors the slow path exactly:

* non-boxed operands run the SoftFPU first and commit the hardware
  result when no exception flags were raised — identical to an
  untrapped execution;
* any raised flag (or any NaN-boxed operand, which is a signaling NaN
  and therefore *always* flags IE) falls into the inlined emulation:
  unbox → arith op → box, the same calls the trap handler makes.

Consecutive patched sites writing the same XMM register fuse into a
*fused shadow kernel*: one closure executes the whole run and carries
the intermediate result register-to-register as a live arithmetic
value — no NaN-box encode/decode and no ShadowStore allocation for the
temporaries (boxing elision), which is what slashes GC pressure.  Only
the final value of the chain is boxed.  Fusion requires the default
boxing policy: under ``box_exact_results=False`` intermediates would
have been demoted per instruction, changing downstream results for
wide arithmetics.

Degradation always wins: a recoverable fault inside a compiled closure
materializes the architectural state, invalidates the closure (the
interpreter step is restored), and runs the normal degradation ladder;
storm-demoted sites are never compiled.

Staleness: shadow handles are free-listed and the NaN-box encoding is
deterministic, so a reclaimed handle can be re-issued with *identical*
bits for a different value.  Per-site unbox memos therefore register
their handles with the BindCache (``note_shadow_key``) and are flushed
when a GC sweep reclaims them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ArithmeticPortError, NanBoxError
from repro.faults.injector import InjectedFault
from repro.ieee.bits import (F64_DEFAULT_QNAN, F64_EXP_MASK, F64_QNAN_BIT,
                             is_nan64, quiet64)
from repro.isa.operands import Xmm
from repro.fpvm.binding import XmmLoc
from repro.fpvm.nanbox import PAYLOAD_MASK
from repro.machine.predecode import (_base_cost, _f64_reader,
                                     rebuild_blocks_around)
from repro.trace.events import JitCompileEvent, JitHitEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.fpvm.decoder import DecodedInst
    from repro.fpvm.runtime import FPVM
    from repro.isa.instructions import Instruction
    from repro.machine.cpu import Machine

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF

#: duplicated from runtime to avoid a circular import
_RECOVERABLE = (InjectedFault, ArithmeticPortError, NanBoxError)

_BINOPS = frozenset(["addsd", "subsd", "mulsd", "divsd", "minsd", "maxsd"])

#: sentinel: "the fused-kernel state register holds no live value"
_NOVAL = object()


class JitSite:
    """One compiled trap site."""

    __slots__ = ("addr", "ins", "decoded", "kind", "arith_name",
                 "dst_index", "step", "hits", "memo", "fused_head")

    def __init__(self, ins: "Instruction", decoded: "DecodedInst",
                 kind: str) -> None:
        self.addr = ins.addr
        self.ins = ins
        self.decoded = decoded
        self.kind = kind                       # "binop" | "sqrt" | "ucomi"
        self.arith_name = decoded.arith_name
        self.dst_index = ins.operands[0].index
        self.step = None                       # the compiled closure
        self.hits = 0
        #: per-src unbox memo: [a_bits, a_val, b_bits, b_val]
        self.memo = [None, None, None, None]
        self.fused_head = None                 # addr of containing kernel


class TrapSiteJIT:
    """Per-run registry of compiled trap sites and fused kernels."""

    def __init__(self, fpvm: "FPVM", threshold: int) -> None:
        self.fpvm = fpvm
        self.threshold = threshold
        self.sites: dict[int, JitSite] = {}
        #: sites the static analysis proved box-free (pre-short-
        #: circuited like storm-demoted ones; set by apply_analysis)
        self.box_free_sites: frozenset[int] = frozenset()
        #: addr -> (stable-shape trap count, last decoded identity)
        self._counts: dict[int, tuple[int, object]] = {}
        #: addr -> the interpreter step the compile displaced
        self._original: dict[int, object] = {}
        #: head addr -> chain of sites in its fused kernel
        self.fused: dict[int, list[JitSite]] = {}

    # ------------------------------------------------------------------ #
    # trigger                                                             #
    # ------------------------------------------------------------------ #

    def note_trap(self, m: "Machine", ins: "Instruction",
                  decoded: "DecodedInst") -> None:
        """Count one serviced trap; compile the site at the threshold."""
        if getattr(m, "_code", None) is None:
            return  # legacy dispatch loop: nothing to patch into
        addr = ins.addr
        if (addr in self.sites or addr in self.fpvm._demoted_sites
                or addr in self.box_free_sites):
            return
        kind = self._classify(ins)
        if kind is None:
            return
        prev = self._counts.get(addr)
        # a stable operand shape means the same decoded template object
        # (DecodeCache is identity-keyed); a patched/replaced site
        # resets the count
        count = prev[0] + 1 if prev is not None and prev[1] is decoded else 1
        self._counts[addr] = (count, decoded)
        if count >= self.threshold:
            self._compile_site(m, ins, decoded, kind, count)

    @staticmethod
    def _classify(ins: "Instruction") -> str | None:
        mn = ins.mnemonic
        if len(ins.operands) != 2 or not isinstance(ins.operands[0], Xmm):
            return None
        if mn in _BINOPS:
            return "binop"
        if mn == "sqrtsd":
            return "sqrt"
        if mn in ("ucomisd", "comisd"):
            return "ucomi"
        return None

    # ------------------------------------------------------------------ #
    # compilation                                                         #
    # ------------------------------------------------------------------ #

    def _compile_site(self, m: "Machine", ins: "Instruction",
                      decoded: "DecodedInst", kind: str,
                      traps_seen: int) -> None:
        site = JitSite(ins, decoded, kind)
        if kind == "binop":
            site.step = self._make_binop_step(m, site)
        elif kind == "sqrt":
            site.step = self._make_sqrt_step(m, site)
        else:
            site.step = self._make_ucomi_step(m, site)
        self.sites[site.addr] = site
        self._original[site.addr] = m._code[site.addr]
        m._code[site.addr] = site.step
        rebuild_blocks_around(m, site.addr)
        self._counts.pop(site.addr, None)
        self.fpvm.stats.jit_sites_compiled += 1
        if self.fpvm.trace is not None:
            self.fpvm.trace.emit(JitCompileEvent(
                cycles=m.cost.cycles,
                addr=site.addr,
                mnemonic=ins.mnemonic,
                action="compile",
                traps_seen=traps_seen,
            ))
        if kind in ("binop", "sqrt"):
            self._try_fuse(m, site.addr)

    # ---- shared capture helpers -------------------------------------- #

    def _memoized_unbox(self, site: JitSite, slot: int):
        """Closure: unbox with a per-site (bits → value) memo.

        Only live handles are memoized (a dangling box's handle may be
        re-allocated later), and never under fault injection (the
        injector's unbox probes must stay on the uncached path).
        """
        fpvm = self.fpvm
        em = fpvm.emulator
        unbox = em.unbox
        is_box = fpvm.codec.is_box
        contains = fpvm.store.contains
        note_key = fpvm.bind_cache.note_shadow_key
        memo = site.memo
        addr = site.addr
        inj = fpvm.injector

        def get(bits):
            if is_box(bits):
                if bits == memo[slot]:
                    em.unbox_hits += 1
                    return memo[slot + 1]
                v = unbox(bits)
                if inj is None and contains(bits & PAYLOAD_MASK):
                    memo[slot] = bits
                    memo[slot + 1] = v
                    note_key(addr, bits & PAYLOAD_MASK)
                return v
            return unbox(bits)
        return get

    def _fault_exit(self, m: "Machine", site_addr: int,
                    ins: "Instruction", exc: BaseException) -> None:
        """Recoverable fault inside a compiled closure: tear down the
        closure, then run the normal degradation ladder."""
        fpvm = self.fpvm
        self.invalidate_site(m, site_addr,
                             f"{type(exc).__name__} at compiled site")
        fpvm._degrade(m, ins, getattr(exc, "stage", "emulate"), exc)
        fpvm.gc.maybe_collect(m)

    # ---- single-site closures ---------------------------------------- #

    def _make_binop_step(self, m: "Machine", site: JitSite):
        from repro.machine.cpu import Machine as _Machine

        fpvm = self.fpvm
        em = fpvm.emulator
        arith = fpvm.arith
        ins = site.ins
        name = site.arith_name
        afn = getattr(arith, name)
        op_cycles = arith.op_cycles(name)
        fpu_fn = getattr(m.fpu, _Machine._SCALAR_OPS[ins.mnemonic])
        lanes = m.regs.xmm[site.dst_index]
        rs = _f64_reader(m, ins.operands[1])
        regs = m.regs
        nxt = ins.next_addr
        record = m.mxcsr.record
        clear_flags = m.mxcsr.clear_flags
        is_box = fpvm.codec.is_box
        dst_loc = XmmLoc(m, site.dst_index, 0)
        cost = m.cost
        buckets = cost.buckets
        C = _base_cost(m, ins)
        check_c = cost.platform.jit_check_cycles
        emul_c = check_c + cost.platform.jit_emulate_cycles
        stats = fpvm.stats
        gc = fpvm.gc
        box = em.box
        ops_emulated = em.ops_emulated
        trace = fpvm.trace
        addr = ins.addr
        mn = ins.mnemonic
        inj = fpvm.injector
        unbox_a = self._memoized_unbox(site, 0)
        unbox_b = self._memoized_unbox(site, 2)

        def step():
            m.instr_count += 1
            cost.cycles += C
            buckets["base"] += C
            a = lanes[0]
            b = rs()
            m.fp_instr_count += 1
            if not (is_box(a) or is_box(b)):
                r, fl = fpu_fn(a, b)
                if not record(fl):
                    # no FP event: identical to an untrapped execution
                    lanes[0] = r & _MASK64
                    regs.rip = nxt
                    cost.charge(check_c, "jit")
                    stats.jit_fast_path += 1
                    return
                clear_flags()
            # a boxed operand is a signaling NaN: the FPU would flag IE
            # unconditionally, so skipping it is exact
            try:
                if inj is not None:
                    inj.fire("emulate", mn)
                box(dst_loc, afn(unbox_a(a), unbox_b(b)))
            except _RECOVERABLE as exc:
                self._fault_exit(m, addr, ins, exc)
                return
            ops_emulated[name] = ops_emulated.get(name, 0) + 1
            cost.charge(emul_c, "jit")
            cost.charge(op_cycles, "emulate")
            regs.rip = nxt
            stats.jit_hits += 1
            site.hits += 1
            if trace is not None:
                trace.emit(JitHitEvent(cycles=cost.cycles, addr=addr,
                                       mnemonic=mn))
            gc.maybe_collect(m)
        return step

    def _make_sqrt_step(self, m: "Machine", site: JitSite):
        fpvm = self.fpvm
        em = fpvm.emulator
        arith = fpvm.arith
        ins = site.ins
        afn = arith.sqrt
        op_cycles = arith.op_cycles("sqrt")
        fpu_fn = m.fpu.sqrt64
        lanes = m.regs.xmm[site.dst_index]
        rs = _f64_reader(m, ins.operands[1])
        regs = m.regs
        nxt = ins.next_addr
        record = m.mxcsr.record
        clear_flags = m.mxcsr.clear_flags
        is_box = fpvm.codec.is_box
        dst_loc = XmmLoc(m, site.dst_index, 0)
        cost = m.cost
        buckets = cost.buckets
        C = _base_cost(m, ins)
        check_c = cost.platform.jit_check_cycles
        emul_c = check_c + cost.platform.jit_emulate_cycles
        stats = fpvm.stats
        gc = fpvm.gc
        box = em.box
        ops_emulated = em.ops_emulated
        trace = fpvm.trace
        addr = ins.addr
        mn = ins.mnemonic
        inj = fpvm.injector
        unbox_a = self._memoized_unbox(site, 0)

        def step():
            m.instr_count += 1
            cost.cycles += C
            buckets["base"] += C
            a = rs()
            m.fp_instr_count += 1
            if not is_box(a):
                r, fl = fpu_fn(a)
                if not record(fl):
                    lanes[0] = r & _MASK64
                    regs.rip = nxt
                    cost.charge(check_c, "jit")
                    stats.jit_fast_path += 1
                    return
                clear_flags()
            try:
                if inj is not None:
                    inj.fire("emulate", mn)
                box(dst_loc, afn(unbox_a(a)))
            except _RECOVERABLE as exc:
                self._fault_exit(m, addr, ins, exc)
                return
            ops_emulated["sqrt"] = ops_emulated.get("sqrt", 0) + 1
            cost.charge(emul_c, "jit")
            cost.charge(op_cycles, "emulate")
            regs.rip = nxt
            stats.jit_hits += 1
            site.hits += 1
            if trace is not None:
                trace.emit(JitHitEvent(cycles=cost.cycles, addr=addr,
                                       mnemonic=mn))
            gc.maybe_collect(m)
        return step

    def _make_ucomi_step(self, m: "Machine", site: JitSite):
        fpvm = self.fpvm
        em = fpvm.emulator
        arith = fpvm.arith
        ins = site.ins
        compare = arith.compare
        op_cycles = arith.op_cycles("compare")
        fpu_fn = (m.fpu.ucomi64 if ins.mnemonic == "ucomisd"
                  else m.fpu.comi64)
        lanes = m.regs.xmm[site.dst_index]
        rs = _f64_reader(m, ins.operands[1])
        regs = m.regs
        nxt = ins.next_addr
        record = m.mxcsr.record
        clear_flags = m.mxcsr.clear_flags
        is_box = fpvm.codec.is_box
        cost = m.cost
        buckets = cost.buckets
        C = _base_cost(m, ins)
        check_c = cost.platform.jit_check_cycles
        emul_c = check_c + cost.platform.jit_emulate_cycles
        stats = fpvm.stats
        gc = fpvm.gc
        ops_emulated = em.ops_emulated
        trace = fpvm.trace
        addr = ins.addr
        mn = ins.mnemonic
        inj = fpvm.injector
        unbox_a = self._memoized_unbox(site, 0)
        unbox_b = self._memoized_unbox(site, 2)

        def step():
            m.instr_count += 1
            cost.cycles += C
            buckets["base"] += C
            a = lanes[0]
            b = rs()
            m.fp_instr_count += 1
            if not (is_box(a) or is_box(b)):
                (zf, pf, cf), fl = fpu_fn(a, b)
                if not record(fl):
                    regs.zf, regs.pf, regs.cf = zf, pf, cf
                    regs.of = 0
                    regs.sf = 0
                    regs.rip = nxt
                    cost.charge(check_c, "jit")
                    stats.jit_fast_path += 1
                    return
                clear_flags()
            try:
                if inj is not None:
                    inj.fire("emulate", mn)
                zf, pf, cf = compare(unbox_a(a), unbox_b(b)).to_rflags()
            except _RECOVERABLE as exc:
                self._fault_exit(m, addr, ins, exc)
                return
            regs.set_compare_flags(zf, pf, cf)
            ops_emulated["compare"] = ops_emulated.get("compare", 0) + 1
            cost.charge(emul_c, "jit")
            cost.charge(op_cycles, "emulate")
            regs.rip = nxt
            stats.jit_hits += 1
            site.hits += 1
            if trace is not None:
                trace.emit(JitHitEvent(cycles=cost.cycles, addr=addr,
                                       mnemonic=mn))
            gc.maybe_collect(m)
        return step

    # ------------------------------------------------------------------ #
    # fused shadow kernels                                                #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _fusible(p: JitSite, s: JitSite) -> bool:
        return (p.kind in ("binop", "sqrt") and s.kind in ("binop", "sqrt")
                and s.addr == p.ins.next_addr
                and s.dst_index == p.dst_index)

    def _try_fuse(self, m: "Machine", addr: int) -> None:
        """Fuse the maximal chain of adjacent patched sites around
        ``addr`` into one kernel, installed at the chain head."""
        if not self.fpvm.emulator.box_exact_results:
            return  # elision would skip per-instruction demotion
        site = self.sites.get(addr)
        if site is None or site.kind not in ("binop", "sqrt"):
            return
        by_next = {s.ins.next_addr: s for s in self.sites.values()}
        head = site
        while True:
            p = by_next.get(head.addr)
            if p is None or not self._fusible(p, head):
                break
            head = p
        chain = [head]
        while True:
            nx = self.sites.get(chain[-1].ins.next_addr)
            if nx is None or not self._fusible(chain[-1], nx):
                break
            chain.append(nx)
        if len(chain) < 2:
            return
        # displace any shorter kernels this chain subsumes
        for s in chain:
            if s.fused_head is not None:
                self._unfuse(m, s.fused_head)
        if self._pair_shape(chain) and self.fpvm.injector is None:
            kernel = self._make_fused_pair_kernel(m, chain)
        else:
            kernel = self._make_fused_kernel(m, chain)
        head_addr = chain[0].addr
        self.fused[head_addr] = chain
        for s in chain:
            s.fused_head = head_addr
        m._code[head_addr] = kernel
        rebuild_blocks_around(m, head_addr)
        self.fpvm.stats.jit_fused_kernels += 1
        if self.fpvm.trace is not None:
            self.fpvm.trace.emit(JitCompileEvent(
                cycles=m.cost.cycles,
                addr=head_addr,
                mnemonic=chain[0].ins.mnemonic,
                action="fuse",
                chain_len=len(chain),
            ))

    def _unfuse(self, m: "Machine", head_addr: int) -> None:
        """Tear one kernel down; members keep their individual steps."""
        chain = self.fused.pop(head_addr, None)
        if chain is None:
            return
        for s in chain:
            s.fused_head = None
        head_site = self.sites.get(head_addr)
        if head_site is not None:
            m._code[head_addr] = head_site.step
            rebuild_blocks_around(m, head_addr)

    @staticmethod
    def _pair_shape(chain: list[JitSite]) -> bool:
        """True for the hottest fusion shape — two binops whose sources
        are independent of the carried destination register — which gets
        a fully unrolled kernel (no per-link loop, bit tests inlined)."""
        if len(chain) != 2:
            return False
        for s in chain:
            if s.kind != "binop":
                return False
            src = s.ins.operands[1]
            if isinstance(src, Xmm) and src.index == s.dst_index:
                return False
        return True

    def _make_fused_pair_kernel(self, m: "Machine", chain: list[JitSite]):
        """Unrolled two-binop kernel: semantics identical to the generic
        ``_make_fused_kernel`` (same counters, same fault materialization)
        with the interpretation overhead folded away — the NaN-box tests
        are inline bit expressions, the commit box is allocated without
        the ``Emulator.box`` dispatch, and unboxed source constants are
        memoized by bit pattern (exact: bits → value is pure for non-box,
        non-NaN bits).  Built only when no fault injector is armed, so
        the injector hooks inside ``Emulator.unbox`` cannot be bypassed.
        """
        from repro.machine.cpu import Machine as _Machine

        fpvm = self.fpvm
        em = fpvm.emulator
        arith = fpvm.arith
        is_nan = arith.is_nan
        from_f64_bits = arith.from_f64_bits
        s1, s2 = chain
        lanes = m.regs.xmm[s1.dst_index]
        regs = m.regs
        record = m.mxcsr.record
        clear_flags = m.mxcsr.clear_flags
        dst_loc = XmmLoc(m, s1.dst_index, 0)
        cost = m.cost
        buckets = cost.buckets
        check_c = cost.platform.jit_check_cycles
        emul_c = check_c + cost.platform.jit_emulate_cycles
        stats = fpvm.stats
        gc = fpvm.gc
        store_get = em.store.get
        alloc = em.store.alloc
        encode = fpvm.codec.encode
        ops_emulated = em.ops_emulated
        trace = fpvm.trace
        box = em.box
        last_nxt = s2.ins.next_addr
        rs1 = _f64_reader(m, s1.ins.operands[1])
        rs2 = _f64_reader(m, s2.ins.operands[1])
        fpu1 = getattr(m.fpu, _Machine._SCALAR_OPS[s1.ins.mnemonic])
        fpu2 = getattr(m.fpu, _Machine._SCALAR_OPS[s2.ins.mnemonic])
        afn1 = getattr(arith, s1.arith_name)
        afn2 = getattr(arith, s2.arith_name)
        n1, n2 = s1.arith_name, s2.arith_name
        C1 = _base_cost(m, s1.ins)
        C2 = _base_cost(m, s2.ins)
        opc1 = arith.op_cycles(n1)
        opc2 = arith.op_cycles(n2)
        _EXP = F64_EXP_MASK
        _QBIT = F64_QNAN_BIT
        _PAY = PAYLOAD_MASK
        #: per-source promote memos: [bits, value]
        memo1 = [None, None]
        memo2 = [None, None]

        def unbox_bits(bits, memo):
            # exact mirror of Emulator.unbox with no injector armed
            if (bits & _EXP) == _EXP and not bits & _QBIT and bits & _PAY:
                v = store_get(bits & _PAY)
                if v is not None:
                    em.unbox_hits += 1
                    return v
                em.universal_nans += 1
                return from_f64_bits(F64_DEFAULT_QNAN)
            if bits == memo[0]:
                em.promotions += 1
                return memo[1]
            if is_nan64(bits):
                return from_f64_bits(quiet64(bits))
            em.promotions += 1
            v = from_f64_bits(bits)
            memo[0], memo[1] = bits, v
            return v

        def kernel():
            # ---- link 1 ------------------------------------------------
            m.instr_count += 1
            cost.cycles += C1
            buckets["base"] += C1
            m.fp_instr_count += 1
            a = lanes[0]
            b = rs1()
            val = _NOVAL
            if not ((a & _EXP) == _EXP and not a & _QBIT and a & _PAY
                    or (b & _EXP) == _EXP and not b & _QBIT and b & _PAY):
                r, fl = fpu1(a, b)
                if not record(fl):
                    a = r & _MASK64
                    cost.charge(check_c, "jit")
                    stats.jit_fast_path += 1
                else:
                    clear_flags()
                    try:
                        val = afn1(unbox_bits(a, memo1), unbox_bits(b, memo1))
                    except _RECOVERABLE as exc:
                        lanes[0] = a
                        self._fault_exit(m, s1.addr, s1.ins, exc)
                        return
            else:
                try:
                    val = afn1(unbox_bits(a, memo1), unbox_bits(b, memo1))
                except _RECOVERABLE as exc:
                    lanes[0] = a
                    self._fault_exit(m, s1.addr, s1.ins, exc)
                    return
            emulated = val is not _NOVAL
            if emulated:
                if is_nan(val):
                    a = F64_DEFAULT_QNAN
                    val = _NOVAL
                ops_emulated[n1] = ops_emulated.get(n1, 0) + 1
                cost.charge(emul_c, "jit")
                cost.charge(opc1, "emulate")
                stats.jit_hits += 1
                s1.hits += 1
                if trace is not None:
                    trace.emit(JitHitEvent(cycles=cost.cycles, addr=s1.addr,
                                           mnemonic=s1.ins.mnemonic,
                                           fused=True, chain_len=2))
            # ---- link 2 ------------------------------------------------
            m.instr_count += 1
            cost.cycles += C2
            buckets["base"] += C2
            m.fp_instr_count += 1
            b = rs2()
            if val is _NOVAL:
                if not ((a & _EXP) == _EXP and not a & _QBIT and a & _PAY
                        or (b & _EXP) == _EXP and not b & _QBIT and b & _PAY):
                    r, fl = fpu2(a, b)
                    if not record(fl):
                        lanes[0] = r & _MASK64
                        regs.rip = last_nxt
                        cost.charge(check_c, "jit")
                        stats.jit_fast_path += 1
                        if emulated:
                            gc.maybe_collect(m)
                        return
                    clear_flags()
                try:
                    v = afn2(unbox_bits(a, memo2), unbox_bits(b, memo2))
                except _RECOVERABLE as exc:
                    lanes[0] = a
                    self._fault_exit(m, s2.addr, s2.ins, exc)
                    return
            else:
                stats.boxes_elided += 1
                try:
                    v = afn2(val, unbox_bits(b, memo2))
                except _RECOVERABLE as exc:
                    box(dst_loc, val)
                    self._fault_exit(m, s2.addr, s2.ins, exc)
                    return
            ops_emulated[n2] = ops_emulated.get(n2, 0) + 1
            cost.charge(emul_c, "jit")
            cost.charge(opc2, "emulate")
            stats.jit_hits += 1
            s2.hits += 1
            if trace is not None:
                trace.emit(JitHitEvent(cycles=cost.cycles, addr=s2.addr,
                                       mnemonic=s2.ins.mnemonic,
                                       fused=True, chain_len=2))
            # ---- commit (one box for the whole chain) -------------------
            if is_nan(v):
                lanes[0] = F64_DEFAULT_QNAN
            else:
                h = alloc(v)
                em.boxes_created += 1
                lanes[0] = encode(h) & _MASK64
            regs.rip = last_nxt
            gc.maybe_collect(m)
        return kernel

    def _make_fused_kernel(self, m: "Machine", chain: list[JitSite]):
        from repro.machine.cpu import Machine as _Machine

        fpvm = self.fpvm
        em = fpvm.emulator
        arith = fpvm.arith
        is_nan = arith.is_nan
        dst_index = chain[0].dst_index
        lanes = m.regs.xmm[dst_index]
        regs = m.regs
        mxcsr = m.mxcsr
        record = mxcsr.record
        clear_flags = mxcsr.clear_flags
        is_box = fpvm.codec.is_box
        dst_loc = XmmLoc(m, dst_index, 0)
        cost = m.cost
        buckets = cost.buckets
        check_c = cost.platform.jit_check_cycles
        emul_c = check_c + cost.platform.jit_emulate_cycles
        stats = fpvm.stats
        gc = fpvm.gc
        unbox = em.unbox
        box = em.box
        ops_emulated = em.ops_emulated
        trace = fpvm.trace
        inj = fpvm.injector
        last_nxt = chain[-1].ins.next_addr
        n = len(chain)

        links = []
        for s in chain:
            ins = s.ins
            is_binop = s.kind == "binop"
            fpu_fn = (getattr(m.fpu, _Machine._SCALAR_OPS[ins.mnemonic])
                      if is_binop else m.fpu.sqrt64)
            src = ins.operands[1]
            src_is_state = isinstance(src, Xmm) and src.index == dst_index
            rs = None if src_is_state else _f64_reader(m, src)
            links.append((
                s, ins, ins.mnemonic, is_binop, fpu_fn,
                getattr(arith, s.arith_name), s.arith_name, rs,
                src_is_state, _base_cost(m, ins),
                arith.op_cycles(s.arith_name),
            ))
        links = tuple(links)

        def kernel():
            # state of the destination register, carried link to link:
            # either raw bits (sbits) or a live arith value (sval) —
            # the value form is the boxing elision
            sbits = lanes[0]
            sval = _NOVAL
            emulated = False
            for (site, ins, mn, is_binop, fpu_fn, afn, name, rs,
                 src_is_state, C, opc) in links:
                m.instr_count += 1
                cost.cycles += C
                buckets["base"] += C
                m.fp_instr_count += 1
                if is_binop:
                    b = sbits if src_is_state else rs()
                    if sval is _NOVAL:
                        if not (is_box(sbits) or is_box(b)):
                            r, fl = fpu_fn(sbits, b)
                            if not record(fl):
                                sbits = r & _MASK64
                                cost.charge(check_c, "jit")
                                stats.jit_fast_path += 1
                                continue
                            clear_flags()
                        try:
                            if inj is not None:
                                inj.fire("emulate", mn)
                            av = unbox(sbits)
                            bv = av if src_is_state else unbox(b)
                            v = afn(av, bv)
                        except _RECOVERABLE as exc:
                            lanes[0] = sbits
                            self._fault_exit(m, site.addr, ins, exc)
                            return
                    else:
                        # intermediate stayed register-resident: no box
                        # was allocated, no unbox needed
                        stats.boxes_elided += 1
                        try:
                            if inj is not None:
                                inj.fire("emulate", mn)
                            bv = sval if src_is_state else unbox(rs())
                            v = afn(sval, bv)
                        except _RECOVERABLE as exc:
                            box(dst_loc, sval)
                            self._fault_exit(m, site.addr, ins, exc)
                            return
                else:  # sqrt
                    if src_is_state:
                        if sval is _NOVAL:
                            if not is_box(sbits):
                                r, fl = fpu_fn(sbits)
                                if not record(fl):
                                    sbits = r & _MASK64
                                    cost.charge(check_c, "jit")
                                    stats.jit_fast_path += 1
                                    continue
                                clear_flags()
                            try:
                                if inj is not None:
                                    inj.fire("emulate", mn)
                                v = afn(unbox(sbits))
                            except _RECOVERABLE as exc:
                                lanes[0] = sbits
                                self._fault_exit(m, site.addr, ins, exc)
                                return
                        else:
                            stats.boxes_elided += 1
                            try:
                                if inj is not None:
                                    inj.fire("emulate", mn)
                                v = afn(sval)
                            except _RECOVERABLE as exc:
                                box(dst_loc, sval)
                                self._fault_exit(m, site.addr, ins, exc)
                                return
                    else:
                        # independent source: the carried state is dead
                        # (overwritten without ever being read)
                        a = rs()
                        if not is_box(a):
                            r, fl = fpu_fn(a)
                            if not record(fl):
                                sbits = r & _MASK64
                                sval = _NOVAL
                                cost.charge(check_c, "jit")
                                stats.jit_fast_path += 1
                                continue
                            clear_flags()
                        try:
                            if inj is not None:
                                inj.fire("emulate", mn)
                            v = afn(unbox(a))
                        except _RECOVERABLE as exc:
                            if sval is not _NOVAL:
                                box(dst_loc, sval)
                            else:
                                lanes[0] = sbits
                            self._fault_exit(m, site.addr, ins, exc)
                            return
                # emulated result: NaNs surface immediately as real NaN
                # bits (exactly Emulator.box's first branch); everything
                # else stays register-resident until the chain ends
                if is_nan(v):
                    sbits = F64_DEFAULT_QNAN
                    sval = _NOVAL
                else:
                    sval = v
                emulated = True
                ops_emulated[name] = ops_emulated.get(name, 0) + 1
                cost.charge(emul_c, "jit")
                cost.charge(opc, "emulate")
                stats.jit_hits += 1
                site.hits += 1
                if trace is not None:
                    trace.emit(JitHitEvent(
                        cycles=cost.cycles, addr=site.addr, mnemonic=mn,
                        fused=True, chain_len=n))
            # commit: one box for the whole chain (or plain bits)
            if sval is not _NOVAL:
                box(dst_loc, sval)
            else:
                lanes[0] = sbits & _MASK64
            regs.rip = last_nxt
            if emulated:
                gc.maybe_collect(m)
        return kernel

    # ------------------------------------------------------------------ #
    # invalidation                                                        #
    # ------------------------------------------------------------------ #

    def invalidate_site(self, m: "Machine", addr: int,
                        reason: str = "") -> None:
        """Restore the interpreter step at ``addr``; tear down any
        fused kernel containing it and re-fuse the survivors."""
        site = self.sites.pop(addr, None)
        if site is None:
            return
        survivors: list[JitSite] = []
        if site.fused_head is not None:
            chain = self.fused.get(site.fused_head)
            self._unfuse(m, site.fused_head)
            if chain is not None:
                survivors = [s for s in chain if s.addr != addr]
        orig = self._original.pop(addr, None)
        if orig is not None:
            m._code[addr] = orig
            rebuild_blocks_around(m, addr)
        self._counts.pop(addr, None)
        site.memo[:] = (None, None, None, None)
        self.fpvm.stats.jit_invalidations += 1
        if self.fpvm.trace is not None:
            self.fpvm.trace.emit(JitCompileEvent(
                cycles=m.cost.cycles,
                addr=addr,
                mnemonic=site.ins.mnemonic,
                action="invalidate",
                reason=reason,
            ))
        for s in survivors:
            if s.fused_head is None:
                self._try_fuse(m, s.addr)

    def invalidate_all(self, m: "Machine", reason: str = "uninstall") -> None:
        for addr in list(self.sites):
            self.invalidate_site(m, addr, reason)

    def clear_memos(self, addrs) -> None:
        """Flush unbox memos whose shadow keys a GC sweep reclaimed."""
        for addr in addrs:
            site = self.sites.get(addr)
            if site is not None:
                site.memo[:] = (None, None, None, None)

    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        stats = self.fpvm.stats
        return {
            "sites": len(self.sites),
            "fused_kernels": len(self.fused),
            "compiled": stats.jit_sites_compiled,
            "hits": stats.jit_hits,
            "fast_path": stats.jit_fast_path,
            "invalidations": stats.jit_invalidations,
            "boxes_elided": stats.boxes_elided,
            "patched_site_hit_rate": stats.patched_site_hit_rate,
        }
