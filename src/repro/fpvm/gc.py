"""Conservative bipartite mark-and-sweep garbage collection (§4.1).

    "Every epoch (typically 1s), the garbage collector scans all
    writable program memory for data that appears to be a NaN-box.  It
    then decodes it, and sets the mark bit if it is located in the
    data structure.  It then sweeps through the set of all allocated
    values and frees their backing storage (shadow values) if they are
    not marked."

The pointer graph is bipartite (program memory may point to shadow
values; shadow values never point back), so a single scan + sweep is a
complete collection.  Roots also include the register file: ``movq``
can park a box in a GPR.

In place of wall-clock epochs (the simulation is deterministic) the
collector triggers every ``epoch_cycles`` modeled cycles, checked on
each FPVM entry.  The scan itself is vectorized with NumPy — a Python
loop over every heap word would dominate host runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.ieee.bits import F64_EXP_MASK, F64_QNAN_BIT
from repro.fpvm.nanbox import PAYLOAD_MASK, NaNBoxCodec
from repro.fpvm.shadow import ShadowStore
from repro.trace.events import DegradeEvent, GCEpochEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import Machine
    from repro.trace.sinks import TraceSink


@dataclass(slots=True)
class GCPassStats:
    """One collection pass (rows of the Fig. 10 bench)."""

    alive_before: int
    freed: int
    alive_after: int
    words_scanned: int
    latency_s: float
    modeled_cycles: int
    #: incremental mode only: freshly scanned / total pages in range,
    #: and marks replayed from clean pages' remembered candidate sets
    pages_scanned: int = 0
    pages_total: int = 0
    remembered_marks: int = 0
    incremental: bool = False


@dataclass
class ConservativeGC:
    """Epoch-driven conservative collector over a shadow store."""

    store: ShadowStore
    codec: NaNBoxCodec
    epoch_cycles: int = 5_000_000
    passes: list[GCPassStats] = field(default_factory=list)
    trace: "TraceSink | None" = None
    injector: object = None  # FaultInjector | None, wired up by FPVM
    #: incremental mode: scan only pages dirtied since their last scan
    #: (write-barrier bits in Segment.dirty); clean pages replay their
    #: remembered candidate handles.  Liveness is identical to a full
    #: scan: page contents only change through writes, and a page's
    #: dirty bit is cleared only after it was scanned end to end.
    incremental: bool = False
    #: callback invoked with the tuple of handles each sweep reclaimed
    #: (FPVM uses it to invalidate handle-keyed caches before reuse)
    on_sweep: object = None
    sweeps_skipped: int = 0
    _last_epoch_cycles: int = 0
    #: (segment name, page index) -> candidate handles found at the
    #: page's last full scan (the incremental remembered set)
    _page_boxes: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def maybe_collect(self, machine: "Machine") -> GCPassStats | None:
        """Collect iff an epoch has elapsed on the modeled clock."""
        now = machine.cost.cycles
        if now - self._last_epoch_cycles < self.epoch_cycles:
            return None
        self._last_epoch_cycles = now
        return self.collect(machine)

    # ------------------------------------------------------------------ #
    def collect(self, machine: "Machine") -> GCPassStats:
        """One full mark-and-sweep pass."""
        t0 = time.perf_counter()
        alive_before = self.store.live_count
        self.store.clear_marks()

        words = 0
        pages_scanned = pages_total = remembered = 0
        if self.incremental:
            for lo, hi in self._scan_ranges(machine):
                w, ps, pt, rm = self._scan_range_incremental(machine, lo, hi)
                words += w
                pages_scanned += ps
                pages_total += pt
                remembered += rm
        else:
            for lo, hi in self._scan_ranges(machine):
                words += self._scan_range(machine, lo, hi)
        words += self._scan_registers(machine)

        inj = self.injector
        if inj is not None and inj.fires("gc_sweep"):
            # injected sweep skip: marked state is discarded, nothing is
            # freed — graceful degradation trades memory for survival
            freed = 0
            self.sweeps_skipped += 1
            if self.trace is not None:
                self.trace.emit(DegradeEvent(
                    cycles=machine.cost.cycles,
                    stage="gc_sweep",
                    reason="injected sweep skip",
                    injected=True,
                ))
        else:
            freed = self.store.sweep()
            if freed and self.on_sweep is not None:
                self.on_sweep(self.store.last_swept)
        latency = time.perf_counter() - t0
        plat = machine.cost.platform
        cycles = ((words + remembered) * plat.gc_scan_word_cycles
                  + freed * plat.gc_sweep_obj_cycles)
        machine.cost.charge(cycles, "gc")
        stats = GCPassStats(
            alive_before=alive_before,
            freed=freed,
            alive_after=self.store.live_count,
            words_scanned=words,
            latency_s=latency,
            modeled_cycles=cycles,
            pages_scanned=pages_scanned,
            pages_total=pages_total,
            remembered_marks=remembered,
            incremental=self.incremental,
        )
        self.passes.append(stats)
        if self.trace is not None:
            self.trace.emit(GCEpochEvent(
                cycles=machine.cost.cycles,
                words_scanned=words,
                bytes_scanned=8 * words,
                boxes_marked=stats.alive_after,
                alive_before=alive_before,
                freed=freed,
                alive_after=stats.alive_after,
                scan_cycles=cycles,
                incremental=self.incremental,
                pages_scanned=pages_scanned,
                pages_total=pages_total,
                remembered_marks=remembered,
            ))
        return stats

    # ------------------------------------------------------------------ #
    def _scan_ranges(self, machine: "Machine") -> list[tuple[int, int]]:
        """Writable memory that can actually hold program data.

        The heap is scanned only up to the current break and the stack
        only from RSP — matching what a real conservative collector
        learns from /proc/self/maps + sbrk + the signal context.
        """
        ranges: list[tuple[int, int]] = []
        for seg in machine.memory.segments:
            if not seg.writable:
                continue
            lo, hi = seg.base, seg.end
            if seg.name == "heap":
                hi = min(hi, machine.heap_brk)
            elif seg.name == "stack":
                lo = max(lo, machine.regs.get_gpr("rsp") & ~7)
            if hi > lo:
                ranges.append((lo, hi))
        return ranges

    def _scan_range(self, machine: "Machine", lo: int, hi: int) -> int:
        seg = machine.memory.segment_for(lo)
        start = lo - seg.base
        end = hi - seg.base
        end -= (end - start) % 8
        if end <= start:
            return 0
        arr = np.frombuffer(bytes(seg.data[start:end]), dtype="<u8")
        # candidate = signaling NaN with nonzero payload
        cand = arr[
            ((arr & np.uint64(F64_EXP_MASK)) == np.uint64(F64_EXP_MASK))
            & ((arr & np.uint64(F64_QNAN_BIT)) == np.uint64(0))
            & ((arr & np.uint64(PAYLOAD_MASK)) != np.uint64(0))
        ]
        mark = self.store.mark
        for word in cand.tolist():
            mark(word & PAYLOAD_MASK)
        return len(arr)

    def _scan_range_incremental(
            self, machine: "Machine", lo: int, hi: int,
    ) -> tuple[int, int, int, int]:
        """Scan only dirty pages of ``[lo, hi)``; replay clean pages.

        Returns ``(fresh_words, pages_scanned, pages_total,
        remembered_marks)``.  A page's dirty bit is cleared — and its
        candidate handles remembered — only when the scan covered its
        entire mapped span; boundary pages clipped by ``brk``/``rsp``
        stay dirty so the moving clip can never hide a live box.
        """
        from repro.machine.memory import PAGE_SHIFT

        seg = machine.memory.segment_for(lo)
        start = lo - seg.base
        end = hi - seg.base
        end -= (end - start) % 8
        if end <= start:
            return 0, 0, 0, 0
        dirty = seg.dirty
        page_boxes = self._page_boxes
        mark = self.store.mark
        seg_len = len(seg.data)
        exp = np.uint64(F64_EXP_MASK)
        qnan = np.uint64(F64_QNAN_BIT)
        payload = np.uint64(PAYLOAD_MASK)
        zero = np.uint64(0)

        words = pages_scanned = remembered = 0
        first = start >> PAGE_SHIFT
        last = (end - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            p_lo = max(start, page << PAGE_SHIFT)
            p_hi = min(end, (page + 1) << PAGE_SHIFT)
            key = (seg.name, page)
            if dirty[page]:
                arr = np.frombuffer(bytes(seg.data[p_lo:p_hi]), dtype="<u8")
                cand = arr[((arr & exp) == exp) & ((arr & qnan) == zero)
                           & ((arr & payload) != zero)]
                handles = [int(w) & PAYLOAD_MASK for w in cand.tolist()]
                for h in handles:
                    mark(h)
                words += len(arr)
                pages_scanned += 1
                whole_span = (p_lo == page << PAGE_SHIFT
                              and p_hi >= min(seg_len & ~7,
                                              (page + 1) << PAGE_SHIFT))
                if whole_span:
                    dirty[page] = 0
                    page_boxes[key] = handles
                else:
                    page_boxes.pop(key, None)
            else:
                # clean since its last full scan: its contents cannot
                # have changed (all stores go through the barrier), so
                # the remembered candidates are exactly what a fresh
                # scan would find
                for h in page_boxes.get(key, ()):
                    mark(h)
                    remembered += 1
        return words, pages_scanned, last - first + 1, remembered

    def _scan_registers(self, machine: "Machine") -> int:
        """Registers are roots: XMM lanes and (via movq) even GPRs."""
        is_cand = self.codec.is_candidate_word
        mark = self.store.mark
        n = 0
        for lanes in machine.regs.xmm:
            for word in lanes:
                n += 1
                if is_cand(word):
                    mark(word & PAYLOAD_MASK)
        for word in machine.regs.gpr.values():
            n += 1
            if is_cand(word):
                mark(word & PAYLOAD_MASK)
        return n

    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Aggregate pass statistics (Fig. 10 rows)."""
        if not self.passes:
            return {"passes": 0, "alive": 0, "freed": 0, "latency_us": 0.0,
                    "collect_fraction": 0.0}
        total_freed = sum(p.freed for p in self.passes)
        total_before = sum(p.alive_before for p in self.passes)
        return {
            "passes": len(self.passes),
            "alive": max(p.alive_before for p in self.passes),
            "freed": total_freed,
            "latency_us": 1e6 * sum(p.latency_s for p in self.passes)
            / len(self.passes),
            "collect_fraction": (total_freed / total_before
                                 if total_before else 0.0),
        }
