"""The emulator: bound instructions → alternative arithmetic (§4.1/4.3).

    "The implementation for each operation type is given simply by a
    function pointer stored in a map, op_map, which indexed by the
    operation type… They first attempt to unbox the values stored in
    the source operands.  If the source registers are not NaN-boxed
    values (shadowed values), they are promoted from their double
    representation… The resulting shadow value is then stored in a
    newly allocated cell which is NaN-boxed into the pointer."

Vector forms are handled by invoking the scalar path once per bound
lane, exactly as the paper describes.

Boxing policy: by default every emulated result allocates a fresh
shadow cell (the paper's behaviour, which creates the GC pressure of
Fig. 10).  With ``box_exact_results=False`` results that demote to a
binary64 *exactly* are stored unboxed — an ablation knob benchmarked
by ``benchmarks/bench_ablation_boxing.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import MachineError, NanBoxError
from repro.ieee.bits import F64_DEFAULT_QNAN, is_nan64, quiet64
from repro.arith.interface import AlternativeArithmetic, Ordering
from repro.fpvm.binding import BoundInst, BoundLane, Location
from repro.fpvm.decoder import FPVMOp
from repro.fpvm.nanbox import NaNBoxCodec
from repro.fpvm.shadow import ShadowStore
from repro.trace.events import DemotionEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import Machine


class Emulator:
    """op_map dispatch over one alternative arithmetic system."""

    def __init__(
        self,
        arith: AlternativeArithmetic,
        store: ShadowStore,
        codec: NaNBoxCodec,
        *,
        box_exact_results: bool = True,
    ) -> None:
        self.arith = arith
        self.store = store
        self.codec = codec
        self.box_exact_results = box_exact_results
        self.trace = None  # TraceSink | None, wired up by FPVM
        self.injector = None  # FaultInjector | None, wired up by FPVM
        self.sanitizer = None  # Sanitizer | None, wired up by FPVM

        # statistics
        self.promotions = 0
        self.unbox_hits = 0
        self.universal_nans = 0
        self.boxes_created = 0
        self.corrupted_boxes = 0
        self.ops_emulated: dict[str, int] = {}

        a = self.arith
        self._op_map: dict[FPVMOp, Callable[["Machine", BoundLane, BoundInst], None]] = {
            FPVMOp.ADD: self._mk_binop(a.add),
            FPVMOp.SUB: self._mk_binop(a.sub),
            FPVMOp.MUL: self._mk_binop(a.mul),
            FPVMOp.DIV: self._mk_binop(a.div),
            FPVMOp.MIN: self._mk_binop(a.min),
            FPVMOp.MAX: self._mk_binop(a.max),
            FPVMOp.SQRT: self._mk_unop(a.sqrt),
            FPVMOp.FMA: self._op_fma,
            FPVMOp.UCOMI: self._op_compare,
            FPVMOp.COMI: self._op_compare,
            FPVMOp.CMP_PRED: self._op_cmp_pred,
            FPVMOp.CVT_I32_F64: self._op_cvt_i32,
            FPVMOp.CVT_I64_F64: self._op_cvt_i64,
            FPVMOp.CVT_F64_I32: self._op_cvt_f2i,
            FPVMOp.CVT_F64_I32_TRUNC: self._op_cvt_f2i,
            FPVMOp.CVT_F64_I64: self._op_cvt_f2i,
            FPVMOp.CVT_F64_I64_TRUNC: self._op_cvt_f2i,
            FPVMOp.CVT_F64_F32: self._op_cvt_f64_f32,
            FPVMOp.CVT_F32_F64: self._op_cvt_f32_f64,
            FPVMOp.ROUND: self._op_round,
            FPVMOp.ADD32: self._mk_binop32(a.add),
            FPVMOp.SUB32: self._mk_binop32(a.sub),
            FPVMOp.MUL32: self._mk_binop32(a.mul),
            FPVMOp.DIV32: self._mk_binop32(a.div),
        }

    # ------------------------------------------------------------------ #
    # entry point                                                         #
    # ------------------------------------------------------------------ #

    def emulate(self, machine: "Machine", bound: BoundInst) -> int:
        """Emulate all lanes; returns modeled arithmetic cycles."""
        fn = self._op_map.get(bound.op)
        if fn is None:
            raise MachineError(f"no emulation for {bound.op}")
        name = bound.decoded.arith_name or bound.op.name.lower()
        for lane in bound.lanes:
            fn(machine, lane, bound)
        self.ops_emulated[name] = self.ops_emulated.get(name, 0) + len(
            bound.lanes
        )
        san = self.sanitizer
        if san is not None and bound.op in san.checked_ops:
            # sanitize mode: compare the freshly boxed IEEE/shadow pair
            # at every value-producing destination lane
            instr = bound.decoded.instr
            for lane in bound.lanes:
                if lane.dst is None:
                    continue
                bits = lane.dst.read()
                if self.codec.is_box(bits):
                    v = self.store.get(self.codec.decode(bits))
                    if v is not None:
                        san.check_value(machine, instr.addr,
                                        instr.mnemonic, v)
        return self.arith.op_cycles(name) * len(bound.lanes)

    # ------------------------------------------------------------------ #
    # (un)boxing                                                          #
    # ------------------------------------------------------------------ #

    def unbox(self, bits: int):
        """Bits → alternative-arithmetic value (promote if unboxed)."""
        if self.codec.is_box(bits):
            inj = self.injector
            if inj is not None:
                if inj.fires("nanbox_corrupt"):
                    # bit flip in the 51-bit key: the corrupted handle
                    # is (almost surely) dangling and degrades to a
                    # universal NaN below — NaN-space ownership at work
                    from repro.fpvm.nanbox import PAYLOAD_BITS

                    bits ^= 1 << inj.rng("nanbox_corrupt").randrange(
                        PAYLOAD_BITS)
                    self.corrupted_boxes += 1
                if inj.fires("shadow_lookup"):
                    raise NanBoxError(
                        "injected shadow-table miss for handle "
                        f"{self.codec.decode(bits)}")
            v = self.store.get(self.codec.decode(bits))
            if v is not None:
                self.unbox_hits += 1
                return v
            # signaling NaN without a shadow value: universal ("true") NaN
            self.universal_nans += 1
            return self.arith.from_f64_bits(F64_DEFAULT_QNAN)
        if is_nan64(bits):
            return self.arith.from_f64_bits(quiet64(bits))
        self.promotions += 1
        return self.arith.from_f64_bits(bits)

    def box(self, dst: Location, value) -> None:
        """Store a result: universal NaNs stay visible as real NaNs;
        otherwise allocate a shadow cell and write the NaN-boxed handle
        (or, under the ablation policy, demote exact values in place)."""
        a = self.arith
        if a.is_nan(value):
            dst.write(F64_DEFAULT_QNAN)
            return
        if not self.box_exact_results:
            demoted = a.to_f64_bits(value)
            if not is_nan64(demoted):
                roundtrip = a.from_f64_bits(demoted)
                if (a.compare(roundtrip, value) is Ordering.EQ
                        and a.is_negative(roundtrip) == a.is_negative(value)):
                    dst.write(demoted)
                    return
        handle = self.store.alloc(value)
        self.boxes_created += 1
        dst.write(self.codec.encode(handle))

    def demote_bits(self, bits: int) -> int:
        """NaN-box bit pattern → IEEE double bits (identity otherwise)."""
        if self.codec.is_box(bits):
            v = self.store.get(self.codec.decode(bits))
            if v is not None:
                return self.arith.to_f64_bits(v)
            return F64_DEFAULT_QNAN
        return bits

    def is_live_box(self, bits: int) -> bool:
        return self.codec.is_box(bits) and self.store.contains(
            self.codec.decode(bits)
        )

    # ------------------------------------------------------------------ #
    # op implementations                                                  #
    # ------------------------------------------------------------------ #

    def _mk_binop(self, fn):
        def impl(machine: "Machine", lane: BoundLane, bound: BoundInst) -> None:
            a = self.unbox(lane.srcs[0].read())
            b = self.unbox(lane.srcs[1].read())
            self.box(lane.dst, fn(a, b))

        return impl

    def _mk_unop(self, fn):
        def impl(machine: "Machine", lane: BoundLane, bound: BoundInst) -> None:
            a = self.unbox(lane.srcs[0].read())
            self.box(lane.dst, fn(a))

        return impl

    def _op_fma(self, machine, lane: BoundLane, bound: BoundInst) -> None:
        a = self.unbox(lane.srcs[0].read())
        b = self.unbox(lane.srcs[1].read())
        c = self.unbox(lane.srcs[2].read())
        self.box(lane.dst, self.arith.fma(a, b, c))

    def _op_compare(self, machine, lane: BoundLane, bound: BoundInst) -> None:
        a = self.unbox(lane.srcs[0].read())
        b = self.unbox(lane.srcs[1].read())
        zf, pf, cf = self.arith.compare(a, b).to_rflags()
        machine.regs.set_compare_flags(zf, pf, cf)

    def _op_cmp_pred(self, machine, lane: BoundLane, bound: BoundInst) -> None:
        a = self.unbox(lane.srcs[0].read())
        b = self.unbox(lane.srcs[1].read())
        ordv = self.arith.compare(a, b)
        unord = ordv is Ordering.UNORDERED
        pred = bound.imm or 0
        if pred == 0:
            res = ordv is Ordering.EQ
        elif pred == 1:
            res = ordv is Ordering.LT
        elif pred == 2:
            res = ordv in (Ordering.LT, Ordering.EQ)
        elif pred == 3:
            res = unord
        elif pred == 4:
            res = unord or ordv is not Ordering.EQ
        elif pred == 5:
            res = unord or ordv is not Ordering.LT
        elif pred == 6:
            res = unord or ordv not in (Ordering.LT, Ordering.EQ)
        else:
            res = not unord
        lane.dst.write(0xFFFF_FFFF_FFFF_FFFF if res else 0)

    def _op_cvt_i32(self, machine, lane: BoundLane, bound: BoundInst) -> None:
        raw = lane.srcs[0].read() & 0xFFFF_FFFF
        self.box(lane.dst, self.arith.from_i32(raw))

    def _op_cvt_i64(self, machine, lane: BoundLane, bound: BoundInst) -> None:
        raw = lane.srcs[0].read()
        self.box(lane.dst, self.arith.from_i64(raw))

    _CVT_F2I_SPEC = {
        FPVMOp.CVT_F64_I32: (32, False),
        FPVMOp.CVT_F64_I32_TRUNC: (32, True),
        FPVMOp.CVT_F64_I64: (64, False),
        FPVMOp.CVT_F64_I64_TRUNC: (64, True),
    }

    def _op_cvt_f2i(self, machine, lane: BoundLane, bound: BoundInst) -> None:
        width, trunc = self._CVT_F2I_SPEC[bound.op]
        a = self.unbox(lane.srcs[0].read())
        if width == 32:
            lane.dst.write(self.arith.to_i32(a, trunc))
        else:
            lane.dst.write(self.arith.to_i64(a, trunc))

    def _op_cvt_f64_f32(self, machine, lane: BoundLane, bound) -> None:
        # binary32 results are never boxed: 23 fraction bits cannot hold
        # a useful handle — the paper's "float problem" limitation (§2).
        bits = lane.srcs[0].read()
        a = self.unbox(bits)
        out = self.arith.to_f32_bits(a)
        if self.trace is not None and self.is_live_box(bits):
            self.trace.emit(DemotionEvent(
                cycles=machine.cost.cycles,
                location="f32-dest",
                reason="float-problem",
                handle=self.codec.decode(bits),
                bits=out,
            ))
        lane.dst.write(out)

    def _op_cvt_f32_f64(self, machine, lane: BoundLane, bound) -> None:
        self.box(lane.dst, self.arith.from_f32_bits(lane.srcs[0].read()))

    def _op_round(self, machine, lane: BoundLane, bound: BoundInst) -> None:
        a = self.unbox(lane.srcs[0].read())
        self.box(lane.dst, self.arith.round_to_integral(a, bound.imm or 0))

    def _mk_binop32(self, fn):
        def impl(machine: "Machine", lane: BoundLane, bound: BoundInst) -> None:
            # "float problem": f32 slots can't be boxed, so emulation
            # promotes, computes, and demotes straight back to binary32.
            a = self.arith.from_f32_bits(lane.srcs[0].read())
            b = self.arith.from_f32_bits(lane.srcs[1].read())
            lane.dst.write(self.arith.to_f32_bits(fn(a, b)))

        return impl
