"""FPSpy mode: observe floating point behaviour without changing it.

FPVM's trap-and-emulate engine "leverages the ideas behind our FPSpy
analysis tool [19]" (paper §4.1) — FPSpy responds to the same SIGFPE
"by *recording* the execution of the faulting instruction, and then
allowing it to be executed as normal."

:class:`FPSpy` is that tool, rebuilt on this reproduction's machine:
it unmasks a chosen set of MXCSR events, records every fault (event
kind, instruction address, mnemonic), then re-executes the faulting
instruction with exceptions masked so results are bit-identical to an
untraced run.  It is both a useful profiling tool (which codes would
virtualize heavily?) and the validation baseline for the FPVM engine's
trap plumbing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import MachineError
from repro.ieee.softfloat import Flags
from repro.machine.traps import TrapFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import Machine

_FLAG_NAMES = ((Flags.IE, "invalid"), (Flags.DE, "denorm"),
               (Flags.ZE, "divzero"), (Flags.OE, "overflow"),
               (Flags.UE, "underflow"), (Flags.PE, "rounding"))


@dataclass
class FPSpyReport:
    """Aggregated observations from one traced run."""

    total_events: int = 0
    by_kind: Counter = field(default_factory=Counter)
    by_site: Counter = field(default_factory=Counter)      # rip -> count
    by_mnemonic: Counter = field(default_factory=Counter)
    fp_instructions: int = 0
    instructions: int = 0

    @property
    def event_rate(self) -> float:
        """Events per dynamic FP instruction — the virtualization
        pressure FPVM would face on this code."""
        if self.fp_instructions == 0:
            return 0.0
        return self.total_events / self.fp_instructions

    def hottest_sites(self, n: int = 10) -> list[tuple[int, int]]:
        return self.by_site.most_common(n)

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in self.by_kind.most_common())
        return (f"FPSpy: {self.total_events} events over "
                f"{self.fp_instructions} FP instructions "
                f"({100 * self.event_rate:.1f}% would trap under FPVM); "
                f"{kinds}")


class FPSpy:
    """Record-only FP event tracer (the paper's FPSpy, rebuilt)."""

    def __init__(self, watch: int = Flags.ALL) -> None:
        self.watch = watch & Flags.ALL
        self.report = FPSpyReport()
        self.machine: "Machine | None" = None
        self._saved_masks: int | None = None

    # ------------------------------------------------------------------ #
    def install(self, machine: "Machine") -> None:
        if self.machine is not None:
            raise MachineError("FPSpy already installed")
        self.machine = machine
        self._saved_masks = machine.mxcsr.masks
        machine.mxcsr.set_masks(Flags.ALL & ~self.watch)
        machine.mxcsr.clear_flags()
        machine.fp_trap_handler = self._on_trap

    def uninstall(self) -> None:
        m = self.machine
        if m is None:
            return
        # a trapped instruction is attempted then re-executed: it hits
        # the FP counter twice, so subtract one count per event
        self.report.instructions = m.instr_count - self.report.total_events
        self.report.fp_instructions = (m.fp_instr_count
                                       - self.report.total_events)
        if self._saved_masks is not None:
            m.mxcsr.set_masks(self._saved_masks)
        m.fp_trap_handler = None
        self.machine = None

    # ------------------------------------------------------------------ #
    def _on_trap(self, machine: "Machine", frame: TrapFrame) -> None:
        """Record, then re-execute the instruction with events masked —
        the result is exactly what the untraced program computes."""
        rep = self.report
        rep.total_events += 1
        for bit, name in _FLAG_NAMES:
            if frame.fp_flags & bit:
                rep.by_kind[name] += 1
        rep.by_site[frame.rip] += 1
        rep.by_mnemonic[frame.instruction.mnemonic] += 1

        saved = machine.mxcsr.masks
        machine.mxcsr.mask_all()
        machine.execute(frame.instruction)  # cannot fault; advances rip
        machine.mxcsr.set_masks(saved)
        machine.mxcsr.clear_flags()


def spy_on(binary_or_builder, *, watch: int = Flags.ALL,
           max_instructions: int | None = None) -> FPSpyReport:
    """Convenience: run a binary under FPSpy and return the report."""
    from repro.machine.loader import load_binary

    binary = (binary_or_builder() if callable(binary_or_builder)
              else binary_or_builder)
    m = load_binary(binary)
    spy = FPSpy(watch)
    spy.install(m)
    m.run(max_instructions)
    spy.uninstall()
    return spy.report
