"""Decoding: faulting instruction → Capstone-independent FPVM ops (§4.1).

    "The hundreds of different x64 floating point instructions flatten
    down to about 40 operation types… This code keeps a cache of
    decoded instructions — a map from address to struct instruction —
    that is quickly queried to avoid decoding the same instruction
    multiple times.  This decode cache is critical to lowering
    latencies."

Our ISA plays the role of raw x64 bytes; Capstone's role is played by
the instruction objects themselves.  The decoder still performs the
same architectural flattening (scalar/packed/mem/reg forms of dozens
of mnemonics → one :class:`FPVMOp` each) and the decode cache exhibits
the same ~100% hit rate the paper reports (footnote 8), which the
Fig. 9 bench verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from repro.errors import MachineError
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem, Reg, Xmm


class FPVMOp(Enum):
    """The ~40 Capstone-independent operation types (paper §4.1)."""

    ADD = auto(); SUB = auto(); MUL = auto(); DIV = auto()           # noqa: E702
    SQRT = auto(); MIN = auto(); MAX = auto(); FMA = auto()          # noqa: E702
    UCOMI = auto(); COMI = auto(); CMP_PRED = auto()                 # noqa: E702
    CVT_I32_F64 = auto(); CVT_I64_F64 = auto()                       # noqa: E702
    CVT_F64_I32 = auto(); CVT_F64_I32_TRUNC = auto()                 # noqa: E702
    CVT_F64_I64 = auto(); CVT_F64_I64_TRUNC = auto()                 # noqa: E702
    CVT_F64_F32 = auto(); CVT_F32_F64 = auto(); ROUND = auto()       # noqa: E702
    ADD32 = auto(); SUB32 = auto(); MUL32 = auto(); DIV32 = auto()   # noqa: E702


#: operand template kinds used by the binder
# ("xmm", index, lane) | ("xmm32", index) | ("mem", Mem) | ("gpr", name, size)
OperandTemplate = tuple


@dataclass(slots=True)
class DecodedInst:
    """Normalized, Capstone-independent representation of one site."""

    op: FPVMOp
    instr: Instruction
    lanes: int = 1
    #: per-lane destination template (lane index applied at bind time)
    dst: OperandTemplate | None = None
    #: source templates, in emulator argument order
    srcs: tuple[OperandTemplate, ...] = ()
    imm: int | None = None        # CMPSD predicate / ROUNDSD mode
    arith_name: str = ""          # op_cycles key ("add", "div", ...)


_SCALAR = {"addsd": (FPVMOp.ADD, "add"), "subsd": (FPVMOp.SUB, "sub"),
           "mulsd": (FPVMOp.MUL, "mul"), "divsd": (FPVMOp.DIV, "div"),
           "minsd": (FPVMOp.MIN, "min"), "maxsd": (FPVMOp.MAX, "max")}
_PACKED = {"addpd": (FPVMOp.ADD, "add"), "subpd": (FPVMOp.SUB, "sub"),
           "mulpd": (FPVMOp.MUL, "mul"), "divpd": (FPVMOp.DIV, "div"),
           "minpd": (FPVMOp.MIN, "min"), "maxpd": (FPVMOp.MAX, "max")}
_SCALAR32 = {"addss": (FPVMOp.ADD32, "add"), "subss": (FPVMOp.SUB32, "sub"),
             "mulss": (FPVMOp.MUL32, "mul"), "divss": (FPVMOp.DIV32, "div")}


def _xmm_or_mem(op, lane: int = 0) -> OperandTemplate:
    if isinstance(op, Xmm):
        return ("xmm", op.index, lane)
    if isinstance(op, Mem):
        return ("mem", op)
    raise MachineError(f"cannot decode FP operand {op!r}")


def decode_instruction(ins: Instruction) -> DecodedInst:
    """Flatten one ISA instruction into its FPVM operation type."""
    mn = ins.mnemonic
    ops = ins.operands

    if mn in _SCALAR:
        op, nm = _SCALAR[mn]
        dst = ("xmm", ops[0].index, 0)
        return DecodedInst(op, ins, 1, dst, (dst, _xmm_or_mem(ops[1])),
                           arith_name=nm)
    if mn in _PACKED:
        op, nm = _PACKED[mn]
        dst = ("xmm", ops[0].index, 0)
        return DecodedInst(op, ins, 2, dst, (dst, _xmm_or_mem(ops[1])),
                           arith_name=nm)
    if mn in _SCALAR32:
        op, nm = _SCALAR32[mn]
        dst = ("xmm32", ops[0].index)
        src = ("xmm32", ops[1].index) if isinstance(ops[1], Xmm) else ("mem", ops[1])
        return DecodedInst(op, ins, 1, dst, (dst, src), arith_name=nm)
    if mn == "sqrtsd":
        dst = ("xmm", ops[0].index, 0)
        return DecodedInst(FPVMOp.SQRT, ins, 1, dst, (_xmm_or_mem(ops[1]),),
                           arith_name="sqrt")
    if mn == "sqrtpd":
        dst = ("xmm", ops[0].index, 0)
        return DecodedInst(FPVMOp.SQRT, ins, 2, dst, (_xmm_or_mem(ops[1]),),
                           arith_name="sqrt")
    if mn == "fmaddsd":
        dst = ("xmm", ops[0].index, 0)
        return DecodedInst(
            FPVMOp.FMA, ins, 1, dst,
            (_xmm_or_mem(ops[1]), _xmm_or_mem(ops[2]), dst),
            arith_name="fma",
        )
    if mn == "ucomisd":
        return DecodedInst(FPVMOp.UCOMI, ins, 1, None,
                           (("xmm", ops[0].index, 0), _xmm_or_mem(ops[1])),
                           arith_name="compare")
    if mn == "comisd":
        return DecodedInst(FPVMOp.COMI, ins, 1, None,
                           (("xmm", ops[0].index, 0), _xmm_or_mem(ops[1])),
                           arith_name="compare")
    if mn == "cmpsd":
        dst = ("xmm", ops[0].index, 0)
        return DecodedInst(FPVMOp.CMP_PRED, ins, 1, dst,
                           (dst, _xmm_or_mem(ops[1])), imm=ops[2].value & 7,
                           arith_name="compare")
    if mn == "cvtsi2sd":
        dst = ("xmm", ops[0].index, 0)
        src = ops[1]
        if isinstance(src, Reg):
            tpl = ("gpr", src.name, src.size)
            op = FPVMOp.CVT_I32_F64 if src.size == 4 else FPVMOp.CVT_I64_F64
        else:
            tpl = ("mem", src)
            op = FPVMOp.CVT_I32_F64 if src.size == 4 else FPVMOp.CVT_I64_F64
        return DecodedInst(op, ins, 1, dst, (tpl,), arith_name="from_i64")
    if mn in ("cvttsd2si", "cvtsd2si"):
        dst_reg: Reg = ops[0]
        trunc = mn == "cvttsd2si"
        if dst_reg.size == 4:
            op = FPVMOp.CVT_F64_I32_TRUNC if trunc else FPVMOp.CVT_F64_I32
        else:
            op = FPVMOp.CVT_F64_I64_TRUNC if trunc else FPVMOp.CVT_F64_I64
        return DecodedInst(op, ins, 1, ("gpr", dst_reg.name, dst_reg.size),
                           (_xmm_or_mem(ops[1]),), arith_name="to_i64")
    if mn == "cvtsd2ss":
        dst = ("xmm32", ops[0].index)
        return DecodedInst(FPVMOp.CVT_F64_F32, ins, 1, dst,
                           (_xmm_or_mem(ops[1]),), arith_name="to_f32_bits")
    if mn == "cvtss2sd":
        dst = ("xmm", ops[0].index, 0)
        src = ("xmm32", ops[1].index) if isinstance(ops[1], Xmm) else ("mem", ops[1])
        return DecodedInst(FPVMOp.CVT_F32_F64, ins, 1, dst, (src,),
                           arith_name="from_f32_bits")
    if mn == "roundsd":
        dst = ("xmm", ops[0].index, 0)
        return DecodedInst(FPVMOp.ROUND, ins, 1, dst, (_xmm_or_mem(ops[1]),),
                           imm=ops[2].value & 3, arith_name="round_to_integral")
    raise MachineError(f"FPVM cannot decode {mn!r} (not a trapping FP op)")


@dataclass
class DecodeCache:
    """Address-indexed decode cache with hit/miss statistics."""

    cache: dict[int, DecodedInst] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def lookup(self, ins: Instruction) -> tuple[DecodedInst, bool]:
        """Return (decoded, was_hit)."""
        d = self.cache.get(ins.addr)
        if d is not None and d.instr is ins:
            self.hits += 1
            return d, True
        self.misses += 1
        d = decode_instruction(ins)
        self.cache[ins.addr] = d
        return d, False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
