"""Tracing JIT: hot-loop trace recording, optimization, and emission.

The predecode interpreter (``machine/predecode.py``) pays a dict fetch,
a closure call, and per-step accounting on every instruction, and the
SoftFPU pays a bits->float->bits round trip per FP op.  This module
removes both from hot loops, PyPy-style:

1. **Hot-loop detection** — backward direct branches report their
   target through ``machine._loop_hook``; past ``threshold`` executions
   the loop header is recorded.
2. **Trace recording** — ``_record`` follows one real iteration
   instruction-by-instruction (through superblock boundaries and fpvm
   trap sites — the steps *execute* while being captured, so recording
   never perturbs architectural state).
3. **Optimization** — the ``_OptEmitter`` promotes GPRs, RFLAGS, and
   XMM lanes into Python locals, keeps loop-carried FP values in the
   *float domain* across iterations (unbox/rebox sinking: bits are
   rematerialized at the back edge, the full architectural state only
   on exits), value-numbers effective-address computations (pure-op
   CSE), folds register constants, and strengthens every assumption
   into an explicit guard.
4. **Emission** — each trace is ``exec``-compiled into one Python
   function installed at ``machine._blocks[header]``; the fast fetch
   loop enters it like any superblock.  Guard failures deoptimize by
   committing the partial iteration (exact ``instr_count`` /
   ``fp_instr_count`` / cycle charges), flushing locals back to the
   register file, and returning to the interpreter at a precise RIP.

Traces interact with the rest of the VM exactly like trap-site JIT
closures: faults and storms (``FPVM._degrade``) invalidate the
containing trace, binary patches invalidate through a patch listener,
and a GC sweep that lands mid-recording aborts the recording cleanly
(``note_sweep``) so no stale shadow state is baked in.

Two emitters share the pipeline:

* **opt** — machine-only traces (no FPVM trap handler): FP arithmetic
  is inlined in the float domain under a finiteness invariant (every
  float-form local is finite, guarded at each unbox and each FP
  result).  This is where the order-of-magnitude win lives.
* **chain** — the general fallback (and the only mode under an
  installed FPVM handler): the recorded step closures are replayed
  with a RIP/validity check after every non-straight-line step.
  Observationally identical by construction; still skips the fetch
  loop's per-block dict traffic.
"""

from __future__ import annotations

import math
import struct
from typing import TYPE_CHECKING

from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.isa.registers import canonical, subreg_size
from repro.machine.predecode import _BLOCK_SAFE, _base_cost, _block_at
from repro.fpvm.stats import FPVMStats
from repro.trace.events import (TraceCompileEvent, TraceDeoptEvent,
                                TraceRecordEvent)

if TYPE_CHECKING:  # pragma: no cover
    from repro.fpvm.runtime import FPVM
    from repro.machine.cpu import Machine

_M64 = 0xFFFF_FFFF_FFFF_FFFF

_pk_q = struct.Struct("<Q").pack
_up_q = struct.Struct("<Q").unpack
_pk_d = struct.Struct("<d").pack
_up_d = struct.Struct("<d").unpack


def _b2f(b: int) -> float:
    return _up_d(_pk_q(b))[0]


def _f2b(f: float) -> int:
    return _up_q(_pk_d(f))[0]


#: steps that may divert through the FPVM trap handler: a post-step RIP
#: mismatch there is a deopt (the handler took over), not a side exit
_FP_DIVERT = frozenset([
    "addsd", "subsd", "mulsd", "divsd", "minsd", "maxsd",
    "addpd", "subpd", "mulpd", "divpd", "minpd", "maxpd",
    "addss", "subss", "mulss", "divss",
    "sqrtsd", "sqrtpd", "ucomisd", "comisd", "cmpsd", "roundsd",
    "fmaddsd", "cvtsi2sd", "cvttsd2si", "cvtsd2si", "cvtsd2ss",
    "cvtss2sd", "fpvm_trap", "fpvm_patch",
])

#: FP instructions the opt emitter inlines; each consults ``_fp_event``
#: in the interpreter, so each contributes one ``fp_instr_count`` tick
_NF = frozenset(["addsd", "subsd", "mulsd", "divsd", "sqrtsd",
                 "ucomisd", "comisd", "cvtsi2sd", "cvttsd2si"])

#: jcc/setcc/cmovcc condition -> expression over the promoted flag
#: locals (fZ/fS/fO/fC/fP mirror Machine._COND exactly; flags are 0/1)
_COND_EXPR = {
    "e": "fZ", "ne": "not fZ",
    "l": "fS != fO", "le": "fZ or fS != fO",
    "g": "not fZ and fS == fO", "ge": "fS == fO",
    "b": "fC", "be": "fC or fZ",
    "a": "not fC and not fZ", "ae": "not fC",
    "s": "fS", "ns": "not fS", "p": "fP", "np": "not fP",
}


class _Unsupported(Exception):
    """Raised by the opt emitter to fall back to chain mode."""


class TraceInfo:
    __slots__ = ("header", "fn", "mode", "length", "addrs", "valid",
                 "handler", "hits", "deopts", "side_exits", "entry_fails",
                 "src")

    def __init__(self, header, length, addrs, handler):
        self.header = header
        self.fn = None
        self.mode = "chain"
        self.length = length
        self.addrs = addrs
        self.valid = True
        self.handler = handler
        self.hits = 0
        self.deopts = 0
        self.side_exits = 0
        self.entry_fails = 0
        self.src = ""


class TraceJIT:
    """Hot-loop tracer for one machine (optionally under one FPVM)."""

    def __init__(self, machine: "Machine", threshold: int = 50,
                 fpvm: "FPVM | None" = None,
                 stats: FPVMStats | None = None) -> None:
        if machine._blocks is None:
            raise ValueError("tracing JIT requires a predecoded machine")
        self.machine = machine
        self.threshold = threshold
        self.fpvm = fpvm
        self.stats = fpvm.stats if fpvm is not None else (
            stats if stats is not None else FPVMStats())
        self.traces: dict[int, TraceInfo] = {}
        self.counts: dict[int, int] = {}
        self.compiles: dict[int, int] = {}
        self.record_fails: dict[int, int] = {}
        self.blacklist: set[int] = set()
        self.max_trace_len = 256
        self.max_compiles_per_loop = 4
        self._busy = False
        self._recording = False
        self._abort_reason: str | None = None
        self._detached = False
        self._retired: set[int] = set()

    # ------------------------------------------------------------------ #
    # wiring                                                              #
    # ------------------------------------------------------------------ #

    def attach(self) -> None:
        self.machine._loop_hook = self._on_back_edge
        self.machine.binary.add_patch_listener(self._on_patch)

    def detach(self, reason: str = "detach") -> None:
        """Tear down silently: retire events, restore blocks, unhook."""
        self.flush_events()
        m = self.machine
        for info in list(self.traces.values()):
            info.valid = False
            self._deinstall(info)
        self.traces.clear()
        if m._loop_hook is self._on_back_edge:
            m._loop_hook = None
        self._detached = True

    def flush_events(self) -> None:
        """Emit a retire row per live trace (end-of-run bookkeeping).

        Idempotent per trace: a session close followed by an uninstall
        must not double-report the totals.
        """
        for info in self.traces.values():
            if info.header in self._retired:
                continue
            self._retired.add(info.header)
            self._emit(TraceCompileEvent(
                header=info.header, length=info.length, mode=info.mode,
                action="retire", hits=info.hits, deopts=info.deopts))

    def _on_patch(self, ins) -> None:
        if not self._detached:
            self.invalidate_containing(ins.addr, "patch")

    def _emit(self, ev) -> None:
        sink = self.machine.trace
        if sink is not None:
            ev.cycles = self.machine.cost.cycles
            sink.emit(ev)

    # ------------------------------------------------------------------ #
    # hot-loop detection                                                  #
    # ------------------------------------------------------------------ #

    def _assumptions_hold(self, info: TraceInfo) -> bool:
        m = self.machine
        return (m.fp_trap_handler is info.handler and m.oracle is None
                and m._blocks is not None)

    def _on_back_edge(self, tgt: int) -> None:
        if self._busy or not self.machine._in_fast_loop:
            return
        info = self.traces.get(tgt)
        if info is not None:
            if info.valid:
                # self-heal: set_oracle()/rebuild_blocks_around() clobber
                # _blocks[header] with a fresh superblock — reinstall as
                # long as the trace's assumptions still hold
                m = self.machine
                if (m._blocks.get(tgt) is not info.fn
                        and self._assumptions_hold(info)):
                    m._blocks[tgt] = info.fn
                return
            self.traces.pop(tgt, None)
        if tgt in self.blacklist:
            return
        n = self.counts.get(tgt, 0) + 1
        if n < self.threshold:
            self.counts[tgt] = n
            return
        self.counts[tgt] = 0
        self._hot(tgt)

    def _hot(self, header: int) -> None:
        m = self.machine
        if m.oracle is not None or m.halted:
            return
        n = self.compiles.get(header, 0)
        if n >= self.max_compiles_per_loop:
            self.blacklist.add(header)
            return
        self._busy = True
        self._recording = True
        self._abort_reason = None
        try:
            rec = self._record(header)
        finally:
            self._recording = False
            self._busy = False
        if rec is None:
            self.stats.trace_record_aborts += 1
            self._emit(TraceRecordEvent(
                header=header, ok=False,
                reason=self._abort_reason or "abort"))
            fails = self.record_fails.get(header, 0) + 1
            self.record_fails[header] = fails
            if fails >= 3:
                self.blacklist.add(header)
            return
        self._emit(TraceRecordEvent(header=header, length=len(rec), ok=True))
        info = self._compile(header, rec)
        if info is None:
            self.blacklist.add(header)
            return
        self.compiles[header] = n + 1
        self.traces[header] = info
        m._blocks[header] = info.fn
        self.stats.trace_loops_compiled += 1
        self._emit(TraceCompileEvent(
            header=header, length=info.length, mode=info.mode,
            action="compile"))

    # ------------------------------------------------------------------ #
    # recording                                                           #
    # ------------------------------------------------------------------ #

    def _record(self, header: int):
        """Capture one loop iteration by executing it step-by-step.

        The captured steps *are* the execution — on success or abort,
        architectural state is exactly what normal interpretation would
        have produced, so control can return to the fetch loop as-is.
        """
        m = self.machine
        regs = m.regs
        text_map = m.binary.text_map
        code = m._code
        rec = []
        rip = header
        for _ in range(self.max_trace_len):
            ins = text_map.get(rip)
            step = code.get(rip)
            if ins is None or step is None:
                self._abort_reason = "unmapped-rip"
                return None
            step()
            if self._abort_reason is not None:
                # e.g. a GC sweep reclaimed shadow handles mid-recording
                return None
            if m.halted:
                self._abort_reason = "halted"
                return None
            after = regs.rip
            rec.append((ins, step, after))
            if after == header:
                return rec
            rip = after
        self._abort_reason = "too-long"
        return None

    def note_sweep(self, freed) -> None:
        """GC sweep notification: a recording in flight could bake state
        that refers to the just-reclaimed shadow handles — abort it.
        Must be called *before* downstream caches flush (satellite fix:
        BindCache invalidation used to run first)."""
        if self._recording:
            self._abort_reason = "gc-sweep"

    # ------------------------------------------------------------------ #
    # compilation                                                         #
    # ------------------------------------------------------------------ #

    def _compile(self, header: int, rec) -> TraceInfo | None:
        m = self.machine
        info = TraceInfo(header, len(rec),
                         frozenset(ins.addr for ins, _, _ in rec),
                         m.fp_trap_handler)
        try:
            if info.handler is None:
                try:
                    _OptEmitter(self, info, rec).build()
                except _Unsupported:
                    self._compile_chain(info, rec)
            else:
                self._compile_chain(info, rec)
        except Exception:
            return None
        return info

    def _compile_chain(self, info: TraceInfo, rec) -> None:
        m = self.machine
        env = {"m": m, "regs": m.regs, "I": info, "H": info.handler,
               "TJ": self, "S": self.stats}
        L = []
        a = L.append
        a("def trace():")
        a("    if m.fp_trap_handler is not H or m.oracle is not None "
          "or not I.valid:")
        a("        TJ._entry_fail(I)")
        a("        return")
        a("    while True:")
        a("        I.hits += 1")
        a("        S.trace_hits += 1")
        last = len(rec) - 1
        for k, (ins, step, after) in enumerate(rec):
            env["s%d" % k] = step
            a("        s%d()" % k)
            if ins.mnemonic in _BLOCK_SAFE and k != last:
                continue
            fp = ins.mnemonic in _FP_DIVERT
            a("        if m.halted or regs.rip != %d or not I.valid:" % after)
            a("            TJ._chain_exit(I, %d, %r)" % (ins.addr, fp))
            a("            return")
        src = "\n".join(L)
        exec(compile(src, "<trace-chain@%#x>" % info.header, "exec"), env)
        info.fn = env["trace"]
        info.mode = "chain"
        info.src = src

    # ------------------------------------------------------------------ #
    # runtime exits                                                       #
    # ------------------------------------------------------------------ #

    def _entry_fail(self, info: TraceInfo) -> None:
        """Entry guard failed: deinstall so the fetch loop makes
        progress through the plain superblock; the back-edge hook
        reinstalls once assumptions hold again."""
        info.entry_fails += 1
        self._deinstall(info)
        if info.entry_fails > 32 and info.valid:
            self._invalidate(info, "entry-thrash")
            self.blacklist.add(info.header)

    def _chain_exit(self, info: TraceInfo, addr: int, fp_like: bool) -> None:
        if not info.valid:
            self._deopt(info, "invalidated", addr)
        elif not self.machine.halted and fp_like:
            self._deopt(info, "trap-divert", addr)
        else:
            self._side_exit(info)

    def _deopt(self, info: TraceInfo, reason: str, addr: int) -> None:
        info.deopts += 1
        self.stats.trace_deopts += 1
        self._emit(TraceDeoptEvent(header=info.header, addr=addr,
                                   reason=reason))
        if info.valid and info.deopts > 32 and info.deopts * 2 > info.hits:
            self._invalidate(info, "deopt-storm")

    def _side_exit(self, info: TraceInfo) -> None:
        info.side_exits += 1
        self.stats.trace_side_exits += 1

    # ------------------------------------------------------------------ #
    # invalidation                                                        #
    # ------------------------------------------------------------------ #

    def _deinstall(self, info: TraceInfo) -> None:
        m = self.machine
        if m._blocks is not None and m._blocks.get(info.header) is info.fn:
            m._blocks[info.header] = _block_at(m, m._code, info.header)

    def _invalidate(self, info: TraceInfo, reason: str) -> None:
        if not info.valid:
            return
        info.valid = False
        self.stats.trace_invalidations += 1
        self._deinstall(info)
        self._emit(TraceCompileEvent(
            header=info.header, length=info.length, mode=info.mode,
            action="invalidate", hits=info.hits, deopts=info.deopts,
            reason=reason))
        self.traces.pop(info.header, None)
        self.counts[info.header] = 0

    def invalidate_containing(self, addr: int, reason: str) -> None:
        """Invalidate every trace whose covered addresses include
        ``addr`` — faults, storms, and patches tear traces down exactly
        as they tear down trap-site JIT closures."""
        for info in list(self.traces.values()):
            if addr in info.addrs:
                self._invalidate(info, reason)

    def invalidate_all(self, reason: str) -> None:
        for info in list(self.traces.values()):
            self._invalidate(info, reason)


# --------------------------------------------------------------------------- #
# the optimizing emitter (machine-only traces)                                 #
# --------------------------------------------------------------------------- #

class _OptEmitter:
    """Compile a recorded trace to one specialized loop function.

    State promotion: every referenced GPR becomes a local ``g_<reg>``,
    the five RFLAGS bits become ``fZ/fS/fO/fC/fP``, and each XMM lane 0
    lives in dual form — ``xb<i>`` (bits) and ``xf<i>`` (float), with
    per-lane validity tracked at emission time so conversions are
    emitted lazily and loop-carried FP values stay in the float domain
    (``xh<i>`` holds lane 1 bits).  The architectural register file is
    written back only on exits.

    The finiteness invariant: every float-form value is finite.  Each
    bits->float unbox and each inlined FP result is guarded with
    ``v - v != 0.0`` (true exactly for NaN/±inf); a failed guard
    deoptimizes *before* the owning instruction commits, so the
    interpreter re-executes it with bit-exact SoftFPU semantics.

    Scalar replacement: when *every* memory access in the trace is an
    8-byte word at a loop-invariant address (base+disp with an
    unwritten base register, or absolute — the compiler's stack slots
    and rodata constants), the words are hoisted into locals at trace
    entry and written back on every exit, eliding all ``RD``/``WR``
    calls from the loop body.  One unpromotable access disables the
    pass entirely, since it could alias any promoted word; collisions
    between base groups are rejected by an entry-time distinctness
    guard.
    """

    def __init__(self, tj: TraceJIT, info: TraceInfo, rec) -> None:
        self.tj = tj
        self.m = tj.machine
        self.info = info
        self.rec = rec
        # accounting prefix sums: pcp[k] = modeled cycles of the first k
        # instructions (left-associated float adds), nfp[k] = FP events
        pcp = [0.0]
        nfp = [0]
        c = 0.0
        n = 0
        for ins, _, _ in rec:
            c = c + _base_cost(self.m, ins)
            n = n + (1 if ins.mnemonic in _NF else 0)
            pcp.append(c)
            nfp.append(n)
        self.pcp = pcp
        self.nfp = nfp
        self.gprs: set[str] = set()
        self.xmms: set[int] = set()
        # scalar replacement of loop-invariant memory words: every
        # 8-byte access whose EA is base+disp with an unwritten base
        # (or absolute) can live in a local across iterations.  The
        # discovery pass records accesses; _decide_slots promotes them
        # all-or-nothing (one unpromotable access would alias freely).
        self.mem_recs: list = []
        self.mem_unstable = False
        self.written_gprs: set[str] = set()
        self.slots: dict = {}
        self.slot_wb: list = []
        self._prescan()

    # -- prescan: registers touched + support check ---------------------- #

    def _prescan(self) -> None:
        sup = _SUPPORTED
        for ins, _, _ in self.rec:
            mn = ins.mnemonic
            if mn not in sup:
                raise _Unsupported(mn)
            if mn in ("push", "pop"):
                self.gprs.add("rsp")
            for op in ins.operands:
                if isinstance(op, Reg):
                    self.gprs.add(canonical(op.name))
                elif isinstance(op, Xmm):
                    self.xmms.add(op.index)
                elif isinstance(op, Mem):
                    if op.base is not None:
                        self.gprs.add(canonical(op.base))
                    if op.index is not None:
                        self.gprs.add(canonical(op.index))
            if mn in ("jmp", "jcc") or mn[0] == "j":
                if not isinstance(ins.operands[0], Imm):
                    raise _Unsupported("indirect branch")

    # -- emission state --------------------------------------------------- #

    def _reset(self, entry_fv: frozenset) -> None:
        self.lines: list[str] = []
        self.ind = "        "
        self.fv = {i: i in entry_fv for i in self.xmms}
        self.bv = {i: True for i in self.xmms}
        self.defined: set[int] = set()
        self.float_first: set[int] = getattr(self, "float_first", set())
        self.consts: dict[str, int] = {}
        self.avail: dict[str, str] = {}
        self.avail_deps: dict[str, set] = {}
        self.ntmp = 0
        self.k = 0
        self.cur_addr = 0

    def w(self, line: str) -> None:
        self.lines.append(self.ind + line)

    def push_ind(self) -> None:
        self.ind += "    "

    def pop_ind(self) -> None:
        self.ind = self.ind[:-4]

    def tmp(self) -> str:
        self.ntmp += 1
        return "t%d" % self.ntmp

    # -- integer operand plumbing (mirrors predecode closures) ------------ #

    def kill(self, canon: str) -> None:
        self.written_gprs.add(canon)
        self.consts.pop(canon, None)
        dead = [e for e, t in self.avail.items()
                if canon in self.avail_deps.get(t, ())]
        for e in dead:
            del self.avail[e]

    def rd_gpr(self, name: str, size: int = 8):
        """(expr, deps) for a register read at alias/eff width."""
        c = canonical(name)
        eff = min(subreg_size(name), size)
        if c in self.consts:
            v = self.consts[c]
            if eff < 8:
                v &= (1 << (8 * eff)) - 1
            return repr(v), set()
        if eff == 8:
            return "g_" + c, {c}
        return "(g_%s & %#x)" % (c, (1 << (8 * eff)) - 1), {c}

    def ea(self, mem: Mem) -> str:
        """Effective-address expression, value-numbered (pure-op CSE)."""
        if mem.base is None and mem.index is None:
            return repr(mem.disp & _M64)
        deps: set[str] = set()
        parts = []
        if mem.base is not None:
            e, d = self.rd_gpr(mem.base)
            parts.append(e)
            deps |= d
        if mem.index is not None:
            e, d = self.rd_gpr(mem.index)
            parts.append("%s * %d" % (e, mem.scale))
            deps |= d
        if mem.disp:
            parts.append(repr(mem.disp))
        expr = "(%s) & %#x" % (" + ".join(parts), _M64)
        if not deps:
            return repr(eval(expr))  # fully constant-folded
        t = self.avail.get(expr)
        if t is not None:
            return t
        t = self.tmp()
        self.w("%s = %s" % (t, expr))
        self.avail[expr] = t
        self.avail_deps[t] = deps
        return t

    # -- memory access, with scalar replacement -------------------------- #

    def _mem_key(self, mem: Mem, delta: int):
        """Slot key for a promotable access, or None."""
        if mem.index is not None:
            return None
        if mem.base is None:
            return (None, (mem.disp + delta) & _M64)
        return (canonical(mem.base), mem.disp + delta)

    def _slot(self, mem: Mem, size: int, delta: int, write: bool):
        key = self._mem_key(mem, delta)
        self.mem_recs.append((key, size, write))
        if key is None or size != 8:
            self.mem_unstable = True
            return None
        return self.slots.get(key)

    def mrd(self, mem: Mem, size: int, delta: int = 0) -> str:
        s = self._slot(mem, size, delta, False)
        if s is not None:
            return s[0]
        ea = self.ea(mem)
        if delta:
            ea = "%s + %d" % (ea, delta)
        return "RD(%s, %d)" % (ea, size)

    def mwr(self, mem: Mem, size: int, expr: str, delta: int = 0) -> None:
        s = self._slot(mem, size, delta, True)
        if s is not None:
            # mask like Memory.write truncating to ``size`` bytes
            self.w("%s = (%s) & %#x" % (s[0], expr, _M64))
            return
        ea = self.ea(mem)
        if delta:
            ea = "%s + %d" % (ea, delta)
        self.w("WR(%s, %d, %s)" % (ea, size, expr))

    def _decide_slots(self) -> None:
        """Promote memory words after the discovery pass.

        All-or-nothing: a single access that cannot be promoted (EA
        with an index register, a mutated base, a non-8-byte width,
        push/pop stack traffic) could alias any promoted word, so it
        disables promotion for the whole trace.  Cross-base-group
        aliasing (rbp slot vs. absolute address) is decided at entry
        by the distinctness guard in ``build``.
        """
        self.slots = {}
        self.slot_wb = []
        if self.mem_unstable:
            return
        keys: dict = {}
        for key, size, write in self.mem_recs:
            if key is None or size != 8:
                return
            keys[key] = keys.get(key, False) or write
        for base, _ in keys:
            if base is not None and base in self.written_gprs:
                return
        order = sorted(keys.items(), key=lambda kv: (kv[0][0] or "",
                                                     kv[0][1]))
        for n, (key, written) in enumerate(order):
            val, addr = "sv%d" % n, "sa%d" % n
            self.slots[key] = (val, addr)
            if written:
                self.slot_wb.append((val, addr))

    def rd_int(self, op, size: int) -> str:
        if isinstance(op, Reg):
            return self.rd_gpr(op.name, size)[0]
        if isinstance(op, Imm):
            return repr(op.value & ((1 << (8 * size)) - 1))
        if isinstance(op, Mem):
            return self.mrd(op, size)
        raise _Unsupported(repr(op))

    def wr_int(self, op, size: int, expr: str) -> None:
        if isinstance(op, Reg):
            c = canonical(op.name)
            alias = subreg_size(op.name)
            eff = min(alias, size)
            emask = (1 << (8 * eff)) - 1
            self.kill(c)
            if alias >= 4:
                self.w("g_%s = (%s) & %#x" % (c, expr, emask))
                try:
                    self.consts[c] = eval(expr) & emask
                except Exception:
                    pass
            else:
                amask = (1 << (8 * alias)) - 1
                self.w("g_%s = (g_%s & %d) | ((%s) & %#x)"
                       % (c, c, ~amask, expr, emask))
        elif isinstance(op, Mem):
            self.mwr(op, size, expr)
        else:
            raise _Unsupported(repr(op))

    # -- XMM dual-form plumbing ------------------------------------------- #

    def need_float(self, i: int) -> str:
        if i not in self.defined:
            self.float_first.add(i)
        if not self.fv[i]:
            self.w("xf%d = B2F(xb%d)" % (i, i))
            self.guard("xf%d - xf%d != 0.0" % (i, i), "nonfinite")
            self.fv[i] = True
        return "xf%d" % i

    def need_bits(self, i: int) -> str:
        if not self.bv[i]:
            self.w("xb%d = F2B(xf%d)" % (i, i))
            self.bv[i] = True
        return "xb%d" % i

    def set_float(self, i: int, expr: str) -> None:
        self.w("xf%d = %s" % (i, expr))
        self.fv[i] = True
        self.bv[i] = False
        self.defined.add(i)

    def set_bits(self, i: int, expr: str) -> None:
        self.w("xb%d = %s" % (i, expr))
        self.bv[i] = True
        self.fv[i] = False
        self.defined.add(i)

    def copy_lane(self, d: int, s: int) -> None:
        if self.bv[s]:
            self.w("xb%d = xb%d" % (d, s))
        if self.fv[s]:
            self.w("xf%d = xf%d" % (d, s))
        self.bv[d] = self.bv[s]
        self.fv[d] = self.fv[s]
        self.defined.add(d)

    def fsrc(self, op) -> str:
        """Float-domain value of an FP source operand (guarded)."""
        if isinstance(op, Xmm):
            return self.need_float(op.index)
        t = self.tmp()
        self.w("%s = B2F(%s)" % (t, self.mrd(op, 8)))
        self.guard("%s - %s != 0.0" % (t, t), "nonfinite")
        return t

    # -- exits ------------------------------------------------------------ #

    def exit_(self, rip_expr: str, include_current: bool, kind: str,
              reason: str) -> None:
        """Commit the partial iteration and leave the trace.

        Value guards exit *before* their instruction commits
        (rip = its address, counts exclude it); branch-direction
        mismatches exit *after* (counts include it, rip = the other
        target).
        """
        ni = self.k + (1 if include_current else 0)
        nf = self.nfp[ni]
        pc = self.pcp[ni]
        w = self.w
        w("regs.rip = %s" % rip_expr)
        for c in sorted(self.gprs):
            w("G[%r] = g_%s" % (c, c))
        w("regs.zf = fZ; regs.sf = fS; regs.of = fO; "
          "regs.cf = fC; regs.pf = fP")
        for i in sorted(self.xmms):
            if not self.bv[i]:
                w("xb%d = F2B(xf%d)" % (i, i))
            w("X%d[0] = xb%d; X%d[1] = xh%d" % (i, i, i, i))
        for val, addr in self.slot_wb:
            w("WR(%s, 8, %s)" % (addr, val))
        if ni:
            w("m.instr_count += %d" % ni)
        if nf:
            w("m.fp_instr_count += %d" % nf)
        if pc:
            w("cost.cycles += %r" % pc)
            w("BK['base'] += %r" % pc)
        if kind == "deopt":
            w("TJ._deopt(I, %r, %d)" % (reason, self.cur_addr))
        else:
            w("TJ._side_exit(I)")
        w("return")

    def guard(self, cond: str, reason: str) -> None:
        """Value guard: deopt pre-instruction when ``cond`` holds."""
        self.w("if %s:" % cond)
        self.push_ind()
        self.exit_(repr(self.cur_addr), False, "deopt", reason)
        self.pop_ind()

    # -- per-instruction emission ----------------------------------------- #

    def emit_ins(self, ins, after: int, is_last: bool) -> None:
        mn = ins.mnemonic
        ops = ins.operands
        m = self.m
        w = self.w

        if mn == "nop":
            return
        if mn in ("mov", "movabs"):
            size = m._op_size(ins)
            self.wr_int(ops[0], size, self.rd_int(ops[1], size))
            return
        if mn == "movzx":
            src = ops[1]
            ssize = src.size if isinstance(src, (Reg, Mem)) else 4
            self.wr_int(ops[0], ops[0].size, self.rd_int(src, ssize))
            return
        if mn == "movsx":
            src = ops[1]
            ssize = src.size if isinstance(src, (Reg, Mem)) else 4
            bits = 8 * ssize
            t = self.tmp()
            w("%s = %s" % (t, self.rd_int(src, ssize)))
            w("%s = %s - %d if %s & %d else %s"
              % (t, t, 1 << bits, t, 1 << (bits - 1), t))
            self.wr_int(ops[0], ops[0].size, "%s & %#x" % (t, _M64))
            return
        if mn == "lea":
            self.wr_int(ops[0], ops[0].size, self.ea(ops[1]))
            return
        if mn == "push":
            self.mem_unstable = True  # moving-rsp traffic defeats slots
            t = self.tmp()
            w("%s = %s" % (t, self.rd_int(ops[0], 8)))
            self.kill("rsp")
            w("g_rsp = (g_rsp - 8) & %#x" % _M64)
            w("WR(g_rsp, 8, %s)" % t)
            return
        if mn == "pop":
            self.mem_unstable = True
            t = self.tmp()
            w("%s = RD(g_rsp, 8)" % t)
            self.kill("rsp")
            w("g_rsp = (g_rsp + 8) & %#x" % _M64)
            self.wr_int(ops[0], 8, t)
            return
        if mn in ("add", "sub", "cmp"):
            self._emit_addsub(ins, mn)
            return
        if mn in ("and", "or", "xor", "test"):
            self._emit_logic(ins, mn)
            return
        if mn in ("shl", "shr", "sar"):
            self._emit_shift(ins, mn)
            return
        if mn in ("inc", "dec"):
            self._emit_incdec(ins, mn)
            return
        if mn == "imul":
            self._emit_imul(ins)
            return
        if mn == "not":
            size = m._op_size(ins)
            self.wr_int(ops[0], size, "~(%s)" % self.rd_int(ops[0], size))
            return
        if mn == "neg":
            self._emit_neg(ins)
            return
        if mn == "jmp":
            # direct jump: target is statically the recorded successor
            return
        if mn[0] == "j":
            self._emit_jcc(ins, after, is_last)
            return
        if mn.startswith("set"):
            cexpr = _COND_EXPR[mn[3:]]
            self.wr_int(ops[0], 1, "1 if (%s) else 0" % cexpr)
            return
        if mn.startswith("cmov"):
            cexpr = _COND_EXPR[mn[4:]]
            size = m._op_size(ins)
            w("if %s:" % cexpr)
            self.push_ind()
            self.wr_int(ops[0], size, self.rd_int(ops[1], size))
            self.pop_ind()
            # the write was conditional: drop every fact it may break
            self.avail.clear()
            self.avail_deps.clear()
            if isinstance(ops[0], Reg):
                self.consts.pop(canonical(ops[0].name), None)
            return
        if mn == "movsd":
            self._emit_movsd(ins)
            return
        if mn == "movq":
            self._emit_movq(ins)
            return
        if mn in ("movapd", "movupd"):
            self._emit_movapd(ins)
            return
        if mn in ("xorpd", "andpd", "orpd", "andnpd"):
            self._emit_f_bitwise(ins, mn)
            return
        if mn in ("addsd", "subsd", "mulsd", "divsd"):
            self._emit_f_arith(ins, mn)
            return
        if mn == "sqrtsd":
            fa = self.fsrc(ops[1])
            self.guard("%s < 0.0" % fa, "sqrt-negative")
            self.set_float(ops[0].index, "SQRT(%s)" % fa)
            return
        if mn in ("ucomisd", "comisd"):
            fa = self.need_float(ops[0].index)
            fb = self.fsrc(ops[1])
            w("fC = 1 if %s < %s else 0" % (fa, fb))
            w("fZ = 1 if %s == %s else 0" % (fa, fb))
            w("fP = 0")
            w("fO = 0")
            w("fS = 0")
            return
        if mn == "cvtsi2sd":
            self._emit_cvtsi2sd(ins)
            return
        if mn == "cvttsd2si":
            self._emit_cvttsd2si(ins)
            return
        raise _Unsupported(mn)

    def _emit_addsub(self, ins, mn) -> None:
        size = self.m._op_size(ins)
        bits = 8 * size
        mask = (1 << bits) - 1
        shift = bits - 1
        w = self.w
        ta, tb, tr = self.tmp(), self.tmp(), self.tmp()
        w("%s = %s" % (ta, self.rd_int(ins.operands[0], size)))
        w("%s = %s" % (tb, self.rd_int(ins.operands[1], size)))
        if mn == "add":
            w("%s = (%s + %s) & %#x" % (tr, ta, tb, mask))
            w("fC = 1 if %s < %s else 0" % (tr, ta))
            w("fS = %s >> %d" % (tr, shift))
            w("fO = 1 if (%s >> %d == %s >> %d and fS != %s >> %d) else 0"
              % (ta, shift, tb, shift, ta, shift))
        else:
            w("%s = (%s - %s) & %#x" % (tr, ta, tb, mask))
            w("fC = 1 if %s < %s else 0" % (ta, tb))
            w("fS = %s >> %d" % (tr, shift))
            w("fO = 1 if (%s >> %d != %s >> %d and fS == %s >> %d) else 0"
              % (ta, shift, tb, shift, tb, shift))
        w("fZ = 1 if %s == 0 else 0" % tr)
        w("fP = PAR[%s & 255]" % tr)
        if mn != "cmp":
            self.wr_int(ins.operands[0], size, tr)

    def _emit_logic(self, ins, mn) -> None:
        size = self.m._op_size(ins)
        shift = 8 * size - 1
        pyop = {"and": "&", "test": "&", "or": "|", "xor": "^"}[mn]
        w = self.w
        tr = self.tmp()
        w("%s = %s %s %s" % (tr, self.rd_int(ins.operands[0], size),
                             pyop, self.rd_int(ins.operands[1], size)))
        w("fC = 0")
        w("fO = 0")
        w("fZ = 1 if %s == 0 else 0" % tr)
        w("fS = %s >> %d" % (tr, shift))
        w("fP = PAR[%s & 255]" % tr)
        if mn != "test":
            self.wr_int(ins.operands[0], size, tr)

    def _emit_shift(self, ins, mn) -> None:
        dst, src = ins.operands
        size = dst.size if isinstance(dst, Reg) else self.m._op_size(ins)
        bits = 8 * size
        full = (1 << bits) - 1
        cmask = 63 if bits == 64 else 31
        shift = bits - 1
        top = 1 << shift
        w = self.w
        static = isinstance(src, Imm)
        if static:
            count = src.value & 0xFF & cmask
            if count == 0:
                return  # no flags, no write — exactly the early return
            tc = repr(count)
        else:
            tc = self.tmp()
            w("%s = (%s) & %d" % (tc, self.rd_int(src, 1), cmask))
            w("if %s:" % tc)
            self.push_ind()
        ta, tr = self.tmp(), self.tmp()
        w("%s = %s" % (ta, self.rd_int(dst, size)))
        if mn == "shl":
            w("%s = (%s << %s) & %#x" % (tr, ta, tc, full))
            w("fC = (%s >> (%d - %s)) & 1" % (ta, bits, tc))
        elif mn == "shr":
            w("%s = %s >> %s" % (tr, ta, tc))
            w("fC = (%s >> (%s - 1)) & 1" % (ta, tc))
        else:  # sar
            ts = self.tmp()
            w("%s = %s - %d if %s & %d else %s"
              % (ts, ta, 1 << bits, ta, top, ta))
            w("%s = (%s >> %s) & %#x" % (tr, ts, tc, full))
            w("fC = (%s >> (%s - 1)) & 1" % (ta, tc))
        w("fO = 0")
        w("fZ = 1 if %s == 0 else 0" % tr)
        w("fS = %s >> %d" % (tr, shift))
        w("fP = PAR[%s & 255]" % tr)
        self.wr_int(dst, size, tr)
        if not static:
            self.pop_ind()
            self.avail.clear()
            self.avail_deps.clear()
            if isinstance(dst, Reg):
                self.consts.pop(canonical(dst.name), None)

    def _emit_incdec(self, ins, mn) -> None:
        size = self.m._op_size(ins)
        bits = 8 * size
        mask = (1 << bits) - 1
        shift = bits - 1
        delta = 1 if mn == "inc" else -1
        w = self.w
        tv, tr = self.tmp(), self.tmp()
        w("%s = %s" % (tv, self.rd_int(ins.operands[0], size)))
        w("%s = (%s + %d) & %#x" % (tr, tv, delta, mask))
        w("fZ = 1 if %s == 0 else 0" % tr)
        w("fS = %s >> %d" % (tr, shift))
        w("fP = PAR[%s & 255]" % tr)
        if delta > 0:
            w("fO = 1 if (%s >> %d == 0 and fS == 1) else 0" % (tv, shift))
        else:
            w("fO = 1 if (%s >> %d == 1 and fS == 0) else 0" % (tv, shift))
        self.wr_int(ins.operands[0], size, tr)  # CF preserved

    def _emit_imul(self, ins) -> None:
        size = self.m._op_size(ins)
        bits = 8 * size
        mask = (1 << bits) - 1
        top = 1 << (bits - 1)
        wrap = 1 << bits
        shift = bits - 1
        w = self.w
        ta, tb, tf, tr, tt = (self.tmp() for _ in range(5))
        w("%s = %s" % (ta, self.rd_int(ins.operands[0], size)))
        w("%s = %s - %d if %s & %d else %s" % (ta, ta, wrap, ta, top, ta))
        w("%s = %s" % (tb, self.rd_int(ins.operands[1], size)))
        w("%s = %s - %d if %s & %d else %s" % (tb, tb, wrap, tb, top, tb))
        w("%s = %s * %s" % (tf, ta, tb))
        w("%s = %s & %#x" % (tr, tf, mask))
        w("%s = %s - %d if %s & %d else %s" % (tt, tr, wrap, tr, top, tr))
        w("fC = 0 if %s == %s else 1" % (tt, tf))
        w("fO = fC")
        w("fZ = 1 if %s == 0 else 0" % tr)
        w("fS = %s >> %d" % (tr, shift))
        w("fP = PAR[%s & 255]" % tr)
        self.wr_int(ins.operands[0], size, tr)

    def _emit_neg(self, ins) -> None:
        size = self.m._op_size(ins)
        bits = 8 * size
        mask = (1 << bits) - 1
        shift = bits - 1
        w = self.w
        tv, tr = self.tmp(), self.tmp()
        w("%s = %s" % (tv, self.rd_int(ins.operands[0], size)))
        w("%s = (-%s) & %#x" % (tr, tv, mask))
        w("fC = 0 if %s == 0 else 1" % tv)
        w("fO = 1 if %s == %d else 0" % (tv, 1 << shift))
        w("fZ = 1 if %s == 0 else 0" % tr)
        w("fS = %s >> %d" % (tr, shift))
        w("fP = PAR[%s & 255]" % tr)
        self.wr_int(ins.operands[0], size, tr)

    def _emit_jcc(self, ins, after: int, is_last: bool) -> None:
        cexpr = _COND_EXPR[ins.mnemonic[1:]]
        tgt = ins.operands[0].value
        nxt = ins.next_addr
        taken = after == tgt
        # guard on the recorded direction; the other way is a side exit
        # taken *with* the branch committed (rip = the other target)
        mis = "not (%s)" % cexpr if taken else cexpr
        other = nxt if taken else tgt
        self.w("if %s:" % mis)
        self.push_ind()
        self.exit_(repr(other), True, "side", "")
        self.pop_ind()
        # is_last && taken-to-header: fall through to the back edge

    def _emit_movsd(self, ins) -> None:
        dst, src = ins.operands
        if isinstance(dst, Xmm) and isinstance(src, Xmm):
            self.copy_lane(dst.index, src.index)  # lane 0 only
        elif isinstance(dst, Xmm):
            d = dst.index
            self.set_bits(d, self.mrd(src, 8))
            self.w("xh%d = 0" % d)
        else:
            self.mwr(dst, 8, self.need_bits(src.index))

    def _emit_movq(self, ins) -> None:
        dst, src = ins.operands
        if isinstance(dst, Xmm):
            d = dst.index
            if isinstance(src, Reg):
                self.set_bits(d, self.rd_gpr(src.name)[0])
            elif isinstance(src, Xmm):
                self.copy_lane(d, src.index)
            else:
                self.set_bits(d, self.mrd(src, 8))
            self.w("xh%d = 0" % d)
        elif isinstance(dst, Reg):
            self.wr_int(dst, 8, self.need_bits(src.index))
        else:
            self.mwr(dst, 8, self.need_bits(src.index))

    def _emit_movapd(self, ins) -> None:
        dst, src = ins.operands
        if isinstance(dst, Xmm):
            d = dst.index
            if isinstance(src, Xmm):
                self.copy_lane(d, src.index)
                self.w("xh%d = xh%d" % (d, src.index))
            else:
                self.set_bits(d, self.mrd(src, 8))
                self.w("xh%d = %s" % (d, self.mrd(src, 8, delta=8)))
        else:
            s = src.index
            self.need_bits(s)
            self.mwr(dst, 8, "xb%d" % s)
            self.mwr(dst, 8, "xh%d" % s, delta=8)

    def _emit_f_bitwise(self, ins, mn) -> None:
        dst, src = ins.operands
        d = dst.index
        w = self.w
        if mn == "xorpd" and isinstance(src, Xmm) and src.index == d:
            # zeroing idiom: both forms become valid at once
            w("xb%d = 0" % d)
            w("xh%d = 0" % d)
            w("xf%d = 0.0" % d)
            self.bv[d] = True
            self.fv[d] = True
            self.defined.add(d)
            return
        if isinstance(src, Xmm):
            blo = self.need_bits(src.index)
            bhi = "xh%d" % src.index
        else:
            blo, bhi = self.tmp(), self.tmp()
            w("%s = %s" % (blo, self.mrd(src, 8)))
            w("%s = %s" % (bhi, self.mrd(src, 8, delta=8)))
        self.need_bits(d)
        if mn == "xorpd":
            w("xb%d ^= %s" % (d, blo))
            w("xh%d ^= %s" % (d, bhi))
        elif mn == "andpd":
            w("xb%d &= %s" % (d, blo))
            w("xh%d &= %s" % (d, bhi))
        elif mn == "orpd":
            w("xb%d |= %s" % (d, blo))
            w("xh%d |= %s" % (d, bhi))
        else:  # andnpd
            w("xb%d = (~xb%d) & %s & %#x" % (d, d, blo, _M64))
            w("xh%d = (~xh%d) & %s & %#x" % (d, d, bhi, _M64))
        self.fv[d] = False
        self.bv[d] = True
        self.defined.add(d)

    def _emit_f_arith(self, ins, mn) -> None:
        d = ins.operands[0].index
        fa = self.need_float(d)
        fb = self.fsrc(ins.operands[1])
        pyop = {"addsd": "+", "subsd": "-",
                "mulsd": "*", "divsd": "/"}[mn]
        if mn == "divsd":
            # Python float division raises on /0.0; SoftFPU returns
            # inf + ZE — deopt and let the interpreter produce it
            self.guard("%s == 0.0" % fb, "zero-divisor")
        t = self.tmp()
        self.w("%s = %s %s %s" % (t, fa, pyop, fb))
        # overflow to inf (or nan) breaks the finiteness invariant:
        # deopt pre-instruction, interpreter reproduces flags/result
        self.guard("%s - %s != 0.0" % (t, t), "nonfinite")
        self.set_float(d, t)

    def _emit_cvtsi2sd(self, ins) -> None:
        dst, src = ins.operands
        size = src.size
        bits = 8 * size
        t = self.tmp()
        self.w("%s = %s" % (t, self.rd_int(src, size)))
        self.w("%s = %s - %d if %s & %d else %s"
               % (t, t, 1 << bits, t, 1 << (bits - 1), t))
        # float(int) rounds to nearest-even — exact cvt_i64_to_f64
        self.set_float(dst.index, "FLT(%s)" % t)

    def _emit_cvttsd2si(self, ins) -> None:
        dst, src = ins.operands
        fa = self.fsrc(src)
        bits = 8 * dst.size
        t = self.tmp()
        self.w("%s = TRUNC(%s)" % (t, fa))
        self.guard("%s < %d or %s > %d"
                   % (t, -(1 << (bits - 1)), t, (1 << (bits - 1)) - 1),
                   "cvt-overflow")
        self.wr_int(dst, dst.size, "%s & %#x" % (t, (1 << bits) - 1))

    # -- top-level build --------------------------------------------------- #

    def _emit_body(self, entry_fv: frozenset) -> None:
        self._reset(entry_fv)
        last = len(self.rec) - 1
        for k, (ins, _, after) in enumerate(self.rec):
            self.k = k
            self.cur_addr = ins.addr
            self.emit_ins(ins, after, k == last)
        # back edge: restore the loop-top contract — bits valid for
        # every lane, float valid for the loop-carried float set
        self.k = len(self.rec)
        self.cur_addr = self.info.header
        for i in sorted(self.xmms):
            if i in entry_fv and not self.fv[i]:
                self.w("xf%d = B2F(xb%d)" % (i, i))
                self.guard("xf%d - xf%d != 0.0" % (i, i), "nonfinite")
                self.fv[i] = True
            if not self.bv[i]:
                self.w("xb%d = F2B(xf%d)" % (i, i))
                self.bv[i] = True
        ni = len(self.rec)
        self.w("m.instr_count += %d" % ni)
        if self.nfp[ni]:
            self.w("m.fp_instr_count += %d" % self.nfp[ni])
        if self.pcp[ni]:
            self.w("cost.cycles += %r" % self.pcp[ni])
            self.w("BK['base'] += %r" % self.pcp[ni])

    def build(self) -> None:
        m = self.m
        self.float_first = set()
        self.mem_recs = []
        self.mem_unstable = False
        self.written_gprs = set()
        self.slots = {}
        self.slot_wb = []
        self._emit_body(frozenset())           # discovery pass
        self._decide_slots()
        entry_fv = frozenset(self.float_first)
        self._emit_body(entry_fv)              # final pass
        body = self.lines

        L = []
        a = L.append
        a("def trace():")
        a("    if m.fp_trap_handler is not None or m.oracle is not None "
          "or not I.valid:")
        a("        TJ._entry_fail(I)")
        a("        return")
        for c in sorted(self.gprs):
            a("    g_%s = G[%r]" % (c, c))
        a("    fZ = regs.zf; fS = regs.sf; fO = regs.of; "
          "fC = regs.cf; fP = regs.pf")
        for i in sorted(self.xmms):
            a("    xb%d = X%d[0]" % (i, i))
            a("    xh%d = X%d[1]" % (i, i))
        for i in sorted(entry_fv):
            a("    xf%d = B2F(xb%d)" % (i, i))
            a("    if xf%d - xf%d != 0.0:" % (i, i))
            a("        TJ._entry_fail(I)")
            a("        return")
        if self.slots:
            # slot addresses are loop-invariant: compute them once,
            # then hoist the memory words into locals for the whole
            # trace (written back on every exit path)
            order = sorted(self.slots.items(),
                           key=lambda kv: (kv[0][0] or "", kv[0][1]))
            for (base, disp), (_val, addr) in order:
                if base is None:
                    a("    %s = %d" % (addr, disp & _M64))
                else:
                    a("    %s = (g_%s + %d) & %#x"
                      % (addr, base, disp, _M64))
            groups = {base for base, _ in self.slots}
            if len(groups) > 1:
                # different base groups could collide at runtime
                # (a stack slot shadowing an absolute word): verify
                # pairwise-distinct addresses before trusting slots
                addrs = ", ".join(addr for _, (_v, addr) in order)
                a("    if len({%s}) != %d:" % (addrs, len(order)))
                a("        TJ._entry_fail(I)")
                a("        return")
            for _, (val, addr) in order:
                a("    %s = RD(%s, 8)" % (val, addr))
        a("    while True:")
        a("        I.hits += 1")
        a("        S.trace_hits += 1")
        L.extend(body)
        src = "\n".join(L)

        env = {"m": m, "regs": m.regs, "G": m.regs.gpr, "cost": m.cost,
               "BK": m.cost.buckets, "I": self.info, "TJ": self.tj,
               "S": self.tj.stats, "RD": m.memory.read,
               "WR": m.memory.write, "B2F": _b2f, "F2B": _f2b,
               "SQRT": math.sqrt, "TRUNC": math.trunc, "FLT": float}
        from repro.machine.cpu import _PARITY
        env["PAR"] = _PARITY
        for i in self.xmms:
            env["X%d" % i] = m.regs.xmm[i]
        exec(compile(src, "<trace-opt@%#x>" % self.info.header, "exec"), env)
        self.info.fn = env["trace"]
        self.info.mode = "opt"
        self.info.src = src


#: mnemonics the opt emitter can inline (everything else -> chain mode)
_SUPPORTED = frozenset(
    ["mov", "movabs", "movzx", "movsx", "lea", "push", "pop",
     "add", "sub", "cmp", "and", "or", "xor", "test",
     "shl", "shr", "sar", "inc", "dec", "imul", "not", "neg", "nop",
     "jmp", "movsd", "movq", "movapd", "movupd",
     "xorpd", "andpd", "orpd", "andnpd",
     "addsd", "subsd", "mulsd", "divsd", "sqrtsd",
     "ucomisd", "comisd", "cvtsi2sd", "cvttsd2si"]
    + ["j" + cc for cc in _COND_EXPR]
    + ["set" + cc for cc in ("e", "ne", "l", "le", "g", "ge", "b", "be",
                             "a", "ae", "p", "np")]
    + ["cmov" + cc for cc in ("e", "ne", "l", "g")]
)
