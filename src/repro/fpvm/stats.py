"""FPVM runtime statistics — the numbers behind Figs. 9, 10, 12.

Cycle accounting uses the machine cost model's buckets:

* ``hw_delivery`` / ``kernel_delivery`` — fault delivery (Fig. 9's
  "hardware overhead" / "kernel overhead")
* ``decode`` / ``bind`` / ``emulate`` — FPVM stages
* ``gc`` — amortized collection
* ``correctness`` / ``correctness_handler`` — static-patch traps
* ``base`` — ordinary (non-virtualized) execution
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.ieee.softfloat import Flags

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import Machine


#: bucket -> Fig. 9 component label
FIG9_COMPONENTS = (
    ("hw_delivery", "hardware overhead"),
    ("kernel_delivery", "kernel overhead"),
    ("decode", "decode"),
    ("bind", "bind"),
    ("emulate", "emulate"),
    ("gc", "garbage collection"),
    ("correctness", "correctness overhead"),
    ("correctness_handler", "correctness handler"),
)


@dataclass
class FPVMStats:
    """Counters accumulated by one FPVM run."""

    fp_traps: int = 0
    traps_by_flag: dict[str, int] = field(default_factory=dict)
    correctness_traps: int = 0
    correctness_demotions: int = 0
    call_site_demotions: int = 0
    libm_interposed_calls: int = 0
    printf_demotions: int = 0
    patch_sites_installed: int = 0
    patch_fast_path: int = 0
    patch_slow_path: int = 0
    #: amortization-stage counters (the Fig. 9 "amortized to ~0" claim,
    #: measurable for both stages: decode cache and bind cache)
    decode_hits: int = 0
    decode_misses: int = 0
    bind_hits: int = 0
    bind_misses: int = 0
    #: graceful-degradation ladder: recoverable faults demoted to
    #: vanilla IEEE re-execution, and trap sites permanently demoted by
    #: the storm detector (§4.1 short-circuiting as a safety valve)
    degradations: int = 0
    sites_short_circuited: int = 0
    short_circuit_execs: int = 0
    #: trap-site JIT: sites compiled to specialized closures, fused
    #: shadow kernels built, FP events absorbed without fault delivery
    #: (jit_hits), hardware commits at patched sites (jit_fast_path),
    #: closures torn down by faults/demotions, and intermediate results
    #: that stayed register-resident instead of being NaN-boxed
    jit_sites_compiled: int = 0
    jit_fused_kernels: int = 0
    jit_hits: int = 0
    jit_fast_path: int = 0
    jit_invalidations: int = 0
    boxes_elided: int = 0
    #: tracing JIT: hot loops compiled to trace functions, recordings
    #: aborted (GC sweep, unsupported shape, too long), iterations run
    #: inside compiled traces (trace_hits), guard failures that
    #: deoptimized to the interpreter (trace_deopts), ordinary loop
    #: exits through branch guards (trace_side_exits), and traces torn
    #: down by faults/patches/storms (trace_invalidations)
    trace_loops_compiled: int = 0
    trace_record_aborts: int = 0
    trace_hits: int = 0
    trace_deopts: int = 0
    trace_side_exits: int = 0
    trace_invalidations: int = 0
    #: correctness traps answered by the static analysis fast path —
    #: the liveness refinement proved the site box-free, so the handler
    #: skipped the operand demotion scan entirely
    analysis_short_circuits: int = 0
    #: NSan-mode sanitizer: dual-path divergence checks performed,
    #: checks that flagged (rel err above threshold), and trap
    #: executions short-circuited because the interval-range pass
    #: statically proved the site divergence-free
    sanitize_checks: int = 0
    sanitize_flags: int = 0
    sanitize_exempt_execs: int = 0

    def record_decode(self, hit: bool) -> None:
        if hit:
            self.decode_hits += 1
        else:
            self.decode_misses += 1

    def record_bind(self, hit: bool) -> None:
        if hit:
            self.bind_hits += 1
        else:
            self.bind_misses += 1

    @property
    def decode_hit_rate(self) -> float:
        total = self.decode_hits + self.decode_misses
        return self.decode_hits / total if total else 0.0

    @property
    def bind_hit_rate(self) -> float:
        total = self.bind_hits + self.bind_misses
        return self.bind_hits / total if total else 0.0

    @property
    def patched_site_hit_rate(self) -> float:
        """Fraction of emulated FP events absorbed by compiled sites."""
        total = self.jit_hits + self.fp_traps
        return self.jit_hits / total if total else 0.0

    def record_trap_flags(self, flags: int) -> None:
        self.fp_traps += 1
        for bit, name in ((Flags.IE, "IE"), (Flags.DE, "DE"),
                          (Flags.ZE, "ZE"), (Flags.OE, "OE"),
                          (Flags.UE, "UE"), (Flags.PE, "PE")):
            if flags & bit:
                self.traps_by_flag[name] = self.traps_by_flag.get(name, 0) + 1

    # ------------------------------------------------------------------ #
    def fig9_breakdown(self, machine: "Machine") -> dict[str, float]:
        """Average per-virtualized-instruction cycle cost by component.

        The decode component is amortized over all faulting FP
        instructions (paper footnote 8) — with a ~100% decode-cache
        hit rate it is tiny.
        """
        events = self.fp_traps + self.correctness_traps
        if events == 0:
            return {label: 0.0 for _, label in FIG9_COMPONENTS}
        buckets = machine.cost.buckets
        out: dict[str, float] = {}
        for bucket, label in FIG9_COMPONENTS:
            out[label] = buckets.get(bucket, 0) / events
        out["total"] = sum(v for k, v in out.items())
        return out
