"""NaN-boxing: hiding shadow-value handles inside signaling NaNs (§2).

A binary64 signaling NaN has the exponent field all ones, the quiet
bit (fraction MSB) clear, and a nonzero remaining fraction — leaving
51 usable payload bits plus the sign bit.  FPVM encodes the handle of
a shadow value into that payload; the resulting bit pattern flows
through the program's registers and memory exactly like the double it
replaces, and *faults* the moment an MXCSR-consulting instruction
consumes it.

Handles here are keys into the :class:`~repro.fpvm.shadow.ShadowStore`
(the paper's footnote-4 variant: on a machine whose user address space
didn't fit 51 bits, "the 51 bits could simply be used as a key to a
hash lookup scheme instead of directly as a pointer").  Since all
simulated addresses are < 2^32, a pointer-style encoding would be
bit-identical in shape; the key form keeps the store's bookkeeping
explicit for the GC.

The program never observes FPVM's sNaN space ("NaN-space ownership"):
any program-generated sNaN consumed by an instruction traps into FPVM,
which — finding no shadow entry — treats it as a *universal NaN* and
emits the canonical quiet NaN.
"""

from __future__ import annotations

from repro.errors import NanBoxError
from repro.ieee.bits import (
    F64_EXP_MASK,
    F64_QNAN_BIT,
    F64_SIGN_BIT,
    is_snan64,
)

#: payload capacity (bits 0..50 of the fraction; bit 51 is the quiet bit)
PAYLOAD_BITS = 51
PAYLOAD_MASK = (1 << PAYLOAD_BITS) - 1
MAX_HANDLE = PAYLOAD_MASK  # handle 0 is reserved (would encode infinity)


class NaNBoxCodec:
    """Encode/decode shadow handles as signaling-NaN bit patterns.

    ``tag_sign`` sets the sign bit of every box FPVM creates; this
    costs nothing and lets diagnostics distinguish FPVM boxes from the
    (rare) program-made sNaN at a glance, while decode still accepts
    both (the program's own sNaNs must also trap into FPVM).
    """

    __slots__ = ("tag_sign",)

    def __init__(self, tag_sign: bool = True) -> None:
        self.tag_sign = tag_sign

    def encode(self, handle: int) -> int:
        """Box ``handle`` (1..2^51-1) into an sNaN bit pattern."""
        if not 0 < handle <= MAX_HANDLE:
            raise NanBoxError(f"handle out of range: {handle}")
        bits = F64_EXP_MASK | handle
        if self.tag_sign:
            bits |= F64_SIGN_BIT
        return bits

    @staticmethod
    def is_box(bits: int) -> bool:
        """True if ``bits`` *could* be a NaN-box (any signaling NaN).

        Whether it actually corresponds to a live shadow value is the
        store's call — the conservative GC and the emulator both do
        the membership check.
        """
        return is_snan64(bits)

    @staticmethod
    def decode(bits: int) -> int:
        """Extract the candidate handle from a signaling-NaN pattern."""
        return bits & PAYLOAD_MASK

    @classmethod
    def decode_checked(cls, bits: int) -> int:
        """Like :meth:`decode` but enforces the encode contract.

        Raises :class:`~repro.errors.NanBoxError` when ``bits`` is not
        a signaling-NaN box shape at all — the diagnostic spelling used
        by crash reporting and fault probes, where a non-box argument
        means the caller's bookkeeping is already corrupt.
        """
        if not is_snan64(bits):
            raise NanBoxError(f"not a NaN-box bit pattern: {bits:#018x}")
        return bits & PAYLOAD_MASK

    @staticmethod
    def is_candidate_word(word: int) -> bool:
        """GC scan predicate: an aligned u64 that looks like a box."""
        return (
            (word & F64_EXP_MASK) == F64_EXP_MASK
            and (word & F64_QNAN_BIT) == 0
            and (word & PAYLOAD_MASK) != 0
        )
