"""Operand binding: decoded templates → direct read/write locations (§4.1).

    "A bound instruction is an abstract normalized representation,
    containing direct pointers to the sources and destinations of the
    instruction… The emulator need not handle accesses to memory or
    registers differently, it only needs only read/write through a
    void*."

A :class:`Location` is our ``void*``: the emulator reads/writes bit
patterns through it without knowing whether the storage is an XMM
lane, a GPR, or guest memory.  Binding happens at trap time because
memory operands depend on current register values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import MachineError
from repro.fpvm.decoder import DecodedInst
from repro.trace.events import CacheMissEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import Machine
    from repro.trace.sinks import TraceSink


class Location:
    """Abstract read/write handle on one operand slot."""

    __slots__ = ()

    def read(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def write(self, bits: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class XmmLoc(Location):
    """One 64-bit lane of an XMM register."""

    __slots__ = ("m", "index", "lane")

    def __init__(self, m: "Machine", index: int, lane: int) -> None:
        self.m, self.index, self.lane = m, index, lane

    def read(self) -> int:
        return self.m.regs.xmm[self.index][self.lane]

    def write(self, bits: int) -> None:
        self.m.regs.xmm[self.index][self.lane] = bits & 0xFFFF_FFFF_FFFF_FFFF


class Xmm32Loc(Location):
    """The low 32 bits of an XMM register (binary32 slot)."""

    __slots__ = ("m", "index")

    def __init__(self, m: "Machine", index: int) -> None:
        self.m, self.index = m, index

    def read(self) -> int:
        return self.m.regs.xmm[self.index][0] & 0xFFFF_FFFF

    def write(self, bits: int) -> None:
        lo = (self.m.regs.xmm[self.index][0] & ~0xFFFF_FFFF) | (
            bits & 0xFFFF_FFFF
        )
        self.m.regs.xmm[self.index][0] = lo


class MemLoc(Location):
    """A resolved guest-memory word (address computed at bind time)."""

    __slots__ = ("m", "addr", "size")

    def __init__(self, m: "Machine", addr: int, size: int = 8) -> None:
        self.m, self.addr, self.size = m, addr, size

    def read(self) -> int:
        return self.m.memory.read(self.addr, self.size)

    def write(self, bits: int) -> None:
        self.m.memory.write(self.addr, self.size, bits)


class GprLoc(Location):
    """A general-purpose register slot (integer conversions)."""

    __slots__ = ("m", "name", "size")

    def __init__(self, m: "Machine", name: str, size: int) -> None:
        self.m, self.name, self.size = m, name, size

    def read(self) -> int:
        return self.m.regs.get_gpr(self.name)

    def write(self, bits: int) -> None:
        self.m.regs.set_gpr(self.name, bits)


@dataclass(slots=True)
class BoundLane:
    """One emulation unit: a destination plus its source locations."""

    dst: Location | None
    srcs: tuple[Location, ...]


@dataclass(slots=True)
class BoundInst:
    """A fully bound instruction ready for the emulator."""

    decoded: DecodedInst
    lanes: list[BoundLane]

    @property
    def op(self):
        return self.decoded.op

    @property
    def imm(self):
        return self.decoded.imm


def _materialize(m: "Machine", tpl, lane: int) -> Location:
    kind = tpl[0]
    if kind == "xmm":
        return XmmLoc(m, tpl[1], lane)
    if kind == "xmm32":
        return Xmm32Loc(m, tpl[1])
    if kind == "mem":
        mem = tpl[1]
        return MemLoc(m, (m.ea(mem) + 8 * lane) & 0xFFFF_FFFF_FFFF_FFFF,
                      mem.size if lane == 0 and mem.size != 16 else 8)
    if kind == "gpr":
        return GprLoc(m, tpl[1], tpl[2])
    raise MachineError(f"unknown operand template {tpl!r}")


def bind(m: "Machine", decoded: DecodedInst) -> BoundInst:
    """Resolve all operand templates against current machine state."""
    lanes: list[BoundLane] = []
    for lane in range(decoded.lanes):
        dst = (_materialize(m, decoded.dst, lane)
               if decoded.dst is not None else None)
        srcs = tuple(_materialize(m, s, lane) for s in decoded.srcs)
        lanes.append(BoundLane(dst, srcs))
    return BoundInst(decoded, lanes)


def _mem_refreshers(bound: BoundInst) -> tuple:
    """Closures that re-resolve each MemLoc's effective address.

    Register/XMM locations point at storage slots, not values, so a
    cached BoundInst can reuse them verbatim; only memory operands
    depend on current register contents.  A refresher recomputes just
    the address — the Location allocation and template walk from the
    original bind are not repeated.
    """
    decoded = bound.decoded
    out = []
    for lane_idx, blane in enumerate(bound.lanes):
        slots = []
        if decoded.dst is not None:
            slots.append((decoded.dst, blane.dst))
        slots.extend(zip(decoded.srcs, blane.srcs))
        for tpl, loc in slots:
            if tpl[0] == "mem":
                mem = tpl[1]

                def refresh(m, loc=loc, mem=mem, lane=lane_idx):
                    loc.addr = (m.ea(mem) + 8 * lane) & 0xFFFF_FFFF_FFFF_FFFF
                out.append(refresh)
    return tuple(out)


@dataclass
class BindCache:
    """Per-site cache of bound instructions (§4.1 amortization, stage 2).

    The paper's decode cache amortizes decode; this applies the same
    trick to binding.  A hot faulting site pays the full template walk
    once — on later traps only the memory-operand addresses are
    refreshed against current register state, and the same BoundInst
    is handed back to the emulator.
    """

    cache: dict = None
    hits: int = 0
    misses: int = 0
    trace: "TraceSink | None" = None
    #: addr -> set of shadow handles this site's cached state depends on
    #: (registered by the JIT's per-site unbox memos).  Handles are
    #: free-listed and the box encoding is deterministic, so a reclaimed
    #: handle can be re-issued with *identical* bits for a different
    #: value — any cache keyed on those bits must die with the handle.
    shadow_keys: dict = None
    stale_invalidations: int = 0

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = {}  # addr -> (decoded, bound, refreshers)
        if self.shadow_keys is None:
            self.shadow_keys = {}

    def lookup(self, m: "Machine",
               decoded: DecodedInst) -> tuple[BoundInst, bool]:
        """Return (bound, was_hit); refreshes memory EAs on a hit."""
        entry = self.cache.get(decoded.instr.addr)
        if entry is not None and entry[0] is decoded:
            self.hits += 1
            for refresh in entry[2]:
                refresh(m)
            return entry[1], True
        self.misses += 1
        bound = bind(m, decoded)
        self.cache[decoded.instr.addr] = (decoded, bound,
                                          _mem_refreshers(bound))
        if self.trace is not None:
            self.trace.emit(CacheMissEvent(
                cycles=m.cost.cycles,
                stage="bind",
                addr=decoded.instr.addr,
                mnemonic=decoded.instr.mnemonic,
            ))
        return bound, False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------ #
    # shadow-key dependency tracking (GC-sweep staleness)                 #
    # ------------------------------------------------------------------ #

    def note_shadow_key(self, addr: int, handle: int) -> None:
        """Record that site ``addr`` caches state keyed on ``handle``."""
        keys = self.shadow_keys.get(addr)
        if keys is None:
            keys = self.shadow_keys[addr] = set()
        keys.add(handle)

    def invalidate_swept(self, freed) -> list[int]:
        """Drop per-site entries whose shadow keys were just reclaimed.

        Returns the affected site addresses so dependent caches (the
        JIT's unbox memos) can be flushed too.
        """
        if not self.shadow_keys:
            return []
        freed_set = set(freed)
        if not freed_set:
            return []
        affected = []
        for addr, keys in list(self.shadow_keys.items()):
            if keys & freed_set:
                affected.append(addr)
                del self.shadow_keys[addr]
                if self.cache.pop(addr, None) is not None:
                    self.stale_invalidations += 1
        return affected
