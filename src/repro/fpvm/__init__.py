"""FPVM — the paper's core contribution.

* :mod:`repro.fpvm.nanbox`   — sNaN boxing of 51-bit shadow handles (§2)
* :mod:`repro.fpvm.shadow`   — the shadow-value store + handle allocator
* :mod:`repro.fpvm.decoder`  — decode cache; ISA → ~40 FPVM ops (§4.1)
* :mod:`repro.fpvm.binding`  — operand binding to raw locations (§4.1)
* :mod:`repro.fpvm.emulator` — op_map dispatch over the alternative
  arithmetic interface; promotion/demotion (§4.1, §4.3)
* :mod:`repro.fpvm.gc`       — conservative bipartite mark-and-sweep (§4.1)
* :mod:`repro.fpvm.runtime`  — the FPVM object: SIGFPE handler, MXCSR
  management, libm/printf interposition, correctness traps (§4)
* :mod:`repro.fpvm.patching` — the trap-and-patch engine (§3.2)
* :mod:`repro.fpvm.stats`    — counters backing the Fig. 9/10 benches
"""

from repro.fpvm.nanbox import NaNBoxCodec
from repro.fpvm.shadow import ShadowStore
from repro.fpvm.runtime import FPVM
from repro.fpvm.fpspy import FPSpy, spy_on

__all__ = ["NaNBoxCodec", "ShadowStore", "FPVM", "FPSpy", "spy_on"]
