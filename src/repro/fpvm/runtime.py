"""The FPVM runtime: install, trap, emulate, interpose, collect (§4).

``FPVM`` plays the role of the paper's LD_PRELOAD library: it installs
itself as the machine's SIGFPE handler, unmasks every MXCSR exception
so that any rounding/overflow/underflow/denormal/NaN event faults,
interposes on libm and output functions (the "math wrapper" and
"output wrapper" of Figs. 4/5), and services the correctness traps the
static patcher planted (§4.2).

All four §3 approaches are implemented as execution modes:

* ``trap-and-emulate`` (§3.1, default) — every event pays hardware
  fault delivery, then decode/bind/emulate.
* ``trap-and-patch`` (§3.2) — the first fault at a site rewrites it
  into an inline software pre/post-condition check; later executions
  at that site avoid fault delivery entirely (fast path ~tens of
  cycles) and call into the emulator only when a check fails.
* ``static`` (§3.3) — the binary-transformation approach: *every*
  trap-capable FP site is patched with the inline check up front and
  the hardware exception masks stay set — "at runtime, no hardware
  checks are used at all".  Every site pays the software check on
  every execution, trapping or not.
* compiler-based (§3.4) — binaries compiled with
  ``compile_source(..., instrument_fp=True)`` arrive *pre-patched* by
  the code generator; run them under ``mode="static"``.  Their checks
  are cheaper (``compiler_check_cycles``): the compiler inlines and
  optimizes them instead of bolting on a binary trampoline.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.errors import ArithmeticPortError, MachineError, NanBoxError
from repro.faults.injector import FaultInjector, FaultPlan, InjectedFault
from repro.ieee.bits import bits_to_f64
from repro.isa.instructions import Instruction
from repro.isa.opcodes import is_fp_trapping
from repro.arith.interface import AlternativeArithmetic
from repro.machine.libc import LIBM_FUNCTIONS, _printf_impl
from repro.machine.traps import TrapFrame
from repro.fpvm.binding import BindCache, XmmLoc
from repro.fpvm.decoder import DecodeCache
from repro.fpvm.emulator import Emulator
from repro.fpvm.gc import ConservativeGC
from repro.fpvm.nanbox import NaNBoxCodec
from repro.fpvm.shadow import ShadowStore
from repro.fpvm.stats import FPVMStats
from repro.trace.events import (CorrectnessTrapEvent, DegradeEvent,
                                DemotionEvent, PatchEvent, TrapEvent)

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import Machine
    from repro.trace.sinks import TraceSink


@dataclass(frozen=True)
class FPVMConfig:
    """All FPVM tunables in one place (replaces the keyword sprawl).

    ``FPVM(arith, FPVMConfig(...))`` and ``Session(..., config=...)``
    are the supported spellings; the legacy ``FPVM(arith, mode=...,
    gc_epoch_cycles=...)`` keywords still work for one release but are
    deprecated.
    """

    mode: str = "trap-and-emulate"
    box_exact_results: bool = True
    gc_epoch_cycles: int = 5_000_000
    printf_shadow_digits: int | None = None
    #: trace sink threaded through runtime/emulator/GC/binder
    #: (``None`` keeps every hot path on the zero-cost no-trace branch)
    trace: "TraceSink | None" = None
    #: fault plan threaded through runtime/emulator/GC (``None`` = no
    #: injector at all; a zero-rule plan is the bit-identical control)
    faults: "FaultPlan | None" = None
    #: degradations at one trap site before the storm detector
    #: permanently demotes it to vanilla execution (0 disables)
    storm_threshold: int = 8
    #: modeled-cycle watchdog armed on the machine at install time
    watchdog_cycles: float | None = None
    #: trap-site JIT: serviced traps at one site (with a stable operand
    #: shape) before it is compiled to a specialized closure and patched
    #: into the dispatch loop (0 disables; trap-and-emulate mode only)
    jit_threshold: int = 0
    #: "full" rescans all writable memory each GC epoch; "incremental"
    #: scans only pages dirtied since their last scan (write-barrier
    #: bits) and replays remembered candidates for clean pages
    gc_mode: str = "full"
    #: tracing JIT: backward-branch executions at one loop header before
    #: the loop body is trace-recorded and compiled to a single Python
    #: function (0 disables; trap-and-emulate mode, predecode machines)
    trace_jit_threshold: int = 0
    #: sanitizer tunables; only consulted when the arithmetic is a
    #: DualPathArithmetic (``None`` uses SanitizeConfig defaults)
    sanitize: "object | None" = None


#: faults the degradation ladder recovers from (anything else escapes)
RECOVERABLE_FAULTS = (InjectedFault, ArithmeticPortError, NanBoxError)

#: libm name -> (arith method name, arity); floor/ceil map to ROUND modes
_LIBM_MAP: dict[str, tuple[str, int]] = {
    "sin": ("sin", 1), "cos": ("cos", 1), "tan": ("tan", 1),
    "asin": ("asin", 1), "acos": ("acos", 1), "atan": ("atan", 1),
    "exp": ("exp", 1), "log": ("log", 1), "log2": ("log2", 1),
    "log10": ("log10", 1), "sqrt": ("sqrt", 1), "fabs": ("abs", 1),
    "atan2": ("atan2", 2), "pow": ("pow", 2), "fmod": ("fmod", 2),
    "fmin": ("min", 2), "fmax": ("max", 2),
}


class FPVM:
    """A floating point virtual machine bound to one arithmetic system."""

    def __init__(
        self,
        arith: AlternativeArithmetic,
        config: FPVMConfig | None = None,
        *,
        mode: str | None = None,
        box_exact_results: bool | None = None,
        gc_epoch_cycles: int | None = None,
        printf_shadow_digits: int | None = None,
        trace: "TraceSink | None" = None,
    ) -> None:
        legacy = {k: v for k, v in (
            ("mode", mode),
            ("box_exact_results", box_exact_results),
            ("gc_epoch_cycles", gc_epoch_cycles),
            ("printf_shadow_digits", printf_shadow_digits),
        ) if v is not None}
        if legacy:
            warnings.warn(
                "FPVM keyword arguments "
                f"{sorted(legacy)} are deprecated; pass an FPVMConfig",
                DeprecationWarning, stacklevel=2)
        if config is None:
            config = FPVMConfig()
        if legacy:
            config = replace(config, **legacy)
        if trace is not None:
            config = replace(config, trace=trace)
        if config.mode not in ("trap-and-emulate", "trap-and-patch", "static"):
            raise ValueError(f"unknown FPVM mode {config.mode!r}")
        if config.gc_mode not in ("full", "incremental"):
            raise ValueError(f"unknown GC mode {config.gc_mode!r}")
        self.config = config
        self.arith = arith
        self.mode = config.mode
        self.trace = config.trace
        self.codec = NaNBoxCodec()
        self.store = ShadowStore()
        self.emulator = Emulator(arith, self.store, self.codec,
                                 box_exact_results=config.box_exact_results)
        self.gc = ConservativeGC(self.store, self.codec,
                                 epoch_cycles=config.gc_epoch_cycles,
                                 incremental=config.gc_mode == "incremental")
        self.gc.on_sweep = self._on_gc_sweep
        self.emulator.trace = self.trace
        self.gc.trace = self.trace
        self.injector = (FaultInjector(config.faults)
                         if config.faults is not None else None)
        self.emulator.injector = self.injector
        self.gc.injector = self.injector
        self.decode_cache = DecodeCache()
        self.bind_cache = BindCache()
        self.bind_cache.trace = self.trace
        self.stats = FPVMStats()
        self.printf_shadow_digits = config.printf_shadow_digits
        self.machine: "Machine | None" = None
        self._saved_externs: dict[int, Callable] = {}
        self._saved_masks: int | None = None
        self._patched_sites: set[int] = set()
        #: storm detector: per-site degradation counts, and the sites
        #: it has permanently demoted to vanilla execution
        self._site_degrades: dict[int, int] = {}
        self._demoted_sites: set[int] = set()
        #: sink sites the liveness refinement proved box-free; their
        #: correctness traps short-circuit past the demotion scan
        #: (populated by apply_analysis — only reachable when a pruned
        #: site was patched anyway, i.e. conservative patching)
        self._box_free_sites: frozenset[int] = frozenset()
        #: NSan-mode sanitizer: created iff the arithmetic runs both
        #: paths; the emulator hook then checks every produced value
        self.sanitizer = None
        self._sanitize_exempt: frozenset[int] = frozenset()
        from repro.fpvm.sanitize import DualPathArithmetic, SanitizeConfig, \
            Sanitizer
        if isinstance(arith, DualPathArithmetic):
            scfg = config.sanitize or SanitizeConfig(
                precision=arith.precision)
            if scfg.precision != arith.precision:
                arith.set_precision(scfg.precision)
            self.sanitizer = Sanitizer(arith, scfg, self.stats,
                                       trace=self.trace)
            self.emulator.sanitizer = self.sanitizer
        #: trap-site JIT (§4.2 call-site rewriting applied to the
        #: emulation round-trip); only the faulting mode benefits
        if config.jit_threshold > 0 and config.mode == "trap-and-emulate":
            from repro.fpvm.jit import TrapSiteJIT
            self.jit: "TrapSiteJIT | None" = TrapSiteJIT(
                self, config.jit_threshold)
        else:
            self.jit = None
        #: tracing JIT — created at install time (needs the machine's
        #: predecode dispatch table); None until then / when disabled
        self.tracejit = None

    # ------------------------------------------------------------------ #
    # install / uninstall                                                 #
    # ------------------------------------------------------------------ #

    def install(self, machine: "Machine") -> None:
        """Insert FPVM under the running process (the LD_PRELOAD moment)."""
        if self.machine is not None:
            raise MachineError("FPVM already installed")
        self.machine = machine
        if self.trace is not None and machine.trace is None:
            machine.trace = self.trace
        machine.fp_trap_handler = self._on_fp_trap
        machine.correctness_handler = self._on_correctness_trap
        machine.patch_handler = self._on_patch_site
        self._saved_masks = machine.mxcsr.masks
        if self.mode == "static":
            # §3.3: transform the binary, leave the hardware masked —
            # software condition checks replace hardware exceptions
            self._patch_all_fp_sites(machine)
            machine.mxcsr.mask_all()
        else:
            machine.mxcsr.unmask_all()
        machine.mxcsr.clear_flags()
        if self.config.watchdog_cycles is not None:
            machine.cycle_watchdog = self.config.watchdog_cycles
        self._interpose_externs(machine)
        if (self.config.trace_jit_threshold > 0
                and self.mode == "trap-and-emulate"
                and getattr(machine, "_blocks", None) is not None):
            from repro.fpvm.tracejit import TraceJIT
            self.tracejit = TraceJIT(
                machine, self.config.trace_jit_threshold, fpvm=self)
            self.tracejit.attach()

    def apply_analysis(self, report) -> None:
        """Register static-analysis facts with the runtime (§4.2 v2).

        The box-liveness refinement's pruned sinks are *proven* never
        to load a live box.  Under conservative patching those sites
        still carry correctness traps; registering them here turns each
        such trap into a membership test instead of an operand demotion
        scan.  A no-op for ``report=None`` (unpatched sessions).
        """
        if report is None:
            return
        self._box_free_sites = frozenset(report.pruned_sinks)
        if self.jit is not None:
            # the storm detector / JIT treat these like permanently
            # short-circuited sites: never worth compiling or counting
            self.jit.box_free_sites = self._box_free_sites

    def apply_range_analysis(self, report) -> None:
        """Register interval-range proofs: statically proven sites skip
        dual-path instrumentation entirely (their traps short-circuit
        to vanilla re-execution).  By default only *bit-exact* sites
        (shadow provably equals IEEE) are exempted — dropping their
        shadow is a no-op, so no downstream check changes verdict;
        ``SanitizeConfig.aggressive`` widens this to every
        divergence-free site, trading downstream flag fidelity for
        speed.  A no-op when the sanitizer is absent, exemption is
        disabled, or ``report`` is None.
        """
        if report is None or self.sanitizer is None:
            return
        if not self.sanitizer.config.exempt:
            return
        exempt = (report.proven if self.sanitizer.config.aggressive
                  else report.exact)
        self._sanitize_exempt = frozenset(exempt)
        self.sanitizer.exempt = self._sanitize_exempt

    def _patch_all_fp_sites(self, machine: "Machine") -> None:
        for ins in list(machine.binary.text):
            if ins.mnemonic == "fpvm_patch":
                self._patched_sites.add(ins.addr)  # compiler-inserted
                continue
            if is_fp_trapping(ins.mnemonic):
                self._install_patch(machine, ins)

    def uninstall(self) -> None:
        """Remove FPVM; leaves any still-boxed memory demoted in place."""
        m = self.machine
        if m is None:
            return
        if self.tracejit is not None:
            self.tracejit.detach("uninstall")
            self.tracejit = None
        if self.jit is not None:
            self.jit.invalidate_all(m, "uninstall")
        self.demote_all_memory(m)
        m.fp_trap_handler = None
        m.correctness_handler = None
        m.patch_handler = None
        if self._saved_masks is not None:
            m.mxcsr.set_masks(self._saved_masks)
        for addr, impl in self._saved_externs.items():
            m.externs[addr] = impl
        self._saved_externs.clear()
        self.machine = None

    # ------------------------------------------------------------------ #
    # SIGFPE path (trap-and-emulate §3.1/4.1)                             #
    # ------------------------------------------------------------------ #

    def _on_fp_trap(self, machine: "Machine", frame: TrapFrame) -> None:
        self.stats.record_trap_flags(frame.fp_flags)
        machine.mxcsr.clear_flags()  # sticky flags reset for next instr
        if frame.instruction.addr in self._sanitize_exempt:
            # the interval-range pass proved this site's worst-case
            # rounding error below the divergence threshold: skip the
            # dual-path machinery and re-execute under plain IEEE.
            # The trap already retired the instruction once, and
            # _execute_vanilla retires it again — decrement so the
            # sanitize run's instr_count stays bit-identical to native.
            self.stats.sanitize_exempt_execs += 1
            machine.instr_count -= 1
            self._demote_operands(machine, frame.instruction)
            self._execute_vanilla(machine, frame.instruction)
            self.gc.maybe_collect(machine)
            return
        if frame.instruction.addr in self._demoted_sites:
            # storm detector already demoted this site permanently:
            # §4.1 short-circuiting as a safety valve.  Operands must
            # be demoted first — vanilla execution on raw NaN-box bits
            # would poison the result with NaNs.
            self.stats.short_circuit_execs += 1
            self._demote_operands(machine, frame.instruction)
            self._execute_vanilla(machine, frame.instruction)
            self.gc.maybe_collect(machine)
            return
        plat = machine.cost.platform
        inj = self.injector
        stage = "decode"
        try:
            if inj is not None:
                inj.fire("decode", frame.instruction.mnemonic)
            decoded, hit = self.decode_cache.lookup(frame.instruction)
            self.stats.record_decode(hit)
            decode_cycles = (plat.decode_hit_cycles if hit
                             else plat.decode_miss_cycles)
            machine.cost.charge(decode_cycles, "decode")
            stage = "bind"
            if inj is not None:
                inj.fire("bind", frame.instruction.mnemonic)
            bound, bhit = self.bind_cache.lookup(machine, decoded)
            self.stats.record_bind(bhit)
            bind_cycles = plat.bind_hit_cycles if bhit else plat.bind_cycles
            machine.cost.charge(bind_cycles, "bind")

            stage = "emulate"
            if inj is not None:
                inj.fire("emulate", frame.instruction.mnemonic)
            arith_cycles = self.emulator.emulate(machine, bound)
        except RECOVERABLE_FAULTS as exc:
            stage = getattr(exc, "stage", stage)
            self._degrade(machine, frame.instruction, stage, exc)
            self.gc.maybe_collect(machine)
            return
        emulate_cycles = plat.emulate_base_cycles + arith_cycles
        machine.cost.charge(emulate_cycles, "emulate")
        machine.regs.rip = frame.instruction.next_addr

        if self.trace is not None:
            self.trace.emit(TrapEvent(
                cycles=machine.cost.cycles,
                addr=frame.instruction.addr,
                mnemonic=frame.instruction.mnemonic,
                flags=frame.fp_flags,
                path="fault",
                decode_cycles=decode_cycles,
                bind_cycles=bind_cycles,
                emulate_cycles=emulate_cycles,
                decode_hit=hit,
                bind_hit=bhit,
            ))
        if self.mode == "trap-and-patch":
            self._install_patch(machine, frame.instruction)
        elif self.jit is not None:
            self.jit.note_trap(machine, frame.instruction, decoded)
        self.gc.maybe_collect(machine)

    # ------------------------------------------------------------------ #
    # GC-sweep staleness: handles are free-listed, so caches keyed on    #
    # reclaimed NaN-box bits must be flushed before the bits recur       #
    # ------------------------------------------------------------------ #

    def _on_gc_sweep(self, freed) -> None:
        # the trace recorder must hear about the sweep *before* the
        # bind cache flushes: a recording in flight may already have
        # captured steps holding now-reclaimed handles, and aborting it
        # here (rather than after the caches look clean again) is what
        # keeps stale handles out of compiled traces
        if self.tracejit is not None:
            self.tracejit.note_sweep(freed)
        affected = self.bind_cache.invalidate_swept(freed)
        if self.jit is not None and affected:
            self.jit.clear_memos(affected)

    # ------------------------------------------------------------------ #
    # graceful degradation ladder                                         #
    # ------------------------------------------------------------------ #

    def _degrade(self, machine: "Machine", ins: Instruction, stage: str,
                 exc: BaseException) -> None:
        """Recover from a pipeline fault by falling back to IEEE.

        The faulting instruction's operands are demoted to plain
        doubles, then the instruction re-executes under vanilla masked
        semantics — the run survives with locally-vanilla results
        instead of dying.  A per-site storm detector permanently
        demotes sites that keep degrading.
        """
        if self.jit is not None:
            # a fault/demotion at a patched site kills its closure (the
            # compiled step's own fault exit already did this; covers
            # degradations reached through other paths too)
            self.jit.invalidate_site(machine, ins.addr, "degrade")
        if self.tracejit is not None:
            # same contract for loop traces: a degraded instruction
            # inside a trace invalidates the whole trace
            self.tracejit.invalidate_containing(ins.addr, "degrade")
        demoted = self._demote_operands(machine, ins)
        self._execute_vanilla(machine, ins)
        self.stats.degradations += 1

        site_demoted = False
        threshold = self.config.storm_threshold
        if threshold > 0:
            count = self._site_degrades.get(ins.addr, 0) + 1
            self._site_degrades[ins.addr] = count
            if count >= threshold and ins.addr not in self._demoted_sites:
                self._demoted_sites.add(ins.addr)
                self.stats.sites_short_circuited += 1
                site_demoted = True
        if self.trace is not None:
            self.trace.emit(DegradeEvent(
                cycles=machine.cost.cycles,
                addr=ins.addr,
                mnemonic=ins.mnemonic,
                stage=stage,
                reason=f"{type(exc).__name__}: {exc}",
                injected=isinstance(exc, InjectedFault),
                site_demoted=site_demoted,
                operands_demoted=demoted,
            ))

    def _execute_vanilla(self, machine: "Machine", ins: Instruction) -> None:
        """Re-execute one instruction under stock IEEE semantics.

        Exceptions are masked for the duration so the instruction
        cannot re-trap; ``machine.execute`` charges base cycles and
        advances RIP exactly as an unvirtualized execution would.
        """
        saved_masks = machine.mxcsr.masks
        machine.mxcsr.mask_all()
        try:
            machine.execute(ins)
        finally:
            machine.mxcsr.set_masks(saved_masks)
            machine.mxcsr.clear_flags()

    def _demote_operands(self, machine: "Machine", ins: Instruction) -> int:
        """Demote every boxed operand of ``ins`` to an IEEE double.

        Works straight off the architectural operands (no decode/bind
        needed — the fault may *be* a decode or bind failure): XMM
        registers demote both lanes, memory operands demote the
        containing aligned word.
        """
        from repro.isa.operands import Mem, Xmm

        n = 0
        for op in ins.operands:
            if isinstance(op, Xmm):
                for lane in (0, 1):
                    bits = machine.regs.xmm[op.index][lane]
                    if self.emulator.is_live_box(bits):
                        machine.regs.xmm[op.index][lane] = (
                            self.emulator.demote_bits(bits))
                        n += 1
            elif isinstance(op, Mem):
                word_addr = machine.ea(op) & ~7
                try:
                    bits = machine.memory.read(word_addr, 8)
                except MachineError:
                    continue
                if self.emulator.is_live_box(bits):
                    machine.memory.write(
                        word_addr, 8, self.emulator.demote_bits(bits))
                    n += 1
        return n

    # ------------------------------------------------------------------ #
    # trap-and-patch (§3.2)                                               #
    # ------------------------------------------------------------------ #

    def _install_patch(self, machine: "Machine", ins: Instruction) -> None:
        if ins.addr in self._patched_sites or not is_fp_trapping(ins.mnemonic):
            return
        patch = Instruction("fpvm_patch", (), ins.addr, ins.length,
                            payload={"original": ins})
        machine.binary.replace_instruction(ins.addr, patch)
        self._patched_sites.add(ins.addr)
        self.stats.patch_sites_installed += 1
        if self.trace is not None:
            self.trace.emit(PatchEvent(
                cycles=machine.cost.cycles,
                addr=ins.addr,
                mnemonic=ins.mnemonic,
                patch_kind=self.mode,
                source="runtime",
            ))

    def _on_patch_site(self, machine: "Machine", patch: Instruction) -> bool:
        """Inline pre/post-condition check replacing fault delivery.

        Precondition: no source operand is NaN(-boxed).  If it holds,
        execute the embedded original with exceptions masked, then
        postcondition-check the sticky flags; only a rounding/overflow/
        underflow event falls back to emulation (with the destination
        restored first, since x64 FP destinations are also sources).
        """
        original: Instruction = patch.payload["original"]
        plat = machine.cost.platform
        event_flags = 0
        if patch.payload.get("compiler"):
            # §3.4: the check was emitted and optimized by the compiler
            cost = plat.compiler_check_cycles
        else:
            cost = plat.patch_check_cycles
            if original.length < 5:
                # patch shorter than a rel32 call: needs a spanning
                # trampoline (paper §3.2), modeled as an extra indirection
                cost += 8
        machine.cost.charge(cost, "patch_check")

        decoded, dhit = self.decode_cache.lookup(original)
        self.stats.record_decode(dhit)
        bound, bhit = self.bind_cache.lookup(machine, decoded)
        self.stats.record_bind(bhit)
        srcs = [loc.read() for lane in bound.lanes for loc in lane.srcs]
        boxed = any(self.codec.is_box(b) for b in srcs)

        if not boxed:
            saved_dsts = [
                (lane.dst, lane.dst.read()) for lane in bound.lanes
                if lane.dst is not None
            ]
            saved_masks = machine.mxcsr.masks
            saved_flags = machine.mxcsr.flags
            machine.mxcsr.mask_all()
            machine.mxcsr.flags = 0
            machine.execute(original)  # cannot fault; advances RIP
            event_flags = machine.mxcsr.flags
            machine.mxcsr.set_masks(saved_masks)
            machine.mxcsr.flags = saved_flags
            if not event_flags:
                self.stats.patch_fast_path += 1
                return True
            # postcondition failed: undo and emulate
            for dst, bits in saved_dsts:
                dst.write(bits)
            self.stats.record_trap_flags(event_flags)
        self.stats.patch_slow_path += 1
        # rebind (regs may have moved): a cache hit refreshes the EAs
        bound, bhit = self.bind_cache.lookup(machine, decoded)
        self.stats.record_bind(bhit)
        try:
            if self.injector is not None:
                self.injector.fire("emulate", original.mnemonic)
            arith_cycles = self.emulator.emulate(machine, bound)
        except RECOVERABLE_FAULTS as exc:
            self._degrade(machine, original,
                          getattr(exc, "stage", "emulate"), exc)
            self.gc.maybe_collect(machine)
            return True
        emulate_cycles = (machine.cost.platform.emulate_base_cycles
                          + arith_cycles)
        machine.cost.charge(emulate_cycles, "emulate")
        machine.regs.rip = original.next_addr
        if self.trace is not None:
            self.trace.emit(TrapEvent(
                cycles=machine.cost.cycles,
                addr=original.addr,
                mnemonic=original.mnemonic,
                flags=event_flags,
                path="patch",
                emulate_cycles=emulate_cycles,
                decode_hit=dhit,
                bind_hit=bhit,
            ))
        self.gc.maybe_collect(machine)
        return True

    # ------------------------------------------------------------------ #
    # correctness traps (§4.2)                                            #
    # ------------------------------------------------------------------ #

    def _on_correctness_trap(self, machine: "Machine",
                             frame: TrapFrame) -> None:
        self.stats.correctness_traps += 1
        plat = machine.cost.platform
        detail = frame.detail or {}
        kind = detail.get("kind", "sink")
        if (kind == "sink" and not detail.get("demote_xmm")
                and frame.instruction.addr in self._box_free_sites):
            # the liveness refinement proved this load box-free; the
            # handler is a set lookup, no demotion scan
            self.stats.analysis_short_circuits += 1
            machine.cost.charge(plat.analysis_fast_path_cycles,
                                "correctness_handler")
            return
        machine.cost.charge(plat.correctness_handler_cycles,
                            "correctness_handler")
        demotions_before = (self.stats.correctness_demotions
                            + self.stats.call_site_demotions)
        if kind == "sink":
            self._demote_sink_operands(machine, frame.instruction,
                                       demote_xmm=detail.get("demote_xmm",
                                                             False))
        elif kind == "call_demote":
            self._demote_fp_arg_registers(machine, detail.get("nfp", 8))
        else:  # pragma: no cover - patcher only emits the two kinds
            raise MachineError(f"unknown correctness trap kind {kind!r}")
        if self.trace is not None:
            self.trace.emit(CorrectnessTrapEvent(
                cycles=machine.cost.cycles,
                addr=frame.instruction.addr,
                mnemonic=frame.instruction.mnemonic,
                trap_kind=kind,
                demotions=(self.stats.correctness_demotions
                           + self.stats.call_site_demotions
                           - demotions_before),
            ))
        self.gc.maybe_collect(machine)

    def _demote_sink_operands(self, machine: "Machine", ins: Instruction,
                              demote_xmm: bool = False) -> None:
        """Demote the words a sink instruction is about to consume.

        ``demote_xmm`` handles the bitwise-FP/movq holes: the operand
        that may hold a box is an XMM register lane, not memory.
        """
        from repro.isa.operands import Mem, Xmm

        if demote_xmm:
            for op in ins.operands:
                if isinstance(op, Xmm):
                    for lane in (0, 1):
                        bits = machine.regs.xmm[op.index][lane]
                        if self.emulator.is_live_box(bits):
                            demoted = self.emulator.demote_bits(bits)
                            machine.regs.xmm[op.index][lane] = demoted
                            self.stats.correctness_demotions += 1
                            if self.trace is not None:
                                self.trace.emit(DemotionEvent(
                                    cycles=machine.cost.cycles,
                                    location=f"xmm{op.index}[{lane}]",
                                    reason="sink",
                                    handle=self.codec.decode(bits),
                                    bits=demoted,
                                ))
        for i, op in enumerate(ins.operands):
            if not isinstance(op, Mem):
                continue
            if i == 0 and len(ins.operands) > 1 and ins.mnemonic not in (
                "cmp", "test", "push"
            ):
                continue  # pure destination operand: nothing to demote
            word_addr = machine.ea(op) & ~7
            try:
                bits = machine.memory.read(word_addr, 8)
            except MachineError:
                continue
            if self.emulator.is_live_box(bits):
                demoted = self.emulator.demote_bits(bits)
                machine.memory.write(word_addr, 8, demoted)
                self.stats.correctness_demotions += 1
                if self.trace is not None:
                    self.trace.emit(DemotionEvent(
                        cycles=machine.cost.cycles,
                        location=f"mem:{word_addr:#x}",
                        reason="sink",
                        handle=self.codec.decode(bits),
                        bits=demoted,
                    ))

    def _demote_fp_arg_registers(self, machine: "Machine", nfp: int) -> None:
        """Demote boxed xmm0..xmm{nfp-1} before an external call."""
        inj = self.injector
        if inj is not None and inj.fires("extern_demote"):
            # injected demotion skip: the callee sees raw NaN-box bits
            # and (masked) computes with NaNs — degraded, not dead
            self.stats.degradations += 1
            if self.trace is not None:
                self.trace.emit(DegradeEvent(
                    cycles=machine.cost.cycles,
                    addr=machine.regs.rip,
                    stage="extern_demote",
                    reason="injected pre-call demotion skip",
                    injected=True,
                ))
            return
        for i in range(nfp):
            bits = machine.regs.xmm_lo(i)
            if self.emulator.is_live_box(bits):
                demoted = self.emulator.demote_bits(bits)
                machine.regs.set_xmm_lo(i, demoted)
                self.stats.call_site_demotions += 1
                if self.trace is not None:
                    self.trace.emit(DemotionEvent(
                        cycles=machine.cost.cycles,
                        location=f"xmm{i}[0]",
                        reason="call",
                        handle=self.codec.decode(bits),
                        bits=demoted,
                    ))

    # ------------------------------------------------------------------ #
    # libm / output interposition (the LD_PRELOAD shim, Figs. 4/5/8)      #
    # ------------------------------------------------------------------ #

    def _interpose_externs(self, machine: "Machine") -> None:
        for name, addr in machine.binary.imports.items():
            if name in LIBM_FUNCTIONS and name in _LIBM_MAP:
                self._saved_externs[addr] = machine.externs[addr]
                machine.externs[addr] = self._make_libm_wrapper(name, addr)
            elif name == "floor" or name == "ceil":
                self._saved_externs[addr] = machine.externs[addr]
                machine.externs[addr] = self._make_round_wrapper(
                    1 if name == "floor" else 2, name)
            elif name == "printf":
                self._saved_externs[addr] = machine.externs[addr]
                machine.externs[addr] = self._printf_wrapper
            elif name == "fwrite":
                self._saved_externs[addr] = machine.externs[addr]
                machine.externs[addr] = self._fwrite_wrapper
            else:
                continue
            if self.trace is not None:
                # the import-table hook is a binary patch too (the
                # LD_PRELOAD shim moment)
                self.trace.emit(PatchEvent(
                    cycles=machine.cost.cycles,
                    addr=addr,
                    mnemonic=name,
                    patch_kind="interpose",
                    source="runtime",
                ))

    def _make_libm_wrapper(self, name: str, addr: int):
        method, arity = _LIBM_MAP[name]
        fn = getattr(self.arith, method)

        def wrapper(machine: "Machine") -> None:
            self.stats.libm_interposed_calls += 1
            try:
                inj = self.injector
                if inj is not None:
                    inj.fire("emulate", f"libm {name}")
                a = self.emulator.unbox(machine.regs.xmm_lo(0))
                if arity == 2:
                    b = self.emulator.unbox(machine.regs.xmm_lo(1))
                    r = fn(a, b)
                else:
                    r = fn(a)
            except RECOVERABLE_FAULTS as exc:
                self._degrade_libm_call(machine, name, addr, arity, exc)
                return
            machine.cost.charge(self.arith.op_cycles(method), "emulate")
            self.emulator.box(XmmLoc(machine, 0, 0), r)
            machine.regs.set_xmm_hi(0, 0)
            if self.sanitizer is not None:
                # interposed call sites are keyed by import address
                self.sanitizer.check_value(machine, addr, name, r)

        return wrapper

    def _degrade_libm_call(self, machine: "Machine", name: str, addr: int,
                           arity: int, exc: BaseException) -> None:
        """Recover a failed interposed libm call: demote the argument
        registers and hand off to the saved vanilla implementation."""
        demoted = 0
        for i in range(arity):
            bits = machine.regs.xmm_lo(i)
            if self.emulator.is_live_box(bits):
                machine.regs.set_xmm_lo(i, self.emulator.demote_bits(bits))
                demoted += 1
        self._saved_externs[addr](machine)
        self.stats.degradations += 1
        if self.trace is not None:
            self.trace.emit(DegradeEvent(
                cycles=machine.cost.cycles,
                addr=addr,
                mnemonic=name,
                stage=getattr(exc, "stage", "emulate"),
                reason=f"{type(exc).__name__}: {exc}",
                injected=isinstance(exc, InjectedFault),
                operands_demoted=demoted,
            ))

    def _make_round_wrapper(self, mode: int, name: str):
        def wrapper(machine: "Machine") -> None:
            self.stats.libm_interposed_calls += 1
            a = self.emulator.unbox(machine.regs.xmm_lo(0))
            r = self.arith.round_to_integral(a, mode)
            machine.cost.charge(
                self.arith.op_cycles("round_to_integral"), "emulate")
            self.emulator.box(XmmLoc(machine, 0, 0), r)
            machine.regs.set_xmm_hi(0, 0)

        return wrapper

    def _printf_wrapper(self, machine: "Machine") -> None:
        """Hijacked printf: demote (or fully render) shadowed FP args (§2)."""

        def fp_decode(bits: int):
            if self.emulator.is_live_box(bits):
                self.stats.printf_demotions += 1
                demoted = self.emulator.demote_bits(bits)
                if self.trace is not None:
                    self.trace.emit(DemotionEvent(
                        cycles=machine.cost.cycles,
                        location="printf-arg",
                        reason="printf",
                        handle=self.codec.decode(bits),
                        bits=demoted,
                    ))
                if self.printf_shadow_digits is not None:
                    v = self.store.get(self.codec.decode(bits))
                    return self.arith.to_decimal_str(
                        v, self.printf_shadow_digits)
                return bits_to_f64(demoted)
            return bits_to_f64(self.emulator.demote_bits(bits))

        _printf_impl(machine, fp_decode)

    def _fwrite_wrapper(self, machine: "Machine") -> None:
        """Hijacked fwrite: demote boxed words in the outgoing buffer.

        This is the conversion-at-serialization-point strategy of §2
        ("losing all the promoted values" — the buffer written to the
        file holds demoted doubles, not shadow contents).
        """
        ptr = machine.regs.get_gpr("rdi")
        size = machine.regs.get_gpr("rsi")
        nmemb = machine.regs.get_gpr("rdx")
        n = size * nmemb
        for off in range(0, n & ~7, 8):
            bits = machine.memory.read(ptr + off, 8)
            if self.emulator.is_live_box(bits):
                demoted = self.emulator.demote_bits(bits)
                machine.memory.write(ptr + off, 8, demoted)
                if self.trace is not None:
                    self.trace.emit(DemotionEvent(
                        cycles=machine.cost.cycles,
                        location=f"mem:{ptr + off:#x}",
                        reason="fwrite",
                        handle=self.codec.decode(bits),
                        bits=demoted,
                    ))
        self._saved_externs[
            machine.binary.imports["fwrite"]
        ](machine)

    # ------------------------------------------------------------------ #
    # wholesale demotion (used at uninstall / program exit)               #
    # ------------------------------------------------------------------ #

    def demote_all_memory(self, machine: "Machine") -> int:
        """Demote every live box in registers + writable memory in place."""
        n = 0
        for i in range(len(machine.regs.xmm)):
            for lane in (0, 1):
                bits = machine.regs.xmm[i][lane]
                if self.emulator.is_live_box(bits):
                    machine.regs.xmm[i][lane] = self.emulator.demote_bits(bits)
                    n += 1
        for name, bits in machine.regs.gpr.items():
            if self.emulator.is_live_box(bits):
                machine.regs.gpr[name] = self.emulator.demote_bits(bits)
                n += 1
        for lo, hi in self.gc._scan_ranges(machine):
            for addr in range(lo, hi & ~7, 8):
                bits = machine.memory.read(addr, 8)
                if self.emulator.is_live_box(bits):
                    machine.memory.write(addr, 8,
                                         self.emulator.demote_bits(bits))
                    n += 1
        return n
