"""The shadow-value store: FPVM-side memory for promoted values (§4.1).

Every emulated instruction allocates a fresh cell ("Because FPVM must
maintain the illusion that the numbers the application is operating on
are values, not pointers, the NaN-boxed data must remain immutable…
every instruction allocates a new cell"), which is what creates the
garbage-collection pressure Fig. 10 measures.

The store is deliberately simple: a dict from integer handle to cell,
a free-list so handles stay small (they must fit 51 bits), and a mark
bit per cell for the conservative mark-and-sweep collector.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import NanBoxError
from repro.fpvm.nanbox import MAX_HANDLE


class _Cell:
    __slots__ = ("value", "marked")

    def __init__(self, value: Any) -> None:
        self.value = value
        self.marked = False


class ShadowStore:
    """Handle-addressed storage of alternative-arithmetic values."""

    def __init__(self) -> None:
        self._cells: dict[int, _Cell] = {}
        self._free: list[int] = []
        self._next = 1  # handle 0 reserved (would alias +inf when boxed)
        self.total_allocated = 0
        self.total_freed = 0
        #: handles reclaimed by the most recent :meth:`sweep` — consumed
        #: by the GC to invalidate caches keyed on (reusable!) handles
        self.last_swept: tuple[int, ...] = ()

    # ------------------------------------------------------------------ #
    def alloc(self, value: Any) -> int:
        """Store ``value`` in a fresh immutable cell; return its handle."""
        if self._free:
            handle = self._free.pop()
        else:
            handle = self._next
            if handle > MAX_HANDLE:
                raise MemoryError("shadow handle space exhausted")
            self._next += 1
        self._cells[handle] = _Cell(value)
        self.total_allocated += 1
        return handle

    def get(self, handle: int) -> Any | None:
        """Value for ``handle``, or None if no live cell (universal NaN)."""
        cell = self._cells.get(handle)
        return cell.value if cell is not None else None

    def fetch(self, handle: int) -> Any:
        """Value for ``handle``; a dangling handle is a contract error.

        The tolerant spelling is :meth:`get` (universal-NaN semantics);
        this one raises a typed :class:`~repro.errors.NanBoxError`
        instead of surfacing a bare dict ``KeyError`` on paths where a
        live cell is a precondition (demotion, serialization, crash
        reporting).
        """
        cell = self._cells.get(handle)
        if cell is None:
            raise NanBoxError(f"dangling shadow handle: {handle}")
        return cell.value

    def contains(self, handle: int) -> bool:
        return handle in self._cells

    def free(self, handle: int) -> None:
        if self._cells.pop(handle, None) is not None:
            self._free.append(handle)
            self.total_freed += 1

    # ------------------------------------------------------------------ #
    # GC interface                                                        #
    # ------------------------------------------------------------------ #

    @property
    def live_count(self) -> int:
        return len(self._cells)

    def clear_marks(self) -> None:
        for cell in self._cells.values():
            cell.marked = False

    def mark(self, handle: int) -> bool:
        """Mark a handle if live; returns True if it was a live cell."""
        cell = self._cells.get(handle)
        if cell is None:
            return False
        cell.marked = True
        return True

    def sweep(self) -> int:
        """Free all unmarked cells; returns how many were collected."""
        dead = [h for h, c in self._cells.items() if not c.marked]
        for h in dead:
            del self._cells[h]
            self._free.append(h)
        self.total_freed += len(dead)
        self.last_swept = tuple(dead)
        return len(dead)

    def handles(self) -> Iterator[int]:
        return iter(self._cells.keys())
