"""NSan-mode numerical sanitizing: dual-path IEEE + MPFR shadows.

Following NSan (Courbet, CC'21; see PAPERS.md), every FP operation is
executed twice: once in stock IEEE binary64 — the result the program
actually sees, so control flow, printf output and instruction counts
stay bit-identical to native — and once in an MPFR-style high
precision shadow.  After each value-producing operation the sanitizer
compares the two paths; a relative error above the threshold is a
*divergence flag*, recorded with FlowFPX-style per-site provenance
(address, mnemonic, flag count, worst error, example values).

Blame localization follows NSan: when a site flags, its shadow is
resynchronized to the IEEE value, so downstream sites report only the
error *they* introduce, not the echo of an upstream bug.

The static half lives in ``analysis/ranges.py``: sites whose
worst-case rounding error is statically proven below the threshold
are *exempted* — their traps short-circuit straight to vanilla
re-execution (the ``box_free_sites`` fast-path pattern), skipping
both shadow arithmetic and the divergence check entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.arith.interface import AlternativeArithmetic, Ordering
from repro.arith.bigfloat import BigFloatArithmetic
from repro.arith.vanilla import VanillaArithmetic
from repro.fpvm.decoder import FPVMOp
from repro.trace.events import SanitizeFlagEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import Machine


@dataclass(frozen=True)
class SanitizeConfig:
    """Sanitizer tunables (threaded through ``FPVMConfig.sanitize``)."""

    #: relative-error divergence threshold; chosen so that benign
    #: rounding accumulation (~1e-13 over our workload sizes) never
    #: flags while seeded cancellation bugs (rel err ~1) always do
    threshold: float = 1e-6
    #: MPFR shadow precision in bits (the autotune mode walks this down)
    precision: int = 200
    #: resynchronize the shadow to the IEEE value on flag (NSan-style
    #: blame localization; turning it off measures total accumulation)
    resync: bool = True
    #: honor static exemptions from the interval-range pass
    exempt: bool = True
    #: exempt every proven-divergence-free site instead of only the
    #: bit-exact ones.  Aggressive exemption drops shadows that differ
    #: from IEEE by up to threshold/8 relative — sound for the exempt
    #: site itself (it could never flag), but a downstream cancellation
    #: can amplify exactly that dropped rounding into a missed flag
    #: (the ``(big+1)-big`` pattern).  Default off: bit-exact shadows
    #: cost nothing to drop and preserve every downstream verdict.
    aggressive: bool = False
    #: per-site cap on emitted SanitizeFlagEvents (tables keep full counts)
    max_flag_events: int = 8


class DualValue:
    """One shadowed FP value: the IEEE double plus its MPFR shadow.

    ``shadow`` is mutable so a divergence flag can resynchronize it in
    place (the shadow store holds the same object the XMM box points
    at).
    """

    __slots__ = ("ieee", "shadow")

    def __init__(self, ieee: float, shadow) -> None:
        self.ieee = ieee
        self.shadow = shadow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DualValue({self.ieee!r})"


def ulp_distance(a: float, b: float) -> int:
    """Ordered-bits distance between two doubles (NaN-safe: huge)."""
    if math.isnan(a) or math.isnan(b):
        return 1 << 62
    ia, ib = f64_to_bits(a), f64_to_bits(b)
    if ia >> 63:
        ia = (1 << 63) - (ia & ~(1 << 63))
    if ib >> 63:
        ib = (1 << 63) - (ib & ~(1 << 63))
    return abs(ia - ib)


def relative_error(ieee: float, shadow: float) -> float:
    """Symmetric relative error between the two paths."""
    if math.isnan(ieee) or math.isnan(shadow):
        return 0.0 if math.isnan(ieee) and math.isnan(shadow) else math.inf
    if math.isinf(ieee) or math.isinf(shadow):
        return 0.0 if ieee == shadow else math.inf
    if ieee == shadow:
        return 0.0
    return abs(ieee - shadow) / max(abs(ieee), abs(shadow), 1e-300)


class DualPathArithmetic(AlternativeArithmetic):
    """The §4.3 port that computes every operation on both paths.

    All *observable* semantics — comparisons, demotions, integer
    conversions, decimal rendering, min/max selection — are decided by
    the IEEE half alone, which is what keeps a sanitize-mode run
    bit-identical to native on the IEEE path.  The shadow half only
    ever feeds the divergence check.
    """

    def __init__(self, precision: int = 200) -> None:
        self.ieee = VanillaArithmetic()
        self.hp = BigFloatArithmetic(precision)
        self.precision = precision
        self.name = f"sanitize{precision}"

    def set_precision(self, precision: int) -> None:
        """Re-point the shadow half (used by the autotune ladder)."""
        self.hp._set_precision(precision)
        self.precision = precision
        self.name = f"sanitize{precision}"

    def shadow_as_float(self, v: DualValue) -> float:
        """The shadow's nearest binary64 (for the divergence check)."""
        return bits_to_f64(self.hp.to_f64_bits(v.shadow))

    def resync(self, v: DualValue) -> None:
        """Reset the shadow to the IEEE value (blame localization)."""
        v.shadow = self.hp.from_f64_bits(f64_to_bits(v.ieee))

    # -------------------------- arithmetic ---------------------------- #

    def _bin(method):  # noqa: N805 - decorator-style factory
        def op(self, a: DualValue, b: DualValue) -> DualValue:
            return DualValue(
                getattr(self.ieee, method)(a.ieee, b.ieee),
                getattr(self.hp, method)(a.shadow, b.shadow))
        op.__name__ = method
        return op

    def _un(method):  # noqa: N805
        def op(self, a: DualValue) -> DualValue:
            return DualValue(
                getattr(self.ieee, method)(a.ieee),
                getattr(self.hp, method)(a.shadow))
        op.__name__ = method
        return op

    add = _bin("add")
    sub = _bin("sub")
    mul = _bin("mul")
    div = _bin("div")
    atan2 = _bin("atan2")
    pow = _bin("pow")
    fmod = _bin("fmod")
    sqrt = _un("sqrt")
    neg = _un("neg")
    abs = _un("abs")
    sin = _un("sin")
    cos = _un("cos")
    tan = _un("tan")
    asin = _un("asin")
    acos = _un("acos")
    atan = _un("atan")
    exp = _un("exp")
    log = _un("log")
    log2 = _un("log2")
    log10 = _un("log10")

    del _bin, _un

    def fma(self, a: DualValue, b: DualValue, c: DualValue) -> DualValue:
        return DualValue(self.ieee.fma(a.ieee, b.ieee, c.ieee),
                         self.hp.fma(a.shadow, b.shadow, c.shadow))

    def _pick(self, a: DualValue, b: DualValue, want_min: bool) -> DualValue:
        # x64 MINSD/MAXSD semantics decided by the IEEE half: NaN or
        # equal operands forward src2; the picked operand's *shadow*
        # rides along so the dual paths never mix
        x, y = a.ieee, b.ieee
        if math.isnan(x) or math.isnan(y) or x == y:
            picked = b
        elif (x < y) == want_min:
            picked = a
        else:
            picked = b
        return DualValue(picked.ieee, picked.shadow)

    def min(self, a: DualValue, b: DualValue) -> DualValue:
        return self._pick(a, b, want_min=True)

    def max(self, a: DualValue, b: DualValue) -> DualValue:
        return self._pick(a, b, want_min=False)

    # -------------------------- conversions --------------------------- #

    def from_f64_bits(self, bits: int) -> DualValue:
        return DualValue(self.ieee.from_f64_bits(bits),
                         self.hp.from_f64_bits(bits))

    def to_f64_bits(self, a: DualValue) -> int:
        return self.ieee.to_f64_bits(a.ieee)

    def from_i64(self, i: int) -> DualValue:
        return DualValue(self.ieee.from_i64(i), self.hp.from_i64(i))

    def from_i32(self, i: int) -> DualValue:
        return DualValue(self.ieee.from_i32(i), self.hp.from_i32(i))

    def to_i64(self, a: DualValue, truncate: bool) -> int:
        return self.ieee.to_i64(a.ieee, truncate)

    def to_i32(self, a: DualValue, truncate: bool) -> int:
        return self.ieee.to_i32(a.ieee, truncate)

    def from_f32_bits(self, bits: int) -> DualValue:
        return DualValue(self.ieee.from_f32_bits(bits),
                         self.hp.from_f32_bits(bits))

    def to_f32_bits(self, a: DualValue) -> int:
        return self.ieee.to_f32_bits(a.ieee)

    def round_to_integral(self, a: DualValue, mode: int) -> DualValue:
        return DualValue(self.ieee.round_to_integral(a.ieee, mode),
                         self.hp.round_to_integral(a.shadow, mode))

    def to_decimal_str(self, a: DualValue, precision: int | None = None) -> str:
        return self.ieee.to_decimal_str(a.ieee, precision)

    # -------------------------- comparisons --------------------------- #

    def compare(self, a: DualValue, b: DualValue) -> Ordering:
        return self.ieee.compare(a.ieee, b.ieee)

    def is_nan(self, a: DualValue) -> bool:
        return self.ieee.is_nan(a.ieee)

    def is_zero(self, a: DualValue) -> bool:
        return self.ieee.is_zero(a.ieee)

    def is_negative(self, a: DualValue) -> bool:
        return self.ieee.is_negative(a.ieee)

    # -------------------------- cost model ---------------------------- #

    def op_cycles(self, op: str) -> int:
        # dual path = both executions; the divergence check itself is
        # folded into the shadow side's constant
        return self.ieee.op_cycles(op) + self.hp.op_cycles(op)

    def describe(self) -> str:
        return f"sanitize (IEEE + mpfr{self.precision} shadow)"


@dataclass
class SiteRecord:
    """Per-site provenance row of the divergence table (FlowFPX-style)."""

    addr: int
    mnemonic: str
    checks: int = 0
    flags: int = 0
    max_rel: float = 0.0
    max_ulps: int = 0
    example_ieee: float = 0.0
    example_shadow: float = 0.0

    def to_dict(self) -> dict:
        return {
            "addr": self.addr, "mnemonic": self.mnemonic,
            "checks": self.checks, "flags": self.flags,
            "max_rel": self.max_rel, "max_ulps": self.max_ulps,
            "example_ieee": self.example_ieee,
            "example_shadow": self.example_shadow,
        }


#: FPVMOps whose destination is a boxed FP value worth checking
#: (compares set RFLAGS, CMP_PRED writes a mask, CVT_F64_I* writes a
#: GPR, and f32 forms are never boxed — the "float problem")
CHECKED_OPS = frozenset({
    FPVMOp.ADD, FPVMOp.SUB, FPVMOp.MUL, FPVMOp.DIV, FPVMOp.MIN,
    FPVMOp.MAX, FPVMOp.SQRT, FPVMOp.FMA, FPVMOp.CVT_I32_F64,
    FPVMOp.CVT_I64_F64, FPVMOp.CVT_F32_F64, FPVMOp.ROUND,
})


class Sanitizer:
    """Divergence checker + per-site provenance tables.

    Owned by the FPVM when its arithmetic is a
    :class:`DualPathArithmetic`; the emulator calls :meth:`check_bound`
    after each emulated instruction and the libm wrappers call
    :meth:`check_value` after boxing their result.
    """

    def __init__(self, arith: DualPathArithmetic, config: SanitizeConfig,
                 stats, trace=None) -> None:
        self.arith = arith
        self.config = config
        self.stats = stats
        self.trace = trace
        self.sites: dict[int, SiteRecord] = {}
        #: statically proven divergence-free trap sites (exempted)
        self.exempt: frozenset[int] = frozenset()
        #: op filter consulted by the emulator hook (attribute, so the
        #: emulator never imports this module)
        self.checked_ops = CHECKED_OPS

    # ------------------------------------------------------------------ #

    def check_value(self, machine: "Machine", addr: int, mnemonic: str,
                    value: DualValue) -> None:
        """Compare the two paths of one freshly produced value."""
        self.stats.sanitize_checks += 1
        site = self.sites.get(addr)
        if site is None:
            site = self.sites[addr] = SiteRecord(addr, mnemonic)
        site.checks += 1
        shadow_d = self.arith.shadow_as_float(value)
        rel = relative_error(value.ieee, shadow_d)
        if rel <= self.config.threshold:
            return
        self.stats.sanitize_flags += 1
        site.flags += 1
        ulps = ulp_distance(value.ieee, shadow_d)
        if rel > site.max_rel:
            site.max_rel = rel
            site.max_ulps = ulps
            site.example_ieee = value.ieee
            site.example_shadow = shadow_d
        if self.trace is not None and site.flags <= self.config.max_flag_events:
            self.trace.emit(SanitizeFlagEvent(
                cycles=machine.cost.cycles,
                addr=addr,
                mnemonic=mnemonic,
                ieee=value.ieee,
                shadow=shadow_d,
                rel_err=rel,
                ulps=min(ulps, 1 << 62),
                count=site.flags,
            ))
        if self.config.resync:
            self.arith.resync(value)

    def flagged_sites(self) -> dict[int, SiteRecord]:
        return {a: s for a, s in self.sites.items() if s.flags > 0}

    def divergence_table(self, top: int = 0) -> list[SiteRecord]:
        """Site records sorted worst-first (flags desc, then rel err)."""
        rows = sorted(self.sites.values(),
                      key=lambda s: (s.flags, s.max_rel, s.checks),
                      reverse=True)
        return rows[:top] if top else rows
